// appclass command-line interface.
//
// Drives the library end to end from a shell:
//
//   appclass_cli train <model.txt>
//       Train the classifier on the five canonical simulated runs and save
//       the fitted model.
//   appclass_cli profile <app> <pool.csv> [vm_ram_mb]
//       Simulate a standalone run of a catalog application on the paper's
//       testbed, capture its monitoring pool, and write it as CSV.
//   appclass_cli classify <model.txt> <pool.csv>
//       Load a model and classify a captured pool: per-class composition,
//       majority class, and execution time.
//   appclass_cli info <model.txt>
//       Summarize a saved model.
//   appclass_cli features
//       Run automated relevance/redundancy feature selection over the
//       training runs and print the chosen metrics.
//   appclass_cli apps
//       List catalog application names.
//   appclass_cli trace-record <app> <trace.csv>
//       Run an application and record its per-second demand trace.
//   appclass_cli trace-replay <trace.csv> <pool.csv>
//       Replay a recorded trace in a fresh VM and capture its pool.
//   appclass_cli chaos <out.csv> [--rates=...] [--kinds=...]
//                      [--no-sanitize] [--seed=N]
//       Sweep monitoring-fault kinds x rates over the five canonical
//       workloads and write the accuracy-degradation curve as CSV
//       (docs/robustness.md).
//   appclass_cli serve <model.txt> [--mode=single|worker|coordinator]
//                      [--port=N] [--duration=S] [--cycles=N]
//                      [--drift-window=N] [--state-dir=D] [--fsync=P]
//                      [--sync-every=N] [--checkpoint-every=N]
//                      [--max-backlog=N] [--supervised] [--ingest-port=N]
//                      [--workers=SCRAPE:INGEST,...]
//                      [--fleet-scrape-every=MS] [--slo-freshness-ms=MS]
//                      [--slo-window=S] [--slo-objective=PCT]
//       The unified serving surface (src/dist/serving.hpp). The default
//       --mode=single replays the five canonical workload streams through
//       a FleetStream with a model-health aggregator attached and exposes
//       /metrics, /healthz, /traces/recent plus the JSON scorecards
//       /classes, /drift, /nodes (and /composition, /appdb, /replay) on
//       an HTTP scrape endpoint until --duration seconds pass (0 =
//       forever) or --cycles replay cycles complete. /healthz turns 503
//       with a JSON reason while any node's classifier is degraded.
//       --drift-window sizes the drift detector's sliding window.
//       --state-dir enables crash-safe serving: ingested snapshots are
//       write-ahead logged (fsync policy --fsync=always|interval|never,
//       --sync-every records between interval syncs), the classifier
//       state is checkpointed atomically every --checkpoint-every drains,
//       and startup recovers checkpoint + WAL tail into bit-identical
//       state (docs/robustness.md). SIGTERM/SIGINT shut down gracefully:
//       drain, flush the WAL, write a final checkpoint, exit 0.
//       --supervised forks the worker under a watchdog that restarts it
//       on crashes with exponential backoff and crash-loop detection.
//       --mode=worker serves one shard: snapshots arrive as checksummed
//       frames on --ingest-port instead of the local replay, acked only
//       after the WAL append. --mode=coordinator shards the replay by
//       node ip across --workers=SCRAPE:INGEST[,...] endpoints and
//       serves the merged fleet view (/composition, /classes, /appdb,
//       /workers, /replay) plus the fleet observability plane: federated
//       worker metrics on /fleet/metrics (scraped every
//       --fleet-scrape-every ms; per-worker scrape health on
//       /fleet/workers), the stitched cross-process Chrome trace on
//       /fleet/traces, and a multi-window error-budget SLO verdict on
//       /slo — announce->durable freshness against --slo-freshness-ms
//       and worker scrape availability, both targeting --slo-objective
//       percent over --slo-window seconds (long window 12x) — which
//       also drives the coordinator's /healthz 200/503. See
//       docs/serving.md for topology recipes.
//   appclass_cli trace dump <model.txt> <pool.csv> <out.json>
//       Classify a pool with tracing enabled and dump the flight
//       recorder's Chrome trace JSON (Perfetto-loadable) to out.json.
//
// Global flags (any position, any subcommand):
//   --log-level=<trace|debug|info|warn|error|off>
//       Structured logging to stderr (default: off, or APPCLASS_LOG_LEVEL).
//   --stats[=json|prom]
//       After the command, print the metrics-registry snapshot (stage
//       timing histograms, counters) as a table, JSON, or Prometheus text.
//   --stats-every=<N>
//       Also print the snapshot to stderr every N seconds while the
//       command runs (long-running subcommands: serve, chaos, train).
//   --threads=<N>
//       Engine execution width for train/classify/chaos: 1 = serial
//       (default), N = a pool of N worker threads, 0 = one per hardware
//       core. Results are bit-identical for every value.
//   --trace
//       Enable trace-context propagation and flight recording (also:
//       APPCLASS_TRACE=1). Classification output is identical either way.
//   --flight-dump=<path>
//       Install crash handlers (SIGSEGV/SIGBUS/SIGABRT) that dump the
//       flight recorder to <path> post mortem.
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/feature_selection.hpp"
#include "core/robustness.hpp"
#include "dist/serving.hpp"
#include "obs/export.hpp"
#include "obs/health.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "workloads/trace_replay.hpp"
#include "core/serialize.hpp"
#include "core/trainer.hpp"
#include "monitor/harness.hpp"
#include "sim/testbed.hpp"
#include "workloads/catalog.hpp"

namespace {

using namespace appclass;

/// Engine execution width from --threads (1 = serial).
std::size_t g_threads = 1;

int usage() {
  std::fprintf(stderr,
               "usage: appclass_cli [--log-level=<lvl>] [--stats[=json|prom]]"
               " <command> [args]\n"
               "  train <model.txt>\n"
               "  profile <app> <pool.csv> [vm_ram_mb]\n"
               "  classify <model.txt> <pool.csv>\n"
               "  info <model.txt>\n"
               "  features\n"
               "  apps\n"
               "  trace-record <app> <trace.csv>\n"
               "  trace-replay <trace.csv> <pool.csv>\n"
               "  chaos <out.csv> [--rates=0,0.1,...] [--kinds=drop,...]"
               " [--no-sanitize] [--seed=N]\n"
               "  serve <model.txt> [--mode=single|worker|coordinator]"
               " [--port=N]\n"
               "        [--duration=S] [--cycles=N] [--drift-window=N]"
               " [--state-dir=D]\n"
               "        [--fsync=always|interval|never] [--sync-every=N]\n"
               "        [--checkpoint-every=N] [--max-backlog=N]"
               " [--supervised]\n"
               "        [--ingest-port=N] [--workers=SCRAPE:INGEST,...]\n"
               "        [--fleet-scrape-every=MS] [--slo-freshness-ms=MS]\n"
               "        [--slo-window=S] [--slo-objective=PCT]\n"
               "  trace dump <model.txt> <pool.csv> <out.json>\n"
               "flags:\n"
               "  --log-level=<trace|debug|info|warn|error|off>  stderr "
               "logging (default off)\n"
               "  --stats[=json|prom]  print the metrics registry snapshot "
               "after the command\n"
               "  --stats-every=<N>  also print it to stderr every N "
               "seconds while running\n"
               "  --threads=<N>  engine threads (1 = serial, 0 = hw cores); "
               "results are identical for every value\n"
               "  --trace  enable trace propagation + flight recording "
               "(or APPCLASS_TRACE=1)\n"
               "  --flight-dump=<path>  dump the flight recorder to <path> "
               "on crash\n");
  return 2;
}

/// Strict numeric parsing: the whole token must be a finite number.
/// Malformed input yields nullopt so callers print a usage error instead
/// of silently treating junk as 0 (std::atof's behaviour).
std::optional<double> parse_double(const std::string& text) {
  if (text.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return std::nullopt;
  return v;
}

std::optional<long long> parse_int(const std::string& text) {
  if (text.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return std::nullopt;
  return v;
}

std::vector<std::string> split_csv_list(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream is(text);
  std::string item;
  while (std::getline(is, item, ',')) out.push_back(item);
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for write");
  out << content;
}

int cmd_train(const std::string& model_path) {
  std::printf("training on the five canonical simulated runs...\n");
  core::PipelineOptions options;
  options.parallelism = g_threads;
  const core::ClassificationPipeline pipeline =
      core::make_trained_pipeline(options);
  core::save_pipeline_file(pipeline, model_path);
  std::printf("model saved to %s (%zu training snapshots, q=%zu, k=%zu)\n",
              model_path.c_str(), pipeline.knn().training_size(),
              pipeline.pca().components(), pipeline.knn().k());
  return 0;
}

int cmd_profile(const std::string& app, const std::string& pool_path,
                double vm_ram_mb) {
  sim::TestbedOptions opts;
  opts.seed = 20260707;
  opts.vm1_ram_mb = vm_ram_mb;
  opts.four_vms = false;
  sim::Testbed tb = sim::make_testbed(opts);
  monitor::ClusterMonitor mon(*tb.engine);
  auto model = workloads::make_by_name(app, static_cast<int>(tb.vm4));
  if (!model) {
    std::fprintf(stderr, "unknown application '%s' (try: appclass_cli apps)\n",
                 app.c_str());
    return 1;
  }
  const auto id = tb.engine->submit(tb.vm1, std::move(model));
  const auto run = monitor::profile_instance(*tb.engine, mon, id, 5);
  if (!run.completed) {
    std::fprintf(stderr, "run did not complete within the tick budget\n");
    return 1;
  }
  write_file(pool_path, metrics::to_csv(run.pool));
  std::printf("%s ran %lld s in a %.0f MB VM; %zu snapshots -> %s\n",
              app.c_str(), static_cast<long long>(run.elapsed()), vm_ram_mb,
              run.pool.size(), pool_path.c_str());
  return 0;
}

int cmd_classify(const std::string& model_path,
                 const std::string& pool_path) {
  core::ClassificationPipeline pipeline = core::load_pipeline_file(model_path);
  pipeline.set_parallelism(g_threads);
  const metrics::DataPool pool = metrics::from_csv(read_file(pool_path));
  if (pool.empty()) {
    std::fprintf(stderr, "pool %s holds no snapshots\n", pool_path.c_str());
    return 1;
  }
  const core::ClassificationResult result = pipeline.classify(pool);
  std::printf("node:        %s\n", pool.node_ip().c_str());
  std::printf("snapshots:   %zu (t0=%lld, t1=%lld)\n", pool.size(),
              static_cast<long long>(pool.start_time()),
              static_cast<long long>(pool.end_time()));
  std::printf("class:       %s\n",
              std::string(core::to_string(result.application_class)).c_str());
  std::printf("composition: %s\n", result.composition.to_string().c_str());
  // Canonical reductions from the result itself — not refolded here.
  std::printf("confidence:  %.3f\n", result.mean_confidence());
  if (result.novelty_threshold > 0.0)
    std::printf("novel:       %.1f%%\n", 100.0 * result.novel_fraction());
  return 0;
}

int cmd_info(const std::string& model_path) {
  const core::ClassificationPipeline pipeline =
      core::load_pipeline_file(model_path);
  std::printf("appclass pipeline model\n");
  std::printf("  selected metrics (%zu):", pipeline.preprocessor().dimension());
  for (const auto id : pipeline.preprocessor().selected())
    std::printf(" %s", std::string(metrics::info(id).name).c_str());
  std::printf("\n  PCA: %zu -> %zu components (%.1f%% variance)\n",
              pipeline.pca().input_dimension(), pipeline.pca().components(),
              100.0 * pipeline.pca().captured_variance());
  std::printf("  k-NN: %zu training points, k=%zu\n",
              pipeline.knn().training_size(), pipeline.knn().k());
  return 0;
}

int cmd_features() {
  std::printf("profiling training runs and ranking the 33 metrics...\n");
  const auto pools = core::collect_training_pools();
  const auto selected = core::select_features(
      pools, {.target_count = 8, .max_redundancy = 0.97});
  std::printf("auto-selected metrics:");
  for (const auto id : selected)
    std::printf(" %s", std::string(metrics::info(id).name).c_str());
  std::printf("\n");
  return 0;
}

int cmd_trace_record(const std::string& app, const std::string& path) {
  sim::TestbedOptions opts;
  opts.seed = 20260707;
  opts.four_vms = false;
  sim::Testbed tb = sim::make_testbed(opts);
  auto inner = workloads::make_by_name(app, static_cast<int>(tb.vm4));
  if (!inner) {
    std::fprintf(stderr, "unknown application '%s'\n", app.c_str());
    return 1;
  }
  auto recorder = std::make_unique<workloads::TraceRecorder>(std::move(inner));
  const workloads::TraceRecorder* raw = recorder.get();
  tb.engine->submit(tb.vm1, std::move(recorder));
  if (!tb.engine->run_until_done(300000)) {
    std::fprintf(stderr, "run did not complete\n");
    return 1;
  }
  write_file(path, workloads::trace_to_csv(raw->trace()));
  std::printf("recorded %zu ticks of %s demand -> %s\n", raw->trace().size(),
              app.c_str(), path.c_str());
  return 0;
}

int cmd_trace_replay(const std::string& trace_path,
                     const std::string& pool_path) {
  const auto trace = workloads::trace_from_csv(read_file(trace_path));
  sim::TestbedOptions opts;
  opts.seed = 1;
  opts.four_vms = false;
  sim::Testbed tb = sim::make_testbed(opts);
  monitor::ClusterMonitor mon(*tb.engine);
  const auto id = tb.engine->submit(
      tb.vm1, std::make_unique<workloads::TraceReplayApp>(trace));
  const auto run = monitor::profile_instance(*tb.engine, mon, id, 5);
  if (!run.completed) {
    std::fprintf(stderr, "replay did not complete\n");
    return 1;
  }
  write_file(pool_path, metrics::to_csv(run.pool));
  std::printf("replayed %zu ticks of %s; %zu snapshots -> %s\n",
              trace.size(), trace.app_name.c_str(), run.pool.size(),
              pool_path.c_str());
  return 0;
}

int cmd_chaos(const std::string& out_path,
              const std::vector<std::string>& flags) {
  core::ChaosOptions options;
  for (const auto& flag : flags) {
    if (flag == "--no-sanitize") {
      options.sanitize = false;
    } else if (flag.rfind("--rates=", 0) == 0) {
      options.rates.clear();
      for (const auto& token :
           split_csv_list(flag.substr(std::strlen("--rates=")))) {
        const auto rate = parse_double(token);
        if (!rate || *rate < 0.0 || *rate > 1.0) {
          std::fprintf(stderr,
                       "chaos: bad rate '%s' (expected numbers in [0, 1])\n",
                       token.c_str());
          return 2;
        }
        options.rates.push_back(*rate);
      }
      if (options.rates.empty()) {
        std::fprintf(stderr, "chaos: --rates needs at least one value\n");
        return 2;
      }
    } else if (flag.rfind("--kinds=", 0) == 0) {
      options.kinds.clear();
      for (const auto& token :
           split_csv_list(flag.substr(std::strlen("--kinds=")))) {
        const auto kind = core::fault_kind_from_string(token);
        if (!kind) {
          std::fprintf(stderr, "chaos: unknown fault kind '%s' (known:",
                       token.c_str());
          for (const auto k : core::all_fault_kinds())
            std::fprintf(stderr, " %s",
                         std::string(core::to_string(k)).c_str());
          std::fprintf(stderr, ")\n");
          return 2;
        }
        options.kinds.push_back(*kind);
      }
    } else if (flag.rfind("--seed=", 0) == 0) {
      const auto seed = parse_int(flag.substr(std::strlen("--seed=")));
      if (!seed || *seed < 0) {
        std::fprintf(stderr, "chaos: bad seed '%s'\n",
                     flag.substr(std::strlen("--seed=")).c_str());
        return 2;
      }
      options.seed = static_cast<std::uint64_t>(*seed);
    } else {
      std::fprintf(stderr, "chaos: unknown flag '%s'\n", flag.c_str());
      return 2;
    }
  }

  std::printf("training on the five canonical simulated runs...\n");
  core::PipelineOptions pipeline_options;
  pipeline_options.parallelism = g_threads;
  const core::ClassificationPipeline pipeline =
      core::make_trained_pipeline(pipeline_options);
  std::printf("recording the five canonical workload streams...\n");
  const auto runs = core::record_canonical_runs(options);
  std::printf("sweeping %zu fault kinds x %zu rates (sanitizer %s)...\n",
              options.kinds.empty() ? core::all_fault_kinds().size()
                                    : options.kinds.size(),
              options.rates.size(), options.sanitize ? "on" : "off");
  const auto cells = core::run_chaos_sweep(pipeline, runs, options);
  write_file(out_path, core::chaos_csv(cells));

  std::size_t flipped = 0;
  double worst_accuracy = 1.0;
  for (const auto& c : cells) {
    if (!c.majority_ok) ++flipped;
    if (c.survived_samples > 0 && c.accuracy < worst_accuracy)
      worst_accuracy = c.accuracy;
  }
  std::printf(
      "%zu cells -> %s (majority flipped in %zu cells; worst surviving "
      "per-snapshot accuracy %.1f%%)\n",
      cells.size(), out_path.c_str(), flipped, 100.0 * worst_accuracy);
  return 0;
}

/// Thin adapter over the library-level serving API: flag parsing, the
/// run loop, the distributed modes, and the supervisor wrapper all live
/// in serving::parse_serve_args / serving::ServeApp (src/dist). The CLI
/// only forwards its global --threads.
int cmd_serve(const std::string& model_path,
              const std::vector<std::string>& flags) {
  serving::ParseResult parsed = serving::parse_serve_args(model_path, flags);
  if (!parsed.options) return parsed.exit_code;
  parsed.options->threads = g_threads;
  serving::ServeApp app(std::move(*parsed.options));
  return app.run();
}

int cmd_trace_dump(const std::string& model_path,
                   const std::string& pool_path,
                   const std::string& out_path) {
  obs::set_tracing_enabled(true);
  core::ClassificationPipeline pipeline =
      core::load_pipeline_file(model_path);
  pipeline.set_parallelism(g_threads);
  const metrics::DataPool pool = metrics::from_csv(read_file(pool_path));
  if (pool.empty()) {
    std::fprintf(stderr, "pool %s holds no snapshots\n", pool_path.c_str());
    return 1;
  }
  const core::ClassificationResult result = pipeline.classify(pool);
  const auto& recorder = obs::TraceRecorder::global();
  if (!recorder.dump_to_file(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("classified %zu snapshots (%s); %zu trace events -> %s\n",
              pool.size(),
              std::string(core::to_string(result.application_class)).c_str(),
              recorder.size(), out_path.c_str());
  return 0;
}

int cmd_apps() {
  for (const auto& name : workloads::catalog_names())
    std::printf("%s\n", name.c_str());
  return 0;
}

int run_command(const std::vector<std::string>& args) {
  const std::size_t argc = args.size();
  if (argc < 2) return usage();
  const std::string& command = args[1];
  if (command == "train" && argc == 3) return cmd_train(args[2]);
  if (command == "profile" && (argc == 4 || argc == 5)) {
    double vm_ram_mb = 256.0;
    if (argc == 5) {
      const auto parsed = parse_double(args[4]);
      if (!parsed || *parsed <= 0.0) {
        std::fprintf(stderr,
                     "profile: bad vm_ram_mb '%s' (expected a positive "
                     "number)\n",
                     args[4].c_str());
        return 2;
      }
      vm_ram_mb = *parsed;
    }
    return cmd_profile(args[2], args[3], vm_ram_mb);
  }
  if (command == "classify" && argc == 4) return cmd_classify(args[2], args[3]);
  if (command == "info" && argc == 3) return cmd_info(args[2]);
  if (command == "features" && argc == 2) return cmd_features();
  if (command == "apps" && argc == 2) return cmd_apps();
  if (command == "trace-record" && argc == 4)
    return cmd_trace_record(args[2], args[3]);
  if (command == "trace-replay" && argc == 4)
    return cmd_trace_replay(args[2], args[3]);
  if (command == "chaos" && argc >= 3)
    return cmd_chaos(args[2],
                     std::vector<std::string>(args.begin() + 3, args.end()));
  if (command == "serve" && argc >= 3)
    return cmd_serve(args[2],
                     std::vector<std::string>(args.begin() + 3, args.end()));
  if (command == "trace" && argc == 6 && args[2] == "dump")
    return cmd_trace_dump(args[3], args[4], args[5]);
  return usage();
}

/// Background --stats-every ticker: dumps the metrics-registry snapshot
/// to stderr every `seconds` until destroyed (condition variable, so
/// shutdown is immediate rather than waiting out the period).
class PeriodicStats {
 public:
  PeriodicStats(long long seconds, obs::ExportFormat format)
      : seconds_(seconds), format_(format), thread_([this] { loop(); }) {}

  ~PeriodicStats() {
    {
      const std::lock_guard lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void loop() {
    std::unique_lock lock(mutex_);
    while (!cv_.wait_for(lock, std::chrono::seconds(seconds_),
                         [this] { return stop_; })) {
      lock.unlock();
      const std::string report = obs::export_as(
          obs::MetricsRegistry::global().snapshot(), format_);
      std::fprintf(stderr, "== metrics (every %llds) ==\n", seconds_);
      std::fwrite(report.data(), 1, report.size(), stderr);
      // Model-health scorecard summary, when a serving aggregator is live
      // (the instance pointer is how this decoupled ticker finds it).
      if (const obs::ModelHealth* health = obs::ModelHealth::instance())
        std::fprintf(stderr, "%s\n", health->summary_line().c_str());
      std::fflush(stderr);
      lock.lock();
    }
  }

  long long seconds_;
  obs::ExportFormat format_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

int main(int argc, char** argv) {
  obs::Logger::global().configure_from_env();
  obs::configure_tracing_from_env();

  bool stats = false;
  long long stats_every_s = 0;
  obs::ExportFormat stats_format = obs::ExportFormat::kTable;
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--log-level=", 0) == 0) {
      const std::string level = arg.substr(std::strlen("--log-level="));
      // An invalid name falls back to whichever fallback we pass, so two
      // parses with different fallbacks disagreeing means "unknown".
      const obs::LogLevel parsed =
          obs::parse_log_level(level, obs::LogLevel::kOff);
      if (parsed != obs::parse_log_level(level, obs::LogLevel::kTrace)) {
        std::fprintf(stderr, "unknown log level '%s'\n", level.c_str());
        return 2;
      }
      obs::Logger::global().set_level(parsed);
    } else if (arg == "--stats" || arg == "--stats=table") {
      stats = true;
    } else if (arg == "--stats=json") {
      stats = true;
      stats_format = obs::ExportFormat::kJson;
    } else if (arg == "--stats=prom") {
      stats = true;
      stats_format = obs::ExportFormat::kPrometheus;
    } else if (arg.rfind("--stats=", 0) == 0) {
      std::fprintf(stderr,
                   "unknown stats format '%s' (expected table, json, prom)\n",
                   arg.substr(std::strlen("--stats=")).c_str());
      return 2;
    } else if (arg.rfind("--stats-every=", 0) == 0) {
      const auto every =
          parse_int(arg.substr(std::strlen("--stats-every=")));
      if (!every || *every <= 0) {
        std::fprintf(stderr,
                     "bad --stats-every '%s' (expected seconds >= 1)\n",
                     arg.substr(std::strlen("--stats-every=")).c_str());
        return 2;
      }
      stats_every_s = *every;
    } else if (arg == "--trace") {
      obs::set_tracing_enabled(true);
    } else if (arg.rfind("--flight-dump=", 0) == 0) {
      const std::string path = arg.substr(std::strlen("--flight-dump="));
      if (path.empty()) {
        std::fprintf(stderr, "--flight-dump needs a path\n");
        return 2;
      }
      obs::install_crash_dump(path);
    } else if (arg.rfind("--threads=", 0) == 0) {
      const auto threads = parse_int(arg.substr(std::strlen("--threads=")));
      if (!threads || *threads < 0) {
        std::fprintf(stderr, "bad --threads '%s' (expected 0, 1, 2, ...)\n",
                     arg.substr(std::strlen("--threads=")).c_str());
        return 2;
      }
      g_threads = static_cast<std::size_t>(*threads);
    } else {
      args.push_back(arg);
    }
  }

  std::optional<PeriodicStats> ticker;
  if (stats_every_s > 0) ticker.emplace(stats_every_s, stats_format);

  int status = 2;
  try {
    status = run_command(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    status = 1;
  }
  if (stats) {
    const std::string report = obs::export_as(
        obs::MetricsRegistry::global().snapshot(), stats_format);
    if (stats_format == obs::ExportFormat::kTable)
      std::printf("\n== metrics registry ==\n");
    std::fwrite(report.data(), 1, report.size(), stdout);
  }
  return status;
}
