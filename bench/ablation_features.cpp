// Ablation A3: expert-selected 8 metrics vs all 33 monitored metrics.
//
// The paper argues the Table-1 expert selection raises relevance and cuts
// redundancy before PCA. This harness compares held-out accuracy and
// per-sample classification cost between the expert 8, the full 33, and a
// deliberately poor 4-metric subset (load averages + proc counts).
#include <chrono>
#include <cstdio>
#include <vector>

#include "core/pipeline.hpp"
#include "core/trainer.hpp"

namespace {

std::vector<appclass::metrics::MetricId> all_metrics() {
  std::vector<appclass::metrics::MetricId> out;
  for (std::size_t i = 0; i < appclass::metrics::kMetricCount; ++i)
    out.push_back(static_cast<appclass::metrics::MetricId>(i));
  return out;
}

}  // namespace

int main() {
  using namespace appclass;
  using Clock = std::chrono::steady_clock;

  const auto training = core::collect_training_pools();
  core::TrainingSetup heldout_setup;
  heldout_setup.seed = 555;
  const auto heldout = core::collect_training_pools(heldout_setup);

  struct Config {
    const char* name;
    std::vector<metrics::MetricId> selected;
  };
  const std::vector<Config> configs = {
      {"expert-8 (Table 1)", {}},
      {"all-33", all_metrics()},
      {"weak-4 (loads+procs)",
       {metrics::MetricId::kLoadOne, metrics::MetricId::kLoadFive,
        metrics::MetricId::kProcRun, metrics::MetricId::kProcTotal}},
  };

  std::printf("Ablation A3: feature selection (q = 2, k = 3)\n\n");
  std::printf("%-22s %10s %16s\n", "features", "accuracy", "us per sample");
  for (const auto& cfg : configs) {
    core::PipelineOptions options;
    options.selected_metrics = cfg.selected;
    core::ClassificationPipeline pipeline(options);
    pipeline.train(training);

    std::size_t correct = 0, total = 0;
    const auto t0 = Clock::now();
    for (const auto& lp : heldout) {
      const auto result = pipeline.classify(lp.pool);
      for (const auto cls : result.class_vector) {
        correct += (cls == lp.label) ? 1u : 0u;
        ++total;
      }
    }
    const auto t1 = Clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() /
        static_cast<double>(total);
    std::printf("%-22s %9.2f%% %16.2f\n", cfg.name,
                100.0 * static_cast<double>(correct) /
                    static_cast<double>(total),
                us);
  }
  return 0;
}
