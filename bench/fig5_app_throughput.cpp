// Reproduces Figure 5: per-application throughput of the class-aware
// schedule (SPN,SPN,SPN) against the minimum, maximum, and average
// per-application throughput across all ten schedules.
//
// Paper reference: SPN beats the average for every application
// (SPECseis96 +24.9%, PostMark +48.1%, NetPIPE +4.3%) while individual
// maxima belong to other schedules (SSN for SPECseis96, PPN for NetPIPE)
// whose *total* throughput is nevertheless sub-optimal.
#include <algorithm>
#include <cstdio>
#include <map>

#include "sched/experiment.hpp"
#include "sched/policy.hpp"

int main() {
  using namespace appclass;

  std::printf("Figure 5 reproduction: per-application throughput\n\n");

  const auto types = sched::paper_job_types();
  const auto schedules =
      sched::enumerate_schedules({{'S', 3}, {'P', 3}, {'N', 3}}, 3, 3);
  const auto outcomes = sched::run_all_schedules(schedules, types, 2024);

  std::map<char, core::ApplicationClass> classes;
  for (const auto& t : types) classes[t.code] = t.expected_class;
  const auto& proposed = sched::pick_class_aware(schedules, classes);

  std::printf("%-14s %10s %10s %10s %10s %12s\n", "application", "MIN", "AVG",
              "MAX", "SPN", "SPN vs AVG");
  for (const auto& t : types) {
    double mn = 1e18, mx = 0.0, avg = 0.0, spn = 0.0;
    double weight_total = 0.0;
    std::string argmax;
    for (std::size_t i = 0; i < schedules.size(); ++i) {
      const double tput = outcomes[i].app_throughput_jobs_per_day(t.code);
      const auto w = static_cast<double>(schedules[i].multiplicity);
      mn = std::min(mn, tput);
      if (tput > mx) {
        mx = tput;
        argmax = sched::to_string(schedules[i].schedule);
      }
      avg += w * tput;
      weight_total += w;
      if (schedules[i].schedule == proposed.schedule) spn = tput;
    }
    avg /= weight_total;
    std::printf("%-14s %10.1f %10.1f %10.1f %10.1f %+11.2f%%   max at %s\n",
                t.name.c_str(), mn, avg, mx, spn,
                100.0 * (spn / avg - 1.0), argmax.c_str());
  }
  std::printf("\n(jobs/day per application = sum over its 3 instances of "
              "86400/elapsed)\n");
  return 0;
}
