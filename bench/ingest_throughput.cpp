// Streaming-ingest throughput: the zero-allocation announce→push→drain
// path (RCU bus + SnapshotRing + batched SoA classification) against a
// faithful re-enactment of the pre-refactor ingest (listener-copy
// announce, vector backlog swapped away per drain, per-snapshot
// transform chain returning fresh vectors). Written as BENCH_ingest.json
// for the CI gate (docs/performance.md explains the fields).
//
//   ingest_throughput [--quick] [--out=BENCH_ingest.json]
//
// Both paths classify the identical announced stream and must agree
// bit-for-bit — label stream and final per-node window state — or the
// bench aborts (APPCLASS_ENSURES). Steady-state allocations per drained
// snapshot are measured with a global operator-new counter; the CI gate
// pins them to exactly zero.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <new>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "common/assert.hpp"
#include "core/composition.hpp"
#include "core/online.hpp"
#include "core/pipeline.hpp"
#include "engine/fleet.hpp"
#include "engine/knn_kernel.hpp"
#include "linalg/random.hpp"
#include "monitor/bus.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter (same idiom as tests/engine_ingest_test.cpp):
// every operator-new form funnels through malloc with a relaxed count.
namespace {
std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align, size ? size : align) != 0)
    throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
// ---------------------------------------------------------------------------

namespace {

using namespace appclass;
using Clock = std::chrono::steady_clock;

std::uint64_t allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

double time_run(const std::function<void()>& fn) {
  const auto t0 = Clock::now();
  fn();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Compact synthetic training set (the online hot path is dominated by
/// the transform chain and buffering, not the k-NN sweep, so a small
/// training set keeps the bench focused on the ingest machinery).
metrics::Snapshot synthetic_snapshot(core::ApplicationClass cls,
                                     linalg::Rng& rng, metrics::SimTime t) {
  using metrics::MetricId;
  metrics::Snapshot s;
  s.time = t;
  s.node_ip = "10.0.0.1";
  const auto jitter = [&](double v, double sigma) {
    return std::max(0.0, v + rng.normal(0.0, sigma));
  };
  switch (cls) {
    case core::ApplicationClass::kIdle:
      s.set(MetricId::kCpuSystem, jitter(0.5, 0.2));
      break;
    case core::ApplicationClass::kCpu:
      s.set(MetricId::kCpuUser, jitter(95.0, 2.0));
      s.set(MetricId::kCpuSystem, jitter(3.0, 1.0));
      break;
    case core::ApplicationClass::kIo:
      s.set(MetricId::kCpuSystem, jitter(20.0, 3.0));
      s.set(MetricId::kCpuUser, jitter(8.0, 2.0));
      s.set(MetricId::kIoBi, jitter(5000.0, 500.0));
      s.set(MetricId::kIoBo, jitter(5000.0, 500.0));
      break;
    case core::ApplicationClass::kNetwork:
      s.set(MetricId::kCpuSystem, jitter(15.0, 3.0));
      s.set(MetricId::kBytesIn, jitter(1.0e6, 1.0e5));
      s.set(MetricId::kBytesOut, jitter(2.0e7, 2.0e6));
      break;
    case core::ApplicationClass::kMemory:
      s.set(MetricId::kCpuSystem, jitter(15.0, 3.0));
      s.set(MetricId::kSwapIn, jitter(2500.0, 300.0));
      s.set(MetricId::kSwapOut, jitter(2500.0, 300.0));
      s.set(MetricId::kIoBi, jitter(2500.0, 300.0));
      s.set(MetricId::kIoBo, jitter(2500.0, 300.0));
      break;
  }
  return s;
}

std::vector<core::LabeledPool> synthetic_training(std::size_t per_class) {
  std::vector<core::LabeledPool> out;
  for (std::size_t c = 0; c < core::kClassCount; ++c) {
    linalg::Rng rng(7 + c);
    metrics::DataPool pool("10.0.0.1");
    for (std::size_t i = 0; i < per_class; ++i)
      pool.add(synthetic_snapshot(core::class_from_index(c), rng,
                                  static_cast<metrics::SimTime>(5 * i)));
    out.push_back(
        core::LabeledPool{std::move(pool), core::class_from_index(c)});
  }
  return out;
}

/// The pre-refactor announce path: a mutex-guarded listener vector whose
/// announce() copies the list before invoking it, then bumps the
/// announcement counter (the idiom this PR's RCU bus replaced). Gauge
/// and counter costs are re-enacted on local atomics so the process's
/// real metric registry stays clean.
class LegacyBus {
 public:
  using Listener = std::function<void(const metrics::Snapshot&)>;

  void subscribe(Listener listener) {
    const std::lock_guard lock(mutex_);
    listeners_.push_back(std::move(listener));
  }

  void announce(const metrics::Snapshot& snapshot) {
    std::vector<Listener> current;
    {
      const std::lock_guard lock(mutex_);
      current.reserve(listeners_.size());
      for (const auto& l : listeners_) current.push_back(l);
    }
    for (const auto& listener : current) listener(snapshot);
    announcements_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::mutex mutex_;
  std::vector<Listener> listeners_;
  std::atomic<std::uint64_t> announcements_{0};
};

/// The pre-refactor OnlineClassifier ingest, line for line: deque
/// windows, and a fresh label vector copied out of the window and fully
/// recounted on every ingest for the rolling majority — the per-snapshot
/// allocation and recount the incremental LabelWindow class counts
/// replaced. Same arithmetic, so its final state must match the
/// optimized classifier's bit for bit (the bench's correctness guard).
/// Registry counters are re-enacted as local atomics.
class LegacyOnline {
 public:
  explicit LegacyOnline(core::OnlineOptions options) : options_(options) {}

  bool on_grid(const metrics::Snapshot& snapshot) const noexcept {
    return snapshot.time % options_.sampling_interval_s == 0;
  }

  void ingest(const metrics::Snapshot& snapshot,
              core::ApplicationClass label) {
    observed_.fetch_add(1, std::memory_order_relaxed);
    ++classified_;

    NodeState& node = nodes_.try_emplace(snapshot.node_ip).first->second;
    if (node.window.empty() && !node.stable_class)
      node.first_time = snapshot.time;
    node.window.emplace_back(snapshot.time, label);
    while (node.window.size() > options_.window) node.window.pop_front();
    refresh_window(node, snapshot.time);

    const bool abstain =
        options_.min_coverage > 0.0 && node.coverage < options_.min_coverage;
    if (abstain) {
      ++abstained_;
      abstained_counter_.fetch_add(1, std::memory_order_relaxed);
      node.candidate_streak = 0;
      return;
    }

    std::vector<core::ApplicationClass> window;
    window.reserve(node.window.size());
    for (const auto& [t, c] : node.window) window.push_back(c);
    const core::ApplicationClass dominant = core::majority_vote(window);
    if (!node.stable_class) {
      node.stable_class = dominant;
    } else if (dominant != *node.stable_class) {
      if (node.candidate_streak > 0 && node.candidate == dominant) {
        ++node.candidate_streak;
      } else {
        node.candidate = dominant;
        node.candidate_streak = 1;
      }
      if (node.candidate_streak >= options_.stability) {
        node.stable_class = dominant;
        node.candidate_streak = 0;
        changes_.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      node.candidate_streak = 0;
    }
  }

  /// State in OnlineStateImage form (untimed; comparison only).
  core::OnlineStateImage export_state() const {
    core::OnlineStateImage image;
    image.classified = classified_;
    image.abstained = abstained_;
    image.nodes.reserve(nodes_.size());
    for (const auto& [ip, node] : nodes_) {
      core::OnlineNodeImage n;
      n.node_ip = ip;
      n.window.assign(node.window.begin(), node.window.end());
      n.stable_class = node.stable_class;
      n.candidate = node.candidate;
      n.candidate_streak = node.candidate_streak;
      n.first_time = node.first_time;
      n.coverage = node.coverage;
      image.nodes.push_back(std::move(n));
    }
    return image;
  }

 private:
  struct NodeState {
    std::deque<std::pair<metrics::SimTime, core::ApplicationClass>> window;
    std::optional<core::ApplicationClass> stable_class;
    core::ApplicationClass candidate = core::ApplicationClass::kIdle;
    std::size_t candidate_streak = 0;
    metrics::SimTime first_time = 0;
    double coverage = 1.0;
  };

  void refresh_window(NodeState& node, metrics::SimTime now) {
    const metrics::SimTime horizon =
        static_cast<metrics::SimTime>(options_.window - 1) *
        options_.sampling_interval_s;
    while (!node.window.empty() && now - node.window.front().first > horizon)
      node.window.pop_front();
    const metrics::SimTime observed_span =
        std::clamp<metrics::SimTime>(now - node.first_time, 0, horizon);
    const std::size_t expected = static_cast<std::size_t>(
        observed_span / options_.sampling_interval_s + 1);
    node.coverage = static_cast<double>(node.window.size()) /
                    static_cast<double>(std::max<std::size_t>(expected, 1));
  }

  core::OnlineOptions options_;
  std::map<std::string, NodeState> nodes_;
  std::size_t classified_ = 0;
  std::size_t abstained_ = 0;
  std::atomic<std::uint64_t> observed_{0};
  std::atomic<std::uint64_t> abstained_counter_{0};
  std::atomic<std::uint64_t> changes_{0};
};

/// The pre-refactor FleetStream core, line for line: vector backlog with
/// per-push backlog/peak gauge updates, backlog handed away per drain,
/// per-snapshot classification through context()->for_each and the
/// pipeline's vector-returning classify(), labels materialized in a
/// fresh vector, serial ingest through the pre-refactor online
/// bookkeeping above. Gauges are local CAS-loop atomics — the exact
/// obs::Gauge::add arithmetic without polluting the registry.
class LegacyStream {
 public:
  LegacyStream(const core::ClassificationPipeline& pipeline,
               core::OnlineOptions options)
      : pipeline_(pipeline), online_(options) {}

  bool push(const metrics::Snapshot& snapshot) {
    if (!online_.on_grid(snapshot)) return true;
    const std::lock_guard lock(mutex_);
    pending_.push_back(snapshot);
    if (pending_.size() > backlog_peak_) {
      backlog_peak_ = pending_.size();
      peak_gauge_.store(static_cast<double>(backlog_peak_),
                        std::memory_order_relaxed);
    }
    gauge_add(backlog_gauge_, 1.0);
    return true;
  }

  std::size_t drain() {
    std::vector<metrics::Snapshot> batch;
    {
      const std::lock_guard lock(mutex_);
      batch.swap(pending_);
    }
    if (batch.empty()) return 0;
    gauge_add(backlog_gauge_, -static_cast<double>(batch.size()));
    std::vector<core::ApplicationClass> labels(batch.size());
    // Verbatim the pre-refactor classify(snapshot) body — counter bump,
    // vector-returning transform chain, span-query kernel with
    // thread-local scratch — dispatched through for_each as the old
    // drain did. (Today's classify() is itself allocation-free, so
    // calling it would not re-enact the old cost.)
    pipeline_.context()->for_each(batch.size(), [&](std::size_t i) {
      snapshots_counter_.fetch_add(1, std::memory_order_relaxed);
      const std::vector<double> projected =
          pipeline_.pca().transform(
              pipeline_.preprocessor().transform(batch[i]));
      thread_local engine::BlockedKnnIndex::Scratch scratch;
      const engine::BlockedKnnIndex& index = pipeline_.knn().index();
      labels[i] = index.vote(index.top_k(projected, scratch)).label;
    });
    for (std::size_t i = 0; i < batch.size(); ++i)
      online_.ingest(batch[i], labels[i]);
    return batch.size();
  }

  LegacyOnline& online() { return online_; }

 private:
  static void gauge_add(std::atomic<double>& gauge, double delta) {
    double cur = gauge.load(std::memory_order_relaxed);
    while (!gauge.compare_exchange_weak(cur, cur + delta,
                                        std::memory_order_relaxed)) {
    }
  }

  const core::ClassificationPipeline& pipeline_;
  LegacyOnline online_;
  std::mutex mutex_;
  std::vector<metrics::Snapshot> pending_;
  std::size_t backlog_peak_ = 0;
  std::atomic<double> backlog_gauge_{0.0};
  std::atomic<double> peak_gauge_{0.0};
  std::atomic<std::uint64_t> snapshots_counter_{0};
};

bool same_state(const core::OnlineStateImage& a,
                const core::OnlineStateImage& b) {
  if (a.classified != b.classified || a.abstained != b.abstained ||
      a.nodes.size() != b.nodes.size())
    return false;
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    const auto& x = a.nodes[i];
    const auto& y = b.nodes[i];
    if (x.node_ip != y.node_ip || x.window != y.window ||
        x.stable_class != y.stable_class || x.candidate != y.candidate ||
        x.candidate_streak != y.candidate_streak ||
        x.first_time != y.first_time || x.coverage != y.coverage)
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_ingest.json";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick")) {
      quick = true;
    } else if (!std::strncmp(argv[i], "--out=", 6)) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr,
                   "usage: ingest_throughput [--quick] [--out=file.json]\n");
      return 2;
    }
  }
  bench::dump_registry_at_exit();

  core::ClassificationPipeline pipeline;
  pipeline.train(synthetic_training(20));

  // A fleet of stable nodes, each announcing its own class on the grid.
  // Snapshots are pre-generated: the measured region is purely the
  // announce→push→drain→ingest machinery.
  const std::size_t kNodes = 16;
  const std::size_t kPerCycle = 8;  // grid steps (= drains) per cycle
  const std::size_t cycles = quick ? 400 : 4000;
  const std::size_t warm_cycles = 20;
  core::OnlineOptions options;
  // Gmond's default cadence: every node announces once per second while
  // the classification grid samples every sampling_interval_s (5s), so
  // 4 of every 5 announcements are off-grid and filtered at push. Both
  // paths carry this full-rate bus traffic; only on-grid snapshots are
  // drained and counted.
  const std::size_t kAnnouncesPerGrid =
      static_cast<std::size_t>(options.sampling_interval_s);

  std::vector<metrics::Snapshot> cycle_template;
  for (std::size_t s = 0; s < kPerCycle; ++s) {
    for (std::size_t node = 0; node < kNodes; ++node) {
      linalg::Rng rng(1000 + node * kPerCycle + s);
      metrics::Snapshot snapshot = synthetic_snapshot(
          core::class_from_index(node % core::kClassCount), rng, 0);
      snapshot.node_ip = "10.0." + std::to_string(node) + ".1";
      cycle_template.push_back(std::move(snapshot));
    }
  }
  const std::size_t per_drain = kNodes * kPerCycle;

  // Realistic bus fan-out: the announce stream feeds more than the
  // classifying fleet — a liveness watcher and a hot-I/O tap ride along
  // on both paths. The pre-RCU announce copies its whole listener list
  // per announcement, so every extra subscriber is an extra copied
  // std::function on that path; the RCU announce pins one immutable
  // list regardless of fan-out.
  std::atomic<metrics::SimTime> last_seen{0};
  std::atomic<std::uint64_t> io_hot{0};
  const auto liveness_tap = [&last_seen](const metrics::Snapshot& s) {
    last_seen.store(s.time, std::memory_order_relaxed);
  };
  const auto io_tap = [&io_hot](const metrics::Snapshot& s) {
    if (s.get(metrics::MetricId::kIoBi) > 1000.0)
      io_hot.fetch_add(1, std::memory_order_relaxed);
  };

  // --- Reference: the pre-refactor path. -----------------------------------
  // Drains run once per grid step on both paths: an online detector that
  // buffers several sampling periods before classifying would add that
  // many periods of behaviour-change latency.
  LegacyBus legacy_bus;
  LegacyStream legacy(pipeline, options);
  legacy_bus.subscribe(
      [&legacy](const metrics::Snapshot& s) { legacy.push(s); });
  legacy_bus.subscribe(liveness_tap);
  legacy_bus.subscribe(io_tap);
  metrics::SimTime legacy_t = 0;
  const auto legacy_cycle = [&] {
    std::size_t drained = 0;
    for (std::size_t s = 0; s < kPerCycle; ++s) {
      for (std::size_t sub = 0; sub < kAnnouncesPerGrid; ++sub) {
        for (std::size_t node = 0; node < kNodes; ++node) {
          metrics::Snapshot& snapshot = cycle_template[s * kNodes + node];
          snapshot.time = legacy_t + static_cast<metrics::SimTime>(sub);
          legacy_bus.announce(snapshot);
        }
      }
      legacy_t += options.sampling_interval_s;
      drained += legacy.drain();
    }
    return drained;
  };

  // --- New path: RCU bus + SnapshotRing + batched SoA drain. ----------------
  monitor::MetricBus bus;
  engine::FleetStream fleet(pipeline, options);
  fleet.attach(bus);
  bus.subscribe(liveness_tap);
  bus.subscribe(io_tap);
  metrics::SimTime fleet_t = 0;
  const auto fleet_cycle = [&] {
    std::size_t drained = 0;
    for (std::size_t s = 0; s < kPerCycle; ++s) {
      for (std::size_t sub = 0; sub < kAnnouncesPerGrid; ++sub) {
        for (std::size_t node = 0; node < kNodes; ++node) {
          metrics::Snapshot& snapshot = cycle_template[s * kNodes + node];
          snapshot.time = fleet_t + static_cast<metrics::SimTime>(sub);
          bus.announce(snapshot);
        }
      }
      fleet_t += options.sampling_interval_s;
      drained += fleet.drain();
    }
    return drained;
  };

  for (std::size_t i = 0; i < warm_cycles; ++i) legacy_cycle();
  for (std::size_t i = 0; i < warm_cycles; ++i) fleet_cycle();

  // Steady-state allocation probe: exact operator-new count across a
  // measured slice of warmed cycles (the reference path runs the same
  // cycles untimed so both classifiers keep seeing the identical stream
  // — cycle content is a pure function of the running clock).
  const std::size_t alloc_probe_cycles = 10;
  const std::uint64_t allocs_before = allocations();
  std::size_t probe_drained = 0;
  for (std::size_t i = 0; i < alloc_probe_cycles; ++i)
    probe_drained += fleet_cycle();
  const std::uint64_t alloc_delta = allocations() - allocs_before;
  const double allocs_per_snapshot =
      static_cast<double>(alloc_delta) / static_cast<double>(probe_drained);
  for (std::size_t i = 0; i < alloc_probe_cycles; ++i) legacy_cycle();

  // Paired interleaved timing: the two paths alternate in short blocks,
  // so a shared host's slow and fast phases land on both paths nearly
  // equally instead of skewing whichever side happened to run second.
  const std::size_t block_cycles = 50;
  std::size_t legacy_drained = 0;
  std::size_t fleet_drained = 0;
  double legacy_seconds = 0.0;
  double fleet_seconds = 0.0;
  for (std::size_t done = 0; done < cycles;) {
    const std::size_t block = std::min(block_cycles, cycles - done);
    legacy_seconds += time_run([&] {
      for (std::size_t i = 0; i < block; ++i) legacy_drained += legacy_cycle();
    });
    fleet_seconds += time_run([&] {
      for (std::size_t i = 0; i < block; ++i) fleet_drained += fleet_cycle();
    });
    done += block;
  }
  APPCLASS_ENSURES(legacy_drained == cycles * per_drain);
  APPCLASS_ENSURES(fleet_drained == cycles * per_drain);
  fleet.detach();

  // --- Bit-identity: both paths saw the same stream (same times, same
  // payloads) and must have produced identical per-node online state.
  APPCLASS_ENSURES(legacy_t == fleet_t);
  const bool bit_identical = same_state(legacy.online().export_state(),
                                        fleet.online().export_state());
  APPCLASS_ENSURES(bit_identical);

  const double legacy_ps = static_cast<double>(legacy_drained) /
                           legacy_seconds;
  const double fleet_ps = static_cast<double>(fleet_drained) / fleet_seconds;
  const double speedup = fleet_ps / legacy_ps;

  std::printf("%-22s %12s %10s %14s\n", "path", "snapshots", "seconds",
              "snapshots/sec");
  std::printf("%-22s %12zu %10.4f %14.0f\n", "reference(pre-ring)",
              legacy_drained, legacy_seconds, legacy_ps);
  std::printf("%-22s %12zu %10.4f %14.0f\n", "ring(zero-alloc)",
              fleet_drained, fleet_seconds, fleet_ps);
  std::printf("\ningest speedup over reference: %.2fx\n", speedup);
  std::printf("steady-state allocations per drained snapshot: %.4f "
              "(%llu allocations / %zu snapshots)\n",
              allocs_per_snapshot,
              static_cast<unsigned long long>(alloc_delta), probe_drained);
  std::printf("bit-identical online state: %s\n",
              bit_identical ? "yes" : "NO");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"ingest_throughput\",\n");
  std::fprintf(out, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(out, "  \"snapshots_per_sec_reference\": %.1f,\n", legacy_ps);
  std::fprintf(out, "  \"snapshots_per_sec_ring\": %.1f,\n", fleet_ps);
  std::fprintf(out, "  \"ingest_speedup\": %.3f,\n", speedup);
  std::fprintf(out, "  \"steady_state_allocs_per_snapshot\": %.4f,\n",
               allocs_per_snapshot);
  std::fprintf(out, "  \"steady_state_alloc_count\": %llu,\n",
               static_cast<unsigned long long>(alloc_delta));
  std::fprintf(out, "  \"alloc_probe_snapshots\": %zu,\n", probe_drained);
  std::fprintf(out, "  \"bit_identical\": %s\n", bit_identical ? "true"
                                                               : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
