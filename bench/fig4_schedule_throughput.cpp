// Reproduces Figure 4: system throughput of all ten schedules of
// {3x SPECseis96-small, 3x PostMark, 3x NetPIPE} onto three VMs, plus the
// paper's headline comparison: the class-aware schedule (SPN,SPN,SPN)
// versus the multiplicity-weighted average of a random schedule.
//
// Paper reference: the class-aware schedule is the best of the ten at
// ~1391 jobs/day, 22.11% above the weighted average.
#include <cstdio>
#include <map>

#include "sched/experiment.hpp"
#include "sched/policy.hpp"

int main() {
  using namespace appclass;

  std::printf("Figure 4 reproduction: system throughput of ten schedules\n");
  std::printf("jobs: 3x SPECseis96-small (S), 3x PostMark (P), "
              "3x NetPIPE (N); 3 per VM\n\n");

  const auto types = sched::paper_job_types();
  const auto schedules =
      sched::enumerate_schedules({{'S', 3}, {'P', 3}, {'N', 3}}, 3, 3);
  std::printf("enumerated %zu schedules\n\n", schedules.size());

  const auto outcomes = sched::run_all_schedules(schedules, types, 2024);

  std::map<char, core::ApplicationClass> classes;
  for (const auto& t : types) classes[t.code] = t.expected_class;
  const auto& proposed = sched::pick_class_aware(schedules, classes);

  std::printf("%-4s %-24s %6s %10s %14s\n", "id", "schedule", "weight",
              "makespan", "jobs/day");
  double best = 0.0;
  std::size_t best_idx = 0;
  for (std::size_t i = 0; i < schedules.size(); ++i) {
    const double tput = outcomes[i].system_throughput_jobs_per_day();
    if (tput > best) {
      best = tput;
      best_idx = i;
    }
    const bool is_proposed =
        schedules[i].schedule == proposed.schedule;
    std::printf("%-4zu %-24s %6llu %9llds %14.1f%s\n", i + 1,
                sched::to_string(schedules[i].schedule).c_str(),
                static_cast<unsigned long long>(schedules[i].multiplicity),
                static_cast<long long>(outcomes[i].makespan_seconds), tput,
                is_proposed ? "  <- class-aware pick" : "");
  }

  const double weighted_avg =
      sched::weighted_average_throughput(schedules, outcomes);
  double proposed_tput = 0.0;
  for (std::size_t i = 0; i < schedules.size(); ++i)
    if (schedules[i].schedule == proposed.schedule)
      proposed_tput = outcomes[i].system_throughput_jobs_per_day();

  std::printf("\nweighted average (random scheduler): %14.1f jobs/day\n",
              weighted_avg);
  std::printf("class-aware schedule %-20s %14.1f jobs/day\n",
              sched::to_string(proposed.schedule).c_str(), proposed_tput);
  std::printf("improvement over random:             %14.2f%%  "
              "(paper: +22.11%%)\n",
              100.0 * (proposed_tput / weighted_avg - 1.0));
  std::printf("class-aware pick is the best schedule: %s (best = %s)\n",
              schedules[best_idx].schedule == proposed.schedule ? "yes"
                                                                : "NO",
              sched::to_string(schedules[best_idx].schedule).c_str());
  return 0;
}
