// Ablation A2: number of principal components.
//
// The paper chooses its variance threshold so q = 2 components are kept.
// This harness sweeps q = 1..8, reporting captured variance, held-out
// snapshot accuracy, and mean reconstruction error — quantifying what the
// 8 -> 2 reduction costs.
#include <cmath>
#include <cstdio>

#include "core/pipeline.hpp"
#include "core/trainer.hpp"

int main() {
  using namespace appclass;

  const auto training = core::collect_training_pools();
  core::TrainingSetup heldout_setup;
  heldout_setup.seed = 555;
  const auto heldout = core::collect_training_pools(heldout_setup);

  std::printf("Ablation A2: held-out accuracy and reconstruction vs q "
              "(k = 3)\n\n");
  std::printf("%4s %18s %10s %22s\n", "q", "captured variance", "accuracy",
              "mean reconstruction err");
  for (std::size_t q = 1; q <= metrics::kExpertMetricCount; ++q) {
    core::PipelineOptions options;
    options.pca.forced_components = q;
    core::ClassificationPipeline pipeline(options);
    pipeline.train(training);

    std::size_t correct = 0, total = 0;
    double recon_err = 0.0;
    std::size_t recon_n = 0;
    for (const auto& lp : heldout) {
      const auto result = pipeline.classify(lp.pool);
      for (const auto cls : result.class_vector) {
        correct += (cls == lp.label) ? 1u : 0u;
        ++total;
      }
      const auto normalized = pipeline.preprocessor().transform(lp.pool);
      const auto projected = pipeline.pca().transform(normalized);
      const auto restored = pipeline.pca().inverse_transform(projected);
      for (std::size_t r = 0; r < normalized.rows(); ++r) {
        recon_err += linalg::euclidean_distance(normalized.row(r),
                                                restored.row(r));
        ++recon_n;
      }
    }
    std::printf("%4zu %17.1f%% %9.2f%% %22.4f\n", q,
                100.0 * pipeline.pca().captured_variance(),
                100.0 * static_cast<double>(correct) /
                    static_cast<double>(total),
                recon_err / static_cast<double>(recon_n));
  }
  return 0;
}
