// Scale-out extension of Figure 4: greedy class-aware placement vs random
// placement for a 12-job mixed batch on four VMs — the regime where the
// paper's exhaustive 10-schedule enumeration is no longer tractable
// (the same mix has hundreds of distinct schedules).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "sched/greedy.hpp"

int main() {
  using namespace appclass;
  using sched::PlacementProblem;

  PlacementProblem problem;
  for (int i = 0; i < 4; ++i) {
    problem.jobs.push_back({"specseis_small", core::ApplicationClass::kCpu});
    problem.jobs.push_back({"postmark", core::ApplicationClass::kIo});
    problem.jobs.push_back({"netpipe", core::ApplicationClass::kNetwork});
  }
  problem.vm_count = 4;
  problem.slots_per_vm = 3;

  std::printf("Greedy class-aware placement at scale: 12 jobs "
              "(4xS, 4xP, 4xN) on 4 VMs\n\n");

  const auto greedy = sched::greedy_place(problem);
  const auto greedy_elapsed = sched::simulate_placement(problem, greedy, 99);
  const double greedy_tput = sched::placement_throughput(greedy_elapsed);
  std::printf("greedy placement (overlap penalty %d): %.0f jobs/day\n",
              sched::overlap_penalty(problem, greedy), greedy_tput);

  // Sample the random-placement distribution.
  constexpr int kDraws = 25;
  std::vector<double> random_tputs;
  linalg::Rng rng(4242);
  for (int d = 0; d < kDraws; ++d) {
    const auto placement = sched::random_place(problem, rng);
    const auto elapsed = sched::simulate_placement(
        problem, placement, 1000 + static_cast<std::uint64_t>(d));
    random_tputs.push_back(sched::placement_throughput(elapsed));
  }
  std::sort(random_tputs.begin(), random_tputs.end());
  double mean = 0.0;
  for (const double t : random_tputs) mean += t;
  mean /= kDraws;

  std::printf("random placement over %d draws: min %.0f | median %.0f | "
              "mean %.0f | max %.0f jobs/day\n",
              kDraws, random_tputs.front(), random_tputs[kDraws / 2], mean,
              random_tputs.back());
  std::printf("\ngreedy vs random mean: %+.1f%%\n",
              100.0 * (greedy_tput / mean - 1.0));
  std::printf("greedy beats %d/%d random draws\n",
              static_cast<int>(std::count_if(
                  random_tputs.begin(), random_tputs.end(),
                  [&](double t) { return greedy_tput > t; })),
              kDraws);
  return 0;
}
