// Fleet observability plane cost + end-to-end latency, written as
// BENCH_fleetobs.json for the CI artifact:
//
//   fleet_obs [--quick] [--out=BENCH_fleetobs.json]
//
// Three sections:
//
//   federation  what one coordinator scrape round costs: parse each
//               worker's Prometheus text, federate the snapshots, and
//               re-export the merged registry. This runs every
//               --fleet-scrape-every interval, so it must be cheap
//               relative to the period.
//   e2e         announce -> durable-ack and announce -> ingested
//               latency over a real loopback WorkerLink/IngestListener
//               pair, read back from the registry histograms the serve
//               path feeds (the /slo freshness SLI's raw distribution).
//   identity    the delivered payload stream is bit-identical with
//               tracing on and off — the observability plane is
//               observational by contract, and this is the guard.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "dist/ingest.hpp"
#include "dist/link.hpp"
#include "metrics/snapshot.hpp"
#include "monitor/wire.hpp"
#include "obs/export.hpp"
#include "obs/federate.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace appclass;
using Clock = std::chrono::steady_clock;

/// Synthetic per-worker registry shaped like a real worker's /metrics:
/// a few dozen counters, per-stage histograms, and a handful of gauges.
obs::RegistrySnapshot synthetic_worker_snapshot(int worker) {
  obs::MetricsRegistry reg;
  for (int c = 0; c < 32; ++c) {
    reg.counter("appclass_bench_counter_" + std::to_string(c),
                {{"shard", std::to_string(worker)}})
        .inc(static_cast<std::uint64_t>(1000 + 37 * c + worker));
  }
  for (int g = 0; g < 8; ++g) {
    reg.gauge("appclass_bench_gauge_" + std::to_string(g))
        .set(0.5 * g + 0.25 * worker);
  }
  for (int h = 0; h < 8; ++h) {
    obs::Histogram& hist = reg.histogram(
        "appclass_bench_stage_" + std::to_string(h) + "_seconds");
    for (int i = 0; i < 64; ++i)
      hist.observe(1e-6 * static_cast<double>(1 + i * (h + 1)));
  }
  return reg.snapshot();
}

std::uint64_t fnv1a64(std::uint64_t h, const std::uint8_t* data,
                      std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Quantile estimate from cumulative-free bucket counts (same method as
/// the obs table exporter): upper bound of the bucket where the
/// cumulative count crosses q * total.
double bucket_quantile(const obs::HistogramSnapshot& h, double q) {
  if (h.count == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(h.count) + 0.5);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
    cumulative += h.bucket_counts[i];
    if (cumulative >= target)
      return i < h.bounds.size() ? h.bounds[i] : h.bounds.back();
  }
  return h.bounds.back();
}

metrics::Snapshot grid_snapshot(std::size_t i) {
  metrics::Snapshot s;
  s.time = static_cast<metrics::SimTime>(i * 5);  // sampling grid
  s.node_ip = "10.0.0." + std::to_string(1 + i % 8);
  s.set(metrics::MetricId::kCpuUser, 50.0 + static_cast<double>(i % 40));
  s.set(metrics::MetricId::kBytesIn, 1e5 + 13.0 * static_cast<double>(i));
  return s;
}

/// One loopback ingest pass: listener + link, `frames` sends + flush.
/// Returns the FNV hash of the delivered payload byte stream.
std::uint64_t run_ingest_pass(std::size_t frames) {
  std::uint64_t hash = 14695981039346656037ull;
  dist::IngestListener listener(
      {},
      [&hash](const metrics::Snapshot& s) {
        const auto bytes = monitor::encode_packet(s);
        hash = fnv1a64(hash, bytes.data(), bytes.size());
        return true;
      },
      0);
  APPCLASS_ENSURES(listener.start());
  {
    dist::WorkerLink link("127.0.0.1", listener.port());
    for (std::size_t i = 0; i < frames; ++i) {
      obs::TraceSpan span("dist_announce");
      APPCLASS_ENSURES(link.send(grid_snapshot(i), span.context()));
    }
    APPCLASS_ENSURES(link.flush());
  }
  listener.stop();
  return hash;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_fleetobs.json";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick")) {
      quick = true;
    } else if (!std::strncmp(argv[i], "--out=", 6)) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: fleet_obs [--quick] [--out=file.json]\n");
      return 2;
    }
  }

  // --- federation: one coordinator scrape round, end to end -------------
  constexpr int kWorkers = 4;
  std::vector<std::string> worker_texts;
  for (int w = 0; w < kWorkers; ++w)
    worker_texts.push_back(obs::to_prometheus(synthetic_worker_snapshot(w)));
  std::size_t scrape_bytes = 0;
  for (const auto& text : worker_texts) scrape_bytes += text.size();

  const int rounds = quick ? 200 : 2000;
  obs::BoundedLabelSet worker_labels(kWorkers + 1);
  std::size_t merged_bytes = 0;
  std::size_t merged_series = 0;
  const auto fed_t0 = Clock::now();
  for (int r = 0; r < rounds; ++r) {
    std::vector<obs::FederationPart> parts;
    parts.reserve(worker_texts.size());
    for (std::size_t w = 0; w < worker_texts.size(); ++w) {
      auto parsed = obs::parse_prometheus(worker_texts[w]);
      APPCLASS_ENSURES(parsed.has_value());
      parts.push_back({std::to_string(w), std::move(*parsed)});
    }
    const obs::FederationResult merged =
        obs::federate_snapshots(parts, &worker_labels);
    APPCLASS_ENSURES(merged.dropped_series == 0);
    const std::string text = obs::to_prometheus(merged.merged);
    merged_bytes = text.size();
    merged_series = merged.merged.counters.size() +
                    merged.merged.gauges.size() +
                    merged.merged.histograms.size();
  }
  const double fed_seconds =
      std::chrono::duration<double>(Clock::now() - fed_t0).count();
  const double fed_us_per_round = 1e6 * fed_seconds / rounds;

  std::printf("federation: %d workers, %zu scrape bytes -> %zu merged "
              "series (%zu bytes): %.1f us/round over %d rounds\n",
              kWorkers, scrape_bytes, merged_series, merged_bytes,
              fed_us_per_round, rounds);

  // --- e2e: loopback announce -> durable-ack / -> ingested --------------
  const std::size_t frames = quick ? 2000 : 20000;
  obs::set_tracing_enabled(false);
  const std::uint64_t hash_off = run_ingest_pass(frames);
  const auto after_off = obs::MetricsRegistry::global().snapshot();
  const auto* durable =
      after_off.find_histogram("appclass_e2e_durable_ack_seconds");
  const auto* ingested =
      after_off.find_histogram("appclass_e2e_ingest_seconds");
  APPCLASS_ENSURES(durable != nullptr && durable->count >= frames);
  APPCLASS_ENSURES(ingested != nullptr && ingested->count >= frames);

  const auto print_hist = [](const char* name,
                             const obs::HistogramSnapshot& h) {
    std::printf("%-28s count %8llu  mean %8.1f us  p50 %8.1f us  "
                "p99 %8.1f us\n",
                name, static_cast<unsigned long long>(h.count),
                1e6 * h.mean(), 1e6 * bucket_quantile(h, 0.50),
                1e6 * bucket_quantile(h, 0.99));
  };
  print_hist("announce->durable-ack", *durable);
  print_hist("announce->ingested", *ingested);

  // --- identity: tracing must not change the delivered stream -----------
  obs::set_tracing_enabled(true);
  const std::uint64_t hash_on = run_ingest_pass(frames);
  obs::set_tracing_enabled(false);
  const bool bit_identical = hash_on == hash_off;
  APPCLASS_ENSURES(bit_identical);
  std::printf("payload stream tracing on/off: %s (fnv %016llx)\n",
              bit_identical ? "bit-identical" : "DIVERGED",
              static_cast<unsigned long long>(hash_off));

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"fleet_obs\",\n");
  std::fprintf(out, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(out, "  \"federation\": {\"workers\": %d, \"rounds\": %d, "
                    "\"scrape_bytes\": %zu, \"merged_series\": %zu, "
                    "\"merged_bytes\": %zu, \"us_per_round\": %.2f},\n",
               kWorkers, rounds, scrape_bytes, merged_series, merged_bytes,
               fed_us_per_round);
  const auto hist_json = [&](const char* key,
                             const obs::HistogramSnapshot& h,
                             const char* tail) {
    std::fprintf(out,
                 "  \"%s\": {\"count\": %llu, \"mean_us\": %.2f, "
                 "\"p50_us\": %.2f, \"p99_us\": %.2f},%s\n",
                 key, static_cast<unsigned long long>(h.count),
                 1e6 * h.mean(), 1e6 * bucket_quantile(h, 0.50),
                 1e6 * bucket_quantile(h, 0.99), tail);
  };
  hist_json("e2e_durable_ack", *durable, "");
  hist_json("e2e_ingest", *ingested, "");
  std::fprintf(out, "  \"frames\": %zu,\n", frames);
  std::fprintf(out, "  \"bit_identical\": %s\n}\n",
               bit_identical ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
