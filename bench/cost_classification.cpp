// Reproduces section 5.3: classification cost per sample.
//
// The paper profiles an 8000-snapshot pool (SPECseis96 medium, d = 5 s):
// 72 s for the performance filter to extract the target VM's data and 50 s
// for the classification center to train, select features, and classify —
// 15 ms per sample end to end on a Pentium III 750 (Perl + Matlab). This
// harness measures the same stages of the C++ pipeline with
// google-benchmark; expect microseconds per sample, which only reinforces
// the paper's conclusion that online training is feasible.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "core/trainer.hpp"
#include "monitor/profiler.hpp"

namespace {

using namespace appclass;

/// Builds an ~8000-snapshot subnet capture (two nodes announcing) and the
/// target pool, mirroring the paper's measurement setup.
struct CostFixture {
  std::vector<metrics::Snapshot> raw;     // subnet capture (all nodes)
  metrics::DataPool pool;                 // extracted target pool
  std::vector<core::LabeledPool> training;
  core::ClassificationPipeline pipeline;

  CostFixture() {
    training = core::collect_training_pools();
    pipeline.train(training);

    // Synthesize the 8000-sample capture from repeated training snapshots
    // of two interleaved nodes (the filter's cost depends only on volume).
    const auto& base = training[2].pool;  // the CPU pool (SPECseis)
    std::size_t i = 0;
    while (raw.size() < 16000) {
      metrics::Snapshot s = base[i % base.size()];
      s.time = static_cast<metrics::SimTime>(raw.size());
      s.node_ip = (raw.size() % 2 == 0) ? "10.0.0.1" : "10.0.0.9";
      raw.push_back(std::move(s));
      ++i;
    }
    pool = monitor::PerformanceFilter::extract(raw, "10.0.0.1");
  }
};

CostFixture& fixture() {
  static CostFixture f;
  return f;
}

void BM_FilterExtract(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    auto pool = monitor::PerformanceFilter::extract(f.raw, "10.0.0.1");
    benchmark::DoNotOptimize(pool);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.raw.size()));
}
BENCHMARK(BM_FilterExtract)->Unit(benchmark::kMillisecond);

void BM_TrainPipeline(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    core::ClassificationPipeline pipeline;
    pipeline.train(f.training);
    benchmark::DoNotOptimize(pipeline);
  }
}
BENCHMARK(BM_TrainPipeline)->Unit(benchmark::kMillisecond);

void BM_ClassifyPool8000(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    auto result = f.pipeline.classify(f.pool);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.pool.size()));
}
BENCHMARK(BM_ClassifyPool8000)->Unit(benchmark::kMillisecond);

void BM_ClassifySingleSnapshot(benchmark::State& state) {
  auto& f = fixture();
  const metrics::Snapshot& s = f.pool[0];
  for (auto _ : state) {
    auto cls = f.pipeline.classify(s);
    benchmark::DoNotOptimize(cls);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClassifySingleSnapshot);

void BM_PcaTransformPerSample(benchmark::State& state) {
  auto& f = fixture();
  const auto normalized = f.pipeline.preprocessor().transform(f.pool);
  for (auto _ : state) {
    auto projected = f.pipeline.pca().transform(normalized);
    benchmark::DoNotOptimize(projected);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(normalized.rows()));
}
BENCHMARK(BM_PcaTransformPerSample)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Pull in the bench_util registry dumper so this binary's exit carries
  // the stage-timing snapshot alongside the google-benchmark results.
  appclass::bench::dump_registry_at_exit();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
