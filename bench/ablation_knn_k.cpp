// Ablation A1: sensitivity of snapshot classification accuracy to k.
//
// The paper fixes k = 3 ("an odd number"). This harness trains on the
// canonical five-class runs and evaluates snapshot-level accuracy on a
// *held-out* second set of runs (fresh seeds) whose ground-truth labels
// are the runs' designated classes, sweeping k in {1, 3, 5, 7, 9, 15}.
#include <cstdio>
#include <vector>

#include "core/pipeline.hpp"
#include "core/trainer.hpp"

int main() {
  using namespace appclass;

  core::TrainingSetup train_setup;
  const auto training = core::collect_training_pools(train_setup);

  core::TrainingSetup heldout_setup;
  heldout_setup.seed = 555;  // different simulated runs, same apps
  const auto heldout = core::collect_training_pools(heldout_setup);

  std::printf("Ablation A1: held-out snapshot accuracy vs k (q = 2)\n\n");
  std::printf("%4s %10s %12s\n", "k", "accuracy", "errors");
  for (std::size_t k : {1u, 3u, 5u, 7u, 9u, 15u}) {
    core::PipelineOptions options;
    options.knn.k = k;
    core::ClassificationPipeline pipeline(options);
    pipeline.train(training);

    std::size_t correct = 0, total = 0;
    for (const auto& lp : heldout) {
      const auto result = pipeline.classify(lp.pool);
      for (const auto cls : result.class_vector) {
        correct += (cls == lp.label) ? 1u : 0u;
        ++total;
      }
    }
    std::printf("%4zu %9.2f%% %8zu/%zu\n", k,
                100.0 * static_cast<double>(correct) /
                    static_cast<double>(total),
                total - correct, total);
  }
  std::printf("\n(ground truth = the designated class of each held-out "
              "canonical run)\n");
  return 0;
}
