// Reproduces Figure 3: PCA cluster diagrams.
//
//   (a) training data — five labelled clusters in (PC1, PC2)
//   (b) SimpleScalar  — CPU-intensive test run
//   (c) Autobench     — network-intensive test run
//   (d) VMD           — interactive mix (idle / IO / network)
//
// For each diagram the harness prints per-class centroids, spreads, and
// counts, plus a coarse ASCII scatter so the cluster geometry is visible
// in a terminal. The raw (PC1, PC2) point lists are written to
// fig3_<name>.csv next to the binary for external plotting.
#include <array>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/trainer.hpp"

namespace {

using appclass::core::ApplicationClass;
using appclass::core::kClassCount;

struct LabelledPoints {
  std::vector<std::array<double, 2>> points;
  std::vector<ApplicationClass> labels;
};

void summarize(const std::string& title, const LabelledPoints& lp) {
  std::printf("\n--- %s (%zu snapshots) ---\n", title.c_str(),
              lp.points.size());
  for (std::size_t c = 0; c < kClassCount; ++c) {
    double m0 = 0, m1 = 0, n = 0;
    for (std::size_t i = 0; i < lp.points.size(); ++i)
      if (appclass::core::index_of(lp.labels[i]) == c) {
        m0 += lp.points[i][0];
        m1 += lp.points[i][1];
        n += 1;
      }
    if (n == 0) continue;
    m0 /= n;
    m1 /= n;
    double s0 = 0, s1 = 0;
    for (std::size_t i = 0; i < lp.points.size(); ++i)
      if (appclass::core::index_of(lp.labels[i]) == c) {
        s0 += (lp.points[i][0] - m0) * (lp.points[i][0] - m0);
        s1 += (lp.points[i][1] - m1) * (lp.points[i][1] - m1);
      }
    std::printf("  %-8s n=%5.0f  centroid=(%7.3f, %7.3f)  "
                "spread=(%6.3f, %6.3f)\n",
                std::string(appclass::core::to_string(
                                appclass::core::class_from_index(c)))
                    .c_str(),
                n, m0, m1, std::sqrt(s0 / n), std::sqrt(s1 / n));
  }

  // ASCII scatter: 56 x 20 grid over the data's bounding box.
  constexpr int W = 56, H = 20;
  double lo0 = 1e18, hi0 = -1e18, lo1 = 1e18, hi1 = -1e18;
  for (const auto& p : lp.points) {
    lo0 = std::min(lo0, p[0]);
    hi0 = std::max(hi0, p[0]);
    lo1 = std::min(lo1, p[1]);
    hi1 = std::max(hi1, p[1]);
  }
  if (hi0 <= lo0 || hi1 <= lo1) return;
  std::vector<std::string> grid(H, std::string(W, '.'));
  const char glyph[kClassCount] = {'-', 'o', '+', 'x', '#'};  // idle io cpu net mem
  for (std::size_t i = 0; i < lp.points.size(); ++i) {
    const int cx = std::min(W - 1, static_cast<int>((lp.points[i][0] - lo0) /
                                                    (hi0 - lo0) * (W - 1)));
    const int cy = std::min(H - 1, static_cast<int>((lp.points[i][1] - lo1) /
                                                    (hi1 - lo1) * (H - 1)));
    grid[static_cast<std::size_t>(H - 1 - cy)][static_cast<std::size_t>(cx)] =
        glyph[appclass::core::index_of(lp.labels[i])];
  }
  std::printf("  PC2 ^  [- idle, o io, + cpu, x net, # mem]\n");
  for (const auto& row : grid) std::printf("      |%s\n", row.c_str());
  std::printf("      +%s> PC1\n", std::string(W, '-').c_str());
}

void write_csv(const std::string& name, const LabelledPoints& lp) {
  std::ofstream out("fig3_" + name + ".csv");
  out << "pc1,pc2,class\n";
  for (std::size_t i = 0; i < lp.points.size(); ++i)
    out << lp.points[i][0] << ',' << lp.points[i][1] << ','
        << appclass::core::to_string(lp.labels[i]) << '\n';
}

}  // namespace

int main() {
  using namespace appclass;

  std::printf("Figure 3 reproduction: PCA clustering diagrams\n");

  // (a) training data with its ground-truth labels.
  const auto pools = core::collect_training_pools();
  core::ClassificationPipeline pipeline;
  pipeline.train(pools);

  LabelledPoints train;
  for (const auto& lp : pools) {
    const auto proj = pipeline.project(lp.pool);
    for (std::size_t r = 0; r < proj.rows(); ++r) {
      train.points.push_back({proj(r, 0), proj(r, 1)});
      train.labels.push_back(lp.label);
    }
  }
  const auto ev = pipeline.pca().explained_variance_ratio();
  std::printf("PCA: q=%zu components, explained variance %.1f%% + %.1f%%\n",
              pipeline.pca().components(), 100.0 * ev[0], 100.0 * ev[1]);
  summarize("(a) training data", train);
  write_csv("training", train);

  // (b)-(d) test applications, labelled by the classifier itself.
  const std::array<std::pair<const char*, const char*>, 3> tests = {
      {{"(b) SimpleScalar", "simplescalar"},
       {"(c) Autobench", "autobench"},
       {"(d) VMD", "vmd"}}};
  std::uint64_t seed = 4242;
  for (const auto& [title, app] : tests) {
    const auto run = bench::profile_standalone(app, 256.0, seed++);
    const auto result = pipeline.classify(run.pool);
    LabelledPoints lp;
    for (std::size_t r = 0; r < result.projected.rows(); ++r) {
      lp.points.push_back({result.projected(r, 0), result.projected(r, 1)});
      lp.labels.push_back(result.class_vector[r]);
    }
    summarize(title, lp);
    write_csv(app, lp);
  }
  return 0;
}
