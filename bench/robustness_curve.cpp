// Robustness curve: classification accuracy vs monitoring-fault intensity.
//
// Sweeps every fault kind (drop, blackout, corruption, duplication, stale
// replay, per-sensor dropout, and the mixed drop+corrupt case) across a
// rate grid over the five canonical workloads, with the snapshot
// sanitizer both on and off, and prints the CSV accuracy-degradation
// curve. This is the quantitative form of the paper's implicit assumption
// that Ganglia's lossy transport is good enough for classification — and
// the regression target that keeps it true (docs/robustness.md).
#include <cstdio>

#include "bench_util.hpp"
#include "core/robustness.hpp"

int main() {
  using namespace appclass;
  bench::dump_registry_at_exit();

  const core::ClassificationPipeline& pipeline = bench::trained_pipeline();
  core::ChaosOptions options;
  const auto runs = core::record_canonical_runs(options);

  std::fprintf(stderr,
               "robustness_curve: %zu workloads x %zu kinds x %zu rates, "
               "sanitizer on+off\n",
               runs.size(), core::all_fault_kinds().size(),
               options.rates.size());

  options.sanitize = true;
  auto cells = core::run_chaos_sweep(pipeline, runs, options);
  options.sanitize = false;
  const auto raw_cells = core::run_chaos_sweep(pipeline, runs, options);
  cells.insert(cells.end(), raw_cells.begin(), raw_cells.end());

  std::fputs(core::chaos_csv(cells).c_str(), stdout);

  std::size_t flipped_sanitized = 0, flipped_raw = 0;
  for (const auto& c : cells)
    if (!c.majority_ok) (c.sanitized ? flipped_sanitized : flipped_raw)++;
  std::fprintf(stderr,
               "majority flips: %zu with sanitizer, %zu without (of %zu "
               "cells each)\n",
               flipped_sanitized, flipped_raw, cells.size() / 2);
  return 0;
}
