// Shared helpers for the experiment-reproduction harnesses in bench/.
#pragma once

#include <cstdint>
#include <string>

#include "core/pipeline.hpp"
#include "core/trainer.hpp"
#include "monitor/harness.hpp"

namespace appclass::bench {

/// Profiles one standalone run of catalog application `app_name` on the
/// paper's testbed (target VM1 with `vm1_ram_mb`; VM4 available as the
/// network peer) and returns the captured pool + timing.
monitor::ProfiledRun profile_standalone(const std::string& app_name,
                                        double vm1_ram_mb = 256.0,
                                        std::uint64_t seed = 1234,
                                        int sampling_interval_s = 5);

/// Trains the paper's classifier once (memoized across calls within the
/// process) and returns a reference to it.
const core::ClassificationPipeline& trained_pipeline();

/// Prints "name  #samples  idle%  io%  cpu%  net%  mem%  class" rows.
void print_composition_row(const std::string& label,
                           const core::ClassificationResult& result);

void print_composition_header();

/// Every bench binary linking bench_util dumps the obs metrics registry
/// (stage timings, counters) to stderr when the process exits, so each
/// benchmark's results carry their observability snapshot. Controlled by
/// APPCLASS_BENCH_STATS: unset or "table" = summary table, "json" = one
/// JSON object, "prom" = Prometheus text, "0"/"off" = disabled.
void dump_registry_at_exit();

}  // namespace appclass::bench
