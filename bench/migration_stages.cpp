// Stage-aware migration experiment (extension of the paper's section-1
// motivation: match each execution stage to the node whose contended
// resource it avoids).
//
// Cluster: two identical hosts. Host 1's CPUs are saturated by two
// CPU-hog VMs; host 2's disk is saturated by two disk-hog VMs. A staged
// scientific application (download -> [compute -> checkpoint] x N ->
// upload) runs in a dedicated VM on each host, or under a stage-aware
// migrator that watches the online classifier and moves the app's VM
// placement when its behaviour class changes: compute stages to the
// idle-CPU host, I/O stages to the idle-disk host.
#include <cstdio>
#include <memory>

#include "core/online.hpp"
#include "core/trainer.hpp"
#include "monitor/harness.hpp"
#include "sched/migration.hpp"
#include "sim/testbed.hpp"
#include "workloads/phased_app.hpp"

namespace {

using namespace appclass;
using workloads::Phase;

std::unique_ptr<sim::WorkloadModel> make_staged_app() {
  sim::MemoryProfile mem;
  mem.working_set_mb = 50.0;

  Phase download;
  download.name = "download";
  download.work_units = 60.0;
  download.nominal_rate = 1.0;
  download.cpu_per_unit = 0.1;
  download.cpu_user_fraction = 0.3;
  download.net_in_per_unit = 12.0e6;
  download.mem = mem;

  Phase compute;
  compute.name = "compute";
  compute.work_units = 170.0;
  compute.nominal_rate = 1.0;
  compute.cpu_per_unit = 1.0;
  compute.cpu_user_fraction = 0.97;
  compute.speed_sensitivity = 1.0;
  compute.mem = mem;

  Phase checkpoint;
  checkpoint.name = "checkpoint";
  checkpoint.work_units = 130.0;
  checkpoint.nominal_rate = 1.0;
  checkpoint.cpu_per_unit = 0.15;
  checkpoint.cpu_user_fraction = 0.3;
  checkpoint.read_blocks_per_unit = 2200.0;   // verify pass
  checkpoint.write_blocks_per_unit = 5200.0;
  checkpoint.mem = mem;

  Phase upload;
  upload.name = "upload";
  upload.work_units = 50.0;
  upload.nominal_rate = 1.0;
  upload.cpu_per_unit = 0.15;
  upload.cpu_user_fraction = 0.3;
  upload.net_out_per_unit = 11.0e6;
  upload.mem = mem;

  return std::make_unique<workloads::PhasedApp>(
      "staged-app",
      std::vector<Phase>{download, compute, checkpoint, upload},
      /*iterations=*/2);
}

std::unique_ptr<sim::WorkloadModel> make_cpu_hog() {
  Phase spin;
  spin.name = "spin";
  spin.work_units = 50000.0;
  spin.nominal_rate = 1.0;
  spin.cpu_per_unit = 1.0;
  spin.rate_jitter = 0.02;
  return std::make_unique<workloads::PhasedApp>("cpu-hog",
                                                std::vector<Phase>{spin});
}

std::unique_ptr<sim::WorkloadModel> make_disk_hog() {
  Phase churn;
  churn.name = "churn";
  churn.work_units = 50000.0;
  churn.nominal_rate = 1.0;
  churn.cpu_per_unit = 0.2;
  churn.cpu_user_fraction = 0.3;
  churn.read_blocks_per_unit = 4200.0;
  churn.write_blocks_per_unit = 4600.0;
  churn.rate_jitter = 0.1;
  return std::make_unique<workloads::PhasedApp>("disk-hog",
                                                std::vector<Phase>{churn});
}

struct Cluster {
  std::unique_ptr<sim::Engine> engine;
  sim::VmId vm_on_cpu_hogged_host = 0;  // idle disk
  sim::VmId vm_on_disk_hogged_host = 0; // idle CPU
};

Cluster make_cluster(std::uint64_t seed) {
  Cluster c;
  c.engine = std::make_unique<sim::Engine>(seed);
  const auto h1 = c.engine->add_host(sim::make_host_a_spec());
  const auto h2 = c.engine->add_host(sim::make_host_a_spec());
  // Two CPU-hog VMs saturate host 1's two cores.
  for (int i = 0; i < 2; ++i) {
    const auto hog = c.engine->add_vm(
        h1, sim::make_vm_spec("cpuhog" + std::to_string(i),
                              "10.0.2." + std::to_string(10 + i)));
    c.engine->submit(hog, make_cpu_hog());
  }
  // Two disk-hog VMs saturate host 2's disk.
  for (int i = 0; i < 2; ++i) {
    const auto hog = c.engine->add_vm(
        h2, sim::make_vm_spec("diskhog" + std::to_string(i),
                              "10.0.2." + std::to_string(20 + i)));
    c.engine->submit(hog, make_disk_hog());
  }
  c.vm_on_cpu_hogged_host =
      c.engine->add_vm(h1, sim::make_vm_spec("vmA", "10.0.2.1"));
  c.vm_on_disk_hogged_host =
      c.engine->add_vm(h2, sim::make_vm_spec("vmB", "10.0.2.2"));
  return c;
}

}  // namespace

int main() {
  const core::ClassificationPipeline pipeline = core::make_trained_pipeline();

  const auto run = [&](bool migrate, bool start_on_disk_hogged_host,
                       std::uint64_t seed, int* migrations,
                       sim::SimTime* downtime) -> sim::SimTime {
    Cluster c = make_cluster(seed);
    monitor::ClusterMonitor mon(*c.engine);
    const sim::VmId start_vm = start_on_disk_hogged_host
                                   ? c.vm_on_disk_hogged_host
                                   : c.vm_on_cpu_hogged_host;
    const auto app = c.engine->submit(start_vm, make_staged_app());

    core::OnlineClassifier classifier(
        pipeline,
        {.sampling_interval_s = 5, .window = 4, .stability = 2});
    monitor::SubscriptionId sub = mon.bus().subscribe(
        [&](const metrics::Snapshot& s) { classifier.observe(s); });

    std::unique_ptr<sched::StageAwareMigrator> migrator;
    if (migrate) {
      sched::StagePreferences prefs;
      // Compute avoids the CPU-hogged host; I/O avoids the disk-hogged one.
      prefs.prefer(core::ApplicationClass::kCpu, c.vm_on_disk_hogged_host);
      prefs.prefer(core::ApplicationClass::kIo, c.vm_on_cpu_hogged_host);
      prefs.prefer(core::ApplicationClass::kMemory,
                   c.vm_on_cpu_hogged_host);
      migrator = std::make_unique<sched::StageAwareMigrator>(
          *c.engine, classifier, app, prefs);
    }

    while (c.engine->instance(app).state != sim::InstanceState::kFinished &&
           c.engine->now() < 100000)
      c.engine->step();
    mon.bus().unsubscribe(sub);
    if (migrations && migrator) *migrations = migrator->migrations();
    if (downtime && migrator) *downtime = migrator->total_downtime();
    return c.engine->instance(app).elapsed();
  };

  std::printf("Stage-aware migration vs static placement "
              "(staged app: 2x[compute+checkpoint] + network I/O)\n\n");
  const sim::SimTime static_cpu_hogged =
      run(false, false, 11, nullptr, nullptr);
  std::printf("static on CPU-hogged host (compute contends):  %5lld s\n",
              static_cast<long long>(static_cpu_hogged));
  const sim::SimTime static_disk_hogged =
      run(false, true, 11, nullptr, nullptr);
  std::printf("static on disk-hogged host (I/O contends):     %5lld s\n",
              static_cast<long long>(static_disk_hogged));
  int migrations = 0;
  sim::SimTime downtime = 0;
  const sim::SimTime migrated = run(true, true, 11, &migrations, &downtime);
  std::printf("stage-aware migration:                         %5lld s "
              "(%d migrations, %lld s checkpoint downtime)\n",
              static_cast<long long>(migrated), migrations,
              static_cast<long long>(downtime));

  const auto best_static = std::min(static_cpu_hogged, static_disk_hogged);
  std::printf("\nimprovement over best static placement: %+.1f%%\n",
              100.0 * (static_cast<double>(best_static) /
                           static_cast<double>(migrated) -
                       1.0));
  return 0;
}
