// Ablation A5: classifier choice.
//
// The paper picks majority-vote k-NN citing Kapadia's evaluation. This
// harness compares it against distance-weighted k-NN and a
// nearest-centroid baseline in the same projected feature space, on
// held-out canonical runs, reporting accuracy, macro-F1 and query cost.
#include <chrono>
#include <cstdio>
#include <memory>

#include "core/classifiers.hpp"
#include "core/evaluation.hpp"
#include "core/trainer.hpp"

int main() {
  using namespace appclass;
  using Clock = std::chrono::steady_clock;

  const auto training = core::collect_training_pools();
  core::ClassificationPipeline pipeline;
  pipeline.train(training);

  core::TrainingSetup heldout_setup;
  heldout_setup.seed = 555;
  const auto heldout = core::collect_training_pools(heldout_setup);

  // Project the held-out snapshots with the pipeline's fitted transforms.
  linalg::Matrix test_points;
  std::vector<core::ApplicationClass> test_labels;
  for (const auto& lp : heldout) {
    const auto projected = pipeline.project(lp.pool);
    for (std::size_t r = 0; r < projected.rows(); ++r) {
      test_points.append_row(projected.row(r));
      test_labels.push_back(lp.label);
    }
  }

  std::vector<std::unique_ptr<core::SnapshotClassifier>> classifiers;
  classifiers.push_back(std::make_unique<core::MajorityKnnAdapter>());
  classifiers.push_back(std::make_unique<core::WeightedKnnClassifier>(3));
  classifiers.push_back(std::make_unique<core::NearestCentroidClassifier>());

  std::printf("Ablation A5: classifier choice in the 2-PC feature space\n\n");
  std::printf("%-18s %10s %10s %14s\n", "classifier", "accuracy", "macroF1",
              "ns per query");
  for (auto& clf : classifiers) {
    linalg::Matrix train_points = pipeline.knn().training_points();
    std::vector<core::ApplicationClass> train_labels(
        pipeline.knn().training_labels().begin(),
        pipeline.knn().training_labels().end());
    clf->train(std::move(train_points), std::move(train_labels));

    core::ConfusionMatrix cm;
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < test_labels.size(); ++i)
      cm.add(test_labels[i], clf->classify(test_points.row(i)));
    const auto t1 = Clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        static_cast<double>(test_labels.size());
    std::printf("%-18s %9.2f%% %9.3f %14.0f\n",
                std::string(clf->name()).c_str(), 100.0 * cm.accuracy(),
                cm.macro_f1(), ns);
  }
  std::printf("\n(train: canonical runs; test: fresh runs of the same five "
              "applications)\n");
  return 0;
}
