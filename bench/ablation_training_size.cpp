// Ablation A8: how much training data does the classifier need?
//
// The paper trains on whole dedicated runs (~50-600 snapshots per class).
// This harness truncates each training pool to its first N snapshots,
// trains, and evaluates held-out accuracy — quantifying how quickly a
// fresh deployment becomes usable (relevant for the online/incremental
// training path).
#include <cstdio>

#include "core/evaluation.hpp"
#include "core/trainer.hpp"

namespace {

std::vector<appclass::core::LabeledPool> truncate(
    const std::vector<appclass::core::LabeledPool>& pools, std::size_t n) {
  std::vector<appclass::core::LabeledPool> out;
  for (const auto& lp : pools) {
    appclass::metrics::DataPool pool(lp.pool.node_ip());
    for (std::size_t i = 0; i < std::min(n, lp.pool.size()); ++i)
      pool.add(lp.pool[i]);
    out.push_back({std::move(pool), lp.label});
  }
  return out;
}

}  // namespace

int main() {
  using namespace appclass;

  const auto full = core::collect_training_pools();
  core::TrainingSetup heldout_setup;
  heldout_setup.seed = 555;
  const auto heldout = core::flatten(core::collect_training_pools(
      heldout_setup));

  std::printf("Ablation A8: held-out accuracy vs snapshots per training "
              "class\n\n");
  std::printf("%12s %12s %10s %10s\n", "per class", "train total",
              "accuracy", "macro F1");
  for (const std::size_t n : {3u, 5u, 10u, 20u, 40u, 80u, 1000u}) {
    const auto truncated = truncate(full, n);
    std::size_t total = 0;
    for (const auto& lp : truncated) total += lp.pool.size();
    core::ClassificationPipeline pipeline;
    pipeline.train(truncated);
    const auto cm = core::evaluate(pipeline, heldout);
    std::printf("%12zu %12zu %9.2f%% %10.3f\n", n, total,
                100.0 * cm.accuracy(), cm.macro_f1());
  }
  std::printf("\n(~10 snapshots per class — under a minute of monitoring "
              "each — already carry\n the classifier; the paper's "
              "full-run training is comfortable overkill)\n");
  return 0;
}
