// Reproduces Table 4: system throughput of concurrent vs sequential
// execution of a CPU-intensive job (CH3D) and an I/O-intensive job
// (PostMark) on one VM.
//
// Paper reference:            CH3D   PostMark   2-job makespan
//   Concurrent                 613      310          613
//   Sequential                 488      264          752
// Shape to reproduce: each job slows somewhat when co-scheduled, but the
// overlap of CPU and disk keeps the concurrent makespan well below the
// sequential one.
#include <cstdio>

#include "sched/experiment.hpp"

int main() {
  using namespace appclass;

  std::printf("Table 4 reproduction: concurrent vs sequential execution\n\n");
  const sched::ConcurrencyOutcome out =
      sched::run_concurrent_vs_sequential(/*seed=*/321);

  std::printf("%-12s %10s %10s %22s\n", "Execution", "CH3D(s)", "PostMark(s)",
              "Time to finish 2 jobs");
  std::printf("%-12s %10lld %10lld %22lld\n", "Concurrent",
              static_cast<long long>(out.concurrent_ch3d_s),
              static_cast<long long>(out.concurrent_postmark_s),
              static_cast<long long>(out.concurrent_makespan_s));
  std::printf("%-12s %10lld %10lld %22lld\n", "Sequential",
              static_cast<long long>(out.sequential_ch3d_s),
              static_cast<long long>(out.sequential_postmark_s),
              static_cast<long long>(out.sequential_makespan_s));

  const double speedup =
      static_cast<double>(out.sequential_makespan_s) /
      static_cast<double>(out.concurrent_makespan_s);
  std::printf("\nConcurrent makespan speedup over sequential: %.2fx "
              "(paper: 752/613 = 1.23x)\n", speedup);
  std::printf("%s\n", speedup > 1.0
                          ? "SHAPE OK: co-scheduling different classes wins"
                          : "SHAPE MISMATCH: concurrent should win");
  return 0;
}
