// Reproduces Table 3: class compositions of every test application.
//
// Paper reference (dominant class per row):
//   SPECseis96 A (medium, 256 MB VM) -> 99.7% CPU
//   SPECseis96 C (small,  256 MB VM) -> 100%  CPU
//   CH3D, SimpleScalar               -> 100%  CPU
//   PostMark                         -> 96% IO (+ some paging)
//   Bonnie                           -> 86% IO, 4% CPU, 10% paging
//   SPECseis96 B (medium, 32 MB VM)  -> 43% IO, 50% CPU, 6.5% paging
//   Stream                           -> 79% IO, 20% paging
//   PostMark NFS, Autobench          -> 100% network
//   NetPIPE                          -> 92% network (+4% idle, +4% IO)
//   Sftp                             -> 98% network, 2% IO
//   VMD                              -> 37% idle, 41% IO, 22% network
//   XSpim                            -> 22% idle, 78% IO
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace {

struct Row {
  std::string label;
  std::string app;
  double vm_ram_mb;
};

}  // namespace

int main() {
  using namespace appclass;

  const std::vector<Row> rows = {
      {"SPECseis96_A", "specseis_medium", 256.0},
      {"SPECseis96_C", "specseis_small", 256.0},
      {"CH3D", "ch3d", 256.0},
      {"SimpleScalar", "simplescalar", 256.0},
      {"PostMark", "postmark", 256.0},
      {"Bonnie", "bonnie", 256.0},
      {"SPECseis96_B", "specseis_medium", 32.0},
      {"Stream", "stream", 256.0},
      {"PostMark_NFS", "postmark_nfs", 256.0},
      {"NetPIPE", "netpipe", 256.0},
      {"Autobench", "autobench", 256.0},
      {"Sftp", "sftp", 256.0},
      {"VMD", "vmd", 256.0},
      {"XSpim", "xspim", 256.0},
  };

  std::printf("Table 3 reproduction: application class compositions\n");
  std::printf("(3-NN over 2 principal components of the 8 expert metrics, "
              "d = 5 s)\n\n");
  const core::ClassificationPipeline& pipeline = bench::trained_pipeline();
  bench::print_composition_header();

  std::uint64_t seed = 9000;
  for (const auto& row : rows) {
    const monitor::ProfiledRun run =
        bench::profile_standalone(row.app, row.vm_ram_mb, seed++);
    if (!run.completed || run.pool.empty()) {
      std::printf("%-18s  DID NOT COMPLETE within tick budget\n",
                  row.label.c_str());
      continue;
    }
    const core::ClassificationResult result = pipeline.classify(run.pool);
    bench::print_composition_row(row.label, result);
  }
  return 0;
}
