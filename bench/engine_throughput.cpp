// Engine throughput: snapshots/sec of the seed's scalar k-NN path vs the
// blocked SoA kernel vs the threaded pipeline, written as
// BENCH_engine.json for CI trend tracking (docs/performance.md explains
// the fields).
//
//   engine_throughput [--quick] [--out=BENCH_engine.json]
//
// --quick shrinks the workloads ~10x for CI smoke runs; the JSON shape
// is identical. Thread speedups are measured on whatever cores the host
// offers — on a single-core container the threaded rows legitimately
// show ~1x.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/assert.hpp"
#include "core/pipeline.hpp"
#include "core/trainer.hpp"
#include "engine/knn_kernel.hpp"
#include "linalg/matrix.hpp"
#include "obs/trace.hpp"

namespace {

using namespace appclass;
using Clock = std::chrono::steady_clock;

struct Row {
  std::string mode;
  std::size_t threads = 1;
  std::size_t snapshots = 0;
  double seconds = 0.0;
  double per_sec() const { return static_cast<double>(snapshots) / seconds; }
};

/// Synthetic PCA-space training set: five tight clusters like Figure 3,
/// big enough that the distance loop dominates.
linalg::Matrix cluster_points(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> noise(0.0, 0.35);
  linalg::Matrix points(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    const double cx = static_cast<double>(i % 5) * 3.0;
    const double cy = static_cast<double>((i % 5) % 2) * 3.0;
    points(i, 0) = cx + noise(rng);
    points(i, 1) = cy + noise(rng);
  }
  return points;
}

std::vector<core::ApplicationClass> cluster_labels(std::size_t n) {
  std::vector<core::ApplicationClass> labels(n);
  for (std::size_t i = 0; i < n; ++i)
    labels[i] = static_cast<core::ApplicationClass>(i % 5);
  return labels;
}

double time_run(const std::function<void()>& fn) {
  const auto t0 = Clock::now();
  fn();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_engine.json";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick")) {
      quick = true;
    } else if (!std::strncmp(argv[i], "--out=", 6)) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr,
                   "usage: engine_throughput [--quick] [--out=file.json]\n");
      return 2;
    }
  }
  bench::dump_registry_at_exit();

  const std::size_t n_train = quick ? 1024 : 4096;
  const std::size_t n_query = quick ? 4000 : 40000;
  const std::size_t pool_reps = quick ? 4 : 40;

  std::vector<Row> rows;

  // --- Kernel microbenchmark: scalar reference vs blocked SoA, same
  // training set, same queries, single thread.
  {
    const linalg::Matrix train = cluster_points(n_train, 7);
    const auto labels = cluster_labels(n_train);
    const linalg::Matrix queries = cluster_points(n_query, 8);
    engine::BlockedKnnIndex index;
    index.build(train, labels, 3, engine::DistanceMetric::kEuclidean);

    std::size_t scalar_checksum = 0;
    Row scalar{"knn_scalar", 1, n_query, 0.0};
    scalar.seconds = time_run([&] {
      for (std::size_t r = 0; r < queries.rows(); ++r) {
        const auto hits = engine::reference_top_k(
            train, queries.row(r), 3, engine::DistanceMetric::kEuclidean);
        scalar_checksum += index.vote(hits).label ==
                                   core::ApplicationClass::kIdle
                               ? 1u
                               : 0u;
      }
    });
    rows.push_back(scalar);

    std::size_t blocked_checksum = 0;
    Row blocked{"knn_blocked", 1, n_query, 0.0};
    blocked.seconds = time_run([&] {
      engine::BlockedKnnIndex::Scratch scratch;
      for (std::size_t r = 0; r < queries.rows(); ++r) {
        const auto hits = index.top_k(queries.row(r), scratch);
        blocked_checksum +=
            index.vote(hits).label == core::ApplicationClass::kIdle ? 1 : 0u;
      }
    });
    rows.push_back(blocked);
    // Both paths must agree — a benchmark of wrong answers is worthless.
    APPCLASS_ENSURES(scalar_checksum == blocked_checksum);
  }

  // --- End-to-end pipeline: the five canonical runs concatenated into
  // one big pool, classified at parallelism 1 / 2 / 8.
  {
    const auto training = core::collect_training_pools();
    metrics::DataPool big("10.0.0.99");
    for (std::size_t rep = 0; rep < pool_reps; ++rep)
      for (const auto& lp : training)
        for (const auto& snapshot : lp.pool.snapshots()) big.add(snapshot);

    core::PipelineOptions options;
    options.novelty_threshold = 2.5;
    core::ClassificationPipeline pipeline(options);
    pipeline.train(training);

    core::ClassificationResult serial_result;
    for (const std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      pipeline.set_parallelism(threads);
      pipeline.classify(big);  // warm-up (pool spin-up, page-in)
      Row row{"pipeline", threads, big.size(), 0.0};
      core::ClassificationResult result;
      row.seconds = time_run([&] { result = pipeline.classify(big); });
      rows.push_back(row);
      if (threads == 1) {
        serial_result = std::move(result);
      } else {
        APPCLASS_ENSURES(result.class_vector == serial_result.class_vector);
        APPCLASS_ENSURES(result.confidences == serial_result.confidences);
        APPCLASS_ENSURES(result.novelty == serial_result.novelty);
      }
    }

    // --- Tracing overhead guard: same serial classification with span
    // recording on. The ratio lands in the JSON so CI can flag a
    // regression in the "tracing disabled costs nothing" invariant —
    // and the traced run must stay bit-identical.
    pipeline.set_parallelism(1);
    appclass::obs::set_tracing_enabled(true);
    pipeline.classify(big);  // warm-up with tracing active
    Row traced{"pipeline_traced", 1, big.size(), 0.0};
    core::ClassificationResult traced_result;
    traced.seconds =
        time_run([&] { traced_result = pipeline.classify(big); });
    appclass::obs::set_tracing_enabled(false);
    rows.push_back(traced);
    APPCLASS_ENSURES(traced_result.class_vector == serial_result.class_vector);
    APPCLASS_ENSURES(traced_result.confidences == serial_result.confidences);
    APPCLASS_ENSURES(traced_result.novelty == serial_result.novelty);
  }

  std::printf("%-14s %8s %10s %10s %14s\n", "mode", "threads", "snapshots",
              "seconds", "snapshots/sec");
  for (const auto& row : rows)
    std::printf("%-14s %8zu %10zu %10.4f %14.0f\n", row.mode.c_str(),
                row.threads, row.snapshots, row.seconds, row.per_sec());

  const double scalar_ps = rows[0].per_sec();
  const double blocked_ps = rows[1].per_sec();
  std::printf("\nblocked kernel speedup over scalar: %.2fx\n",
              blocked_ps / scalar_ps);

  // Traced serial run vs untraced serial run (>1.0 = tracing costs time).
  double serial_seconds = 0.0;
  double traced_seconds = 0.0;
  for (const auto& row : rows) {
    if (row.mode == "pipeline" && row.threads == 1)
      serial_seconds = row.seconds;
    if (row.mode == "pipeline_traced") traced_seconds = row.seconds;
  }
  const double tracing_overhead =
      serial_seconds > 0.0 ? traced_seconds / serial_seconds : 0.0;
  std::printf("tracing overhead (traced/untraced serial): %.3fx\n",
              tracing_overhead);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"engine_throughput\",\n");
  std::fprintf(out, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(out, "  \"kernel_speedup\": %.3f,\n", blocked_ps / scalar_ps);
  std::fprintf(out, "  \"tracing_overhead\": %.3f,\n", tracing_overhead);
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    std::fprintf(out,
                 "    {\"mode\": \"%s\", \"threads\": %zu, \"snapshots\": "
                 "%zu, \"seconds\": %.6f, \"snapshots_per_sec\": %.1f}%s\n",
                 row.mode.c_str(), row.threads, row.snapshots, row.seconds,
                 row.per_sec(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
