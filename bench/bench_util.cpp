#include "bench_util.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/assert.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "sim/testbed.hpp"
#include "workloads/catalog.hpp"

namespace appclass::bench {
namespace {

void dump_registry_now() {
  const char* mode = std::getenv("APPCLASS_BENCH_STATS");
  if (mode && (!std::strcmp(mode, "0") || !std::strcmp(mode, "off")))
    return;
  obs::ExportFormat format = obs::ExportFormat::kTable;
  if (mode && !std::strcmp(mode, "json")) format = obs::ExportFormat::kJson;
  if (mode && !std::strcmp(mode, "prom"))
    format = obs::ExportFormat::kPrometheus;
  const auto snapshot = obs::MetricsRegistry::global().snapshot();
  if (snapshot.empty()) return;
  const std::string report = obs::export_as(snapshot, format);
  if (format == obs::ExportFormat::kTable)
    std::fprintf(stderr, "\n== obs metrics registry ==\n");
  std::fwrite(report.data(), 1, report.size(), stderr);
}

struct RegistryDumper {
  RegistryDumper() {
    // Force the registry's construction before registering the handler so
    // it outlives (is destroyed after) anything the handler touches.
    obs::MetricsRegistry::global();
    std::atexit(dump_registry_now);
  }
};

// One per process: every bench binary links bench_util, so every bench
// run ends with its registry snapshot on stderr.
const RegistryDumper g_registry_dumper;

}  // namespace

monitor::ProfiledRun profile_standalone(const std::string& app_name,
                                        double vm1_ram_mb, std::uint64_t seed,
                                        int sampling_interval_s) {
  sim::TestbedOptions opts;
  opts.seed = seed;
  opts.vm1_ram_mb = vm1_ram_mb;
  opts.four_vms = false;
  sim::Testbed tb = sim::make_testbed(opts);
  monitor::ClusterMonitor mon(*tb.engine);
  auto model =
      workloads::make_by_name(app_name, static_cast<int>(tb.vm4));
  APPCLASS_EXPECTS(model != nullptr);
  const sim::InstanceId id = tb.engine->submit(tb.vm1, std::move(model));
  return monitor::profile_instance(*tb.engine, mon, id, sampling_interval_s);
}

const core::ClassificationPipeline& trained_pipeline() {
  static const core::ClassificationPipeline pipeline =
      core::make_trained_pipeline();
  return pipeline;
}

void print_composition_header() {
  std::printf("%-18s %8s %8s %8s %8s %8s %8s %6s  %s\n", "application",
              "samples", "idle%", "io%", "cpu%", "net%", "paging%", "conf",
              "class");
}

void dump_registry_at_exit() {
  // The static dumper does the work; this function exists so bench mains
  // can force-link the registration in builds that dead-strip statics.
  (void)g_registry_dumper;
}

void print_composition_row(const std::string& label,
                           const core::ClassificationResult& result) {
  const auto f = result.composition.fractions();
  using core::ApplicationClass;
  // The confidence column uses the result's canonical reduction; bench
  // tools must not refold the per-snapshot vectors themselves.
  std::printf("%-18s %8zu %8.2f %8.2f %8.2f %8.2f %8.2f %6.2f  %s\n",
              label.c_str(), result.composition.samples(),
              100.0 * f[core::index_of(ApplicationClass::kIdle)],
              100.0 * f[core::index_of(ApplicationClass::kIo)],
              100.0 * f[core::index_of(ApplicationClass::kCpu)],
              100.0 * f[core::index_of(ApplicationClass::kNetwork)],
              100.0 * f[core::index_of(ApplicationClass::kMemory)],
              result.mean_confidence(),
              std::string(core::to_string(result.application_class)).c_str());
}

}  // namespace appclass::bench
