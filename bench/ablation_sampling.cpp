// Ablation A4: sampling interval d.
//
// The paper samples every d = 5 seconds. This harness re-profiles three
// representative applications at d in {1, 2, 5, 10, 20} and reports how
// the class composition moves — quantifying how robust the majority-vote
// Class and the composition are to coarser monitoring.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"

int main() {
  using namespace appclass;

  const core::ClassificationPipeline& pipeline = bench::trained_pipeline();
  const std::vector<std::string> apps = {"specseis_small", "postmark", "vmd"};

  std::printf("Ablation A4: class composition vs sampling interval d\n");
  for (const auto& app : apps) {
    std::printf("\n== %s ==\n", app.c_str());
    bench::print_composition_header();
    for (int d : {1, 2, 5, 10, 20}) {
      const auto run = bench::profile_standalone(app, 256.0, 31337, d);
      if (run.pool.empty()) {
        std::printf("  d=%-2d no samples captured\n", d);
        continue;
      }
      const auto result = pipeline.classify(run.pool);
      bench::print_composition_row("d=" + std::to_string(d), result);
    }
  }
  std::printf("\n(same simulated run statistics; only the monitor's "
              "sampling period changes)\n");
  return 0;
}
