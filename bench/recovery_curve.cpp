// Process-level crash chaos: recovery time and snapshots lost vs WAL
// fsync policy, written as BENCH_recovery.json for CI — the robustness
// complement of ablation_faults (data faults) for process faults.
//
//   recovery_curve [--quick] [--out=BENCH_recovery.json]
//
// For each fsync policy (always, interval, never) the harness forks a
// worker that write-ahead logs + ingests a deterministic canonical
// stream, checkpoints once mid-way, and SIGKILLs itself mid-ingest. The
// parent then recovers from the surviving files, measuring wall-clock
// recovery time and snapshots lost, and aborts unless the recovered
// state is bit-identical to an uninterrupted reference run over the
// durable prefix and the loss respects the policy's documented bound
// (always: 0, interval: <= sync_every, never: unbounded).
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/assert.hpp"
#include "core/online.hpp"
#include "core/robustness.hpp"
#include "persist/checkpoint.hpp"
#include "persist/recovery.hpp"
#include "persist/wal.hpp"

namespace {

using namespace appclass;
using Clock = std::chrono::steady_clock;

struct Row {
  std::string policy;
  std::size_t sync_every = 0;
  std::size_t ingested_at_kill = 0;
  std::uint64_t recovered = 0;
  std::uint64_t lost = 0;
  bool bound_ok = true;
  bool checkpoint_loaded = false;
  std::uint64_t replayed = 0;
  double recovery_seconds = 0.0;
  double wal_append_per_sec = 0.0;
};

/// Canonical byte image of a classifier's full online state (the
/// checkpoint encoding doubles as the bit-identity witness).
std::string state_image(const core::OnlineClassifier& online) {
  persist::CheckpointData data;
  data.options = online.options();
  data.online = online.export_state();
  return persist::encode_checkpoint(data);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_recovery.json";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick")) {
      quick = true;
    } else if (!std::strncmp(argv[i], "--out=", 6)) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr,
                   "usage: recovery_curve [--quick] [--out=file.json]\n");
      return 2;
    }
  }
  bench::dump_registry_at_exit();

  const core::ClassificationPipeline& pipeline = bench::trained_pipeline();
  const auto runs = core::record_canonical_runs();

  // Deterministic grid-aligned stream cycling the five canonical
  // workloads across five node IPs — identical bytes in the killed
  // worker, the recovery, and the uninterrupted reference, because all
  // three are built from the same recorded announcements.
  const std::size_t total = quick ? 600 : 2500;
  const std::size_t checkpoint_at = total / 2;
  std::vector<metrics::Snapshot> stream;
  stream.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    const auto& run = runs[i % runs.size()];
    metrics::Snapshot snapshot =
        run.announcements[(i / runs.size()) % run.announcements.size()];
    snapshot.time = static_cast<metrics::SimTime>(i / runs.size()) * 5;
    snapshot.node_ip = "10.0.0." + std::to_string(1 + i % runs.size());
    stream.push_back(snapshot);
  }

  char tmpl[] = "/tmp/appclass_recovery_curve_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    std::fprintf(stderr, "cannot create scratch directory\n");
    return 1;
  }
  const std::string scratch = tmpl;

  const persist::WalOptions policies[] = {
      {.fsync = persist::FsyncPolicy::kAlways},
      {.fsync = persist::FsyncPolicy::kInterval, .sync_every = 32},
      {.fsync = persist::FsyncPolicy::kNever},
  };

  std::vector<Row> rows;
  for (const auto& wal_options : policies) {
    Row row;
    row.policy = std::string(persist::to_string(wal_options.fsync));
    row.sync_every = wal_options.sync_every;
    row.ingested_at_kill = total;
    const std::string dir = scratch + "/" + row.policy;
    std::filesystem::create_directories(dir);

    // Append throughput of the bare log under this policy — what the
    // serving path pays per accepted snapshot for its durability level.
    {
      const std::string tp_dir = dir + "/throughput";
      const auto t0 = Clock::now();
      {
        persist::WalWriter wal(tp_dir, wal_options, 0);
        for (const auto& snapshot : stream) wal.append(snapshot);
        wal.sync();
      }
      const double seconds =
          std::chrono::duration<double>(Clock::now() - t0).count();
      row.wal_append_per_sec = static_cast<double>(total) / seconds;
      std::filesystem::remove_all(tp_dir);
    }

    // Crash pass: the worker dies by SIGKILL mid-ingest — no destructor,
    // no flush — exactly what a node failure leaves on disk.
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "fork failed: %s\n", std::strerror(errno));
      return 1;
    }
    if (pid == 0) {
      core::OnlineClassifier online(pipeline);
      persist::WalWriter wal(dir + "/wal", wal_options, 0);
      for (std::size_t i = 0; i < total; ++i) {
        wal.append(stream[i]);
        online.ingest(stream[i], pipeline.classify(stream[i]));
        if (i + 1 == checkpoint_at) {
          wal.sync();
          persist::CheckpointData data;
          data.wal_next = i + 1;
          data.options = online.options();
          data.online = online.export_state();
          persist::write_checkpoint(dir + "/checkpoints", data);
        }
      }
      ::raise(SIGKILL);
      ::_exit(127);  // unreachable
    }
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid || !WIFSIGNALED(status) ||
        WTERMSIG(status) != SIGKILL) {
      std::fprintf(stderr, "worker did not die by SIGKILL as arranged\n");
      return 1;
    }

    core::OnlineClassifier recovered(pipeline);
    const persist::RecoveryReport report =
        persist::recover(dir, pipeline, recovered);
    row.recovered = report.wal_next_seq;
    row.lost = total - report.wal_next_seq;
    row.checkpoint_loaded = report.checkpoint_loaded;
    row.replayed = report.replayed;
    row.recovery_seconds = report.seconds;

    // The durable prefix must replay to bit-identical state, and the
    // loss must honour the policy's bound.
    core::OnlineClassifier reference(pipeline);
    for (std::uint64_t i = 0; i < row.recovered; ++i)
      reference.ingest(stream[i], pipeline.classify(stream[i]));
    APPCLASS_ENSURES(state_image(recovered) == state_image(reference));
    switch (wal_options.fsync) {
      case persist::FsyncPolicy::kAlways:
        row.bound_ok = row.lost == 0;
        break;
      case persist::FsyncPolicy::kInterval:
        row.bound_ok = row.lost <= wal_options.sync_every;
        break;
      case persist::FsyncPolicy::kNever:
        // No durability promise, but the mid-stream checkpoint was
        // explicitly synced, so at least that horizon must survive.
        row.bound_ok = row.recovered >= checkpoint_at;
        break;
    }
    APPCLASS_ENSURES(row.bound_ok);
    rows.push_back(row);
  }
  std::filesystem::remove_all(scratch);

  std::printf("%-10s %12s %10s %8s %10s %12s %16s\n", "policy", "at_kill",
              "recovered", "lost", "replayed", "recovery_s", "appends/sec");
  for (const auto& row : rows)
    std::printf("%-10s %12zu %10llu %8llu %10llu %12.4f %16.0f\n",
                row.policy.c_str(), row.ingested_at_kill,
                static_cast<unsigned long long>(row.recovered),
                static_cast<unsigned long long>(row.lost),
                static_cast<unsigned long long>(row.replayed),
                row.recovery_seconds, row.wal_append_per_sec);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"recovery_curve\",\n");
  std::fprintf(out, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(out, "  \"bit_identical_prefix\": true,\n");
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    std::fprintf(
        out,
        "    {\"policy\": \"%s\", \"sync_every\": %zu, "
        "\"ingested_at_kill\": %zu, \"recovered\": %llu, \"lost\": %llu, "
        "\"bound_ok\": %s, \"checkpoint_loaded\": %s, \"replayed\": %llu, "
        "\"recovery_seconds\": %.6f, \"wal_append_per_sec\": %.1f}%s\n",
        row.policy.c_str(), row.sync_every, row.ingested_at_kill,
        static_cast<unsigned long long>(row.recovered),
        static_cast<unsigned long long>(row.lost),
        row.bound_ok ? "true" : "false",
        row.checkpoint_loaded ? "true" : "false",
        static_cast<unsigned long long>(row.replayed), row.recovery_seconds,
        row.wal_append_per_sec, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
