// Arrival-stream dispatch policies: does class awareness still pay when
// jobs trickle in and the scheduler only sees live monitoring data?
//
// 24 mixed jobs (cpu/io/network, uniform) arrive with exponential
// inter-arrival times on a 4-VM cluster; four policies place each job on
// arrival. Class-aware placement consults the live gmetad view through
// the PlacementAdvisor.
#include <cstdio>

#include "sched/queue.hpp"

int main() {
  using namespace appclass;

  const auto jobs = sched::make_mixed_arrivals(/*count=*/18,
                                               /*mean_interarrival_s=*/400.0,
                                               /*seed=*/77);
  std::printf("Arrival-stream dispatch: %zu jobs in same-type bursts, "
              "4 VMs on 2 hosts\n\n", jobs.size());

  struct PolicyEntry {
    const char* name;
    sched::DispatchPolicy policy;
  };
  const PolicyEntry policies[] = {
      {"round-robin", sched::round_robin_policy()},
      {"random", sched::random_policy(5)},
      {"least-loaded", sched::least_loaded_policy()},
      {"class-aware", sched::class_aware_policy()},
  };

  std::printf("%-14s %14s %14s %12s %14s\n", "policy", "mean response",
              "max response", "makespan", "jobs/day");
  double class_aware_mean = 0.0, best_blind_mean = 1e18;
  for (const auto& [name, policy] : policies) {
    const auto outcome = sched::run_arrival_experiment(jobs, policy);
    std::printf("%-14s %13.0fs %13.0fs %11llds %14.0f\n", name,
                outcome.mean_response(), outcome.max_response(),
                static_cast<long long>(outcome.makespan),
                outcome.throughput_jobs_per_day());
    if (std::string(name) == "class-aware")
      class_aware_mean = outcome.mean_response();
    else
      best_blind_mean = std::min(best_blind_mean, outcome.mean_response());
  }
  std::printf("\nclass-aware vs best class-blind policy (mean response): "
              "%+.1f%%\n",
              100.0 * (best_blind_mean / class_aware_mean - 1.0));
  std::printf("\nNote: with same-type bursts, round-robin spreads each "
              "burst across VMs by\naccident and is a strong baseline; "
              "class-aware matches it by design (and beats\nrandom), "
              "without relying on the arrival pattern being friendly.\n");
  return 0;
}
