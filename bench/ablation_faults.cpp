// Ablation A7: classification robustness to monitoring faults.
//
// Sweeps UDP-style announcement loss (and a node-blackout mix) on the
// path between the cluster and the classifier, reporting how the
// PostMark run's class composition and majority verdict hold up — the
// quantitative version of the paper's implicit assumption that Ganglia's
// lossy transport is good enough for classification.
#include <cstdio>

#include "core/trainer.hpp"
#include "monitor/fault_injection.hpp"
#include "monitor/harness.hpp"
#include "sim/testbed.hpp"
#include "workloads/catalog.hpp"

int main() {
  using namespace appclass;

  const core::ClassificationPipeline pipeline = core::make_trained_pipeline();

  std::printf("Ablation A7: PostMark composition vs monitoring loss\n\n");
  std::printf("%8s %10s %10s %10s %10s  %s\n", "drop", "blackout",
              "samples", "io%", "majority", "verdict stable?");

  const core::ApplicationClass expected = core::ApplicationClass::kIo;
  for (const auto& [drop, blackout] :
       std::initializer_list<std::pair<double, double>>{{0.0, 0.0},
                                                        {0.1, 0.0},
                                                        {0.3, 0.0},
                                                        {0.5, 0.0},
                                                        {0.7, 0.0},
                                                        {0.3, 0.02}}) {
    sim::TestbedOptions opts;
    opts.seed = 808;
    opts.four_vms = false;
    sim::Testbed tb = sim::make_testbed(opts);
    monitor::ClusterMonitor mon(*tb.engine);

    monitor::MetricBus degraded;
    monitor::FaultOptions faults;
    faults.drop_probability = drop;
    faults.blackout_probability = blackout;
    faults.blackout_s = 30;
    monitor::FaultyChannel channel(mon.bus(), degraded, faults, 5);

    metrics::DataPool pool("10.0.0.1");
    degraded.subscribe([&](const metrics::Snapshot& s) {
      if (s.node_ip == "10.0.0.1" && s.time % 5 == 0) pool.add(s);
    });

    const auto id = tb.engine->submit(tb.vm1, workloads::make_postmark());
    while (tb.engine->instance(id).state != sim::InstanceState::kFinished)
      tb.engine->step();

    if (pool.empty()) {
      std::printf("%7.0f%% %9.0f%% %10s  (no samples survived)\n",
                  100.0 * drop, 100.0 * blackout, "0");
      continue;
    }
    const auto result = pipeline.classify(pool);
    std::printf("%7.0f%% %9.0f%% %10zu %9.1f%% %10s  %s\n", 100.0 * drop,
                100.0 * blackout, pool.size(),
                100.0 * result.composition.fraction(expected),
                std::string(core::to_string(result.application_class))
                    .c_str(),
                result.application_class == expected ? "yes" : "NO");
  }
  std::printf("\n(majority vote over surviving snapshots: the verdict "
              "survives even 70%% loss)\n");
  return 0;
}
