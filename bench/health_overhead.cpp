// Model-health overhead: cost of the health aggregator and the online
// drift detector on the streaming classification path, written as
// BENCH_health.json for the CI gate (drift_overhead must stay < 1.02).
//
//   health_overhead [--quick] [--out=BENCH_health.json]
//
// Three passes over the identical re-stamped canonical announcement
// stream through an OnlineClassifier:
//
//   baseline      no health aggregator (plain classify path)
//   health        ModelHealth attached, drift feed disabled
//   health_drift  ModelHealth attached, drift detector live
//
// health_overhead = health_drift / baseline (the full layer's cost) and
// drift_overhead = 1 + (drift observe() cost per sample) / (baseline
// classify cost per sample). The drift cost is measured directly — a
// tight loop feeding the detector the stream's own projected rows —
// because estimating a ~1% delta as the ratio of two large noisy
// end-to-end totals amplifies machine noise ~100x; the direct loop's
// minimum over reps is stable to well under the 2% gate. The labels of
// all three passes must be bit-identical — the health layer is
// observational by contract, and this bench is the guard on that
// contract.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/assert.hpp"
#include "core/online.hpp"
#include "core/robustness.hpp"
#include "core/trainer.hpp"
#include "obs/health.hpp"

namespace {

using namespace appclass;
using Clock = std::chrono::steady_clock;

double time_run(const std::function<void()>& fn) {
  const auto t0 = Clock::now();
  fn();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Row {
  std::string mode;
  std::size_t samples = 0;
  double seconds = 0.0;
  std::uint64_t drift_events = 0;
  double per_sec() const { return static_cast<double>(samples) / seconds; }
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_health.json";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick")) {
      quick = true;
    } else if (!std::strncmp(argv[i], "--out=", 6)) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr,
                   "usage: health_overhead [--quick] [--out=file.json]\n");
      return 2;
    }
  }
  bench::dump_registry_at_exit();

  core::PipelineOptions pipeline_options;
  pipeline_options.novelty_threshold = 2.5;
  const core::ClassificationPipeline pipeline =
      core::make_trained_pipeline(pipeline_options);
  const auto runs = core::record_canonical_runs();

  // One long grid-aligned stream cycling all five canonical workloads
  // across five node IPs — per-node scorecards, per-class histograms,
  // and the drift window all stay busy.
  const std::size_t total = quick ? 50000 : 200000;
  std::vector<metrics::Snapshot> stream;
  stream.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    const auto& run = runs[i % runs.size()];
    metrics::Snapshot snapshot =
        run.announcements[(i / runs.size()) % run.announcements.size()];
    // Each node sees a dense grid sequence (t = 0, 5, 10, ...): full
    // window coverage, so the bench measures the voting path, not the
    // abstention fast-path.
    snapshot.time = static_cast<metrics::SimTime>(i / runs.size()) * 5;
    snapshot.node_ip = "10.0.0." + std::to_string(1 + i % runs.size());
    stream.push_back(snapshot);
  }

  obs::ModelHealthOptions health_options = core::make_health_options();
  health_options.drift_enabled = false;
  obs::ModelHealth health_off(health_options);
  health_options.drift_enabled = true;
  obs::ModelHealth health_on(health_options);

  struct Mode {
    const char* name;
    obs::ModelHealth* health;
  };
  const Mode modes[] = {
      {"baseline", nullptr}, {"health", &health_off},
      {"health_drift", &health_on}};

  // One pass of the stream through a fresh classifier; labels out.
  const auto run_mode = [&](const Mode& mode,
                            std::vector<core::ApplicationClass>& labels) {
    labels.clear();
    core::OnlineClassifier classifier(pipeline);
    if (mode.health) classifier.attach_health(mode.health);
    return time_run([&] {
      for (const auto& snapshot : stream)
        labels.push_back(*classifier.observe(snapshot));
    });
  };

  // Reps are interleaved across modes (b, h, d, b, h, d, ...) so a
  // machine-wide slowdown penalizes every mode equally instead of
  // whichever happened to run last; min-of-reps then discards the noisy
  // passes. The untimed warm-up pass eats the cold-cache cost.
  constexpr int kReps = 9;
  std::vector<core::ApplicationClass> mode_labels[3];
  for (auto& labels : mode_labels) labels.reserve(stream.size());
  (void)run_mode(modes[0], mode_labels[0]);  // warm-up, discarded

  std::vector<Row> rows(std::size_t{3});
  double round_seconds[3][kReps];
  for (int rep = 0; rep < kReps; ++rep) {
    for (std::size_t m = 0; m < 3; ++m) {
      const double seconds = run_mode(modes[m], mode_labels[m]);
      round_seconds[m][rep] = seconds;
      Row& row = rows[m];
      row.mode = modes[m].name;
      row.samples = stream.size();
      row.seconds = rep == 0 ? seconds : std::min(row.seconds, seconds);
    }
  }
  rows[2].drift_events = health_on.drift_events();

  // The gated statistic is the ratio of per-mode minima: noise on a
  // shared machine is strictly additive, so each mode's fastest pass is
  // its closest observation of the true cost.
  const auto min_ratio = [&](int num, int den) {
    double a = round_seconds[num][0], b = round_seconds[den][0];
    for (int rep = 1; rep < kReps; ++rep) {
      a = std::min(a, round_seconds[num][rep]);
      b = std::min(b, round_seconds[den][rep]);
    }
    return a / b;
  };

  // Direct drift-detector cost: replay the stream's own PCA coordinates
  // through a detector in a tight loop. Same work per sample as the
  // attached detector does inside record().
  std::vector<double> projected_rows;
  std::size_t components = 0;
  for (const auto& snapshot : stream) {
    const core::SnapshotClassification detail =
        pipeline.classify_detailed(snapshot);
    components = detail.projected.size();
    projected_rows.insert(projected_rows.end(), detail.projected.begin(),
                          detail.projected.end());
  }
  // One stream pass through the bare detector is ~1 ms — too short to
  // time against scheduler noise — so each timed rep replays the rows
  // several times and reports per-pass seconds. Each drift rep is paired
  // with an adjacent baseline-classify rep: the per-rep ratio cancels
  // slow machine-state drift (frequency scaling) that would skew a
  // ratio of measurements taken in different time windows, and the
  // median over reps discards the fast-noise outliers.
  constexpr int kDriftPasses = 8;
  double drift_seconds = 0.0;
  std::vector<double> pair_ratios(kReps);
  for (int rep = 0; rep < kReps; ++rep) {
    obs::DriftDetector detector(core::make_health_options().drift);
    const double seconds = time_run([&] {
      for (int pass = 0; pass < kDriftPasses; ++pass)
        for (std::size_t i = 0; i < stream.size(); ++i)
          detector.observe(std::span<const double>(
              projected_rows.data() + i * components, components));
    }) / kDriftPasses;
    drift_seconds = rep == 0 ? seconds : std::min(drift_seconds, seconds);
    const double classify_seconds = run_mode(modes[0], mode_labels[0]);
    pair_ratios[static_cast<std::size_t>(rep)] = seconds / classify_seconds;
  }
  std::sort(pair_ratios.begin(), pair_ratios.end());
  const double drift_fraction = pair_ratios[kReps / 2];

  const auto& base_labels = mode_labels[0];
  const auto& health_labels = mode_labels[1];
  const auto& drift_labels = mode_labels[2];

  // The health layer is observational by contract: every pass classifies
  // the stream identically, bit for bit.
  APPCLASS_ENSURES(health_labels == base_labels);
  APPCLASS_ENSURES(drift_labels == base_labels);

  std::printf("%-14s %10s %10s %14s %8s\n", "mode", "samples", "seconds",
              "snapshots/sec", "events");
  for (const auto& row : rows)
    std::printf("%-14s %10zu %10.4f %14.0f %8llu\n", row.mode.c_str(),
                row.samples, row.seconds, row.per_sec(),
                static_cast<unsigned long long>(row.drift_events));

  const double health_overhead = min_ratio(2, 0);
  const double base_min = [&] {
    double best = round_seconds[0][0];
    for (int rep = 1; rep < kReps; ++rep)
      best = std::min(best, round_seconds[0][rep]);
    return best;
  }();
  const double drift_overhead = 1.0 + drift_fraction;
  std::printf("\nhealth overhead (health_drift/baseline): %.3fx\n",
              health_overhead);
  std::printf("end-to-end drift ratio (health_drift/health): %.3fx\n",
              min_ratio(2, 1));
  std::printf(
      "drift overhead (direct: %.1f ns/sample on %.1f ns/sample classify): "
      "%.4fx\n",
      1e9 * drift_seconds / static_cast<double>(stream.size()),
      1e9 * base_min / static_cast<double>(stream.size()), drift_overhead);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"health_overhead\",\n");
  std::fprintf(out, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(out, "  \"health_overhead\": %.4f,\n", health_overhead);
  std::fprintf(out, "  \"drift_overhead\": %.4f,\n", drift_overhead);
  std::fprintf(out, "  \"bit_identical\": true,\n");
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    std::fprintf(out,
                 "    {\"mode\": \"%s\", \"samples\": %zu, \"seconds\": "
                 "%.6f, \"snapshots_per_sec\": %.1f, \"drift_events\": "
                 "%llu}%s\n",
                 row.mode.c_str(), row.samples, row.seconds, row.per_sec(),
                 static_cast<unsigned long long>(row.drift_events),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
