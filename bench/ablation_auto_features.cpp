// Ablation A6: automated vs expert feature selection (paper section 7's
// future work, implemented).
//
// Runs the relevance/redundancy selector over the 33 monitored metrics of
// the real (simulated) training runs, prints what it picks, and compares
// 5-fold cross-validated accuracy against the paper's hand-picked Table-1
// list and the full 33-metric set.
#include <cstdio>
#include <vector>

#include "core/feature_selection.hpp"
#include "core/trainer.hpp"

int main() {
  using namespace appclass;

  const auto pools = core::collect_training_pools();
  const auto data = core::flatten(pools);

  std::printf("Ablation A6: automated feature selection\n\n");
  std::printf("top metrics by ANOVA relevance:\n");
  const auto ranked = core::rank_features(data);
  for (std::size_t i = 0; i < 12; ++i)
    std::printf("  %2zu. %-14s F = %.1f\n", i + 1,
                std::string(metrics::info(ranked[i].metric).name).c_str(),
                ranked[i].relevance);

  const auto auto_selected = core::select_features(
      data, {.target_count = 8, .max_redundancy = 0.97});
  std::printf("\nauto-selected set (%zu metrics):", auto_selected.size());
  for (const auto id : auto_selected)
    std::printf(" %s", std::string(metrics::info(id).name).c_str());
  std::printf("\n\n");

  struct Config {
    const char* name;
    std::vector<metrics::MetricId> selected;
  };
  std::vector<Config> configs;
  configs.push_back({"expert-8 (Table 1)", {}});
  configs.push_back({"auto-selected", auto_selected});
  {
    std::vector<metrics::MetricId> all;
    for (std::size_t i = 0; i < metrics::kMetricCount; ++i)
      all.push_back(static_cast<metrics::MetricId>(i));
    configs.push_back({"all-33", std::move(all)});
  }

  std::printf("%-22s %12s %10s\n", "feature set", "5-fold acc", "macro F1");
  for (const auto& cfg : configs) {
    core::PipelineOptions options;
    options.selected_metrics = cfg.selected;
    const auto cm = core::cross_validate(pools, options, 5, 2027);
    std::printf("%-22s %11.2f%% %10.3f\n", cfg.name, 100.0 * cm.accuracy(),
                cm.macro_f1());
  }
  std::printf("\n(the automated selector recovers the expert list's "
              "discriminative power without\n human input — the paper's "
              "stated prerequisite for online classification)\n");
  return 0;
}
