#include "metrics/schema.hpp"

#include <unordered_map>

#include "common/assert.hpp"

namespace appclass::metrics {

namespace {

constexpr std::array<MetricInfo, kMetricCount> kSchema = {{
    {MetricId::kCpuUser, "cpu_user", "%", MetricKind::kGauge,
     "Percent CPU time in user mode"},
    {MetricId::kCpuSystem, "cpu_system", "%", MetricKind::kGauge,
     "Percent CPU time in system mode"},
    {MetricId::kCpuNice, "cpu_nice", "%", MetricKind::kGauge,
     "Percent CPU time in nice'd user mode"},
    {MetricId::kCpuIdle, "cpu_idle", "%", MetricKind::kGauge,
     "Percent CPU time idle"},
    {MetricId::kCpuWio, "cpu_wio", "%", MetricKind::kGauge,
     "Percent CPU time waiting on I/O completion"},
    {MetricId::kCpuAidle, "cpu_aidle", "%", MetricKind::kGauge,
     "Percent CPU time idle since boot"},
    {MetricId::kCpuNum, "cpu_num", "count", MetricKind::kConstant,
     "Number of CPUs"},
    {MetricId::kCpuSpeed, "cpu_speed", "MHz", MetricKind::kConstant,
     "CPU clock speed"},
    {MetricId::kLoadOne, "load_one", "", MetricKind::kGauge,
     "One-minute load average"},
    {MetricId::kLoadFive, "load_five", "", MetricKind::kGauge,
     "Five-minute load average"},
    {MetricId::kLoadFifteen, "load_fifteen", "", MetricKind::kGauge,
     "Fifteen-minute load average"},
    {MetricId::kProcRun, "proc_run", "count", MetricKind::kGauge,
     "Number of running processes"},
    {MetricId::kProcTotal, "proc_total", "count", MetricKind::kGauge,
     "Total number of processes"},
    {MetricId::kMemFree, "mem_free", "KB", MetricKind::kGauge,
     "Amount of free memory"},
    {MetricId::kMemShared, "mem_shared", "KB", MetricKind::kGauge,
     "Amount of shared memory"},
    {MetricId::kMemBuffers, "mem_buffers", "KB", MetricKind::kGauge,
     "Amount of buffer-cache memory"},
    {MetricId::kMemCached, "mem_cached", "KB", MetricKind::kGauge,
     "Amount of page-cache memory"},
    {MetricId::kMemTotal, "mem_total", "KB", MetricKind::kConstant,
     "Total amount of memory"},
    {MetricId::kSwapFree, "swap_free", "KB", MetricKind::kGauge,
     "Amount of free swap space"},
    {MetricId::kSwapTotal, "swap_total", "KB", MetricKind::kConstant,
     "Total amount of swap space"},
    {MetricId::kBytesIn, "bytes_in", "bytes/s", MetricKind::kRate,
     "Number of bytes per second into the network"},
    {MetricId::kBytesOut, "bytes_out", "bytes/s", MetricKind::kRate,
     "Number of bytes per second out of the network"},
    {MetricId::kPktsIn, "pkts_in", "packets/s", MetricKind::kRate,
     "Packets per second received"},
    {MetricId::kPktsOut, "pkts_out", "packets/s", MetricKind::kRate,
     "Packets per second sent"},
    {MetricId::kDiskTotal, "disk_total", "GB", MetricKind::kConstant,
     "Total disk capacity"},
    {MetricId::kDiskFree, "disk_free", "GB", MetricKind::kGauge,
     "Free disk space"},
    {MetricId::kPartMaxUsed, "part_max_used", "%", MetricKind::kGauge,
     "Utilization of the most-utilized partition"},
    {MetricId::kBoottime, "boottime", "s", MetricKind::kConstant,
     "Machine boot timestamp"},
    {MetricId::kMtu, "mtu", "bytes", MetricKind::kConstant,
     "Network interface MTU"},
    {MetricId::kIoBi, "io_bi", "blocks/s", MetricKind::kRate,
     "Blocks per second received from a block device (vmstat bi)"},
    {MetricId::kIoBo, "io_bo", "blocks/s", MetricKind::kRate,
     "Blocks per second sent to a block device (vmstat bo)"},
    {MetricId::kSwapIn, "swap_in", "KB/s", MetricKind::kRate,
     "Memory swapped in from disk per second (vmstat si)"},
    {MetricId::kSwapOut, "swap_out", "KB/s", MetricKind::kRate,
     "Memory swapped out to disk per second (vmstat so)"},
}};

}  // namespace

std::span<const MetricInfo, kMetricCount> schema() noexcept { return kSchema; }

const MetricInfo& info(MetricId id) noexcept {
  const std::size_t i = index_of(id);
  APPCLASS_ASSERT(i < kMetricCount);
  return kSchema[i];
}

PlausibleRange plausible_range(MetricId id) noexcept {
  // Ranges are unit-driven: every metric in the schema is non-negative,
  // percentages are bounded by 100, and unbounded quantities get a ceiling
  // generous enough for any real machine yet far below corruption-grade
  // garbage (1e9 * a legitimate reading, NaN, Inf).
  const std::string_view unit = info(id).unit;
  if (unit == "%") return {0.0, 100.0};
  if (unit == "MHz") return {0.0, 1.0e6};
  if (unit == "KB" || unit == "bytes/s") return {0.0, 1.0e13};
  if (unit == "KB/s" || unit == "blocks/s" || unit == "packets/s" ||
      unit == "count")
    return {0.0, 1.0e9};
  if (unit == "GB") return {0.0, 1.0e8};
  if (unit == "s") return {0.0, 1.0e10};
  if (unit == "bytes") return {0.0, 1.0e6};  // MTU
  return {0.0, 1.0e5};                       // load averages (unitless)
}

std::optional<MetricId> find_metric(std::string_view name) noexcept {
  static const auto* lookup = [] {
    auto* m = new std::unordered_map<std::string_view, MetricId>();
    for (const auto& mi : kSchema) m->emplace(mi.name, mi.id);
    return m;
  }();
  const auto it = lookup->find(name);
  if (it == lookup->end()) return std::nullopt;
  return it->second;
}

}  // namespace appclass::metrics
