#include "metrics/snapshot.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>

namespace appclass::metrics {

void DataPool::add(Snapshot snapshot) {
  if (node_ip_.empty()) node_ip_ = snapshot.node_ip;
  snapshots_.push_back(std::move(snapshot));
}

SimTime DataPool::start_time() const {
  APPCLASS_EXPECTS(!snapshots_.empty());
  return snapshots_.front().time;
}

SimTime DataPool::end_time() const {
  APPCLASS_EXPECTS(!snapshots_.empty());
  return snapshots_.back().time;
}

linalg::Matrix DataPool::to_metric_major() const {
  linalg::Matrix a(kMetricCount, snapshots_.size());
  for (std::size_t j = 0; j < snapshots_.size(); ++j)
    for (std::size_t i = 0; i < kMetricCount; ++i)
      a(i, j) = snapshots_[j].values[i];
  return a;
}

linalg::Matrix DataPool::to_observation_major() const {
  linalg::Matrix a(snapshots_.size(), kMetricCount);
  for (std::size_t j = 0; j < snapshots_.size(); ++j)
    for (std::size_t i = 0; i < kMetricCount; ++i)
      a(j, i) = snapshots_[j].values[i];
  return a;
}

linalg::Matrix DataPool::to_observation_major(
    std::span<const MetricId> selected) const {
  linalg::Matrix a(snapshots_.size(), selected.size());
  for (std::size_t j = 0; j < snapshots_.size(); ++j)
    for (std::size_t i = 0; i < selected.size(); ++i)
      a(j, i) = snapshots_[j].get(selected[i]);
  return a;
}

std::vector<double> DataPool::series(MetricId id) const {
  std::vector<double> out;
  out.reserve(snapshots_.size());
  for (const auto& s : snapshots_) out.push_back(s.get(id));
  return out;
}

std::string to_csv(const DataPool& pool) {
  std::ostringstream os;
  os << "time,node_ip";
  for (const auto& mi : schema()) os << ',' << mi.name;
  os << '\n';
  os.precision(10);
  for (const auto& s : pool.snapshots()) {
    os << s.time << ',' << s.node_ip;
    for (double v : s.values) os << ',' << v;
    os << '\n';
  }
  return os.str();
}

namespace {

std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = line.find(',', start);
    if (pos == std::string::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

double parse_double(const std::string& cell) {
  double value = 0.0;
  const char* begin = cell.data();
  const char* end = begin + cell.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end)
    throw std::runtime_error("DataPool CSV: bad numeric cell '" + cell + "'");
  return value;
}

}  // namespace

DataPool from_csv(const std::string& csv) {
  std::istringstream is(csv);
  std::string line;
  if (!std::getline(is, line))
    throw std::runtime_error("DataPool CSV: empty input");
  const auto header = split_line(line);
  if (header.size() != kMetricCount + 2)
    throw std::runtime_error("DataPool CSV: expected " +
                             std::to_string(kMetricCount + 2) + " columns");
  DataPool pool;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto cells = split_line(line);
    if (cells.size() != kMetricCount + 2)
      throw std::runtime_error("DataPool CSV: row with wrong column count");
    Snapshot s;
    s.time = static_cast<SimTime>(parse_double(cells[0]));
    s.node_ip = cells[1];
    for (std::size_t i = 0; i < kMetricCount; ++i)
      s.values[i] = parse_double(cells[i + 2]);
    pool.add(std::move(s));
  }
  return pool;
}

}  // namespace appclass::metrics
