#include "metrics/quality.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace appclass::metrics {
namespace {

struct SanitizerMetrics {
  obs::Counter& accepted = obs::MetricsRegistry::global().counter(
      "appclass_sanitizer_accepted_total");
  obs::Counter& repaired = obs::MetricsRegistry::global().counter(
      "appclass_sanitizer_repaired_total");
  obs::Counter& imputed_locf = obs::MetricsRegistry::global().counter(
      "appclass_sanitizer_imputed_total", {{"source", "locf"}});
  obs::Counter& imputed_fallback = obs::MetricsRegistry::global().counter(
      "appclass_sanitizer_imputed_total", {{"source", "fallback"}});
  obs::Counter& rejected_stale = obs::MetricsRegistry::global().counter(
      "appclass_sanitizer_rejected_total", {{"reason", "stale"}});
  obs::Counter& rejected_duplicate = obs::MetricsRegistry::global().counter(
      "appclass_sanitizer_rejected_total", {{"reason", "duplicate"}});
  obs::Counter& quarantined = obs::MetricsRegistry::global().counter(
      "appclass_sanitizer_rejected_total", {{"reason", "quarantine"}});
};

SanitizerMetrics& sanitizer_metrics() {
  static SanitizerMetrics metrics;
  return metrics;
}

}  // namespace

SnapshotSanitizer::SnapshotSanitizer(SanitizerOptions options)
    : options_(options) {
  APPCLASS_EXPECTS(options.staleness_budget_s >= 0);
  APPCLASS_EXPECTS(options.imputation_ttl_s >= 0);
  APPCLASS_EXPECTS(options.max_repair_fraction >= 0.0 &&
                   options.max_repair_fraction <= 1.0);
}

void SnapshotSanitizer::set_fallback(
    const std::array<double, kMetricCount>& values) {
  fallback_ = values;
  has_fallback_ = true;
}

bool SnapshotSanitizer::valid_value(std::size_t metric_index,
                                    double v) const noexcept {
  if (!std::isfinite(v)) return false;
  if (!options_.check_ranges) return true;
  return plausible_range(static_cast<MetricId>(metric_index)).contains(v);
}

double SnapshotSanitizer::impute(const NodeState& node,
                                 std::size_t metric_index,
                                 SimTime now) const noexcept {
  SanitizerMetrics& sm = sanitizer_metrics();
  const SimTime seen = node.last_good_time[metric_index];
  const bool have_locf = seen >= 0;
  const bool fresh =
      have_locf && now - seen <= options_.imputation_ttl_s && now >= seen;
  if (fresh || (have_locf && !has_fallback_)) {
    sm.imputed_locf.inc();
    return node.last_good[metric_index];
  }
  sm.imputed_fallback.inc();
  return has_fallback_ ? fallback_[metric_index] : 0.0;
}

SanitizeResult SnapshotSanitizer::sanitize(const Snapshot& raw) {
  SanitizerMetrics& sm = sanitizer_metrics();
  NodeState& node = nodes_[raw.node_ip];
  SanitizeResult result;
  result.snapshot = raw;

  // Freshness: reject replays from beyond the staleness budget. Mild
  // reordering (inside the budget) is tolerated.
  if (node.seen_any &&
      raw.time < node.newest - options_.staleness_budget_s) {
    result.verdict = SanitizeVerdict::kRejectedStale;
    ++stats_.rejected_stale;
    sm.rejected_stale.inc();
    APPCLASS_LOG_DEBUG("sanitizer.stale", {"node", raw.node_ip},
                       {"time", raw.time}, {"newest", node.newest});
    return result;
  }

  // Dedup by (node, time): duplicated UDP delivery or a replayed
  // announcement inside the budget.
  if (options_.reject_duplicates &&
      node.seen_times.count(raw.time) != 0) {
    result.verdict = SanitizeVerdict::kRejectedDuplicate;
    ++stats_.rejected_duplicate;
    sm.rejected_duplicate.inc();
    return result;
  }

  // Per-metric validation and repair.
  std::size_t invalid = 0;
  std::array<bool, kMetricCount> was_valid{};
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    const double v = raw.values[i];
    if (valid_value(i, v)) {
      was_valid[i] = true;
      continue;
    }
    ++invalid;
    result.snapshot.values[i] = impute(node, i, raw.time);
  }

  if (invalid > 0 &&
      static_cast<double>(invalid) >
          options_.max_repair_fraction * static_cast<double>(kMetricCount)) {
    result.verdict = SanitizeVerdict::kQuarantined;
    result.imputed_metrics = 0;
    ++stats_.quarantined;
    sm.quarantined.inc();
    APPCLASS_LOG_DEBUG("sanitizer.quarantine", {"node", raw.node_ip},
                       {"time", raw.time}, {"invalid_metrics", invalid});
    return result;
  }

  // Accept: update dedup / freshness / last-good state.
  node.seen_any = true;
  if (raw.time > node.newest) {
    node.newest = raw.time;
    // Purge dedup entries that fell out of the staleness window: anything
    // older is rejected as stale before the dedup check runs.
    const SimTime horizon = node.newest - options_.staleness_budget_s;
    node.seen_times.erase(node.seen_times.begin(),
                          node.seen_times.lower_bound(horizon));
  }
  node.seen_times.insert(raw.time);
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    if (!was_valid[i]) continue;
    if (node.last_good_time[i] < 0 || raw.time >= node.last_good_time[i]) {
      node.last_good[i] = raw.values[i];
      node.last_good_time[i] = raw.time;
    }
  }

  result.imputed_metrics = invalid;
  stats_.imputed_values += invalid;
  if (invalid == 0) {
    result.verdict = SanitizeVerdict::kAccepted;
    ++stats_.accepted;
    sm.accepted.inc();
  } else {
    result.verdict = SanitizeVerdict::kRepaired;
    ++stats_.repaired;
    sm.repaired.inc();
  }
  return result;
}

}  // namespace appclass::metrics
