// Snapshot sanitization: the telemetry quality gate.
//
// Ganglia announcements arrive over lossy UDP multicast: values get
// corrupted in flight, daemons replay stale state after restarts, packets
// are duplicated, and individual sensors drop out. `SnapshotSanitizer`
// sits between the monitoring bus and any learning consumer (profiler,
// online classifier) and guarantees that everything downstream is finite,
// fresh, unique per (node, time), and within each metric's plausible
// range — repairing what it can (last-observation-carried-forward with a
// TTL, falling back to training means) and rejecting what it cannot.
// Every decision is counted through the appclass::obs registry so a
// degraded monitoring plane is visible in `--stats` output.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "metrics/snapshot.hpp"

namespace appclass::metrics {

struct SanitizerOptions {
  /// An announcement older than (node's newest accepted time -
  /// staleness_budget_s) is rejected as a stale replay. Mild reordering
  /// inside the budget is accepted.
  SimTime staleness_budget_s = 30;
  /// A repaired metric reuses the node's last good value only while it is
  /// at most this old; beyond the TTL the fallback value is used instead.
  SimTime imputation_ttl_s = 60;
  /// Reject announcements whose (node, time) was already accepted
  /// (duplicate delivery).
  bool reject_duplicates = true;
  /// Validate values against metrics::plausible_range in addition to
  /// finiteness.
  bool check_ranges = true;
  /// When more than this fraction of a snapshot's metrics need repair the
  /// whole snapshot is quarantined (rejected) — too little signal is left
  /// to trust the repair.
  double max_repair_fraction = 0.5;
};

/// What the sanitizer decided about one announcement.
enum class SanitizeVerdict {
  kAccepted,           ///< passed every check untouched
  kRepaired,           ///< accepted after imputing some metrics
  kRejectedStale,      ///< older than the staleness budget (replay)
  kRejectedDuplicate,  ///< (node, time) already accepted
  kQuarantined,        ///< too many metrics needed repair
};

/// True for the verdicts that let the snapshot through.
constexpr bool accepted(SanitizeVerdict v) noexcept {
  return v == SanitizeVerdict::kAccepted || v == SanitizeVerdict::kRepaired;
}

struct SanitizeResult {
  SanitizeVerdict verdict = SanitizeVerdict::kAccepted;
  /// The (possibly repaired) snapshot; meaningful only when accepted().
  Snapshot snapshot;
  /// Metrics imputed in this snapshot (0 when kAccepted).
  std::size_t imputed_metrics = 0;

  bool ok() const noexcept { return metrics::accepted(verdict); }
};

class SnapshotSanitizer {
 public:
  explicit SnapshotSanitizer(SanitizerOptions options = {});

  /// Per-metric fallback values (typically training means) used when a
  /// node has no fresh-enough last good value to carry forward. Without a
  /// fallback, expired imputations reuse the stale last good value anyway
  /// (better than fabricating zeros).
  void set_fallback(const std::array<double, kMetricCount>& values);

  /// Validates one announcement and returns the decision plus the
  /// repaired snapshot. Accepted snapshots update the node's dedup /
  /// freshness / last-good state.
  SanitizeResult sanitize(const Snapshot& raw);

  const SanitizerOptions& options() const noexcept { return options_; }

  /// Local decision tallies (the same numbers are exported globally via
  /// the obs registry; these are per-instance for tests and reports).
  struct Stats {
    std::uint64_t accepted = 0;        ///< clean, untouched
    std::uint64_t repaired = 0;        ///< accepted with imputations
    std::uint64_t imputed_values = 0;  ///< individual metrics imputed
    std::uint64_t rejected_stale = 0;
    std::uint64_t rejected_duplicate = 0;
    std::uint64_t quarantined = 0;

    std::uint64_t rejected() const noexcept {
      return rejected_stale + rejected_duplicate + quarantined;
    }
    std::uint64_t processed() const noexcept {
      return accepted + repaired + rejected();
    }
  };
  const Stats& stats() const noexcept { return stats_; }

 private:
  struct NodeState {
    NodeState() { last_good_time.fill(-1); }

    bool seen_any = false;
    SimTime newest = 0;
    /// Accepted announcement times within the staleness window (dedup).
    std::set<SimTime> seen_times;
    std::array<double, kMetricCount> last_good{};
    /// Time each metric was last observed valid; -1 = never.
    std::array<SimTime, kMetricCount> last_good_time{};
  };

  bool valid_value(std::size_t metric_index, double v) const noexcept;
  double impute(const NodeState& node, std::size_t metric_index,
                SimTime now) const noexcept;

  SanitizerOptions options_;
  std::array<double, kMetricCount> fallback_{};
  bool has_fallback_ = false;
  std::map<std::string, NodeState> nodes_;
  Stats stats_;
};

}  // namespace appclass::metrics
