// Performance snapshots and the per-run data pool A(n x m).
//
// A `Snapshot` is one observation of all 33 metrics on one node at one
// instant; a `DataPool` is the ordered collection of snapshots the profiler
// assembles for one application run between t0 and t1 (the paper's
// A(n x m) with one metric per row and one snapshot per column).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "metrics/schema.hpp"

namespace appclass::metrics {

/// Simulated-time type: seconds since simulation start.
using SimTime = std::int64_t;

/// One observation of all 33 metrics on one node.
struct Snapshot {
  SimTime time = 0;          ///< sampling time, seconds
  std::string node_ip;       ///< IP of the monitored node (VM)
  std::array<double, kMetricCount> values{};

  double get(MetricId id) const noexcept { return values[index_of(id)]; }
  void set(MetricId id, double v) noexcept { values[index_of(id)] = v; }
};

/// The performance data pool for one application run.
///
/// Column-per-snapshot orientation follows the paper's A(n x m); the matrix
/// converters below provide both orientations because the learning code
/// prefers observation-per-row.
class DataPool {
 public:
  DataPool() = default;
  explicit DataPool(std::string node_ip) : node_ip_(std::move(node_ip)) {}

  void add(Snapshot snapshot);

  std::size_t size() const noexcept { return snapshots_.size(); }
  bool empty() const noexcept { return snapshots_.empty(); }
  const Snapshot& operator[](std::size_t i) const { return snapshots_[i]; }
  std::span<const Snapshot> snapshots() const noexcept { return snapshots_; }
  const std::string& node_ip() const noexcept { return node_ip_; }

  /// Start/end sampling times (t0, t1); pool must be non-empty.
  SimTime start_time() const;
  SimTime end_time() const;

  /// The paper's A(n x m): one metric per row, one snapshot per column.
  linalg::Matrix to_metric_major() const;

  /// Observation-per-row matrix (m x n) — the learning code's orientation.
  linalg::Matrix to_observation_major() const;

  /// Observation-per-row matrix restricted to `selected` metrics (m x p).
  linalg::Matrix to_observation_major(std::span<const MetricId> selected) const;

  /// Extracts one metric as a time series of values.
  std::vector<double> series(MetricId id) const;

 private:
  std::string node_ip_;
  std::vector<Snapshot> snapshots_;
};

/// Serializes a pool to CSV (`time,node_ip,<33 metric columns>`).
std::string to_csv(const DataPool& pool);

/// Parses a pool from CSV produced by `to_csv`. Throws std::runtime_error on
/// malformed input (wrong column count, non-numeric cells).
DataPool from_csv(const std::string& csv);

}  // namespace appclass::metrics
