// The monitored metric schema.
//
// The paper's profiler collects "all the default 29 metrics monitored by
// Ganglia" plus 4 metrics added for classification (vmstat's IO blocks
// in/out and swap in/out), for a total of n = 33 performance metrics per
// snapshot. This module pins that schema down: metric identifiers, units,
// and the expert-selected 8-metric subset of Table 1.
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <span>
#include <string_view>

namespace appclass::metrics {

/// All 33 monitored metrics: Ganglia 2.5's 29 default metrics followed by
/// the four vmstat-derived metrics the paper adds to gmond's metric list.
enum class MetricId : std::size_t {
  // --- CPU (Ganglia defaults) ---
  kCpuUser = 0,    ///< % CPU in user mode
  kCpuSystem,      ///< % CPU in system mode
  kCpuNice,        ///< % CPU in nice'd user mode
  kCpuIdle,        ///< % CPU idle
  kCpuWio,         ///< % CPU waiting on I/O
  kCpuAidle,       ///< % CPU idle since boot
  kCpuNum,         ///< number of CPUs
  kCpuSpeed,       ///< CPU clock, MHz
  // --- load / processes ---
  kLoadOne,        ///< 1-minute load average
  kLoadFive,       ///< 5-minute load average
  kLoadFifteen,    ///< 15-minute load average
  kProcRun,        ///< running processes
  kProcTotal,      ///< total processes
  // --- memory ---
  kMemFree,        ///< free memory, KB
  kMemShared,      ///< shared memory, KB
  kMemBuffers,     ///< buffer-cache memory, KB
  kMemCached,      ///< page-cache memory, KB
  kMemTotal,       ///< total memory, KB
  kSwapFree,       ///< free swap, KB
  kSwapTotal,      ///< total swap, KB
  // --- network ---
  kBytesIn,        ///< bytes/s into the network interface
  kBytesOut,       ///< bytes/s out of the network interface
  kPktsIn,         ///< packets/s in
  kPktsOut,        ///< packets/s out
  // --- disk / misc ---
  kDiskTotal,      ///< total disk, GB
  kDiskFree,       ///< free disk, GB
  kPartMaxUsed,    ///< most-utilized partition, %
  kBoottime,       ///< boot timestamp, s
  kMtu,            ///< network interface MTU
  // --- the 4 metrics the paper adds via vmstat ---
  kIoBi,           ///< blocks/s received from block devices (vmstat bi)
  kIoBo,           ///< blocks/s sent to block devices (vmstat bo)
  kSwapIn,         ///< KB/s of memory swapped in from disk (vmstat si)
  kSwapOut,        ///< KB/s of memory swapped out to disk (vmstat so)
};

/// Total number of monitored metrics (the paper's n = 33).
inline constexpr std::size_t kMetricCount = 33;

/// Number of Ganglia default metrics (29) preceding the vmstat additions.
inline constexpr std::size_t kGangliaDefaultCount = 29;

/// How a metric behaves over time; drives how the simulator's gmond
/// publishes it and how traces may be resampled.
enum class MetricKind {
  kGauge,     ///< instantaneous level (e.g. mem_free, load_one)
  kRate,      ///< per-second rate averaged over the sampling interval
  kConstant,  ///< static machine property (cpu_num, mem_total, ...)
};

/// Static description of one metric in the schema.
struct MetricInfo {
  MetricId id;
  std::string_view name;  ///< Ganglia-style metric name, e.g. "cpu_user"
  std::string_view unit;
  MetricKind kind;
  std::string_view description;
};

/// The full ordered schema (index i describes metric with MetricId i).
std::span<const MetricInfo, kMetricCount> schema() noexcept;

/// Inclusive [min, max] interval a metric's value can plausibly occupy on
/// real hardware (e.g. percentages in [0, 100], rates non-negative with a
/// generous physical ceiling). Values outside the interval — including
/// NaN/Inf — indicate sensor corruption, not load, and should be repaired
/// or rejected by telemetry consumers (see metrics/quality.hpp).
struct PlausibleRange {
  double min = 0.0;
  double max = 0.0;

  bool contains(double v) const noexcept { return v >= min && v <= max; }
};

/// The plausible range for one metric, derived from its unit.
PlausibleRange plausible_range(MetricId id) noexcept;

/// Info for a single metric.
const MetricInfo& info(MetricId id) noexcept;

/// Name -> id lookup; returns nullopt for unknown names.
std::optional<MetricId> find_metric(std::string_view name) noexcept;

constexpr std::size_t index_of(MetricId id) noexcept {
  return static_cast<std::size_t>(id);
}

/// The paper's Table 1: the 8 expert-selected metrics, one correlated pair
/// per application class (CPU, network, IO, memory/paging).
inline constexpr std::array<MetricId, 8> kExpertMetrics = {
    MetricId::kCpuSystem, MetricId::kCpuUser,  MetricId::kBytesIn,
    MetricId::kBytesOut,  MetricId::kIoBi,     MetricId::kIoBo,
    MetricId::kSwapIn,    MetricId::kSwapOut,
};

/// The paper's p = 8 (selected metrics after expert preprocessing).
inline constexpr std::size_t kExpertMetricCount = kExpertMetrics.size();

}  // namespace appclass::metrics
