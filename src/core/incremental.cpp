#include "core/incremental.hpp"

#include "common/assert.hpp"

namespace appclass::core {

IncrementalTrainer::IncrementalTrainer(PipelineOptions pipeline_options,
                                       IncrementalOptions options)
    : pipeline_options_(std::move(pipeline_options)),
      options_(options),
      rng_(options.seed) {
  APPCLASS_EXPECTS(options.reservoir_per_class >= 1);
}

void IncrementalTrainer::add(const metrics::Snapshot& snapshot,
                             ApplicationClass label) {
  ++seen_;
  const std::size_t c = index_of(label);
  auto& reservoir = reservoirs_[c];
  const std::size_t offered = offered_[c]++;
  if (reservoir.size() < options_.reservoir_per_class) {
    reservoir.push_back(snapshot);
    return;
  }
  // Classic reservoir sampling: the (n+1)-th item replaces a uniformly
  // random slot with probability R/(n+1).
  const std::uint64_t slot = rng_.uniform_index(offered + 1);
  if (slot < reservoir.size())
    reservoir[static_cast<std::size_t>(slot)] = snapshot;
}

void IncrementalTrainer::add_pool(const metrics::DataPool& pool,
                                  ApplicationClass label) {
  for (const auto& s : pool.snapshots()) add(s, label);
}

std::size_t IncrementalTrainer::retained(ApplicationClass cls) const {
  return reservoirs_[index_of(cls)].size();
}

bool IncrementalTrainer::ready() const {
  int classes = 0;
  std::size_t total = 0;
  for (const auto& r : reservoirs_) {
    classes += !r.empty();
    total += r.size();
  }
  return classes >= 2 && total >= pipeline_options_.knn.k;
}

ClassificationPipeline IncrementalTrainer::train() const {
  APPCLASS_EXPECTS(ready());
  std::vector<LabeledPool> pools;
  for (std::size_t c = 0; c < kClassCount; ++c) {
    if (reservoirs_[c].empty()) continue;
    metrics::DataPool pool;
    for (const auto& s : reservoirs_[c]) pool.add(s);
    pools.push_back(LabeledPool{std::move(pool), class_from_index(c)});
  }
  ClassificationPipeline pipeline(pipeline_options_);
  pipeline.train(pools);
  return pipeline;
}

}  // namespace appclass::core
