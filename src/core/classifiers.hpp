// Alternative snapshot classifiers.
//
// The paper picks plain k-NN on the strength of Kapadia's comparison
// against locally-weighted methods. To make that design choice testable,
// this module provides a common interface plus two alternatives:
//
//   * NearestCentroidClassifier — one prototype per class (the cheapest
//     reasonable baseline; O(#classes) per query);
//   * WeightedKnnClassifier — k-NN with inverse-distance vote weights
//     (the locally-weighted flavour of the same idea).
//
// All operate in the same projected feature space the pipeline produces;
// the `ablation_classifiers` bench compares them on held-out runs.
#pragma once

#include <array>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/knn.hpp"

namespace appclass::core {

/// Interface over point classifiers in the (projected) feature space.
class SnapshotClassifier {
 public:
  virtual ~SnapshotClassifier() = default;
  virtual std::string_view name() const = 0;
  virtual void train(linalg::Matrix points,
                     std::vector<ApplicationClass> labels) = 0;
  virtual ApplicationClass classify(std::span<const double> point) const = 0;

  /// Classifies every row.
  std::vector<ApplicationClass> classify_all(const linalg::Matrix& points)
      const;
};

/// Assigns the class of the nearest per-class mean.
class NearestCentroidClassifier final : public SnapshotClassifier {
 public:
  std::string_view name() const override { return "nearest-centroid"; }
  void train(linalg::Matrix points,
             std::vector<ApplicationClass> labels) override;
  ApplicationClass classify(std::span<const double> point) const override;

  /// Centroid of a class (valid after train; class must have had samples).
  std::span<const double> centroid(ApplicationClass cls) const;
  bool has_class(ApplicationClass cls) const {
    return counts_[index_of(cls)] > 0;
  }

 private:
  std::array<std::vector<double>, kClassCount> centroids_;
  std::array<std::size_t, kClassCount> counts_{};
  std::size_t dims_ = 0;
};

/// k-NN with votes weighted by 1/(distance + epsilon).
class WeightedKnnClassifier final : public SnapshotClassifier {
 public:
  explicit WeightedKnnClassifier(std::size_t k = 3, double epsilon = 1e-9);
  std::string_view name() const override { return "weighted-knn"; }
  void train(linalg::Matrix points,
             std::vector<ApplicationClass> labels) override;
  ApplicationClass classify(std::span<const double> point) const override;

 private:
  std::size_t k_;
  double epsilon_;
  linalg::Matrix points_;
  std::vector<ApplicationClass> labels_;
};

/// Adapter presenting the paper's majority-vote KnnClassifier through the
/// common interface.
class MajorityKnnAdapter final : public SnapshotClassifier {
 public:
  explicit MajorityKnnAdapter(KnnOptions options = {}) : knn_(options) {}
  std::string_view name() const override { return "majority-knn"; }
  void train(linalg::Matrix points,
             std::vector<ApplicationClass> labels) override {
    knn_.train(std::move(points), std::move(labels));
  }
  ApplicationClass classify(std::span<const double> point) const override {
    return knn_.query(point).labels.front();
  }

 private:
  KnnClassifier knn_;
};

}  // namespace appclass::core
