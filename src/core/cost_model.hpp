// Cost-based scheduling model (paper section 4.4).
//
//   UnitApplicationCost = α·cpu% + β·mem% + γ·io% + δ·net% + ε·idle%
//
// where α..ε are per-resource unit prices set by the resource provider and
// the percentages are the application's class composition. The total price
// of a run is the unit cost times its execution time.
#pragma once

#include <array>

#include "core/appdb.hpp"
#include "core/composition.hpp"

namespace appclass::core {

/// Per-resource unit prices (cost per second of execution attributed to
/// each behaviour class).
struct UnitCosts {
  double cpu = 1.0;      // α
  double memory = 1.0;   // β
  double io = 1.0;       // γ
  double network = 1.0;  // δ
  double idle = 0.0;     // ε

  double for_class(ApplicationClass c) const noexcept {
    switch (c) {
      case ApplicationClass::kCpu: return cpu;
      case ApplicationClass::kMemory: return memory;
      case ApplicationClass::kIo: return io;
      case ApplicationClass::kNetwork: return network;
      case ApplicationClass::kIdle: return idle;
    }
    return 0.0;
  }
};

class CostModel {
 public:
  explicit CostModel(UnitCosts costs = {}) : costs_(costs) {}

  const UnitCosts& costs() const noexcept { return costs_; }

  /// The paper's UnitApplicationCost: price per second of execution for an
  /// application with the given class composition.
  double unit_cost(const ClassComposition& composition) const;

  /// Total price of one recorded run (unit cost x elapsed time).
  double run_cost(const RunRecord& run) const;

  /// Expected price of a future run given an aggregated profile (mean
  /// composition x mean elapsed time).
  double expected_cost(const ApplicationProfile& profile) const;

 private:
  UnitCosts costs_;
};

}  // namespace appclass::core
