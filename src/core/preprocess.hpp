// Data preprocessing (paper section 4.2.1).
//
// Reduces the raw 33-metric pool A(n x m) to the expert-selected 8 metrics
// of Table 1 and normalizes each to zero mean and unit variance. The
// normalization is *fitted on training data* and replayed on test data, so
// train and test live in the same feature space.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/stats.hpp"
#include "metrics/schema.hpp"
#include "metrics/snapshot.hpp"

namespace appclass::core {

class Preprocessor {
 public:
  /// Uses the paper's Table-1 expert metric list by default; pass a custom
  /// selection for feature-set ablations (e.g. all 33 metrics).
  explicit Preprocessor(std::vector<metrics::MetricId> selected = {
                            metrics::kExpertMetrics.begin(),
                            metrics::kExpertMetrics.end()});

  /// Number of selected metrics (the paper's p).
  std::size_t dimension() const noexcept { return selected_.size(); }
  std::span<const metrics::MetricId> selected() const noexcept {
    return selected_;
  }

  /// Extracts the selected metrics from a pool, one observation per row
  /// (m x p), without normalizing.
  linalg::Matrix extract(const metrics::DataPool& pool) const;

  /// Fits the zero-mean/unit-variance normalization on `samples`
  /// (observations in rows over the selected metrics).
  void fit(const linalg::Matrix& samples);

  /// Convenience: extract + fit on a pool.
  void fit(const metrics::DataPool& pool);

  bool fitted() const noexcept { return fitted_; }
  const linalg::ColumnStats& stats() const;

  /// Applies the fitted normalization to pre-extracted samples (m x p).
  linalg::Matrix transform(const linalg::Matrix& samples) const;

  /// Extract + normalize a pool: the paper's A'(p x m) step (returned
  /// observation-major, m x p).
  linalg::Matrix transform(const metrics::DataPool& pool) const;

  /// Extract + normalize a single snapshot.
  std::vector<double> transform(const metrics::Snapshot& snapshot) const;

  /// Allocation-free form of transform(Snapshot): writes the normalized
  /// row into caller-owned storage (`row.size()` must equal dimension()).
  /// Identical arithmetic — the vector overload delegates here.
  void transform_into(const metrics::Snapshot& snapshot,
                      std::span<double> row) const;

  /// Rebuilds a fitted preprocessor from persisted state (serialization).
  static Preprocessor restore(std::vector<metrics::MetricId> selected,
                              linalg::ColumnStats stats);

 private:
  std::vector<metrics::MetricId> selected_;
  linalg::ColumnStats stats_;
  bool fitted_ = false;
};

}  // namespace appclass::core
