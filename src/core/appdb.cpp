#include "core/appdb.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>

#include "common/assert.hpp"

namespace appclass::core {

void ApplicationDatabase::record(RunRecord run) {
  APPCLASS_EXPECTS(!run.application.empty());
  runs_.push_back(std::move(run));
}

std::optional<ApplicationProfile> ApplicationDatabase::profile(
    const std::string& application, const std::string& config) const {
  ApplicationProfile p;
  p.application = application;
  p.config = config;
  std::array<std::size_t, kClassCount> class_votes{};
  for (const auto& r : runs_) {
    if (r.application != application || r.config != config) continue;
    ++p.runs;
    for (std::size_t c = 0; c < kClassCount; ++c)
      p.mean_fractions[c] += r.composition.fractions()[c];
    ++class_votes[index_of(r.application_class)];
    p.elapsed.add(static_cast<double>(r.elapsed_seconds));
  }
  if (p.runs == 0) return std::nullopt;
  for (double& f : p.mean_fractions) f /= static_cast<double>(p.runs);
  std::size_t best = 0;
  for (std::size_t c = 1; c < kClassCount; ++c)
    if (class_votes[c] > class_votes[best]) best = c;
  p.typical_class = class_from_index(best);
  return p;
}

std::vector<ApplicationProfile> ApplicationDatabase::all_profiles() const {
  std::vector<ApplicationProfile> out;
  std::map<std::pair<std::string, std::string>, bool> seen;
  for (const auto& r : runs_) {
    const auto key = std::make_pair(r.application, r.config);
    if (seen.contains(key)) continue;
    seen[key] = true;
    out.push_back(*profile(r.application, r.config));
  }
  return out;
}

std::optional<ApplicationClass> ApplicationDatabase::typical_class(
    const std::string& application, const std::string& config) const {
  const auto p = profile(application, config);
  if (!p) return std::nullopt;
  return p->typical_class;
}

std::string ApplicationDatabase::to_csv() const {
  std::ostringstream os;
  os << "application,config,class,elapsed_seconds,samples";
  for (const auto& name : kClassNames) os << ",frac_" << name;
  os << '\n';
  os.precision(8);
  for (const auto& r : runs_) {
    os << r.application << ',' << r.config << ','
       << to_string(r.application_class) << ',' << r.elapsed_seconds << ','
       << r.samples;
    for (double f : r.composition.fractions()) os << ',' << f;
    os << '\n';
  }
  return os.str();
}

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = line.find(',', start);
    if (pos == std::string::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
}

double parse_num(const std::string& s) {
  double v = 0.0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || p != s.data() + s.size())
    throw std::runtime_error("ApplicationDatabase CSV: bad number '" + s +
                             "'");
  return v;
}

}  // namespace

ApplicationDatabase ApplicationDatabase::from_csv(const std::string& csv) {
  std::istringstream is(csv);
  std::string line;
  if (!std::getline(is, line))
    throw std::runtime_error("ApplicationDatabase CSV: empty input");
  ApplicationDatabase db;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto cells = split_csv_line(line);
    if (cells.size() != 5 + kClassCount)
      throw std::runtime_error("ApplicationDatabase CSV: bad column count");
    RunRecord r;
    r.application = cells[0];
    r.config = cells[1];
    const auto cls = class_from_string(cells[2]);
    if (!cls)
      throw std::runtime_error("ApplicationDatabase CSV: unknown class '" +
                               cells[2] + "'");
    r.application_class = *cls;
    r.elapsed_seconds = static_cast<std::int64_t>(parse_num(cells[3]));
    r.samples = static_cast<std::size_t>(parse_num(cells[4]));
    std::array<double, kClassCount> fr{};
    for (std::size_t c = 0; c < kClassCount; ++c)
      fr[c] = parse_num(cells[5 + c]);
    r.composition = ClassComposition::from_fractions(fr, r.samples);
    db.record(std::move(r));
  }
  return db;
}

}  // namespace appclass::core
