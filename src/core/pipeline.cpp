#include "core/pipeline.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/assert.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace appclass::core {
namespace {

/// Stage histograms and counters, resolved once per process so the hot
/// path never touches the registry lock.
struct PipelineMetrics {
  obs::Histogram& preprocess = obs::stage_histogram("preprocess");
  obs::Histogram& pca_fit = obs::stage_histogram("pca_fit");
  obs::Histogram& pca_project = obs::stage_histogram("pca_project");
  obs::Histogram& knn_query = obs::stage_histogram("knn_query");
  obs::Histogram& vote = obs::stage_histogram("vote");
  /// Wall time of one engine shard (PCA-projection or k-NN slice); its
  /// count exposes how many shards a run actually fanned out.
  obs::Histogram& shard = obs::stage_histogram("engine_shard");
  obs::Counter& trains = obs::MetricsRegistry::global().counter(
      "appclass_pipeline_train_total");
  obs::Counter& pools = obs::MetricsRegistry::global().counter(
      "appclass_pipeline_classify_pools_total");
  obs::Counter& snapshots = obs::MetricsRegistry::global().counter(
      "appclass_pipeline_snapshots_classified_total");
};

PipelineMetrics& pipeline_metrics() {
  static PipelineMetrics metrics;
  return metrics;
}

}  // namespace

double ClassificationResult::mean_confidence() const {
  if (confidences.empty()) return 0.0;
  double sum = 0.0;
  for (const double c : confidences) sum += c;
  return sum / static_cast<double>(confidences.size());
}

double ClassificationResult::novel_fraction() const {
  if (novelty_threshold <= 0.0 || novelty.empty()) return 0.0;
  std::size_t novel = 0;
  for (const double d : novelty)
    if (d > novelty_threshold) ++novel;
  return static_cast<double>(novel) / static_cast<double>(novelty.size());
}

namespace {

/// Scratch slots beyond the workers: the cooperative caller inside
/// parallel_for plus headroom for a few independent caller threads
/// before acquire() falls back to overflow allocation.
constexpr std::size_t kScratchCallerSlots = 4;

}  // namespace

SnapshotScratchPool::SnapshotScratchPool(std::size_t slots)
    : slots_(std::max<std::size_t>(slots, 1)) {}

SnapshotScratchPool::Lease::Lease(Lease&& other) noexcept
    : pool_(other.pool_),
      slot_(other.slot_),
      overflow_(std::move(other.overflow_)),
      scratch_(other.scratch_) {
  other.pool_ = nullptr;
  other.scratch_ = nullptr;
}

SnapshotScratchPool::Lease::~Lease() {
  if (pool_ != nullptr)
    pool_->slots_[slot_].busy.store(false, std::memory_order_release);
}

SnapshotScratchPool::Lease SnapshotScratchPool::acquire() {
  // One probe hits a worker's own warm slot in the common case; the scan
  // only proceeds under slot-hint collisions (several non-pool threads).
  const std::size_t hint = engine::current_worker_slot() % slots_.size();
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const std::size_t idx = (hint + i) % slots_.size();
    bool expected = false;
    if (slots_[idx].busy.compare_exchange_strong(
            expected, true, std::memory_order_acquire,
            std::memory_order_relaxed))
      return Lease(this, idx, &slots_[idx].scratch);
  }
  overflows_.fetch_add(1, std::memory_order_relaxed);
  return Lease(std::make_unique<SnapshotScratch>());
}

ClassificationPipeline::ClassificationPipeline(PipelineOptions options)
    : options_(options),
      preprocessor_(options.selected_metrics.empty()
                        ? Preprocessor{}
                        : Preprocessor{options.selected_metrics}),
      pca_(options.pca),
      knn_(options.knn),
      context_(engine::ExecutionContext::make(options.parallelism)),
      scratch_pool_(std::make_shared<SnapshotScratchPool>(
          context_->parallelism() + kScratchCallerSlots)) {}

void ClassificationPipeline::set_parallelism(std::size_t parallelism) {
  options_.parallelism = parallelism;
  context_ = engine::ExecutionContext::make(parallelism);
  scratch_pool_ = std::make_shared<SnapshotScratchPool>(
      context_->parallelism() + kScratchCallerSlots);
}

void ClassificationPipeline::train(const std::vector<LabeledPool>& training) {
  APPCLASS_EXPECTS(!training.empty());
  PipelineMetrics& pm = pipeline_metrics();

  obs::TraceSpan root_span("train");
  root_span.add_attr({"pools", training.size()});
  root_span.add_attr({"parallelism", context_->parallelism()});

  // Extract the raw selected metrics of every training pool — one task
  // per pool on the context — then stack them serially in pool order, so
  // the training matrix is independent of the thread count.
  linalg::Matrix normalized;
  std::vector<ApplicationClass> labels;
  {
    obs::TraceSpan stage_span("preprocess", &pm.preprocess);
    obs::ScopedTimer preprocess_timer(pm.preprocess);
    std::vector<linalg::Matrix> raws(training.size());
    context_->for_each(training.size(), [&](std::size_t p) {
      APPCLASS_EXPECTS(!training[p].pool.empty());
      raws[p] = preprocessor_.extract(training[p].pool);
    });
    linalg::Matrix stacked;
    for (std::size_t p = 0; p < training.size(); ++p) {
      for (std::size_t r = 0; r < raws[p].rows(); ++r) {
        stacked.append_row(raws[p].row(r));
        labels.push_back(training[p].label);
      }
    }

    preprocessor_.fit(stacked);
    normalized = preprocessor_.transform(stacked);
    preprocess_timer.stop();
  }

  {
    obs::TraceSpan stage_span("pca_fit", &pm.pca_fit);
    obs::ScopedTimer fit_timer(pm.pca_fit);
    pca_.fit(normalized);
    fit_timer.stop();
  }

  linalg::Matrix projected(normalized.rows(), pca_.components());
  {
    obs::TraceSpan stage_span("pca_project", &pm.pca_project);
    obs::ScopedTimer project_timer(pm.pca_project);
    context_->for_shards(
        normalized.rows(), engine::kDefaultGrain,
        [&](std::size_t begin, std::size_t end, std::size_t) {
          obs::TraceSpan shard_span("engine_shard", &pm.shard);
          if (shard_span.recording()) {
            shard_span.add_attr({"stage", "pca_project"});
            shard_span.add_attr({"begin", begin});
            shard_span.add_attr({"end", end});
          }
          obs::ScopedTimer shard_timer(pm.shard);
          pca_.transform_rows(normalized, begin, end, projected);
        });
    project_timer.stop();
  }

  knn_.train(std::move(projected), std::move(labels));
  trained_ = true;
  pm.trains.inc();
  APPCLASS_LOG_INFO("pipeline.train",
                    {"training_snapshots", knn_.training_size()},
                    {"input_dims", pca_.input_dimension()},
                    {"components", pca_.components()},
                    {"captured_variance", pca_.captured_variance()},
                    {"parallelism", context_->parallelism()});
}

ClassificationPipeline ClassificationPipeline::restore(
    Preprocessor preprocessor, Pca pca, KnnClassifier knn) {
  APPCLASS_EXPECTS(preprocessor.fitted());
  APPCLASS_EXPECTS(pca.fitted());
  APPCLASS_EXPECTS(knn.trained());
  APPCLASS_EXPECTS(pca.input_dimension() == preprocessor.dimension());
  APPCLASS_EXPECTS(knn.dimension() == pca.components());
  ClassificationPipeline pipeline;
  pipeline.preprocessor_ = std::move(preprocessor);
  pipeline.pca_ = std::move(pca);
  pipeline.knn_ = std::move(knn);
  pipeline.trained_ = true;
  return pipeline;
}

ClassificationResult ClassificationPipeline::classify(
    const metrics::DataPool& pool) const {
  APPCLASS_EXPECTS(trained_);
  APPCLASS_EXPECTS(!pool.empty());
  PipelineMetrics& pm = pipeline_metrics();
  ClassificationResult result;
  result.novelty_threshold = options_.novelty_threshold;

  // Root span of the trace: one classified pool. The stage spans below
  // open as its children; the engine_shard spans inside the for_shards
  // lambdas parent to the stage spans even when the pool steals the
  // shard onto another worker (the ThreadPool adopts the submitter's
  // context around every task).
  obs::TraceSpan root_span("classify");
  if (root_span.recording()) {
    root_span.add_attr({"node_ip", pool.node_ip()});
    root_span.add_attr({"snapshots", pool.size()});
    root_span.add_attr({"parallelism", context_->parallelism()});
  }

  linalg::Matrix normalized;
  {
    obs::TraceSpan stage_span("preprocess", &pm.preprocess);
    obs::ScopedTimer preprocess_timer(pm.preprocess);
    normalized = preprocessor_.transform(pool);
    preprocess_timer.stop();
  }

  const std::size_t m = normalized.rows();

  {
    obs::TraceSpan stage_span("pca_project", &pm.pca_project);
    obs::ScopedTimer project_timer(pm.pca_project);
    result.projected = linalg::Matrix(m, pca_.components());
    context_->for_shards(
        m, engine::kDefaultGrain,
        [&](std::size_t begin, std::size_t end, std::size_t) {
          obs::TraceSpan shard_span("engine_shard", &pm.shard);
          if (shard_span.recording()) {
            shard_span.add_attr({"stage", "pca_project"});
            shard_span.add_attr({"begin", begin});
            shard_span.add_attr({"end", end});
          }
          obs::ScopedTimer shard_timer(pm.shard);
          pca_.transform_rows(normalized, begin, end, result.projected);
        });
    project_timer.stop();
  }

  // Sharded k-NN: every shard answers its rows into pre-sized slots with
  // its own kernel scratch; one clock pair for the whole fan-out, the
  // histogram charged the mean per snapshot.
  const QueryOptions query_options{
      .vote_shares = true,
      .neighbors = false,
      .novelty = options_.novelty_threshold > 0.0};
  QueryResult queries = knn_.make_result(m, query_options);
  {
    obs::TraceSpan stage_span("knn_query", &pm.knn_query);
    if (stage_span.recording()) {
      stage_span.add_attr({"k", knn_.k()});
      stage_span.add_attr({"training_size", knn_.training_size()});
    }
    obs::ScopedTimer knn_timer(pm.knn_query);
    context_->for_shards(
        m, engine::kDefaultGrain,
        [&](std::size_t begin, std::size_t end, std::size_t) {
          obs::TraceSpan shard_span("engine_shard", &pm.shard);
          obs::ScopedTimer shard_timer(pm.shard);
          // Pooled per-worker scratch: each shard leases the slot warmed
          // by previous shards on the same worker instead of sizing a
          // fresh one.
          auto scratch = scratch_pool_->acquire();
          const std::uint64_t pruned_before = scratch->kernel.pruned_tiles;
          knn_.query_rows(result.projected, begin, end, query_options,
                          queries, scratch->kernel);
          shard_timer.stop();
          if (shard_span.recording()) {
            shard_span.add_attr({"stage", "knn_query"});
            shard_span.add_attr({"begin", begin});
            shard_span.add_attr({"end", end});
            shard_span.add_attr(
                {"pruned_tiles",
                 scratch->kernel.pruned_tiles - pruned_before});
          }
        });
    knn_timer.stop_and_observe_per_item(m);
  }

  {
    obs::TraceSpan stage_span("vote", &pm.vote);
    obs::ScopedTimer vote_timer(pm.vote);
    result.class_vector = std::move(queries.labels);
    result.confidences = std::move(queries.vote_shares);
    result.novelty = std::move(queries.novelty);
    result.composition = ClassComposition(result.class_vector);
    result.application_class = result.composition.dominant();
    vote_timer.stop();
    if (stage_span.recording()) {
      // Margin of the winning class over the runner-up in the class
      // composition — a 0-margin pool sat on a vote knife edge.
      double top = 0.0;
      double second = 0.0;
      for (const double f : result.composition.fractions()) {
        if (f > top) {
          second = top;
          top = f;
        } else if (f > second) {
          second = f;
        }
      }
      stage_span.add_attr({"vote_margin", top - second});
    }
  }

  pm.pools.inc();
  pm.snapshots.inc(m);
  APPCLASS_LOG_DEBUG("pipeline.classify", {"snapshots", m},
                     {"class", to_string(result.application_class)},
                     {"mean_confidence", result.mean_confidence()});
  return result;
}

ApplicationClass ClassificationPipeline::classify(
    const metrics::Snapshot& snapshot) const {
  APPCLASS_EXPECTS(trained_);
  // Online hot path: a single relaxed counter increment (a few ns) — the
  // stage wall-time histograms come from the batch path, keeping the
  // per-snapshot latency unperturbed. The query goes straight to the
  // blocked kernel with thread-local scratch — no per-query result
  // allocation, same arithmetic as query().
  pipeline_metrics().snapshots.inc();
  auto scratch = scratch_pool_->acquire();
  scratch->row.resize(preprocessor_.dimension());
  preprocessor_.transform_into(snapshot, scratch->row);
  scratch->projected.resize(pca_.components());
  pca_.transform_into(scratch->row, scratch->projected.data(), 1);
  const engine::BlockedKnnIndex& index = knn_.index();
  return index.vote(index.top_k(scratch->projected, scratch->kernel)).label;
}

SnapshotClassification ClassificationPipeline::classify_detailed(
    const metrics::Snapshot& snapshot) const {
  APPCLASS_EXPECTS(trained_);
  // Identical arithmetic to classify(snapshot) — same transform chain,
  // same kernel, same vote — plus the evidence the vote already holds:
  // the hits carry the margin and novelty distance, the projection is
  // the drift-detector feed. Keeping the two paths line-for-line in sync
  // is what the bit-identity bench guard checks.
  pipeline_metrics().snapshots.inc();
  SnapshotClassification out;
  out.projected = pca_.transform(preprocessor_.transform(snapshot));
  auto scratch = scratch_pool_->acquire();
  const engine::BlockedKnnIndex& index = knn_.index();
  const auto hits = index.top_k(out.projected, scratch->kernel);
  const engine::BlockedKnnIndex::Vote vote = index.vote(hits);
  out.label = vote.label;
  out.confidence = vote.share;

  // Margin: winner minus runner-up vote count over k. Unanimous = 1.
  std::array<int, kClassCount> votes{};
  for (const auto& hit : hits) ++votes[index_of(index.labels()[hit.index])];
  const int winner = votes[index_of(vote.label)];
  int runner_up = 0;
  for (std::size_t c = 0; c < kClassCount; ++c) {
    if (c == index_of(vote.label)) continue;
    runner_up = std::max(runner_up, votes[c]);
  }
  out.vote_margin = static_cast<double>(winner - runner_up) /
                    static_cast<double>(hits.size());

  // Hits are ascending by distance; squared L2 under Euclidean.
  out.novelty = index.metric() == engine::DistanceMetric::kEuclidean
                    ? std::sqrt(hits.front().distance)
                    : hits.front().distance;
  return out;
}

void ClassificationPipeline::begin_snapshot_batch(SnapshotBatch& batch,
                                                  std::size_t count,
                                                  bool detailed) const {
  APPCLASS_EXPECTS(trained_);
  // One batched bump of the same counter classify(snapshot) ticks per
  // call — identical totals, no per-snapshot atomic on the drain path.
  pipeline_metrics().snapshots.inc(count);
  batch.queries_.reset(pca_.components(), count);
  // Grow-only: shrinking would free the details' projected vectors and
  // reintroduce per-drain allocation; count_ bounds the valid range.
  if (batch.labels_.size() < count) batch.labels_.resize(count);
  if (detailed && batch.details_.size() < count) batch.details_.resize(count);
  batch.count_ = count;
  batch.detailed_ = detailed;
}

void ClassificationPipeline::classify_snapshot_into(
    const metrics::Snapshot& snapshot, SnapshotBatch& batch, std::size_t i,
    SnapshotScratch& scratch) const {
  APPCLASS_EXPECTS(trained_);
  APPCLASS_EXPECTS(i < batch.count_);
  // Same transform chain, kernel arithmetic, and vote as
  // classify(snapshot) / classify_detailed(snapshot) — the query point
  // just lands in the batch's SoA block (strided) instead of a dense
  // temporary, which cannot change any per-feature arithmetic. (The
  // snapshot counter was bumped for the whole batch by
  // begin_snapshot_batch.)
  scratch.row.resize(preprocessor_.dimension());
  preprocessor_.transform_into(snapshot, scratch.row);
  pca_.transform_into(scratch.row, batch.queries_.point(i),
                      batch.queries_.stride());

  const engine::BlockedKnnIndex& index = knn_.index();
  const auto hits = index.top_k(batch.queries_, i, scratch.kernel);
  const engine::BlockedKnnIndex::Vote vote = index.vote(hits);
  batch.labels_[i] = vote.label;
  if (!batch.detailed_) return;

  SnapshotClassification& detail = batch.details_[i];
  detail.label = vote.label;
  detail.confidence = vote.share;
  // Margin: winner minus runner-up vote count over k — line-for-line
  // classify_detailed().
  std::array<int, kClassCount> votes{};
  for (const auto& hit : hits) ++votes[index_of(index.labels()[hit.index])];
  const int winner = votes[index_of(vote.label)];
  int runner_up = 0;
  for (std::size_t c = 0; c < kClassCount; ++c) {
    if (c == index_of(vote.label)) continue;
    runner_up = std::max(runner_up, votes[c]);
  }
  detail.vote_margin = static_cast<double>(winner - runner_up) /
                       static_cast<double>(hits.size());
  detail.novelty = index.metric() == engine::DistanceMetric::kEuclidean
                       ? std::sqrt(hits.front().distance)
                       : hits.front().distance;
  detail.projected.resize(pca_.components());
  for (std::size_t j = 0; j < detail.projected.size(); ++j)
    detail.projected[j] = batch.queries_.at(i, j);
}

linalg::Matrix ClassificationPipeline::project(
    const metrics::DataPool& pool) const {
  APPCLASS_EXPECTS(trained_);
  return pca_.transform(preprocessor_.transform(pool));
}

}  // namespace appclass::core
