#include "core/pipeline.hpp"

#include "common/assert.hpp"

namespace appclass::core {

ClassificationPipeline::ClassificationPipeline(PipelineOptions options)
    : options_(options),
      preprocessor_(options.selected_metrics.empty()
                        ? Preprocessor{}
                        : Preprocessor{options.selected_metrics}),
      pca_(options.pca),
      knn_(options.knn) {}

void ClassificationPipeline::train(const std::vector<LabeledPool>& training) {
  APPCLASS_EXPECTS(!training.empty());

  // Stack the raw selected metrics of every training pool.
  linalg::Matrix stacked;
  std::vector<ApplicationClass> labels;
  for (const auto& lp : training) {
    APPCLASS_EXPECTS(!lp.pool.empty());
    const linalg::Matrix raw = preprocessor_.extract(lp.pool);
    for (std::size_t r = 0; r < raw.rows(); ++r) {
      stacked.append_row(raw.row(r));
      labels.push_back(lp.label);
    }
  }

  preprocessor_.fit(stacked);
  const linalg::Matrix normalized = preprocessor_.transform(stacked);
  pca_.fit(normalized);
  knn_.train(pca_.transform(normalized), std::move(labels));
  trained_ = true;
}

ClassificationPipeline ClassificationPipeline::restore(
    Preprocessor preprocessor, Pca pca, KnnClassifier knn) {
  APPCLASS_EXPECTS(preprocessor.fitted());
  APPCLASS_EXPECTS(pca.fitted());
  APPCLASS_EXPECTS(knn.trained());
  APPCLASS_EXPECTS(pca.input_dimension() == preprocessor.dimension());
  APPCLASS_EXPECTS(knn.dimension() == pca.components());
  ClassificationPipeline pipeline;
  pipeline.preprocessor_ = std::move(preprocessor);
  pipeline.pca_ = std::move(pca);
  pipeline.knn_ = std::move(knn);
  pipeline.trained_ = true;
  return pipeline;
}

ClassificationResult ClassificationPipeline::classify(
    const metrics::DataPool& pool) const {
  APPCLASS_EXPECTS(trained_);
  APPCLASS_EXPECTS(!pool.empty());
  ClassificationResult result;
  result.projected = pca_.transform(preprocessor_.transform(pool));
  result.class_vector.reserve(result.projected.rows());
  result.confidences.reserve(result.projected.rows());
  double confidence_sum = 0.0;
  std::size_t novel = 0;
  for (std::size_t r = 0; r < result.projected.rows(); ++r) {
    const auto labeled =
        knn_.classify_with_confidence(result.projected.row(r));
    result.class_vector.push_back(labeled.label);
    result.confidences.push_back(labeled.confidence);
    confidence_sum += labeled.confidence;
    if (options_.novelty_threshold > 0.0) {
      const double distance =
          knn_.nearest_distance(result.projected.row(r));
      result.novelty.push_back(distance);
      if (distance > options_.novelty_threshold) ++novel;
    }
  }
  result.mean_confidence =
      confidence_sum / static_cast<double>(result.projected.rows());
  if (options_.novelty_threshold > 0.0)
    result.novel_fraction =
        static_cast<double>(novel) /
        static_cast<double>(result.projected.rows());
  result.composition = ClassComposition(result.class_vector);
  result.application_class = result.composition.dominant();
  return result;
}

ApplicationClass ClassificationPipeline::classify(
    const metrics::Snapshot& snapshot) const {
  APPCLASS_EXPECTS(trained_);
  return knn_.classify(pca_.transform(preprocessor_.transform(snapshot)));
}

linalg::Matrix ClassificationPipeline::project(
    const metrics::DataPool& pool) const {
  APPCLASS_EXPECTS(trained_);
  return pca_.transform(preprocessor_.transform(pool));
}

}  // namespace appclass::core
