#include "core/pipeline.hpp"

#include "common/assert.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace appclass::core {
namespace {

/// Stage histograms and counters, resolved once per process so the hot
/// path never touches the registry lock.
struct PipelineMetrics {
  obs::Histogram& preprocess = obs::stage_histogram("preprocess");
  obs::Histogram& pca_fit = obs::stage_histogram("pca_fit");
  obs::Histogram& pca_project = obs::stage_histogram("pca_project");
  obs::Histogram& knn_query = obs::stage_histogram("knn_query");
  obs::Histogram& vote = obs::stage_histogram("vote");
  obs::Counter& trains = obs::MetricsRegistry::global().counter(
      "appclass_pipeline_train_total");
  obs::Counter& pools = obs::MetricsRegistry::global().counter(
      "appclass_pipeline_classify_pools_total");
  obs::Counter& snapshots = obs::MetricsRegistry::global().counter(
      "appclass_pipeline_snapshots_classified_total");
};

PipelineMetrics& pipeline_metrics() {
  static PipelineMetrics metrics;
  return metrics;
}

}  // namespace

ClassificationPipeline::ClassificationPipeline(PipelineOptions options)
    : options_(options),
      preprocessor_(options.selected_metrics.empty()
                        ? Preprocessor{}
                        : Preprocessor{options.selected_metrics}),
      pca_(options.pca),
      knn_(options.knn) {}

void ClassificationPipeline::train(const std::vector<LabeledPool>& training) {
  APPCLASS_EXPECTS(!training.empty());
  PipelineMetrics& pm = pipeline_metrics();

  // Stack the raw selected metrics of every training pool.
  obs::ScopedTimer preprocess_timer(pm.preprocess);
  linalg::Matrix stacked;
  std::vector<ApplicationClass> labels;
  for (const auto& lp : training) {
    APPCLASS_EXPECTS(!lp.pool.empty());
    const linalg::Matrix raw = preprocessor_.extract(lp.pool);
    for (std::size_t r = 0; r < raw.rows(); ++r) {
      stacked.append_row(raw.row(r));
      labels.push_back(lp.label);
    }
  }

  preprocessor_.fit(stacked);
  const linalg::Matrix normalized = preprocessor_.transform(stacked);
  preprocess_timer.stop();

  obs::ScopedTimer fit_timer(pm.pca_fit);
  pca_.fit(normalized);
  fit_timer.stop();

  obs::ScopedTimer project_timer(pm.pca_project);
  const linalg::Matrix projected = pca_.transform(normalized);
  project_timer.stop();

  knn_.train(projected, std::move(labels));
  trained_ = true;
  pm.trains.inc();
  APPCLASS_LOG_INFO("pipeline.train",
                    {"training_snapshots", knn_.training_size()},
                    {"input_dims", pca_.input_dimension()},
                    {"components", pca_.components()},
                    {"captured_variance", pca_.captured_variance()});
}

ClassificationPipeline ClassificationPipeline::restore(
    Preprocessor preprocessor, Pca pca, KnnClassifier knn) {
  APPCLASS_EXPECTS(preprocessor.fitted());
  APPCLASS_EXPECTS(pca.fitted());
  APPCLASS_EXPECTS(knn.trained());
  APPCLASS_EXPECTS(pca.input_dimension() == preprocessor.dimension());
  APPCLASS_EXPECTS(knn.dimension() == pca.components());
  ClassificationPipeline pipeline;
  pipeline.preprocessor_ = std::move(preprocessor);
  pipeline.pca_ = std::move(pca);
  pipeline.knn_ = std::move(knn);
  pipeline.trained_ = true;
  return pipeline;
}

ClassificationResult ClassificationPipeline::classify(
    const metrics::DataPool& pool) const {
  APPCLASS_EXPECTS(trained_);
  APPCLASS_EXPECTS(!pool.empty());
  PipelineMetrics& pm = pipeline_metrics();
  ClassificationResult result;

  obs::ScopedTimer preprocess_timer(pm.preprocess);
  const linalg::Matrix normalized = preprocessor_.transform(pool);
  preprocess_timer.stop();

  obs::ScopedTimer project_timer(pm.pca_project);
  result.projected = pca_.transform(normalized);
  project_timer.stop();

  result.class_vector.reserve(result.projected.rows());
  result.confidences.reserve(result.projected.rows());
  double confidence_sum = 0.0;
  std::size_t novel = 0;
  // One clock pair for the whole query loop; the histogram is charged the
  // mean per snapshot so its count equals snapshots classified.
  obs::ScopedTimer knn_timer(pm.knn_query);
  for (std::size_t r = 0; r < result.projected.rows(); ++r) {
    const auto labeled =
        knn_.classify_with_confidence(result.projected.row(r));
    result.class_vector.push_back(labeled.label);
    result.confidences.push_back(labeled.confidence);
    confidence_sum += labeled.confidence;
    if (options_.novelty_threshold > 0.0) {
      const double distance =
          knn_.nearest_distance(result.projected.row(r));
      result.novelty.push_back(distance);
      if (distance > options_.novelty_threshold) ++novel;
    }
  }
  knn_timer.stop_and_observe_per_item(result.projected.rows());

  obs::ScopedTimer vote_timer(pm.vote);
  result.mean_confidence =
      confidence_sum / static_cast<double>(result.projected.rows());
  if (options_.novelty_threshold > 0.0)
    result.novel_fraction =
        static_cast<double>(novel) /
        static_cast<double>(result.projected.rows());
  result.composition = ClassComposition(result.class_vector);
  result.application_class = result.composition.dominant();
  vote_timer.stop();

  pm.pools.inc();
  pm.snapshots.inc(result.projected.rows());
  APPCLASS_LOG_DEBUG("pipeline.classify",
                     {"snapshots", result.projected.rows()},
                     {"class", to_string(result.application_class)},
                     {"mean_confidence", result.mean_confidence});
  return result;
}

ApplicationClass ClassificationPipeline::classify(
    const metrics::Snapshot& snapshot) const {
  APPCLASS_EXPECTS(trained_);
  // Online hot path: a single relaxed counter increment (a few ns) — the
  // stage wall-time histograms come from the batch path, keeping the
  // per-snapshot latency unperturbed.
  pipeline_metrics().snapshots.inc();
  return knn_.classify(pca_.transform(preprocessor_.transform(snapshot)));
}

linalg::Matrix ClassificationPipeline::project(
    const metrics::DataPool& pool) const {
  APPCLASS_EXPECTS(trained_);
  return pca_.transform(preprocessor_.transform(pool));
}

}  // namespace appclass::core
