// Class vectors, majority votes and class compositions (paper section 4.3).
#pragma once

#include <array>
#include <span>
#include <string>
#include <vector>

#include "core/class_label.hpp"

namespace appclass::core {

/// Per-class fraction of snapshots — the paper's "class composition", the
/// cpu%/mem%/io%/net%/idle% quantities fed into the cost model.
class ClassComposition {
 public:
  ClassComposition() = default;

  /// Builds the composition of a snapshot class vector.
  explicit ClassComposition(std::span<const ApplicationClass> class_vector);

  /// Reconstructs a composition from stored fractions (deserialization,
  /// aggregation). Fractions should sum to ~1 unless empty.
  static ClassComposition from_fractions(
      const std::array<double, kClassCount>& fractions, std::size_t samples);

  double fraction(ApplicationClass c) const noexcept {
    return fractions_[index_of(c)];
  }
  std::span<const double, kClassCount> fractions() const noexcept {
    return fractions_;
  }
  std::size_t samples() const noexcept { return samples_; }

  /// The class with the largest share (the application's Class).
  ApplicationClass dominant() const noexcept;

  /// "idle 37.2% | io 40.7% | net 22.1%" — omits zero classes.
  std::string to_string() const;

 private:
  std::array<double, kClassCount> fractions_{};
  std::size_t samples_ = 0;
};

/// Majority vote over a snapshot class vector; ties break toward the class
/// whose first occurrence is earliest (deterministic). Vector must be
/// non-empty.
ApplicationClass majority_vote(std::span<const ApplicationClass> classes);

}  // namespace appclass::core
