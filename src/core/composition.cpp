#include "core/composition.hpp"

#include <cstdio>

#include "common/assert.hpp"

namespace appclass::core {

ClassComposition::ClassComposition(
    std::span<const ApplicationClass> class_vector) {
  samples_ = class_vector.size();
  if (samples_ == 0) return;
  for (ApplicationClass c : class_vector)
    fractions_[index_of(c)] += 1.0;
  for (double& f : fractions_) f /= static_cast<double>(samples_);
}

ClassComposition ClassComposition::from_fractions(
    const std::array<double, kClassCount>& fractions, std::size_t samples) {
  ClassComposition out;
  out.fractions_ = fractions;
  out.samples_ = samples;
  return out;
}

ApplicationClass ClassComposition::dominant() const noexcept {
  std::size_t best = 0;
  for (std::size_t c = 1; c < kClassCount; ++c)
    if (fractions_[c] > fractions_[best]) best = c;
  return class_from_index(best);
}

std::string ClassComposition::to_string() const {
  std::string out;
  for (std::size_t c = 0; c < kClassCount; ++c) {
    if (fractions_[c] <= 0.0) continue;
    char buf[48];
    std::snprintf(buf, sizeof buf, "%s %.2f%%",
                  std::string(kClassNames[c]).c_str(), 100.0 * fractions_[c]);
    if (!out.empty()) out += " | ";
    out += buf;
  }
  return out.empty() ? "(no samples)" : out;
}

ApplicationClass majority_vote(std::span<const ApplicationClass> classes) {
  APPCLASS_EXPECTS(!classes.empty());
  const ClassComposition comp(classes);
  return comp.dominant();
}

}  // namespace appclass::core
