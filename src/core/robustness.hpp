// Robustness quantification: the chaos sweep harness.
//
// Turns "the classifier is robust to monitoring faults" into a number: a
// fault-rate × fault-kind sweep over the five canonical workloads that
// reports, per cell, how many samples survived, what the sanitizer
// rejected/repaired, per-snapshot accuracy against the clean run, and
// whether the majority-vote class flipped. The resulting CSV is the
// regression-testable accuracy-degradation curve behind `appclass_cli
// chaos`, bench/robustness_curve, and the chaos tests.
//
// The harness simulates each canonical run ONCE, records the target VM's
// full announcement stream, and then replays that identical stream through
// a seeded FaultyChannel (+ optional SnapshotSanitizer) per cell — so
// every cell of the curve degrades the same ground truth and differences
// are attributable to the faults alone.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.hpp"
#include "metrics/quality.hpp"

namespace appclass::core {

/// One injected failure mode of the monitoring plane.
enum class FaultKind {
  kDrop,           ///< UDP announcement loss
  kBlackout,       ///< whole-node silence for 30 s stretches
  kCorrupt,        ///< NaN/Inf/garbage spikes on random metrics
  kDuplicate,      ///< duplicate delivery
  kReplay,         ///< stale out-of-order replay
  kMetricDropout,  ///< per-sensor dropout (NaN'd individual metrics)
  kDropAndCorrupt, ///< rate drop + rate/10 corruption (the mixed case)
};

std::string_view to_string(FaultKind kind) noexcept;

/// Name -> kind (accepts the to_string spellings); nullopt for unknown.
std::optional<FaultKind> fault_kind_from_string(std::string_view name) noexcept;

/// All sweepable kinds, in presentation order.
std::span<const FaultKind> all_fault_kinds() noexcept;

/// The recorded ground truth of one canonical run.
struct RecordedRun {
  std::string workload;                         ///< catalog name
  ApplicationClass expected = ApplicationClass::kIdle;
  std::string node_ip;                          ///< target VM
  std::vector<metrics::Snapshot> announcements; ///< full 1 Hz stream
  /// Per-metric means of the clean stream (sanitizer fallback values).
  std::array<double, metrics::kMetricCount> metric_means{};
};

struct ChaosOptions {
  /// Fault intensities swept per kind.
  std::vector<double> rates = {0.0, 0.01, 0.05, 0.1, 0.3, 0.5};
  /// Fault kinds swept (empty = all).
  std::vector<FaultKind> kinds;
  /// Run the sanitizer between the faulty channel and the classifier.
  bool sanitize = true;
  metrics::SanitizerOptions sanitizer{};
  /// Base seed for the per-cell fault channels.
  std::uint64_t seed = 99;
  /// Seed for the simulated canonical runs (distinct from training).
  std::uint64_t run_seed = 2026;
  /// Profiler sampling period d.
  int sampling_interval_s = 5;
};

/// One cell of the robustness curve.
struct ChaosCell {
  std::string workload;
  ApplicationClass expected = ApplicationClass::kIdle;
  FaultKind kind = FaultKind::kDrop;
  double rate = 0.0;
  bool sanitized = false;
  std::size_t clean_samples = 0;     ///< grid samples of the clean run
  std::size_t survived_samples = 0;  ///< grid samples reaching the classifier
  std::size_t rejected = 0;          ///< sanitizer rejections (all reasons)
  std::size_t imputed_values = 0;    ///< individual metrics imputed
  /// Fraction of surviving snapshots labelled identically to the clean
  /// run at the same instant (1.0 when nothing survived counts as 0).
  double accuracy = 0.0;
  ApplicationClass majority = ApplicationClass::kIdle;
  bool majority_ok = false;          ///< majority matches the clean majority
};

/// Simulates and records the five canonical workloads (idle, PostMark,
/// SPECseis, Ettcp, Pagebench) once each.
std::vector<RecordedRun> record_canonical_runs(const ChaosOptions& options = {});

/// Replays one recorded run through one fault configuration and scores it.
ChaosCell run_chaos_cell(const ClassificationPipeline& pipeline,
                         const RecordedRun& run, FaultKind kind, double rate,
                         const ChaosOptions& options);

/// The full sweep: every recorded run × kind × rate.
std::vector<ChaosCell> run_chaos_sweep(const ClassificationPipeline& pipeline,
                                       const std::vector<RecordedRun>& runs,
                                       const ChaosOptions& options = {});

/// Renders cells as the robustness-curve CSV (with header row).
std::string chaos_csv(const std::vector<ChaosCell>& cells);

}  // namespace appclass::core
