#include "core/pca.hpp"

#include <numeric>

#include "common/assert.hpp"
#include "linalg/stats.hpp"

namespace appclass::core {

void Pca::fit(const linalg::Matrix& samples) {
  APPCLASS_EXPECTS(samples.rows() >= 2);
  const std::size_t p = samples.cols();

  const linalg::ColumnStats cs = linalg::column_stats(samples, 0.0);
  mean_ = cs.mean;

  const linalg::Matrix cov = linalg::covariance(samples);
  const linalg::EigenDecomposition eig = linalg::symmetric_eigen(cov);
  eigenvalues_ = eig.eigenvalues;

  // Choose q: forced count, or smallest q reaching the variance threshold.
  std::size_t q = options_.forced_components;
  if (q == 0) {
    const double total = std::accumulate(eigenvalues_.begin(),
                                         eigenvalues_.end(), 0.0);
    APPCLASS_ENSURES(total > 0.0);
    double acc = 0.0;
    for (q = 0; q < p; ++q) {
      acc += eigenvalues_[q];
      if (acc / total >= options_.min_fraction_variance) {
        ++q;
        break;
      }
    }
    q = std::max<std::size_t>(q, 1);
  }
  q = std::min(q, p);

  projection_ = eig.eigenvectors.block(0, 0, p, q);
  fitted_ = true;
}

Pca Pca::restore(std::vector<double> mean, std::vector<double> eigenvalues,
                 linalg::Matrix projection) {
  APPCLASS_EXPECTS(projection.rows() == mean.size());
  APPCLASS_EXPECTS(eigenvalues.size() == mean.size());
  APPCLASS_EXPECTS(projection.cols() >= 1 &&
                   projection.cols() <= projection.rows());
  Pca pca;
  pca.mean_ = std::move(mean);
  pca.eigenvalues_ = std::move(eigenvalues);
  pca.projection_ = std::move(projection);
  pca.fitted_ = true;
  return pca;
}

std::size_t Pca::input_dimension() const {
  APPCLASS_EXPECTS(fitted_);
  return projection_.rows();
}

std::size_t Pca::components() const {
  APPCLASS_EXPECTS(fitted_);
  return projection_.cols();
}

std::span<const double> Pca::eigenvalues() const {
  APPCLASS_EXPECTS(fitted_);
  return eigenvalues_;
}

std::vector<double> Pca::explained_variance_ratio() const {
  APPCLASS_EXPECTS(fitted_);
  const double total =
      std::accumulate(eigenvalues_.begin(), eigenvalues_.end(), 0.0);
  std::vector<double> out(components());
  for (std::size_t j = 0; j < out.size(); ++j)
    out[j] = total > 0.0 ? eigenvalues_[j] / total : 0.0;
  return out;
}

double Pca::captured_variance() const {
  const auto ratios = explained_variance_ratio();
  return std::accumulate(ratios.begin(), ratios.end(), 0.0);
}

const linalg::Matrix& Pca::projection() const {
  APPCLASS_EXPECTS(fitted_);
  return projection_;
}

std::span<const double> Pca::mean() const {
  APPCLASS_EXPECTS(fitted_);
  return mean_;
}

linalg::Matrix Pca::transform(const linalg::Matrix& samples) const {
  APPCLASS_EXPECTS(fitted_);
  APPCLASS_EXPECTS(samples.cols() == projection_.rows());
  linalg::Matrix out(samples.rows(), projection_.cols());
  transform_rows(samples, 0, samples.rows(), out);
  return out;
}

void Pca::transform_rows(const linalg::Matrix& samples, std::size_t begin,
                         std::size_t end, linalg::Matrix& out) const {
  APPCLASS_EXPECTS(fitted_);
  APPCLASS_EXPECTS(samples.cols() == projection_.rows());
  APPCLASS_EXPECTS(begin <= end && end <= samples.rows());
  APPCLASS_EXPECTS(out.rows() == samples.rows() &&
                   out.cols() == projection_.cols());
  const std::size_t q = projection_.cols();
  std::vector<double> centered(projection_.rows());
  for (std::size_t r = begin; r < end; ++r) {
    auto row = samples.row(r);
    for (std::size_t c = 0; c < centered.size(); ++c)
      centered[c] = row[c] - mean_[c];
    for (std::size_t j = 0; j < q; ++j) {
      double s = 0.0;
      for (std::size_t c = 0; c < centered.size(); ++c)
        s += centered[c] * projection_(c, j);
      out(r, j) = s;
    }
  }
}

std::vector<double> Pca::transform(std::span<const double> row) const {
  APPCLASS_EXPECTS(fitted_);
  std::vector<double> out(projection_.cols(), 0.0);
  transform_into(row, out.data(), 1);
  return out;
}

void Pca::transform_into(std::span<const double> row, double* out,
                         std::size_t stride) const {
  APPCLASS_EXPECTS(fitted_);
  APPCLASS_EXPECTS(row.size() == projection_.rows());
  const std::size_t q = projection_.cols();
  for (std::size_t j = 0; j < q; ++j) {
    out[j * stride] = 0.0;
    for (std::size_t c = 0; c < row.size(); ++c)
      out[j * stride] += (row[c] - mean_[c]) * projection_(c, j);
  }
}

linalg::Matrix Pca::inverse_transform(const linalg::Matrix& projected) const {
  APPCLASS_EXPECTS(fitted_);
  APPCLASS_EXPECTS(projected.cols() == projection_.cols());
  const std::size_t m = projected.rows();
  const std::size_t p = projection_.rows();
  linalg::Matrix out(m, p);
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t c = 0; c < p; ++c) {
      double s = mean_[c];
      for (std::size_t j = 0; j < projection_.cols(); ++j)
        s += projected(r, j) * projection_(c, j);
      out(r, c) = s;
    }
  return out;
}

}  // namespace appclass::core
