// The end-to-end classification pipeline (paper Figure 2):
//
//   A(n x m) --preprocess--> A'(p x m) --PCA--> B(q x m) --3-NN--> C(1 x m)
//            --vote--> Class (+ class composition)
//
// Training fits the normalization and PCA on the labelled training pools
// and stores the projected training points in the k-NN; classification
// replays the fitted transforms on a test pool.
//
// Execution model: every batch loop (training-pool extraction, PCA
// projection, the per-snapshot k-NN queries) runs through one
// engine::ExecutionContext. `PipelineOptions::parallelism` selects it at
// construction — 1 is serial on the calling thread, N > 1 shards the
// same loops over a work-stealing pool of N threads. Shard boundaries
// and reduction order are thread-count-independent, so results are
// bit-identical whichever you pick; there is no separate parallel code
// path for callers to opt into.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/composition.hpp"
#include "core/knn.hpp"
#include "core/pca.hpp"
#include "core/preprocess.hpp"
#include "engine/context.hpp"
#include "metrics/snapshot.hpp"

namespace appclass::core {

/// One labelled training source: every snapshot of `pool` is assumed to
/// exhibit class `label` (the paper trains from dedicated runs of one
/// canonical application per class).
struct LabeledPool {
  metrics::DataPool pool;
  ApplicationClass label;
};

struct PipelineOptions {
  /// Metric selection for the preprocessor; empty = Table-1 expert list.
  std::vector<metrics::MetricId> selected_metrics;
  /// PCA component selection. The paper sets the variance threshold so
  /// that exactly two components are kept; forcing q = 2 reproduces that.
  PcaOptions pca{.min_fraction_variance = 0.7, .forced_components = 2};
  /// k-NN settings (paper: k = 3, Euclidean).
  KnnOptions knn{};
  /// Novelty threshold in PCA-space distance units: a snapshot farther
  /// than this from EVERY training point is counted as novel (an
  /// open-environment application unlike any trained behaviour). 0
  /// disables novelty accounting. The trained clusters live within a few
  /// units of each other (z-scored inputs), so ~2-4 is a useful range.
  double novelty_threshold = 0.0;
  /// Execution width: 1 = serial (default), N = a pool of N worker
  /// threads, 0 = one worker per hardware core. Results are
  /// bit-identical for every value.
  std::size_t parallelism = 1;
};

/// Result of classifying one application run.
///
/// Scalar summaries are *derived* from the vectors by the accessors
/// below — there is exactly one implementation of each reduction, here,
/// instead of every bench tool folding the vectors its own way.
struct ClassificationResult {
  /// Per-snapshot classes — the paper's C(1 x m).
  std::vector<ApplicationClass> class_vector;
  /// Per-snapshot k-NN vote share of the winning class (in (0, 1]);
  /// 1.0 means a unanimous neighbourhood.
  std::vector<double> confidences;
  /// Per-snapshot distance to the nearest training point (novelty
  /// score); empty when novelty accounting is disabled.
  std::vector<double> novelty;
  /// The novelty threshold the pipeline classified under (0 = disabled).
  double novelty_threshold = 0.0;
  /// Snapshot shares per class.
  ClassComposition composition;
  /// Majority vote — the application's Class.
  ApplicationClass application_class = ApplicationClass::kIdle;
  /// Snapshots projected to PCA space (m x q), for cluster diagrams.
  linalg::Matrix projected;

  /// Mean of `confidences` (0 for an empty result) — the canonical
  /// reduction; do not recompute it at call sites.
  double mean_confidence() const;
  /// Fraction of snapshots whose novelty score exceeds the threshold
  /// (0 when novelty accounting was disabled).
  double novel_fraction() const;
};

/// Per-snapshot classification evidence for the model-health layer: the
/// label plus everything the vote already knew but the plain online path
/// throws away. Produced by classify_detailed(); the label is computed by
/// the identical arithmetic as classify(snapshot), so enabling the
/// detailed path never changes classification output.
struct SnapshotClassification {
  ApplicationClass label = ApplicationClass::kIdle;
  /// Winning-class vote share in (0, 1]; 1.0 = unanimous neighbourhood.
  double confidence = 0.0;
  /// (winner votes - runner-up votes) / k, in [0, 1].
  double vote_margin = 0.0;
  /// Distance to the nearest training point in PCA space (novelty
  /// score, linear units).
  double novelty = 0.0;
  /// The snapshot's PCA-space coordinates (drift-detector feed).
  std::vector<double> projected;
};

/// Everything one classification worker reuses across snapshots: the
/// normalized-row staging buffer and the k-NN kernel scratch. Grow-only;
/// after the first query through it, classifying further snapshots of
/// the same pipeline performs zero heap allocations.
struct SnapshotScratch {
  std::vector<double> row;        ///< preprocessor output (p doubles)
  std::vector<double> projected;  ///< PCA output (q doubles)
  engine::BlockedKnnIndex::Scratch kernel;
};

/// Fixed-slot pool of SnapshotScratch leased per worker. Slots are
/// probed starting at engine::current_worker_slot(), so each pool worker
/// lands on its own warm slot in one CAS; non-worker callers share the
/// remaining slots. When every slot is busy (more concurrent callers
/// than the pool was sized for) acquire() falls back to a heap-allocated
/// overflow scratch — counted, never wrong, never hit in steady state.
class SnapshotScratchPool {
 public:
  /// `slots` should cover parallelism + expected concurrent callers.
  explicit SnapshotScratchPool(std::size_t slots);

  class Lease {
   public:
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    SnapshotScratch& operator*() const noexcept { return *scratch_; }
    SnapshotScratch* operator->() const noexcept { return scratch_; }

   private:
    friend class SnapshotScratchPool;
    Lease(SnapshotScratchPool* pool, std::size_t slot,
          SnapshotScratch* scratch) noexcept
        : pool_(pool), slot_(slot), scratch_(scratch) {}
    explicit Lease(std::unique_ptr<SnapshotScratch> overflow) noexcept
        : overflow_(std::move(overflow)), scratch_(overflow_.get()) {}

    SnapshotScratchPool* pool_ = nullptr;  ///< null for overflow leases
    std::size_t slot_ = 0;
    std::unique_ptr<SnapshotScratch> overflow_;
    SnapshotScratch* scratch_ = nullptr;
  };

  Lease acquire();

  std::size_t slots() const noexcept { return slots_.size(); }
  /// Times acquire() had to heap-allocate because all slots were busy.
  std::uint64_t overflows() const noexcept {
    return overflows_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<bool> busy{false};
    SnapshotScratch scratch;
  };

  std::vector<Slot> slots_;  ///< fixed at construction: lock-free probing
  std::atomic<std::uint64_t> overflows_{0};
};

/// A drained batch of snapshots mid-classification: the query points in
/// the kernel's feature-major SoA layout plus per-snapshot outputs.
/// Grow-only — reusing one batch across drains is what makes the stream
/// path allocation-free once it has seen its largest drain.
class SnapshotBatch {
 public:
  std::size_t size() const noexcept { return count_; }
  bool detailed() const noexcept { return detailed_; }

  ApplicationClass label(std::size_t i) const { return labels_[i]; }
  /// Valid only on a detailed batch.
  const SnapshotClassification& detail(std::size_t i) const {
    return details_[i];
  }

  /// The projected query points (feature-major; diagnostics/tests).
  const engine::QueryBlock& queries() const noexcept { return queries_; }

 private:
  friend class ClassificationPipeline;

  engine::QueryBlock queries_;
  std::vector<ApplicationClass> labels_;
  /// Sized lazily and never shrunk, so the per-entry `projected` vectors
  /// keep their capacity across drains; count_ bounds the valid range.
  std::vector<SnapshotClassification> details_;
  std::size_t count_ = 0;
  bool detailed_ = false;
};

class ClassificationPipeline {
 public:
  explicit ClassificationPipeline(PipelineOptions options = {});

  /// Fits preprocessing + PCA on the union of the training pools and
  /// trains the k-NN on their projected snapshots. Per-pool extraction
  /// and training-set projection run on the execution context.
  void train(const std::vector<LabeledPool>& training);

  bool trained() const noexcept { return trained_; }

  /// Classifies a full run (sharded over the execution context).
  ClassificationResult classify(const metrics::DataPool& pool) const;

  /// Classifies one snapshot (online mode).
  ApplicationClass classify(const metrics::Snapshot& snapshot) const;

  /// Classifies one snapshot and keeps the per-snapshot evidence (vote
  /// share, margin, novelty distance, PCA coordinates) for the
  /// model-health layer. Same label arithmetic as classify(snapshot).
  SnapshotClassification classify_detailed(
      const metrics::Snapshot& snapshot) const;

  /// Batched streaming path (the fleet drain). Prepares `batch` for
  /// `count` snapshots — `detailed` selects label-only or full-evidence
  /// outputs — reusing all of its storage from previous batches.
  void begin_snapshot_batch(SnapshotBatch& batch, std::size_t count,
                            bool detailed) const;

  /// Normalizes + projects `snapshot` straight into slot `i` of the
  /// batch's feature-major query block and classifies it from there.
  /// Bit-identical to classify(snapshot) / classify_detailed(snapshot):
  /// same transform chain, same kernel arithmetic, same vote. Distinct
  /// slots are independent — shards may call this concurrently with one
  /// scratch per caller. Allocation-free after warmup.
  void classify_snapshot_into(const metrics::Snapshot& snapshot,
                              SnapshotBatch& batch, std::size_t i,
                              SnapshotScratch& scratch) const;

  /// Leases per-worker query scratch from the pipeline's pool (sized to
  /// the execution context's parallelism plus caller headroom).
  SnapshotScratchPool::Lease acquire_scratch() const {
    return scratch_pool_->acquire();
  }

  /// The configured novelty threshold (0 = novelty accounting disabled).
  double novelty_threshold() const noexcept {
    return options_.novelty_threshold;
  }

  /// Projects a pool into PCA space without classifying (diagrams).
  linalg::Matrix project(const metrics::DataPool& pool) const;

  /// Rebuilds a trained pipeline from persisted components (serialization;
  /// see core/serialize.hpp).
  static ClassificationPipeline restore(Preprocessor preprocessor, Pca pca,
                                        KnnClassifier knn);

  /// Replaces the execution context (e.g. after restore, or the CLI's
  /// --threads flag): 1 = serial, N = pool of N, 0 = hardware cores.
  void set_parallelism(std::size_t parallelism);

  /// The execution context batch work runs on (shared with the fleet
  /// engine when one wraps this pipeline).
  const std::shared_ptr<engine::ExecutionContext>& context() const noexcept {
    return context_;
  }

  /// Training points in PCA space with their labels (cluster diagrams,
  /// Figure 3(a)).
  const KnnClassifier& knn() const noexcept { return knn_; }
  const Preprocessor& preprocessor() const noexcept { return preprocessor_; }
  const Pca& pca() const noexcept { return pca_; }

 private:
  PipelineOptions options_;
  Preprocessor preprocessor_;
  Pca pca_;
  KnnClassifier knn_;
  std::shared_ptr<engine::ExecutionContext> context_;
  /// Worker-keyed query scratch; shared_ptr keeps the pipeline copyable
  /// (the pool holds atomics — copies share it, which is safe because
  /// slots are leased atomically). Rebuilt by set_parallelism.
  std::shared_ptr<SnapshotScratchPool> scratch_pool_;
  bool trained_ = false;
};

}  // namespace appclass::core
