// Application class labels.
//
// The paper classifies each snapshot — and, by majority vote, each
// application run — into one of five classes: idle, I/O-intensive,
// CPU-intensive, network-intensive, and memory/paging-intensive (the last
// two are reported together as "I/O and paging-intensive" at the
// application level, but trained as distinct snapshot classes; see Figure
// 3(a)'s five clusters).
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <string_view>

namespace appclass::core {

enum class ApplicationClass : std::size_t {
  kIdle = 0,
  kIo,
  kCpu,
  kNetwork,
  kMemory,  // paging-intensive
};

inline constexpr std::size_t kClassCount = 5;

inline constexpr std::array<std::string_view, kClassCount> kClassNames = {
    "idle", "io", "cpu", "network", "memory"};

constexpr std::string_view to_string(ApplicationClass c) noexcept {
  return kClassNames[static_cast<std::size_t>(c)];
}

constexpr std::size_t index_of(ApplicationClass c) noexcept {
  return static_cast<std::size_t>(c);
}

constexpr ApplicationClass class_from_index(std::size_t i) noexcept {
  return static_cast<ApplicationClass>(i);
}

inline std::optional<ApplicationClass> class_from_string(
    std::string_view name) noexcept {
  for (std::size_t i = 0; i < kClassCount; ++i)
    if (kClassNames[i] == name) return class_from_index(i);
  return std::nullopt;
}

}  // namespace appclass::core
