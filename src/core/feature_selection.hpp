// Automated feature selection (the paper's section-7 future work).
//
// The paper selects its 8 input metrics manually, "based on expert
// knowledge and the principle of increasing relevance and reducing
// redundancy [Yu & Liu]", and plans to automate the step to enable online
// classification. This module implements that automation:
//
//   * relevance  — a one-way ANOVA F-statistic of each metric against the
//     class labels (between-class variance over within-class variance);
//   * redundancy — absolute Pearson correlation between metrics;
//   * selection  — greedy: walk metrics in decreasing relevance, keep one
//     if its correlation with every already-kept metric stays below the
//     redundancy threshold, until `target_count` metrics are kept.
#pragma once

#include <cstddef>
#include <vector>

#include "core/evaluation.hpp"
#include "metrics/schema.hpp"

namespace appclass::core {

struct FeatureScore {
  metrics::MetricId metric;
  double relevance = 0.0;  ///< ANOVA F-statistic vs the class labels
};

struct FeatureSelectionOptions {
  /// Stop once this many metrics are selected.
  std::size_t target_count = 8;
  /// Reject a candidate whose |correlation| with any kept metric exceeds
  /// this (1.0 disables the redundancy filter).
  double max_redundancy = 0.95;
  /// Drop metrics whose relevance is below this (constant metrics score 0).
  double min_relevance = 1e-6;
};

/// Relevance of every metric, sorted descending (constant metrics last).
std::vector<FeatureScore> rank_features(const LabeledSnapshots& data);

/// Absolute Pearson correlation between two metrics over the data.
double feature_redundancy(const LabeledSnapshots& data, metrics::MetricId a,
                          metrics::MetricId b);

/// Greedy relevance/redundancy selection over all 33 monitored metrics.
std::vector<metrics::MetricId> select_features(
    const LabeledSnapshots& data, const FeatureSelectionOptions& options = {});

/// Convenience: selects features from labelled pools.
std::vector<metrics::MetricId> select_features(
    const std::vector<LabeledPool>& pools,
    const FeatureSelectionOptions& options = {});

}  // namespace appclass::core
