// Classifier evaluation tooling: confusion matrices, per-class
// precision/recall, and k-fold cross-validation over labelled snapshot
// pools. Used by the ablation benches and by the automated feature
// selection (which needs a quality signal to compare metric subsets).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.hpp"

namespace appclass::core {

/// Row = true class, column = predicted class.
class ConfusionMatrix {
 public:
  void add(ApplicationClass truth, ApplicationClass predicted) {
    ++counts_[index_of(truth)][index_of(predicted)];
    ++total_;
  }

  std::size_t count(ApplicationClass truth,
                    ApplicationClass predicted) const {
    return counts_[index_of(truth)][index_of(predicted)];
  }
  std::size_t total() const noexcept { return total_; }

  /// Fraction of samples on the diagonal.
  double accuracy() const;

  /// Precision for one class: TP / (TP + FP). Returns 1 when the class was
  /// never predicted (vacuous).
  double precision(ApplicationClass cls) const;

  /// Recall for one class: TP / (TP + FN). Returns 1 when the class never
  /// occurred.
  double recall(ApplicationClass cls) const;

  /// Harmonic mean of precision and recall.
  double f1(ApplicationClass cls) const;

  /// Unweighted mean F1 over classes that occur.
  double macro_f1() const;

  /// Merges another matrix (for cross-validation fold aggregation).
  void merge(const ConfusionMatrix& other);

  /// Fixed-width table with class names.
  std::string to_string() const;

 private:
  std::array<std::array<std::size_t, kClassCount>, kClassCount> counts_{};
  std::size_t total_ = 0;
};

/// Labelled snapshot set (flattened pools).
struct LabeledSnapshots {
  std::vector<metrics::Snapshot> snapshots;
  std::vector<ApplicationClass> labels;

  std::size_t size() const noexcept { return snapshots.size(); }
};

/// Flattens labelled pools into one snapshot list.
LabeledSnapshots flatten(const std::vector<LabeledPool>& pools);

/// Evaluates a trained pipeline on labelled snapshots.
ConfusionMatrix evaluate(const ClassificationPipeline& pipeline,
                         const LabeledSnapshots& data);

/// Stratified k-fold cross-validation: splits each class's snapshots into
/// `folds` parts deterministically (by a seeded shuffle), trains a fresh
/// pipeline on k-1 folds, evaluates on the held-out fold, and merges the
/// per-fold confusion matrices.
ConfusionMatrix cross_validate(const std::vector<LabeledPool>& pools,
                               PipelineOptions options, std::size_t folds = 5,
                               std::uint64_t seed = 1);

}  // namespace appclass::core
