// PCA feature extraction (paper section 4.2.2).
//
// Fits principal components on the normalized training samples and projects
// snapshots onto the leading components. The number of components kept is
// chosen by a minimal fraction-of-variance threshold, optionally overridden
// to an exact count (the paper tunes the threshold so exactly q = 2
// components are extracted, which also makes the clusters plottable).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/eigen.hpp"
#include "linalg/matrix.hpp"

namespace appclass::core {

struct PcaOptions {
  /// Keep the smallest number of leading components whose cumulative
  /// explained-variance fraction reaches this threshold.
  double min_fraction_variance = 0.7;
  /// If non-zero, keep exactly this many components regardless of variance.
  std::size_t forced_components = 0;
};

class Pca {
 public:
  explicit Pca(PcaOptions options = {}) : options_(options) {}

  /// Fits on `samples` (observations in rows, already normalized).
  void fit(const linalg::Matrix& samples);

  bool fitted() const noexcept { return fitted_; }

  /// Input dimensionality p.
  std::size_t input_dimension() const;
  /// Extracted dimensionality q.
  std::size_t components() const;

  /// All eigenvalues of the covariance, descending.
  std::span<const double> eigenvalues() const;

  /// Fraction of total variance explained by each *kept* component.
  std::vector<double> explained_variance_ratio() const;
  /// Cumulative variance fraction captured by the kept components.
  double captured_variance() const;

  /// Projection matrix W (p x q): column j is the j-th principal axis.
  const linalg::Matrix& projection() const;

  /// Per-feature mean subtracted before projection.
  std::span<const double> mean() const;

  /// Projects observations (m x p) to the component space (m x q) — the
  /// paper's B(q x m) step (observation-major here).
  linalg::Matrix transform(const linalg::Matrix& samples) const;

  /// Projects rows [begin, end) of `samples` into the same rows of `out`
  /// (pre-sized m x q) — the sharded form of transform(Matrix). Each row
  /// is arithmetically independent, so any shard partition reassembles
  /// to the exact transform(Matrix) result.
  void transform_rows(const linalg::Matrix& samples, std::size_t begin,
                      std::size_t end, linalg::Matrix& out) const;

  /// Projects one observation.
  std::vector<double> transform(std::span<const double> row) const;

  /// Allocation-free form of transform(span): writes component j to
  /// out[j * stride] — stride 1 for a dense vector, or a QueryBlock's
  /// stride to project straight into the kernel's feature-major layout.
  /// Identical accumulation order (component-outer, feature-inner, from
  /// 0.0) — the vector overload delegates here.
  void transform_into(std::span<const double> row, double* out,
                      std::size_t stride) const;

  /// Reconstructs observations from component space (m x q -> m x p);
  /// useful for measuring reconstruction error in ablations.
  linalg::Matrix inverse_transform(const linalg::Matrix& projected) const;

  /// Rebuilds a fitted PCA from persisted state (serialization).
  static Pca restore(std::vector<double> mean,
                     std::vector<double> eigenvalues,
                     linalg::Matrix projection);

 private:
  PcaOptions options_;
  bool fitted_ = false;
  std::vector<double> mean_;
  std::vector<double> eigenvalues_;
  linalg::Matrix projection_;  // p x q
};

}  // namespace appclass::core
