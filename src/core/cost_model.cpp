#include "core/cost_model.hpp"

namespace appclass::core {

double CostModel::unit_cost(const ClassComposition& composition) const {
  double total = 0.0;
  for (std::size_t c = 0; c < kClassCount; ++c)
    total += costs_.for_class(class_from_index(c)) *
             composition.fractions()[c];
  return total;
}

double CostModel::run_cost(const RunRecord& run) const {
  return unit_cost(run.composition) *
         static_cast<double>(run.elapsed_seconds);
}

double CostModel::expected_cost(const ApplicationProfile& profile) const {
  double unit = 0.0;
  for (std::size_t c = 0; c < kClassCount; ++c)
    unit += costs_.for_class(class_from_index(c)) *
            profile.mean_fractions[c];
  return unit * profile.elapsed.mean();
}

}  // namespace appclass::core
