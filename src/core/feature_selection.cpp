#include "core/feature_selection.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/assert.hpp"
#include "linalg/stats.hpp"

namespace appclass::core {

namespace {

/// One-way ANOVA F-statistic of metric `m` against the labels.
double anova_f(const LabeledSnapshots& data, std::size_t m) {
  std::array<linalg::RunningStats, kClassCount> per_class;
  linalg::RunningStats overall;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double x = data.snapshots[i].values[m];
    per_class[index_of(data.labels[i])].add(x);
    overall.add(x);
  }
  const double grand_mean = overall.mean();
  double between = 0.0;  // sum over classes of n_c * (mean_c - grand)^2
  double within = 0.0;   // sum over classes of n_c * var_c
  std::size_t groups = 0;
  for (const auto& cls : per_class) {
    if (cls.count() == 0) continue;
    ++groups;
    const auto n = static_cast<double>(cls.count());
    const double d = cls.mean() - grand_mean;
    between += n * d * d;
    within += n * cls.variance();
  }
  if (groups < 2) return 0.0;
  const double df_between = static_cast<double>(groups - 1);
  const double df_within =
      static_cast<double>(data.size()) - static_cast<double>(groups);
  if (df_within <= 0.0) return 0.0;
  const double ms_between = between / df_between;
  const double ms_within = within / df_within;
  if (ms_within <= 0.0)
    return ms_between > 0.0 ? 1e12 : 0.0;  // perfectly separable / constant
  return ms_between / ms_within;
}

}  // namespace

std::vector<FeatureScore> rank_features(const LabeledSnapshots& data) {
  APPCLASS_EXPECTS(data.size() >= 2);
  std::vector<FeatureScore> scores;
  scores.reserve(metrics::kMetricCount);
  for (std::size_t m = 0; m < metrics::kMetricCount; ++m)
    scores.push_back(FeatureScore{static_cast<metrics::MetricId>(m),
                                  anova_f(data, m)});
  std::stable_sort(scores.begin(), scores.end(),
                   [](const FeatureScore& a, const FeatureScore& b) {
                     return a.relevance > b.relevance;
                   });
  return scores;
}

double feature_redundancy(const LabeledSnapshots& data, metrics::MetricId a,
                          metrics::MetricId b) {
  std::vector<double> xs(data.size()), ys(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    xs[i] = data.snapshots[i].get(a);
    ys[i] = data.snapshots[i].get(b);
  }
  return std::abs(linalg::correlation(xs, ys));
}

std::vector<metrics::MetricId> select_features(
    const LabeledSnapshots& data, const FeatureSelectionOptions& options) {
  APPCLASS_EXPECTS(options.target_count >= 1);
  const auto ranked = rank_features(data);
  std::vector<metrics::MetricId> selected;
  for (const auto& candidate : ranked) {
    if (selected.size() >= options.target_count) break;
    if (candidate.relevance < options.min_relevance) break;
    bool redundant = false;
    for (const auto kept : selected) {
      if (feature_redundancy(data, candidate.metric, kept) >
          options.max_redundancy) {
        redundant = true;
        break;
      }
    }
    if (!redundant) selected.push_back(candidate.metric);
  }
  APPCLASS_ENSURES(!selected.empty());
  return selected;
}

std::vector<metrics::MetricId> select_features(
    const std::vector<LabeledPool>& pools,
    const FeatureSelectionOptions& options) {
  return select_features(flatten(pools), options);
}

}  // namespace appclass::core
