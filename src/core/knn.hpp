// k-Nearest-Neighbor classifier (paper section 4.2.3).
//
// Brute-force k-NN with majority vote over the k geometrically closest
// training points; ties break toward the class of the nearer neighbors
// (summed inverse ranks), matching the "odd k" convention the paper uses
// to avoid most ties in the first place (k = 3).
//
// Since the engine PR the classifier is a thin policy layer over the
// blocked structure-of-arrays kernel in engine/knn_kernel.hpp: training
// builds the SoA index, and the single canonical entry point
// `query(points, QueryOptions)` answers every question (labels, vote
// shares, neighbor indices, novelty distances) in one pass. The legacy
// per-question entry points (classify, classify_with_confidence, nearest,
// nearest_distance) have been removed; query() is the only query surface.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/class_label.hpp"
#include "engine/knn_kernel.hpp"
#include "linalg/matrix.hpp"

namespace appclass::core {

/// The distance metric now lives with the kernel; the alias keeps every
/// existing `core::DistanceMetric` spelling valid.
using DistanceMetric = engine::DistanceMetric;

struct KnnOptions {
  std::size_t k = 3;
  DistanceMetric metric = DistanceMetric::kEuclidean;
};

/// What a query should materialize besides the labels. Each extra output
/// is filled only when requested, so the hot path (labels only) never
/// pays for diagnostics.
struct QueryOptions {
  /// Winning-class vote share per query point (the cheap per-snapshot
  /// confidence; 1.0 = unanimous neighbourhood).
  bool vote_shares = false;
  /// The k nearest training indices per query point, nearest first.
  bool neighbors = false;
  /// Euclidean distance to the single nearest training point — the
  /// novelty score (large = resembles no trained behaviour).
  bool novelty = false;
};

/// Batch answer: index i of every filled vector describes query row i.
struct QueryResult {
  std::size_t count = 0;          ///< number of query points answered
  std::size_t neighbors_per_query = 0;  ///< min(k, training size) if requested
  std::vector<ApplicationClass> labels;  ///< always filled
  std::vector<double> vote_shares;       ///< iff QueryOptions::vote_shares
  /// Flattened count x neighbors_per_query, nearest first
  /// (iff QueryOptions::neighbors).
  std::vector<std::size_t> neighbor_indices;
  std::vector<double> novelty;           ///< iff QueryOptions::novelty

  /// Neighbor `rank` (0 = nearest) of query point `query`.
  std::size_t neighbor(std::size_t query, std::size_t rank) const {
    return neighbor_indices[query * neighbors_per_query + rank];
  }
};

class KnnClassifier {
 public:
  explicit KnnClassifier(KnnOptions options = {});

  /// Stores the training set (row i of `points` has label `labels[i]`)
  /// and builds the blocked SoA index over it.
  void train(linalg::Matrix points, std::vector<ApplicationClass> labels);

  bool trained() const noexcept { return !labels_.empty(); }
  std::size_t training_size() const noexcept { return labels_.size(); }
  std::size_t dimension() const;
  std::size_t k() const noexcept { return options_.k; }
  const KnnOptions& options() const noexcept { return options_; }

  /// THE query entry point: answers every row of `points` in one pass,
  /// filling exactly the outputs `options` requests.
  QueryResult query(const linalg::Matrix& points,
                    const QueryOptions& options = {}) const;

  /// Single-point convenience: every output vector has one entry.
  QueryResult query(std::span<const double> point,
                    const QueryOptions& options = {}) const;

  /// Sharded execution support (the engine's path): allocates a result
  /// whose vectors are pre-sized for `count` queries...
  QueryResult make_result(std::size_t count,
                          const QueryOptions& options) const;
  /// ...and answers rows [begin, end) of `points` into their slots of
  /// `out`. Distinct shards write disjoint slots, so concurrent calls
  /// with one Scratch per caller are safe and the assembled result is
  /// bit-identical to a serial query() — shard boundaries cannot affect
  /// per-row arithmetic.
  void query_rows(const linalg::Matrix& points, std::size_t begin,
                  std::size_t end, const QueryOptions& options,
                  QueryResult& out,
                  engine::BlockedKnnIndex::Scratch& scratch) const;

  const linalg::Matrix& training_points() const noexcept { return points_; }
  std::span<const ApplicationClass> training_labels() const noexcept {
    return labels_;
  }

  /// The underlying blocked SoA index (bench and diagnostics).
  const engine::BlockedKnnIndex& index() const noexcept { return index_; }

 private:
  KnnOptions options_;
  linalg::Matrix points_;  // row-major original (accessors, serialization)
  std::vector<ApplicationClass> labels_;
  engine::BlockedKnnIndex index_;
};

}  // namespace appclass::core
