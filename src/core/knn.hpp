// k-Nearest-Neighbor classifier (paper section 4.2.3).
//
// Brute-force k-NN with majority vote over the k geometrically closest
// training points; ties break toward the class of the nearer neighbors
// (summed inverse ranks), matching the "odd k" convention the paper uses
// to avoid most ties in the first place (k = 3).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/class_label.hpp"
#include "linalg/matrix.hpp"

namespace appclass::core {

enum class DistanceMetric { kEuclidean, kManhattan };

struct KnnOptions {
  std::size_t k = 3;
  DistanceMetric metric = DistanceMetric::kEuclidean;
};

class KnnClassifier {
 public:
  explicit KnnClassifier(KnnOptions options = {});

  /// Stores the training set: row i of `points` has label `labels[i]`.
  void train(linalg::Matrix points, std::vector<ApplicationClass> labels);

  bool trained() const noexcept { return !labels_.empty(); }
  std::size_t training_size() const noexcept { return labels_.size(); }
  std::size_t dimension() const;
  std::size_t k() const noexcept { return options_.k; }
  const KnnOptions& options() const noexcept { return options_; }

  /// Classifies one query point.
  ApplicationClass classify(std::span<const double> point) const;

  /// A label together with the share of the k votes it received — a cheap
  /// per-snapshot confidence (1.0 = unanimous neighbourhood).
  struct Labeled {
    ApplicationClass label = ApplicationClass::kIdle;
    double confidence = 0.0;
  };

  /// Classifies one point and reports the winning vote share.
  Labeled classify_with_confidence(std::span<const double> point) const;

  /// Classifies every row of `points`.
  std::vector<ApplicationClass> classify(const linalg::Matrix& points) const;

  /// The k nearest training indices for a query, nearest first
  /// (exposed for diagnostics and tests).
  std::vector<std::size_t> nearest(std::span<const double> point) const;

  /// Euclidean distance from a query to its single nearest training point
  /// — the novelty score: large values mean the query resembles no
  /// trained behaviour.
  double nearest_distance(std::span<const double> point) const;

  const linalg::Matrix& training_points() const noexcept { return points_; }
  std::span<const ApplicationClass> training_labels() const noexcept {
    return labels_;
  }

 private:
  double distance(std::span<const double> a, std::span<const double> b) const;

  KnnOptions options_;
  linalg::Matrix points_;
  std::vector<ApplicationClass> labels_;
};

}  // namespace appclass::core
