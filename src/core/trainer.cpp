#include "core/trainer.hpp"

#include "common/assert.hpp"
#include "monitor/harness.hpp"
#include "sim/testbed.hpp"
#include "workloads/catalog.hpp"

namespace appclass::core {

namespace {

/// Profiles one standalone run of `model` on a fresh copy of the testbed
/// (training runs are dedicated: nothing else shares the VM).
metrics::DataPool profile_training_run(
    std::unique_ptr<sim::WorkloadModel> model, const TrainingSetup& setup,
    std::uint64_t run_index) {
  sim::TestbedOptions opts;
  opts.seed = setup.seed + run_index;
  opts.vm1_ram_mb = setup.vm_ram_mb;
  opts.four_vms = false;
  sim::Testbed tb = sim::make_testbed(opts);
  monitor::ClusterMonitor mon(*tb.engine);
  const sim::InstanceId id = tb.engine->submit(tb.vm1, std::move(model));
  const monitor::ProfiledRun run = monitor::profile_instance(
      *tb.engine, mon, id, setup.sampling_interval_s);
  APPCLASS_ENSURES(run.completed);
  APPCLASS_ENSURES(!run.pool.empty());
  return run.pool;
}

}  // namespace

std::vector<LabeledPool> collect_training_pools(const TrainingSetup& setup) {
  std::vector<LabeledPool> out;
  out.reserve(kClassCount);

  // Enum order: idle, io, cpu, network, memory.
  out.push_back(LabeledPool{
      profile_training_run(workloads::make_idle(setup.idle_duration_s),
                           setup, 0),
      ApplicationClass::kIdle});
  out.push_back(LabeledPool{
      profile_training_run(workloads::make_postmark(false), setup, 1),
      ApplicationClass::kIo});
  out.push_back(LabeledPool{
      profile_training_run(
          workloads::make_specseis(workloads::SeisDataSize::kSmall), setup,
          2),
      ApplicationClass::kCpu});
  // Ettcp needs a remote endpoint: VM4 (index 1 in the two-VM testbed).
  {
    sim::TestbedOptions opts;
    opts.seed = setup.seed + 3;
    opts.vm1_ram_mb = setup.vm_ram_mb;
    opts.four_vms = false;
    sim::Testbed tb = sim::make_testbed(opts);
    monitor::ClusterMonitor mon(*tb.engine);
    const sim::InstanceId id = tb.engine->submit(
        tb.vm1, workloads::make_ettcp(static_cast<int>(tb.vm4)));
    const monitor::ProfiledRun run = monitor::profile_instance(
        *tb.engine, mon, id, setup.sampling_interval_s);
    APPCLASS_ENSURES(run.completed);
    out.push_back(LabeledPool{run.pool, ApplicationClass::kNetwork});
  }
  out.push_back(LabeledPool{
      profile_training_run(workloads::make_pagebench(), setup, 4),
      ApplicationClass::kMemory});
  return out;
}

ClassificationPipeline make_trained_pipeline(PipelineOptions options,
                                             const TrainingSetup& setup) {
  ClassificationPipeline pipeline(options);
  pipeline.train(collect_training_pools(setup));
  return pipeline;
}

}  // namespace appclass::core
