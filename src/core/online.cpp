#include "core/online.hpp"

#include "common/assert.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace appclass::core {
namespace {

struct OnlineMetrics {
  obs::Histogram& observe_seconds = obs::stage_histogram("online_observe");
  obs::Counter& observed = obs::MetricsRegistry::global().counter(
      "appclass_online_observations_total");
  obs::Counter& skipped = obs::MetricsRegistry::global().counter(
      "appclass_online_skipped_total");
  obs::Counter& changes = obs::MetricsRegistry::global().counter(
      "appclass_online_behaviour_changes_total");
};

OnlineMetrics& online_metrics() {
  static OnlineMetrics metrics;
  return metrics;
}

}  // namespace

OnlineClassifier::OnlineClassifier(const ClassificationPipeline& pipeline,
                                   OnlineOptions options)
    : pipeline_(pipeline), options_(options) {
  APPCLASS_EXPECTS(pipeline.trained());
  APPCLASS_EXPECTS(options.sampling_interval_s >= 1);
  APPCLASS_EXPECTS(options.window >= 1);
  APPCLASS_EXPECTS(options.stability >= 1);
}

std::optional<ApplicationClass> OnlineClassifier::observe(
    const metrics::Snapshot& snapshot) {
  OnlineMetrics& om = online_metrics();
  if (snapshot.time % options_.sampling_interval_s != 0) {
    om.skipped.inc();
    return std::nullopt;
  }

  obs::ScopedTimer observe_timer(om.observe_seconds);
  om.observed.inc();
  const ApplicationClass label = pipeline_.classify(snapshot);
  ++classified_;

  NodeState& node = nodes_[snapshot.node_ip];
  node.window.push_back(label);
  if (node.window.size() > options_.window) node.window.pop_front();

  // Debounced dominant-class tracking: the rolling majority must differ
  // from the stable class for `stability` consecutive samples to fire.
  const std::vector<ApplicationClass> window(node.window.begin(),
                                             node.window.end());
  const ApplicationClass dominant = majority_vote(window);
  if (!node.stable_class) {
    node.stable_class = dominant;
  } else if (dominant != *node.stable_class) {
    if (node.candidate_streak > 0 && node.candidate == dominant) {
      ++node.candidate_streak;
    } else {
      node.candidate = dominant;
      node.candidate_streak = 1;
    }
    if (node.candidate_streak >= options_.stability) {
      const BehaviourChange change{snapshot.node_ip, snapshot.time,
                                   *node.stable_class, dominant};
      node.stable_class = dominant;
      node.candidate_streak = 0;
      om.changes.inc();
      APPCLASS_LOG_DEBUG("online.behaviour_change", {"node", change.node_ip},
                         {"time", change.time},
                         {"from", to_string(change.from)},
                         {"to", to_string(change.to)});
      if (callback_) callback_(change);
    }
  } else {
    node.candidate_streak = 0;
  }
  return label;
}

std::optional<ClassComposition> OnlineClassifier::composition(
    const std::string& node_ip) const {
  const auto it = nodes_.find(node_ip);
  if (it == nodes_.end() || it->second.window.empty()) return std::nullopt;
  const std::vector<ApplicationClass> window(it->second.window.begin(),
                                             it->second.window.end());
  return ClassComposition(window);
}

std::optional<ApplicationClass> OnlineClassifier::current_class(
    const std::string& node_ip) const {
  const auto it = nodes_.find(node_ip);
  if (it == nodes_.end()) return std::nullopt;
  return it->second.stable_class;
}

}  // namespace appclass::core
