#include "core/online.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace appclass::core {
namespace {

struct OnlineMetrics {
  obs::Histogram& observe_seconds = obs::stage_histogram("online_observe");
  obs::Counter& observed = obs::MetricsRegistry::global().counter(
      "appclass_online_observations_total");
  obs::Counter& skipped = obs::MetricsRegistry::global().counter(
      "appclass_online_skipped_total");
  obs::Counter& changes = obs::MetricsRegistry::global().counter(
      "appclass_online_behaviour_changes_total");
  obs::Counter& abstained = obs::MetricsRegistry::global().counter(
      "appclass_online_abstained_total");
};

OnlineMetrics& online_metrics() {
  static OnlineMetrics metrics;
  return metrics;
}

}  // namespace

obs::ModelHealthOptions make_health_options(std::size_t drift_window) {
  obs::ModelHealthOptions options;
  options.class_names.reserve(kClassCount);
  for (const std::string_view name : kClassNames)
    options.class_names.emplace_back(name);
  if (drift_window > 0) {
    options.drift.window = drift_window;
    options.drift.reference_window = 2 * drift_window;
  }
  return options;
}

OnlineClassifier::OnlineClassifier(const ClassificationPipeline& pipeline,
                                   OnlineOptions options)
    : pipeline_(pipeline), options_(options) {
  APPCLASS_EXPECTS(pipeline.trained());
  APPCLASS_EXPECTS(options.sampling_interval_s >= 1);
  APPCLASS_EXPECTS(options.window >= 1);
  APPCLASS_EXPECTS(options.stability >= 1);
  APPCLASS_EXPECTS(options.min_coverage >= 0.0 &&
                   options.min_coverage <= 1.0);
}

void OnlineClassifier::refresh_window(NodeState& node, metrics::SimTime now) {
  const metrics::SimTime horizon =
      static_cast<metrics::SimTime>(options_.window - 1) *
      options_.sampling_interval_s;
  while (!node.window.empty() && now - node.window.front().first > horizon)
    node.window.pop_front();

  // Expected samples: one per grid point inside the horizon, bounded by
  // how long the node has been observed at all (a young node is not
  // penalized for samples that predate it).
  const metrics::SimTime observed_span =
      std::clamp<metrics::SimTime>(now - node.first_time, 0, horizon);
  const std::size_t expected = static_cast<std::size_t>(
      observed_span / options_.sampling_interval_s + 1);
  node.coverage = static_cast<double>(node.window.size()) /
                  static_cast<double>(std::max<std::size_t>(expected, 1));
}

std::optional<ApplicationClass> OnlineClassifier::observe(
    const metrics::Snapshot& snapshot) {
  OnlineMetrics& om = online_metrics();
  if (!on_grid(snapshot)) {
    om.skipped.inc();
    return std::nullopt;
  }

  obs::ScopedTimer observe_timer(om.observe_seconds);
  if (health_ != nullptr) {
    // Detailed path: same label arithmetic, plus the health evidence.
    const SnapshotClassification detail = pipeline_.classify_detailed(snapshot);
    ingest(snapshot, detail);
    return detail.label;
  }
  const ApplicationClass label = pipeline_.classify(snapshot);
  ingest(snapshot, label);
  return label;
}

void OnlineClassifier::ingest(const metrics::Snapshot& snapshot,
                              ApplicationClass label) {
  ingest_impl(snapshot, label, nullptr);
}

void OnlineClassifier::ingest(const metrics::Snapshot& snapshot,
                              const SnapshotClassification& detail) {
  ingest_impl(snapshot, detail.label, &detail);
}

OnlineClassifier::NodeState& OnlineClassifier::node_state(
    const std::string& node_ip) {
  if (!node_index_.empty()) {
    const std::size_t h = std::hash<std::string>{}(node_ip);
    const std::size_t mask = node_index_.size() - 1;
    for (std::size_t s = h & mask;; s = (s + 1) & mask) {
      const NodeIndexSlot& slot = node_index_[s];
      if (slot.key == nullptr) break;
      if (slot.hash == h && *slot.key == node_ip) return *slot.state;
    }
  }
  // First sighting of this node (or empty index): insert into the
  // ordered map and refresh the flat index over it.
  NodeState& node = nodes_.try_emplace(node_ip).first->second;
  rebuild_node_index();
  return node;
}

void OnlineClassifier::rebuild_node_index() {
  std::size_t cap = 8;
  while (cap < nodes_.size() * 2) cap <<= 1;
  node_index_.assign(cap, NodeIndexSlot{});
  const std::size_t mask = cap - 1;
  for (auto& [ip, state] : nodes_) {
    const std::size_t h = std::hash<std::string>{}(ip);
    std::size_t s = h & mask;
    while (node_index_[s].key != nullptr) s = (s + 1) & mask;
    node_index_[s] = NodeIndexSlot{h, &ip, &state};
  }
}

void OnlineClassifier::ingest_impl(const metrics::Snapshot& snapshot,
                                   ApplicationClass label,
                                   const SnapshotClassification* detail) {
  APPCLASS_EXPECTS(on_grid(snapshot));
  OnlineMetrics& om = online_metrics();
  om.observed.inc();
  ++classified_;

  NodeState& node = node_state(snapshot.node_ip);
  // +1: ingest pushes first and evicts after, so the ring momentarily
  // holds window + 1 entries without growing.
  node.window.ensure_capacity(options_.window + 1);
  if (node.window.empty() && !node.stable_class)
    node.first_time = snapshot.time;
  node.window.push_back({snapshot.time, label});
  while (node.window.size() > options_.window) node.window.pop_front();
  refresh_window(node, snapshot.time);

  const bool abstain =
      options_.min_coverage > 0.0 && node.coverage < options_.min_coverage;

  // Health evidence (abstained observations included — they enter the
  // window too): strictly observational, never feeds back into the label
  // or window state below.
  if (health_ != nullptr) {
    obs::HealthSample sample;
    sample.node_ip = snapshot.node_ip;
    sample.class_index = index_of(label);
    sample.coverage = node.coverage;
    sample.degraded = abstain;
    sample.abstained = abstain;
    if (detail != nullptr) {
      sample.confidence = detail->confidence;
      sample.vote_margin = detail->vote_margin;
      sample.novel = pipeline_.novelty_threshold() > 0.0 &&
                     detail->novelty > pipeline_.novelty_threshold();
      sample.projected = detail->projected;
    }
    health_->record(sample);
  }

  // Coverage-aware abstention: with too few valid samples in the window
  // (mid-blackout or right after one), hold the last stable class rather
  // than voting on fragments; the candidate streak resets so a change can
  // only fire from contiguous healthy evidence.
  if (abstain) {
    ++abstained_;
    om.abstained.inc();
    node.candidate_streak = 0;
    APPCLASS_LOG_DEBUG("online.abstain", {"node", snapshot.node_ip},
                       {"time", snapshot.time},
                       {"coverage", node.coverage},
                       {"window", node.window.size()});
    return;
  }

  // Debounced dominant-class tracking: the rolling majority must differ
  // from the stable class for `stability` consecutive samples to fire.
  // The window maintains its class counts incrementally, so this is an
  // argmax over kClassCount counters rather than a copy-and-recount of
  // the whole window per ingest (the old hot-path cost).
  const ApplicationClass dominant = node.window.dominant();
  if (!node.stable_class) {
    node.stable_class = dominant;
  } else if (dominant != *node.stable_class) {
    if (node.candidate_streak > 0 && node.candidate == dominant) {
      ++node.candidate_streak;
    } else {
      node.candidate = dominant;
      node.candidate_streak = 1;
    }
    if (node.candidate_streak >= options_.stability) {
      const BehaviourChange change{snapshot.node_ip, snapshot.time,
                                   *node.stable_class, dominant};
      node.stable_class = dominant;
      node.candidate_streak = 0;
      om.changes.inc();
      APPCLASS_LOG_DEBUG("online.behaviour_change", {"node", change.node_ip},
                         {"time", change.time},
                         {"from", to_string(change.from)},
                         {"to", to_string(change.to)});
      if (callback_) callback_(change);
    }
  } else {
    node.candidate_streak = 0;
  }
}

OnlineStateImage OnlineClassifier::export_state() const {
  OnlineStateImage image;
  image.classified = classified_;
  image.abstained = abstained_;
  image.nodes.reserve(nodes_.size());
  for (const auto& [ip, node] : nodes_) {
    OnlineNodeImage n;
    n.node_ip = ip;
    n.window.reserve(node.window.size());
    for (std::size_t i = 0; i < node.window.size(); ++i)
      n.window.push_back(node.window.at(i));
    n.stable_class = node.stable_class;
    n.candidate = node.candidate;
    n.candidate_streak = node.candidate_streak;
    n.first_time = node.first_time;
    n.coverage = node.coverage;
    image.nodes.push_back(std::move(n));
  }
  return image;
}

void OnlineClassifier::import_state(const OnlineStateImage& image) {
  classified_ = image.classified;
  abstained_ = image.abstained;
  nodes_.clear();
  for (const auto& n : image.nodes) {
    NodeState node;
    node.window.ensure_capacity(
        std::max<std::size_t>(options_.window + 1, n.window.size()));
    for (const auto& entry : n.window) node.window.push_back(entry);
    node.stable_class = n.stable_class;
    node.candidate = n.candidate;
    node.candidate_streak = n.candidate_streak;
    node.first_time = n.first_time;
    node.coverage = n.coverage;
    nodes_.emplace(n.node_ip, std::move(node));
  }
  rebuild_node_index();
}

std::optional<ClassComposition> OnlineClassifier::composition(
    const std::string& node_ip) const {
  const auto it = nodes_.find(node_ip);
  if (it == nodes_.end() || it->second.window.empty()) return std::nullopt;
  const LabelWindow& window = it->second.window;
  std::vector<ApplicationClass> labels;
  labels.reserve(window.size());
  for (std::size_t i = 0; i < window.size(); ++i)
    labels.push_back(window.at(i).second);
  return ClassComposition(labels);
}

std::optional<ApplicationClass> OnlineClassifier::current_class(
    const std::string& node_ip) const {
  const auto it = nodes_.find(node_ip);
  if (it == nodes_.end()) return std::nullopt;
  return it->second.stable_class;
}

std::optional<double> OnlineClassifier::coverage(
    const std::string& node_ip) const {
  const auto it = nodes_.find(node_ip);
  if (it == nodes_.end()) return std::nullopt;
  return it->second.coverage;
}

bool OnlineClassifier::degraded(const std::string& node_ip) const {
  const auto it = nodes_.find(node_ip);
  if (it == nodes_.end()) return false;
  return options_.min_coverage > 0.0 &&
         it->second.coverage < options_.min_coverage;
}

}  // namespace appclass::core
