#include "core/robustness.hpp"

#include <map>
#include <sstream>

#include "common/assert.hpp"
#include "monitor/fault_injection.hpp"
#include "monitor/harness.hpp"
#include "obs/log.hpp"
#include "sim/testbed.hpp"
#include "workloads/catalog.hpp"

namespace appclass::core {

namespace {

constexpr std::array<FaultKind, 7> kAllKinds = {
    FaultKind::kDrop,      FaultKind::kBlackout, FaultKind::kCorrupt,
    FaultKind::kDuplicate, FaultKind::kReplay,   FaultKind::kMetricDropout,
    FaultKind::kDropAndCorrupt,
};

/// Runs one canonical workload on a fresh testbed and records the target
/// VM's full announcement stream. The factory receives the testbed so
/// network workloads can name their peer VM.
template <typename ModelFactory>
RecordedRun record_run(const std::string& workload, ApplicationClass expected,
                       std::uint64_t seed, ModelFactory make_model) {
  sim::TestbedOptions opts;
  opts.seed = seed;
  opts.four_vms = false;
  sim::Testbed tb = sim::make_testbed(opts);
  monitor::ClusterMonitor mon(*tb.engine);

  RecordedRun run;
  run.workload = workload;
  run.expected = expected;
  run.node_ip = tb.engine->vm(tb.vm1).spec().ip;
  const monitor::SubscriptionId sub =
      mon.bus().subscribe([&](const metrics::Snapshot& s) {
        if (s.node_ip == run.node_ip) run.announcements.push_back(s);
      });

  std::unique_ptr<sim::WorkloadModel> model = make_model(tb);
  APPCLASS_EXPECTS(model != nullptr);

  const sim::InstanceId id = tb.engine->submit(tb.vm1, std::move(model));
  const sim::SimTime deadline = tb.engine->now() + 200'000;
  while (tb.engine->instance(id).state != sim::InstanceState::kFinished &&
         tb.engine->now() < deadline)
    tb.engine->step();
  mon.bus().unsubscribe(sub);
  APPCLASS_ENSURES(tb.engine->instance(id).state ==
                   sim::InstanceState::kFinished);
  APPCLASS_ENSURES(!run.announcements.empty());

  // Clean per-metric means: the sanitizer's fallback imputation values.
  for (const auto& s : run.announcements)
    for (std::size_t i = 0; i < metrics::kMetricCount; ++i)
      run.metric_means[i] += s.values[i];
  for (double& m : run.metric_means)
    m /= static_cast<double>(run.announcements.size());
  return run;
}

monitor::FaultOptions fault_options_for(FaultKind kind, double rate) {
  monitor::FaultOptions opts;
  switch (kind) {
    case FaultKind::kDrop:
      opts.drop_probability = rate;
      break;
    case FaultKind::kBlackout:
      opts.blackout_probability = rate;
      opts.blackout_s = 30;
      break;
    case FaultKind::kCorrupt:
      opts.corruption_probability = rate;
      opts.corruption_metrics = 2;
      break;
    case FaultKind::kDuplicate:
      opts.duplicate_probability = rate;
      break;
    case FaultKind::kReplay:
      opts.replay_probability = rate;
      break;
    case FaultKind::kMetricDropout:
      opts.metric_dropout_probability = rate;
      break;
    case FaultKind::kDropAndCorrupt:
      opts.drop_probability = rate;
      opts.corruption_probability = rate / 10.0;
      opts.corruption_metrics = 2;
      break;
  }
  return opts;
}

}  // namespace

std::string_view to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kBlackout: return "blackout";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kReplay: return "replay";
    case FaultKind::kMetricDropout: return "metric_dropout";
    case FaultKind::kDropAndCorrupt: return "drop+corrupt";
  }
  return "unknown";
}

std::optional<FaultKind> fault_kind_from_string(
    std::string_view name) noexcept {
  for (const FaultKind kind : kAllKinds)
    if (to_string(kind) == name) return kind;
  return std::nullopt;
}

std::span<const FaultKind> all_fault_kinds() noexcept { return kAllKinds; }

std::vector<RecordedRun> record_canonical_runs(const ChaosOptions& options) {
  // The paper's five canonical per-class workloads, with a seed distinct
  // from the training runs so the curve scores generalization, not recall.
  std::vector<RecordedRun> runs;
  runs.reserve(kClassCount);
  runs.push_back(record_run("idle", ApplicationClass::kIdle,
                            options.run_seed + 0,
                            [](sim::Testbed&) { return workloads::make_idle(600.0); }));
  runs.push_back(record_run("postmark", ApplicationClass::kIo,
                            options.run_seed + 1,
                            [](sim::Testbed&) { return workloads::make_postmark(false); }));
  runs.push_back(record_run(
      "specseis_small", ApplicationClass::kCpu, options.run_seed + 2,
      [](sim::Testbed&) {
        return workloads::make_specseis(workloads::SeisDataSize::kSmall);
      }));
  runs.push_back(record_run(
      "ettcp", ApplicationClass::kNetwork, options.run_seed + 3,
      [](sim::Testbed& tb) {
        return workloads::make_ettcp(static_cast<int>(tb.vm4));
      }));
  runs.push_back(record_run("pagebench", ApplicationClass::kMemory,
                            options.run_seed + 4,
                            [](sim::Testbed&) { return workloads::make_pagebench(); }));
  return runs;
}

ChaosCell run_chaos_cell(const ClassificationPipeline& pipeline,
                         const RecordedRun& run, FaultKind kind, double rate,
                         const ChaosOptions& options) {
  APPCLASS_EXPECTS(pipeline.trained());
  APPCLASS_EXPECTS(rate >= 0.0 && rate <= 1.0);
  const int d = options.sampling_interval_s;

  ChaosCell cell;
  cell.workload = run.workload;
  cell.expected = run.expected;
  cell.kind = kind;
  cell.rate = rate;
  cell.sanitized = options.sanitize;

  // Clean baseline: labels of the undisturbed grid samples.
  metrics::DataPool clean_pool(run.node_ip);
  for (const auto& s : run.announcements)
    if (s.time % d == 0) clean_pool.add(s);
  APPCLASS_EXPECTS(!clean_pool.empty());
  cell.clean_samples = clean_pool.size();
  const ClassificationResult clean = pipeline.classify(clean_pool);
  std::map<metrics::SimTime, ApplicationClass> clean_labels;
  for (std::size_t i = 0; i < clean_pool.size(); ++i)
    clean_labels[clean_pool[i].time] = clean.class_vector[i];

  // Degraded path: recorded stream -> faulty channel -> sanitizer -> pool.
  monitor::MetricBus source, degraded;
  monitor::FaultyChannel channel(
      source, degraded, fault_options_for(kind, rate),
      linalg::derive_seed(options.seed,
                          static_cast<std::uint64_t>(kind) * 1000003 +
                              static_cast<std::uint64_t>(rate * 1.0e6)));
  metrics::SnapshotSanitizer sanitizer(options.sanitizer);
  sanitizer.set_fallback(run.metric_means);

  metrics::DataPool degraded_pool(run.node_ip);
  const monitor::SubscriptionId sub =
      degraded.subscribe([&](const metrics::Snapshot& s) {
        metrics::Snapshot cleaned = s;
        if (options.sanitize) {
          const metrics::SanitizeResult r = sanitizer.sanitize(s);
          if (!r.ok()) return;
          cleaned = r.snapshot;
        }
        if (cleaned.time % d == 0) degraded_pool.add(cleaned);
      });
  for (const auto& s : run.announcements) source.announce(s);
  degraded.unsubscribe(sub);

  cell.survived_samples = degraded_pool.size();
  cell.rejected = sanitizer.stats().rejected();
  cell.imputed_values = sanitizer.stats().imputed_values;
  if (degraded_pool.empty()) {
    cell.accuracy = 0.0;
    cell.majority_ok = false;
    return cell;
  }

  const ClassificationResult result = pipeline.classify(degraded_pool);
  std::size_t scored = 0, agreed = 0;
  for (std::size_t i = 0; i < degraded_pool.size(); ++i) {
    const auto it = clean_labels.find(degraded_pool[i].time);
    if (it == clean_labels.end()) continue;
    ++scored;
    if (result.class_vector[i] == it->second) ++agreed;
  }
  cell.accuracy = scored == 0 ? 0.0
                              : static_cast<double>(agreed) /
                                    static_cast<double>(scored);
  cell.majority = result.application_class;
  cell.majority_ok = result.application_class == clean.application_class;
  return cell;
}

std::vector<ChaosCell> run_chaos_sweep(const ClassificationPipeline& pipeline,
                                       const std::vector<RecordedRun>& runs,
                                       const ChaosOptions& options) {
  const std::vector<FaultKind> kinds =
      options.kinds.empty()
          ? std::vector<FaultKind>(kAllKinds.begin(), kAllKinds.end())
          : options.kinds;
  std::vector<ChaosCell> cells;
  cells.reserve(runs.size() * kinds.size() * options.rates.size());
  for (const auto& run : runs)
    for (const FaultKind kind : kinds)
      for (const double rate : options.rates)
        cells.push_back(run_chaos_cell(pipeline, run, kind, rate, options));
  APPCLASS_LOG_INFO("chaos.sweep", {"cells", cells.size()},
                    {"workloads", runs.size()},
                    {"sanitize", options.sanitize});
  return cells;
}

std::string chaos_csv(const std::vector<ChaosCell>& cells) {
  std::ostringstream os;
  os << "workload,expected,fault_kind,rate,sanitized,clean_samples,"
        "survived_samples,rejected,imputed_values,accuracy,majority,"
        "majority_ok\n";
  os.precision(6);
  for (const auto& c : cells) {
    os << c.workload << ',' << to_string(c.expected) << ','
       << to_string(c.kind) << ',' << c.rate << ',' << (c.sanitized ? 1 : 0)
       << ',' << c.clean_samples << ',' << c.survived_samples << ','
       << c.rejected << ',' << c.imputed_values << ',' << c.accuracy << ','
       << to_string(c.majority) << ',' << (c.majority_ok ? 1 : 0) << '\n';
  }
  return os.str();
}

}  // namespace appclass::core
