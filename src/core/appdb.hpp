// The application database (paper sections 4.3 and Figure 1).
//
// Stores the post-processed classification result of every historical run
// — class composition, majority class, execution time — keyed by
// application name and execution-environment configuration. Schedulers
// query it for the learned behaviour of an application; statistical
// abstracts aggregate over repeated runs.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/composition.hpp"
#include "linalg/stats.hpp"

namespace appclass::core {

/// One historical run record.
struct RunRecord {
  std::string application;  ///< catalog name, e.g. "postmark"
  std::string config;       ///< environment key, e.g. "vm1-256MB"
  ClassComposition composition;
  ApplicationClass application_class = ApplicationClass::kIdle;
  std::int64_t elapsed_seconds = 0;
  std::size_t samples = 0;
};

/// Aggregate over all historical runs of one (application, config) pair.
struct ApplicationProfile {
  std::string application;
  std::string config;
  std::size_t runs = 0;
  /// Mean class composition over runs.
  std::array<double, kClassCount> mean_fractions{};
  /// Majority class across runs (mode).
  ApplicationClass typical_class = ApplicationClass::kIdle;
  /// Execution-time statistics across runs.
  linalg::RunningStats elapsed;
};

class ApplicationDatabase {
 public:
  /// Inserts a run record.
  void record(RunRecord run);

  std::size_t size() const noexcept { return runs_.size(); }

  /// All stored runs, insertion order.
  const std::vector<RunRecord>& runs() const noexcept { return runs_; }

  /// Aggregated profile, or nullopt if the pair was never recorded.
  std::optional<ApplicationProfile> profile(const std::string& application,
                                            const std::string& config) const;

  /// Profiles for every recorded (application, config) pair.
  std::vector<ApplicationProfile> all_profiles() const;

  /// Convenience: the typical class of an application under a config, or
  /// nullopt when unknown — what a class-aware scheduler asks for.
  std::optional<ApplicationClass> typical_class(
      const std::string& application, const std::string& config) const;

  /// Serializes all runs to CSV; `load_csv` round-trips it.
  std::string to_csv() const;
  static ApplicationDatabase from_csv(const std::string& csv);

 private:
  std::vector<RunRecord> runs_;
};

}  // namespace appclass::core
