// Model persistence: serialize a trained ClassificationPipeline to a
// versioned, line-oriented text format and restore it exactly.
//
// A production deployment trains once (or re-trains periodically) and
// ships the fitted model to the monitoring nodes; the model is tiny — the
// normalization statistics, the PCA basis, and the k-NN training points.
#pragma once

#include <string>

#include "core/pipeline.hpp"

namespace appclass::core {

/// Serializes a trained pipeline. Format (text, line oriented):
///
///   appclass-pipeline v1
///   metrics <p> <name...>
///   norm-mean <p doubles> / norm-stddev <p doubles>
///   pca <p> <q>, pca-mean, pca-eigenvalues, pca-projection rows
///   knn <n> <k> <metric>, then n lines "label <q coords>"
std::string save_pipeline(const ClassificationPipeline& pipeline);

/// Restores a pipeline saved by `save_pipeline`. Throws std::runtime_error
/// on version mismatch or malformed input.
ClassificationPipeline load_pipeline(const std::string& text);

/// Convenience file I/O (throws std::runtime_error on I/O failure).
void save_pipeline_file(const ClassificationPipeline& pipeline,
                        const std::string& path);
ClassificationPipeline load_pipeline_file(const std::string& path);

}  // namespace appclass::core
