#include "core/evaluation.hpp"

#include <cstdio>
#include <numeric>

#include "common/assert.hpp"
#include "linalg/random.hpp"

namespace appclass::core {

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t diag = 0;
  for (std::size_t c = 0; c < kClassCount; ++c) diag += counts_[c][c];
  return static_cast<double>(diag) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(ApplicationClass cls) const {
  const std::size_t c = index_of(cls);
  std::size_t predicted = 0;
  for (std::size_t t = 0; t < kClassCount; ++t) predicted += counts_[t][c];
  if (predicted == 0) return 1.0;
  return static_cast<double>(counts_[c][c]) / static_cast<double>(predicted);
}

double ConfusionMatrix::recall(ApplicationClass cls) const {
  const std::size_t c = index_of(cls);
  const std::size_t actual =
      std::accumulate(counts_[c].begin(), counts_[c].end(), std::size_t{0});
  if (actual == 0) return 1.0;
  return static_cast<double>(counts_[c][c]) / static_cast<double>(actual);
}

double ConfusionMatrix::f1(ApplicationClass cls) const {
  const double p = precision(cls);
  const double r = recall(cls);
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double ConfusionMatrix::macro_f1() const {
  double sum = 0.0;
  int classes = 0;
  for (std::size_t c = 0; c < kClassCount; ++c) {
    const auto cls = class_from_index(c);
    const std::size_t actual =
        std::accumulate(counts_[c].begin(), counts_[c].end(), std::size_t{0});
    if (actual == 0) continue;
    sum += f1(cls);
    ++classes;
  }
  return classes == 0 ? 0.0 : sum / classes;
}

void ConfusionMatrix::merge(const ConfusionMatrix& other) {
  for (std::size_t t = 0; t < kClassCount; ++t)
    for (std::size_t p = 0; p < kClassCount; ++p)
      counts_[t][p] += other.counts_[t][p];
  total_ += other.total_;
}

std::string ConfusionMatrix::to_string() const {
  std::string out = "true\\pred";
  char buf[64];
  for (std::size_t p = 0; p < kClassCount; ++p) {
    std::snprintf(buf, sizeof buf, "%9s",
                  std::string(kClassNames[p]).c_str());
    out += buf;
  }
  out += '\n';
  for (std::size_t t = 0; t < kClassCount; ++t) {
    std::snprintf(buf, sizeof buf, "%-9s", std::string(kClassNames[t]).c_str());
    out += buf;
    for (std::size_t p = 0; p < kClassCount; ++p) {
      std::snprintf(buf, sizeof buf, "%9zu", counts_[t][p]);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

LabeledSnapshots flatten(const std::vector<LabeledPool>& pools) {
  LabeledSnapshots out;
  for (const auto& lp : pools)
    for (const auto& s : lp.pool.snapshots()) {
      out.snapshots.push_back(s);
      out.labels.push_back(lp.label);
    }
  return out;
}

ConfusionMatrix evaluate(const ClassificationPipeline& pipeline,
                         const LabeledSnapshots& data) {
  APPCLASS_EXPECTS(pipeline.trained());
  ConfusionMatrix cm;
  for (std::size_t i = 0; i < data.size(); ++i)
    cm.add(data.labels[i], pipeline.classify(data.snapshots[i]));
  return cm;
}

ConfusionMatrix cross_validate(const std::vector<LabeledPool>& pools,
                               PipelineOptions options, std::size_t folds,
                               std::uint64_t seed) {
  APPCLASS_EXPECTS(folds >= 2);
  linalg::Rng rng(seed);

  // Assign each snapshot of each pool a fold, stratified per class.
  struct Assigned {
    const LabeledPool* pool;
    std::vector<std::size_t> fold_of;  // per snapshot
  };
  std::vector<Assigned> assigned;
  for (const auto& lp : pools) {
    Assigned a{&lp, std::vector<std::size_t>(lp.pool.size())};
    for (std::size_t i = 0; i < a.fold_of.size(); ++i)
      a.fold_of[i] = i % folds;
    rng.shuffle(std::span<std::size_t>(a.fold_of));
    assigned.push_back(std::move(a));
  }

  ConfusionMatrix total;
  for (std::size_t fold = 0; fold < folds; ++fold) {
    std::vector<LabeledPool> train;
    LabeledSnapshots test;
    for (const auto& a : assigned) {
      metrics::DataPool train_pool(a.pool->pool.node_ip());
      for (std::size_t i = 0; i < a.pool->pool.size(); ++i) {
        if (a.fold_of[i] == fold) {
          test.snapshots.push_back(a.pool->pool[i]);
          test.labels.push_back(a.pool->label);
        } else {
          train_pool.add(a.pool->pool[i]);
        }
      }
      if (!train_pool.empty())
        train.push_back(LabeledPool{std::move(train_pool), a.pool->label});
    }
    ClassificationPipeline pipeline(options);
    pipeline.train(train);
    total.merge(evaluate(pipeline, test));
  }
  return total;
}

}  // namespace appclass::core
