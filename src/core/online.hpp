// Online (streaming) classification service.
//
// Wraps a trained pipeline behind a push interface suitable for wiring
// directly to the monitoring bus: feed it every announced snapshot and it
// maintains, per node, a rolling window of labels, the current rolling
// composition, and a debounced "behaviour changed" event stream — the
// online counterpart of the paper's offline post-processing, and the
// mechanism a migration-capable scheduler would subscribe to.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "core/pipeline.hpp"

namespace appclass::core {

struct OnlineOptions {
  /// Only snapshots with time % sampling_interval_s == 0 are classified
  /// (mirrors the profiler's period d).
  int sampling_interval_s = 5;
  /// Rolling window length, in classified samples.
  std::size_t window = 12;
  /// A behaviour change is reported only after the new dominant class has
  /// held for this many consecutive samples (debounce).
  std::size_t stability = 3;
};

/// A reported behaviour change on one node.
struct BehaviourChange {
  std::string node_ip;
  metrics::SimTime time = 0;
  ApplicationClass from = ApplicationClass::kIdle;
  ApplicationClass to = ApplicationClass::kIdle;
};

class OnlineClassifier {
 public:
  using ChangeCallback = std::function<void(const BehaviourChange&)>;

  /// The pipeline must stay alive for the classifier's lifetime.
  OnlineClassifier(const ClassificationPipeline& pipeline,
                   OnlineOptions options = {});

  /// Feeds one announced snapshot; classifies it if it falls on the
  /// sampling grid. Returns the label assigned, if any.
  std::optional<ApplicationClass> observe(const metrics::Snapshot& snapshot);

  /// Called whenever a node's debounced dominant class changes.
  void on_change(ChangeCallback callback) { callback_ = std::move(callback); }

  /// Rolling composition of a node's current window (empty if unseen).
  std::optional<ClassComposition> composition(
      const std::string& node_ip) const;

  /// Debounced dominant class of a node (nullopt if unseen).
  std::optional<ApplicationClass> current_class(
      const std::string& node_ip) const;

  /// Total snapshots classified across all nodes.
  std::size_t classified_count() const noexcept { return classified_; }

 private:
  struct NodeState {
    std::deque<ApplicationClass> window;
    std::optional<ApplicationClass> stable_class;
    ApplicationClass candidate = ApplicationClass::kIdle;
    std::size_t candidate_streak = 0;
  };

  const ClassificationPipeline& pipeline_;
  OnlineOptions options_;
  ChangeCallback callback_;
  std::map<std::string, NodeState> nodes_;
  std::size_t classified_ = 0;
};

}  // namespace appclass::core
