// Online (streaming) classification service.
//
// Wraps a trained pipeline behind a push interface suitable for wiring
// directly to the monitoring bus: feed it every announced snapshot and it
// maintains, per node, a rolling window of labels, the current rolling
// composition, and a debounced "behaviour changed" event stream — the
// online counterpart of the paper's offline post-processing, and the
// mechanism a migration-capable scheduler would subscribe to.
//
// The window is time-aware: entries older than the window's time horizon
// are evicted, so after a monitoring blackout the classifier knows its
// evidence is thin. While coverage (valid samples / expected samples) is
// below `min_coverage` it abstains — the last stable class is held, no
// behaviour change can fire, and the abstention is counted — instead of
// voting on whatever fragments survived.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "obs/health.hpp"

namespace appclass::core {

/// ModelHealthOptions pre-filled with this domain's class names (obs is a
/// lower layer and does not know them). `drift_window` sizes the drift
/// detector's sliding window; 0 keeps the DriftOptions default.
obs::ModelHealthOptions make_health_options(std::size_t drift_window = 0);

struct OnlineOptions {
  /// Only snapshots with time % sampling_interval_s == 0 are classified
  /// (mirrors the profiler's period d).
  int sampling_interval_s = 5;
  /// Rolling window length, in classified samples.
  std::size_t window = 12;
  /// A behaviour change is reported only after the new dominant class has
  /// held for this many consecutive samples (debounce).
  std::size_t stability = 3;
  /// Coverage-aware abstention threshold: when the rolling window holds
  /// fewer than this fraction of the samples it should hold (given the
  /// sampling grid and the window's time horizon), stable-class updates
  /// are suspended and the node reports degraded. 0 disables abstention.
  double min_coverage = 0.5;
};

/// A reported behaviour change on one node.
struct BehaviourChange {
  std::string node_ip;
  metrics::SimTime time = 0;
  ApplicationClass from = ApplicationClass::kIdle;
  ApplicationClass to = ApplicationClass::kIdle;
};

/// Complete serializable image of an OnlineClassifier's mutable state —
/// everything checkpoint/recovery must persist so a restarted process
/// resumes with bit-identical windows, debounce streaks, and counters.
/// Nodes are ordered by node_ip (the classifier's own map order), so two
/// equal states always encode identically.
struct OnlineNodeImage {
  std::string node_ip;
  /// (time, label) pairs in window order (oldest first).
  std::vector<std::pair<metrics::SimTime, ApplicationClass>> window;
  std::optional<ApplicationClass> stable_class;
  ApplicationClass candidate = ApplicationClass::kIdle;
  std::size_t candidate_streak = 0;
  metrics::SimTime first_time = 0;
  double coverage = 1.0;
};

struct OnlineStateImage {
  std::size_t classified = 0;
  std::size_t abstained = 0;
  std::vector<OnlineNodeImage> nodes;
};

class OnlineClassifier {
 public:
  using ChangeCallback = std::function<void(const BehaviourChange&)>;

  /// The pipeline must stay alive for the classifier's lifetime.
  OnlineClassifier(const ClassificationPipeline& pipeline,
                   OnlineOptions options = {});

  /// Feeds one announced snapshot; classifies it if it falls on the
  /// sampling grid. Returns the label assigned, if any. Equivalent to
  /// on_grid() + pipeline.classify() + ingest().
  std::optional<ApplicationClass> observe(const metrics::Snapshot& snapshot);

  /// True when `snapshot` falls on the sampling grid (would be classified).
  bool on_grid(const metrics::Snapshot& snapshot) const noexcept {
    return snapshot.time % options_.sampling_interval_s == 0;
  }

  /// Applies an already-computed label for a grid-aligned snapshot:
  /// window/coverage bookkeeping, debounce, change callback. Split from
  /// observe() so a fleet drain can classify a batch of buffered
  /// snapshots in parallel and then ingest the labels serially in push
  /// order — state updates stay single-threaded and deterministic.
  void ingest(const metrics::Snapshot& snapshot, ApplicationClass label);

  /// Same, from the detailed evidence of classify_detailed(): identical
  /// label bookkeeping, plus — when a health aggregator is attached —
  /// confidence/margin/novelty accounting and the drift feed.
  void ingest(const metrics::Snapshot& snapshot,
              const SnapshotClassification& detail);

  /// Attaches a model-health aggregator (nullptr detaches; not owned).
  /// Health recording is strictly observational: labels, window state,
  /// and behaviour-change events are bit-identical with or without it.
  void attach_health(obs::ModelHealth* health) noexcept { health_ = health; }
  obs::ModelHealth* health() const noexcept { return health_; }

  /// Called whenever a node's debounced dominant class changes.
  void on_change(ChangeCallback callback) { callback_ = std::move(callback); }

  /// Rolling composition of a node's current window (empty if unseen).
  std::optional<ClassComposition> composition(
      const std::string& node_ip) const;

  /// Debounced dominant class of a node (nullopt if unseen). Held at the
  /// last stable value while the node is degraded.
  std::optional<ApplicationClass> current_class(
      const std::string& node_ip) const;

  /// Fraction (0, 1] of expected window samples actually present — the
  /// confidence discount after losses/blackouts. Nullopt if unseen.
  std::optional<double> coverage(const std::string& node_ip) const;

  /// True while a node's coverage is below min_coverage (abstaining).
  bool degraded(const std::string& node_ip) const;

  /// Total snapshots classified across all nodes.
  std::size_t classified_count() const noexcept { return classified_; }

  /// Grid-aligned observations absorbed while abstaining.
  std::size_t abstained_count() const noexcept { return abstained_; }

  /// The options the classifier was constructed with (checkpoints persist
  /// them so recovery can refuse a state written under different knobs).
  const OnlineOptions& options() const noexcept { return options_; }

  /// Snapshot of all mutable state, for checkpointing. Deterministic:
  /// equal classifier states produce equal images.
  OnlineStateImage export_state() const;

  /// Replaces all mutable state with `image` (inverse of export_state).
  /// The pipeline and options are NOT part of the image — the caller must
  /// reconstruct the classifier under the same ones for recovered
  /// classifications to be meaningful.
  void import_state(const OnlineStateImage& image);

 private:
  /// Bounded (time, label) ring replacing the former std::deque window:
  /// a deque allocates and frees a chunk every few dozen push/pop cycles,
  /// which would keep the steady-state ingest path off zero allocations.
  /// Capacity is fixed at first use (OnlineOptions::window + 1, so the
  /// push-then-evict ingest sequence never grows it); all operations are
  /// allocation-free afterwards.
  class LabelWindow {
   public:
    using Entry = std::pair<metrics::SimTime, ApplicationClass>;

    std::size_t size() const noexcept { return count_; }
    bool empty() const noexcept { return count_ == 0; }
    const Entry& front() const { return slots_[head_]; }
    /// Logical indexing, 0 = oldest.
    const Entry& at(std::size_t i) const {
      return slots_[(head_ + i) % slots_.size()];
    }

    /// Grow-only; no-op once at least `cap` slots exist.
    void ensure_capacity(std::size_t cap) {
      if (slots_.size() >= cap) return;
      std::vector<Entry> next(cap);
      for (std::size_t i = 0; i < count_; ++i) next[i] = at(i);
      slots_.swap(next);
      head_ = 0;
    }

    void push_back(Entry entry) {
      if (count_ == slots_.size()) ensure_capacity(count_ * 2 + 1);
      slots_[(head_ + count_) % slots_.size()] = entry;
      ++count_;
      ++class_counts_[index_of(entry.second)];
    }

    void pop_front() {
      --class_counts_[index_of(slots_[head_].second)];
      head_ = (head_ + 1) % slots_.size();
      --count_;
    }

    /// Rolling majority class of the window, maintained incrementally:
    /// argmax over the per-class occupancy counts kept in sync by
    /// push_back/pop_front. Strict `>` with ascending class index is
    /// exactly majority_vote() over the window's label vector — distinct
    /// small-integer counts divided by the same window size stay
    /// distinct doubles, so the fraction argmax and the count argmax
    /// pick the same class, ties included — without re-copying and
    /// re-counting the window on every ingest. Window must be non-empty.
    ApplicationClass dominant() const noexcept {
      std::size_t best = 0;
      for (std::size_t c = 1; c < kClassCount; ++c)
        if (class_counts_[c] > class_counts_[best]) best = c;
      return class_from_index(best);
    }

   private:
    std::vector<Entry> slots_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    std::array<std::uint32_t, kClassCount> class_counts_{};
  };

  struct NodeState {
    LabelWindow window;
    std::optional<ApplicationClass> stable_class;
    ApplicationClass candidate = ApplicationClass::kIdle;
    std::size_t candidate_streak = 0;
    metrics::SimTime first_time = 0;
    double coverage = 1.0;
  };

  /// Drops window entries older than the window's time horizon and
  /// recomputes coverage as of `now`.
  void refresh_window(NodeState& node, metrics::SimTime now);

  /// Shared ingest body; `detail` is nullptr on the label-only path.
  void ingest_impl(const metrics::Snapshot& snapshot, ApplicationClass label,
                   const SnapshotClassification* detail);

  /// Hot-path node lookup: open-addressing index over nodes_ (hash +
  /// one string compare instead of an ordered-map descent). Falls back
  /// to the map — and rebuilds the index — only when a node is first
  /// seen, so steady-state ingest never allocates here.
  NodeState& node_state(const std::string& node_ip);
  void rebuild_node_index();

  const ClassificationPipeline& pipeline_;
  OnlineOptions options_;
  ChangeCallback callback_;
  obs::ModelHealth* health_ = nullptr;
  /// Ordered by node_ip: export_state()'s deterministic encoding and the
  /// cold query paths iterate it. Node entries are pointer-stable, which
  /// is what lets the flat index below hold raw pointers into it.
  std::map<std::string, NodeState> nodes_;
  struct NodeIndexSlot {
    std::size_t hash = 0;
    const std::string* key = nullptr;
    NodeState* state = nullptr;
  };
  /// Power-of-two open-addressing table over nodes_ (linear probing,
  /// ~half empty). Rebuilt whenever the node set changes.
  std::vector<NodeIndexSlot> node_index_;
  std::size_t classified_ = 0;
  std::size_t abstained_ = 0;
};

}  // namespace appclass::core
