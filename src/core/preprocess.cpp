#include "core/preprocess.hpp"

#include "common/assert.hpp"

namespace appclass::core {

Preprocessor::Preprocessor(std::vector<metrics::MetricId> selected)
    : selected_(std::move(selected)) {
  APPCLASS_EXPECTS(!selected_.empty());
}

linalg::Matrix Preprocessor::extract(const metrics::DataPool& pool) const {
  return pool.to_observation_major(selected_);
}

void Preprocessor::fit(const linalg::Matrix& samples) {
  APPCLASS_EXPECTS(samples.cols() == selected_.size());
  APPCLASS_EXPECTS(samples.rows() >= 1);
  stats_ = linalg::column_stats(samples);
  fitted_ = true;
}

void Preprocessor::fit(const metrics::DataPool& pool) { fit(extract(pool)); }

Preprocessor Preprocessor::restore(std::vector<metrics::MetricId> selected,
                                   linalg::ColumnStats stats) {
  APPCLASS_EXPECTS(selected.size() == stats.dims());
  Preprocessor pre(std::move(selected));
  pre.stats_ = std::move(stats);
  pre.fitted_ = true;
  return pre;
}

const linalg::ColumnStats& Preprocessor::stats() const {
  APPCLASS_EXPECTS(fitted_);
  return stats_;
}

linalg::Matrix Preprocessor::transform(const linalg::Matrix& samples) const {
  APPCLASS_EXPECTS(fitted_);
  APPCLASS_EXPECTS(samples.cols() == selected_.size());
  return linalg::normalize(samples, stats_);
}

linalg::Matrix Preprocessor::transform(const metrics::DataPool& pool) const {
  return transform(extract(pool));
}

std::vector<double> Preprocessor::transform(
    const metrics::Snapshot& snapshot) const {
  std::vector<double> row(selected_.size());
  transform_into(snapshot, row);
  return row;
}

void Preprocessor::transform_into(const metrics::Snapshot& snapshot,
                                  std::span<double> row) const {
  APPCLASS_EXPECTS(fitted_);
  APPCLASS_EXPECTS(row.size() == selected_.size());
  for (std::size_t i = 0; i < selected_.size(); ++i)
    row[i] = snapshot.get(selected_[i]);
  linalg::normalize_row(row, stats_);
}

}  // namespace appclass::core
