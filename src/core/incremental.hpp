// Incremental (online) training.
//
// The paper's 15 ms/sample cost analysis argues online *training* is
// feasible; this module supplies the loop: labelled snapshots stream in
// over time (e.g. from dedicated calibration runs, or operator-confirmed
// classifications), are kept in bounded per-class reservoirs, and a fresh
// pipeline can be trained from the reservoir contents at any moment.
// Reservoir sampling keeps memory constant while remaining a uniform
// sample of everything seen.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/pipeline.hpp"
#include "linalg/random.hpp"

namespace appclass::core {

struct IncrementalOptions {
  /// Maximum retained snapshots per class (the reservoir size).
  std::size_t reservoir_per_class = 200;
  /// Seed for reservoir replacement decisions.
  std::uint64_t seed = 17;
};

class IncrementalTrainer {
 public:
  explicit IncrementalTrainer(PipelineOptions pipeline_options = {},
                              IncrementalOptions options = {});

  /// Adds one labelled snapshot (reservoir-sampled per class).
  void add(const metrics::Snapshot& snapshot, ApplicationClass label);

  /// Adds every snapshot of a pool under one label.
  void add_pool(const metrics::DataPool& pool, ApplicationClass label);

  /// Snapshots currently retained for one class.
  std::size_t retained(ApplicationClass cls) const;
  /// Total snapshots ever offered (including ones the reservoir evicted).
  std::size_t seen() const noexcept { return seen_; }

  /// True once at least two classes have samples (the minimum to train).
  bool ready() const;

  /// Trains a fresh pipeline on the current reservoirs. Requires ready().
  ClassificationPipeline train() const;

 private:
  PipelineOptions pipeline_options_;
  IncrementalOptions options_;
  linalg::Rng rng_;
  std::size_t seen_ = 0;
  /// Per class: retained snapshots + how many were ever offered.
  std::array<std::vector<metrics::Snapshot>, kClassCount> reservoirs_;
  std::array<std::size_t, kClassCount> offered_{};
};

}  // namespace appclass::core
