#include "core/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "common/assert.hpp"
#include "common/fs.hpp"

namespace appclass::core {

namespace {

// v2 appends a `checksum <16-hex FNV-1a-64>` footer over the whole body so
// a truncated or bit-flipped model file fails loudly at load instead of
// silently classifying with a damaged model. v1 files (no footer) are
// still readable.
constexpr std::string_view kMagic = "appclass-pipeline v2";
constexpr std::string_view kMagicV1 = "appclass-pipeline v1";
constexpr std::string_view kChecksumTag = "checksum ";

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("pipeline deserialization: " + what);
}

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string to_hex64(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i, v >>= 4) out[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
  return out;
}

std::string expect_tag(std::istream& is, const std::string& tag) {
  std::string got;
  if (!(is >> got) || got != tag) fail("expected '" + tag + "'");
  return got;
}

double read_double(std::istream& is) {
  double v = 0.0;
  if (!(is >> v)) fail("truncated number");
  return v;
}

std::size_t read_size(std::istream& is) {
  long long v = 0;
  if (!(is >> v) || v < 0) fail("bad count");
  return static_cast<std::size_t>(v);
}

}  // namespace

std::string save_pipeline(const ClassificationPipeline& pipeline) {
  APPCLASS_EXPECTS(pipeline.trained());
  std::ostringstream os;
  os.precision(17);

  const Preprocessor& pre = pipeline.preprocessor();
  const Pca& pca = pipeline.pca();
  const KnnClassifier& knn = pipeline.knn();
  const std::size_t p = pre.dimension();
  const std::size_t q = pca.components();

  os << kMagic << '\n';
  os << "metrics " << p;
  for (const auto id : pre.selected()) os << ' ' << metrics::info(id).name;
  os << '\n';
  os << "norm-mean";
  for (double v : pre.stats().mean) os << ' ' << v;
  os << "\nnorm-stddev";
  for (double v : pre.stats().stddev) os << ' ' << v;
  os << '\n';
  os << "pca " << p << ' ' << q << '\n';
  os << "pca-mean";
  for (double v : pca.mean()) os << ' ' << v;
  os << "\npca-eigenvalues";
  for (double v : pca.eigenvalues()) os << ' ' << v;
  os << '\n';
  for (std::size_t r = 0; r < p; ++r) {
    os << "pca-row";
    for (std::size_t c = 0; c < q; ++c) os << ' ' << pca.projection()(r, c);
    os << '\n';
  }
  os << "knn " << knn.training_size() << ' ' << knn.k() << ' '
     << (knn.options().metric == DistanceMetric::kManhattan ? "manhattan"
                                                            : "euclidean")
     << '\n';
  for (std::size_t i = 0; i < knn.training_size(); ++i) {
    os << to_string(knn.training_labels()[i]);
    for (std::size_t c = 0; c < q; ++c)
      os << ' ' << knn.training_points()(i, c);
    os << '\n';
  }
  std::string body = os.str();
  body.append(kChecksumTag);
  body.append(to_hex64(fnv1a64(
      std::string_view(body.data(), body.size() - kChecksumTag.size()))));
  body.push_back('\n');
  return body;
}

ClassificationPipeline load_pipeline(const std::string& text) {
  std::string_view view = text;
  if (view.empty()) fail("empty model file");
  const bool v1 = view.rfind(kMagicV1, 0) == 0;
  if (!v1 && view.rfind(kMagic, 0) != 0) fail("bad magic/version header");

  if (!v1) {
    // Verify the checksum footer before trusting any field.
    const std::size_t footer = view.rfind(kChecksumTag);
    if (footer == std::string_view::npos)
      fail("missing checksum footer (truncated file?)");
    std::string_view recorded = view.substr(footer + kChecksumTag.size());
    while (!recorded.empty() &&
           (recorded.back() == '\n' || recorded.back() == '\r' ||
            recorded.back() == ' '))
      recorded.remove_suffix(1);
    // A footer tag with fewer than 16 hex digits means the crash landed
    // inside the footer itself — report that distinctly from damage to
    // the body, which surfaces as a value mismatch below.
    if (recorded.size() != 16 ||
        recorded.find_first_not_of("0123456789abcdef") !=
            std::string_view::npos)
      fail("truncated checksum footer (expected 16 hex digits, found '" +
           std::string(recorded) + "')");
    const std::string computed = to_hex64(fnv1a64(view.substr(0, footer)));
    if (recorded != computed)
      fail("checksum mismatch: file is corrupt (expected " + computed +
           ", found '" + std::string(recorded) + "')");
  }

  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || (line != kMagic && line != kMagicV1))
    fail("bad magic/version header");

  // --- preprocessor ---
  expect_tag(is, "metrics");
  const std::size_t p = read_size(is);
  if (p == 0 || p > metrics::kMetricCount) fail("bad metric count");
  std::vector<metrics::MetricId> selected;
  for (std::size_t i = 0; i < p; ++i) {
    std::string name;
    if (!(is >> name)) fail("truncated metric list");
    const auto id = metrics::find_metric(name);
    if (!id) fail("unknown metric '" + name + "'");
    selected.push_back(*id);
  }
  linalg::ColumnStats stats;
  expect_tag(is, "norm-mean");
  for (std::size_t i = 0; i < p; ++i) stats.mean.push_back(read_double(is));
  expect_tag(is, "norm-stddev");
  for (std::size_t i = 0; i < p; ++i) {
    const double sd = read_double(is);
    if (sd <= 0.0) fail("non-positive stddev");
    stats.stddev.push_back(sd);
  }

  // --- pca ---
  expect_tag(is, "pca");
  if (read_size(is) != p) fail("pca dimension mismatch");
  const std::size_t q = read_size(is);
  if (q == 0 || q > p) fail("bad component count");
  std::vector<double> mean, eigenvalues;
  expect_tag(is, "pca-mean");
  for (std::size_t i = 0; i < p; ++i) mean.push_back(read_double(is));
  expect_tag(is, "pca-eigenvalues");
  for (std::size_t i = 0; i < p; ++i)
    eigenvalues.push_back(read_double(is));
  linalg::Matrix projection(p, q);
  for (std::size_t r = 0; r < p; ++r) {
    expect_tag(is, "pca-row");
    for (std::size_t c = 0; c < q; ++c) projection(r, c) = read_double(is);
  }

  // --- knn ---
  expect_tag(is, "knn");
  const std::size_t n = read_size(is);
  const std::size_t k = read_size(is);
  std::string metric_name;
  if (!(is >> metric_name)) fail("missing distance metric");
  KnnOptions knn_options;
  knn_options.k = k;
  if (metric_name == "manhattan")
    knn_options.metric = DistanceMetric::kManhattan;
  else if (metric_name == "euclidean")
    knn_options.metric = DistanceMetric::kEuclidean;
  else
    fail("unknown distance metric '" + metric_name + "'");
  if (n < k) fail("fewer training points than k");

  linalg::Matrix points(n, q);
  std::vector<ApplicationClass> labels;
  labels.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::string label_name;
    if (!(is >> label_name)) fail("truncated training set");
    const auto label = class_from_string(label_name);
    if (!label) fail("unknown class '" + label_name + "'");
    labels.push_back(*label);
    for (std::size_t c = 0; c < q; ++c) points(i, c) = read_double(is);
  }

  // After the training set the only legal continuations are the checksum
  // footer (v2) or end of file (v1). Anything else is a section this
  // build does not understand — loading would silently drop state, so
  // refuse loudly instead.
  std::string trailing;
  if (is >> trailing && trailing != "checksum")
    fail("unknown section '" + trailing +
         "' (file written by a newer format version?)");

  KnnClassifier knn(knn_options);
  knn.train(std::move(points), std::move(labels));
  return ClassificationPipeline::restore(
      Preprocessor::restore(std::move(selected), std::move(stats)),
      Pca::restore(std::move(mean), std::move(eigenvalues),
                   std::move(projection)),
      std::move(knn));
}

void save_pipeline_file(const ClassificationPipeline& pipeline,
                        const std::string& path) {
  // Write-temp + rename: a crash mid-save leaves the previous model (or
  // nothing) in place, never a truncated file that fails its checksum at
  // the next startup. Errors carry path + errno context.
  common::atomic_write_file(path, save_pipeline(pipeline));
}

ClassificationPipeline load_pipeline_file(const std::string& path) {
  std::string text;
  try {
    text = common::read_file_or_throw(path);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error("pipeline model: " + std::string(e.what()));
  }
  return load_pipeline(text);
}

}  // namespace appclass::core
