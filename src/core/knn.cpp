#include "core/knn.hpp"

#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace appclass::core {

KnnClassifier::KnnClassifier(KnnOptions options) : options_(options) {
  APPCLASS_EXPECTS(options_.k >= 1);
  APPCLASS_EXPECTS(options_.k % 2 == 1);  // odd k, per the paper
}

void KnnClassifier::train(linalg::Matrix points,
                          std::vector<ApplicationClass> labels) {
  APPCLASS_EXPECTS(points.rows() == labels.size());
  APPCLASS_EXPECTS(points.rows() >= options_.k);
  points_ = std::move(points);
  labels_ = std::move(labels);
  index_.build(points_, labels_, options_.k, options_.metric);
}

std::size_t KnnClassifier::dimension() const {
  APPCLASS_EXPECTS(trained());
  return points_.cols();
}

QueryResult KnnClassifier::make_result(std::size_t count,
                                       const QueryOptions& options) const {
  APPCLASS_EXPECTS(trained());
  QueryResult out;
  out.count = count;
  out.labels.resize(count);
  if (options.vote_shares) out.vote_shares.resize(count);
  if (options.neighbors) {
    out.neighbors_per_query = std::min(options_.k, labels_.size());
    out.neighbor_indices.resize(count * out.neighbors_per_query);
  }
  if (options.novelty) out.novelty.resize(count);
  return out;
}

namespace {

/// The novelty score predates the Manhattan option and is defined as the
/// *Euclidean* distance to the nearest training point regardless of the
/// vote metric; under Euclidean it falls out of the kernel's hits[0] for
/// free, under Manhattan it needs this scalar scan.
double euclidean_novelty(const linalg::Matrix& points,
                         std::span<const double> q) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < points.rows(); ++i)
    best = std::min(best, linalg::squared_distance(points.row(i), q));
  return std::sqrt(best);
}

}  // namespace

void KnnClassifier::query_rows(
    const linalg::Matrix& points, std::size_t begin, std::size_t end,
    const QueryOptions& options, QueryResult& out,
    engine::BlockedKnnIndex::Scratch& scratch) const {
  APPCLASS_EXPECTS(trained());
  APPCLASS_EXPECTS(points.cols() == points_.cols());
  APPCLASS_EXPECTS(begin <= end && end <= points.rows());
  APPCLASS_EXPECTS(end <= out.count);
  const bool euclidean = options_.metric == DistanceMetric::kEuclidean;
  for (std::size_t r = begin; r < end; ++r) {
    const auto q = points.row(r);
    const auto hits = index_.top_k(q, scratch);
    const auto vote = index_.vote(hits);
    out.labels[r] = vote.label;
    if (options.vote_shares) out.vote_shares[r] = vote.share;
    if (options.neighbors) {
      for (std::size_t j = 0; j < out.neighbors_per_query; ++j)
        out.neighbor_indices[r * out.neighbors_per_query + j] =
            hits[j].index;
    }
    if (options.novelty) {
      // hits are ascending, so under Euclidean hits[0] already holds the
      // global minimum squared distance — no second scan.
      out.novelty[r] = euclidean ? std::sqrt(hits[0].distance)
                                 : euclidean_novelty(points_, q);
    }
  }
}

QueryResult KnnClassifier::query(const linalg::Matrix& points,
                                 const QueryOptions& options) const {
  QueryResult out = make_result(points.rows(), options);
  engine::BlockedKnnIndex::Scratch scratch;
  query_rows(points, 0, points.rows(), options, out, scratch);
  return out;
}

QueryResult KnnClassifier::query(std::span<const double> point,
                                 const QueryOptions& options) const {
  QueryResult out = make_result(1, options);
  thread_local engine::BlockedKnnIndex::Scratch scratch;
  const linalg::Matrix one =
      linalg::Matrix::from_rows(1, point.size(),
                                {point.begin(), point.end()});
  query_rows(one, 0, 1, options, out, scratch);
  return out;
}

}  // namespace appclass::core
