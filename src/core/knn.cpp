#include "core/knn.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace appclass::core {

KnnClassifier::KnnClassifier(KnnOptions options) : options_(options) {
  APPCLASS_EXPECTS(options_.k >= 1);
  APPCLASS_EXPECTS(options_.k % 2 == 1);  // odd k, per the paper
}

void KnnClassifier::train(linalg::Matrix points,
                          std::vector<ApplicationClass> labels) {
  APPCLASS_EXPECTS(points.rows() == labels.size());
  APPCLASS_EXPECTS(points.rows() >= options_.k);
  points_ = std::move(points);
  labels_ = std::move(labels);
}

std::size_t KnnClassifier::dimension() const {
  APPCLASS_EXPECTS(trained());
  return points_.cols();
}

double KnnClassifier::distance(std::span<const double> a,
                               std::span<const double> b) const {
  switch (options_.metric) {
    case DistanceMetric::kManhattan:
      return linalg::manhattan_distance(a, b);
    case DistanceMetric::kEuclidean:
    default:
      return linalg::squared_distance(a, b);  // monotone in Euclidean
  }
}

std::vector<std::size_t> KnnClassifier::nearest(
    std::span<const double> point) const {
  APPCLASS_EXPECTS(trained());
  APPCLASS_EXPECTS(point.size() == points_.cols());
  const std::size_t n = labels_.size();
  const std::size_t k = std::min(options_.k, n);

  // Partial selection of the k smallest distances.
  std::vector<std::pair<double, std::size_t>> dist(n);
  for (std::size_t i = 0; i < n; ++i)
    dist[i] = {distance(points_.row(i), point), i};
  std::partial_sort(dist.begin(),
                    dist.begin() + static_cast<std::ptrdiff_t>(k), dist.end());
  std::vector<std::size_t> out(k);
  for (std::size_t i = 0; i < k; ++i) out[i] = dist[i].second;
  return out;
}

double KnnClassifier::nearest_distance(std::span<const double> point) const {
  APPCLASS_EXPECTS(trained());
  APPCLASS_EXPECTS(point.size() == points_.cols());
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < labels_.size(); ++i)
    best = std::min(best, linalg::squared_distance(points_.row(i), point));
  return std::sqrt(best);
}

ApplicationClass KnnClassifier::classify(std::span<const double> point) const {
  return classify_with_confidence(point).label;
}

KnnClassifier::Labeled KnnClassifier::classify_with_confidence(
    std::span<const double> point) const {
  const std::vector<std::size_t> nn = nearest(point);

  // Majority vote; ties resolved by summed inverse rank (nearer wins).
  std::array<int, kClassCount> votes{};
  std::array<double, kClassCount> rank_weight{};
  for (std::size_t r = 0; r < nn.size(); ++r) {
    const std::size_t c = index_of(labels_[nn[r]]);
    votes[c] += 1;
    rank_weight[c] += 1.0 / static_cast<double>(r + 1);
  }
  std::size_t best = 0;
  for (std::size_t c = 1; c < kClassCount; ++c) {
    if (votes[c] > votes[best] ||
        (votes[c] == votes[best] && rank_weight[c] > rank_weight[best]))
      best = c;
  }
  return Labeled{class_from_index(best),
                 static_cast<double>(votes[best]) /
                     static_cast<double>(nn.size())};
}

std::vector<ApplicationClass> KnnClassifier::classify(
    const linalg::Matrix& points) const {
  std::vector<ApplicationClass> out;
  out.reserve(points.rows());
  for (std::size_t r = 0; r < points.rows(); ++r)
    out.push_back(classify(points.row(r)));
  return out;
}

}  // namespace appclass::core
