// Training-set construction (paper section 4.2.3 / Table 2).
//
// The classifier is trained from dedicated runs of one canonical
// application per class on the paper's testbed: SPECseis96 for CPU,
// PostMark for I/O, Pagebench for paging, Ettcp for network, and an
// otherwise-idle VM for idle. This module reproduces those five profiled
// runs on the simulated testbed (VM1 on the 1.80 GHz host; a second VM on
// the 2.40 GHz host serving as the network benchmark's peer) and returns
// the labelled pools — or a fully trained pipeline.
#pragma once

#include <cstdint>
#include <vector>

#include "core/pipeline.hpp"

namespace appclass::core {

struct TrainingSetup {
  /// Sampling period d in seconds (paper: 5).
  int sampling_interval_s = 5;
  /// Seed for the simulated training runs.
  std::uint64_t seed = 7;
  /// Length of the idle-class capture.
  double idle_duration_s = 600.0;
  /// VM memory for the training VM (the paper's VM1 has 256 MB).
  double vm_ram_mb = 256.0;
};

/// Profiles the five training applications and returns one labelled pool
/// per class, in enum order {idle, io, cpu, network, memory}.
std::vector<LabeledPool> collect_training_pools(
    const TrainingSetup& setup = {});

/// Collects training pools and trains a pipeline on them.
ClassificationPipeline make_trained_pipeline(PipelineOptions options = {},
                                             const TrainingSetup& setup = {});

}  // namespace appclass::core
