#include "core/classifiers.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace appclass::core {

std::vector<ApplicationClass> SnapshotClassifier::classify_all(
    const linalg::Matrix& points) const {
  std::vector<ApplicationClass> out;
  out.reserve(points.rows());
  for (std::size_t r = 0; r < points.rows(); ++r)
    out.push_back(classify(points.row(r)));
  return out;
}

void NearestCentroidClassifier::train(linalg::Matrix points,
                                      std::vector<ApplicationClass> labels) {
  APPCLASS_EXPECTS(points.rows() == labels.size());
  APPCLASS_EXPECTS(points.rows() >= 1);
  dims_ = points.cols();
  for (auto& c : centroids_) c.assign(dims_, 0.0);
  counts_.fill(0);
  for (std::size_t r = 0; r < points.rows(); ++r) {
    const std::size_t c = index_of(labels[r]);
    ++counts_[c];
    auto row = points.row(r);
    for (std::size_t j = 0; j < dims_; ++j) centroids_[c][j] += row[j];
  }
  for (std::size_t c = 0; c < kClassCount; ++c)
    if (counts_[c] > 0)
      for (double& x : centroids_[c]) x /= static_cast<double>(counts_[c]);
}

ApplicationClass NearestCentroidClassifier::classify(
    std::span<const double> point) const {
  APPCLASS_EXPECTS(dims_ > 0 && point.size() == dims_);
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_class = 0;
  for (std::size_t c = 0; c < kClassCount; ++c) {
    if (counts_[c] == 0) continue;
    const double d = linalg::squared_distance(point, centroids_[c]);
    if (d < best) {
      best = d;
      best_class = c;
    }
  }
  return class_from_index(best_class);
}

std::span<const double> NearestCentroidClassifier::centroid(
    ApplicationClass cls) const {
  APPCLASS_EXPECTS(has_class(cls));
  return centroids_[index_of(cls)];
}

WeightedKnnClassifier::WeightedKnnClassifier(std::size_t k, double epsilon)
    : k_(k), epsilon_(epsilon) {
  APPCLASS_EXPECTS(k >= 1);
  APPCLASS_EXPECTS(epsilon > 0.0);
}

void WeightedKnnClassifier::train(linalg::Matrix points,
                                  std::vector<ApplicationClass> labels) {
  APPCLASS_EXPECTS(points.rows() == labels.size());
  APPCLASS_EXPECTS(points.rows() >= k_);
  points_ = std::move(points);
  labels_ = std::move(labels);
}

ApplicationClass WeightedKnnClassifier::classify(
    std::span<const double> point) const {
  APPCLASS_EXPECTS(!labels_.empty());
  APPCLASS_EXPECTS(point.size() == points_.cols());
  const std::size_t n = labels_.size();
  std::vector<std::pair<double, std::size_t>> dist(n);
  for (std::size_t i = 0; i < n; ++i)
    dist[i] = {linalg::euclidean_distance(points_.row(i), point), i};
  const std::size_t k = std::min(k_, n);
  std::partial_sort(dist.begin(),
                    dist.begin() + static_cast<std::ptrdiff_t>(k), dist.end());
  std::array<double, kClassCount> weight{};
  for (std::size_t r = 0; r < k; ++r)
    weight[index_of(labels_[dist[r].second])] +=
        1.0 / (dist[r].first + epsilon_);
  std::size_t best = 0;
  for (std::size_t c = 1; c < kClassCount; ++c)
    if (weight[c] > weight[best]) best = c;
  return class_from_index(best);
}

}  // namespace appclass::core
