#include "trace/timeseries.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace appclass::trace {

TimeSeries downsample(const TimeSeries& s, std::size_t factor) {
  APPCLASS_EXPECTS(factor >= 1);
  if (factor == 1) return s;
  TimeSeries out;
  out.start_time = s.start_time;
  out.interval = s.interval * static_cast<std::int64_t>(factor);
  out.values.reserve((s.size() + factor - 1) / factor);
  for (std::size_t i = 0; i < s.size(); i += factor) {
    const std::size_t end = std::min(i + factor, s.size());
    double sum = 0.0;
    for (std::size_t j = i; j < end; ++j) sum += s.values[j];
    out.values.push_back(sum / static_cast<double>(end - i));
  }
  return out;
}

TimeSeries moving_average(const TimeSeries& s, std::size_t w) {
  APPCLASS_EXPECTS(w >= 1 && w % 2 == 1);
  TimeSeries out = s;
  const std::size_t half = w / 2;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const std::size_t lo = i >= half ? i - half : 0;
    const std::size_t hi = std::min(i + half + 1, s.size());
    double sum = 0.0;
    for (std::size_t j = lo; j < hi; ++j) sum += s.values[j];
    out.values[i] = sum / static_cast<double>(hi - lo);
  }
  return out;
}

std::vector<WindowSummary> windowed_summaries(const TimeSeries& s,
                                              std::size_t window) {
  APPCLASS_EXPECTS(window >= 1);
  std::vector<WindowSummary> out;
  for (std::size_t i = 0; i < s.size(); i += window) {
    WindowSummary ws;
    ws.begin = i;
    ws.end = std::min(i + window, s.size());
    for (std::size_t j = ws.begin; j < ws.end; ++j) ws.stats.add(s.values[j]);
    out.push_back(ws);
  }
  return out;
}

std::vector<std::size_t> change_points(const TimeSeries& s, std::size_t window,
                                       double threshold) {
  APPCLASS_EXPECTS(window >= 2);
  const auto windows = windowed_summaries(s, window);
  std::vector<std::size_t> boundaries;
  for (std::size_t i = 0; i + 1 < windows.size(); ++i) {
    const auto& a = windows[i].stats;
    const auto& b = windows[i + 1].stats;
    const double pooled =
        std::sqrt(0.5 * (a.variance() + b.variance()));
    const double scale = std::max(pooled, 1e-9);
    if (std::abs(a.mean() - b.mean()) > threshold * scale)
      boundaries.push_back(windows[i + 1].begin);
  }
  return boundaries;
}

std::vector<std::pair<std::size_t, std::size_t>> segments_from_boundaries(
    std::size_t n, std::span<const std::size_t> boundaries) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  std::size_t start = 0;
  for (std::size_t b : boundaries) {
    APPCLASS_EXPECTS(b >= start && b <= n);
    if (b > start) out.emplace_back(start, b);
    start = b;
  }
  if (start < n) out.emplace_back(start, n);
  return out;
}

}  // namespace appclass::trace
