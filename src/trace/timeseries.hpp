// Time-series utilities over sampled metric values.
//
// The classifier itself treats snapshots as i.i.d. points, but the
// post-processing layer (statistical abstracts, multi-stage segmentation,
// sampling-interval ablations) needs ordered-in-time views: resampling,
// sliding windows, smoothing, and change-point detection.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/stats.hpp"

namespace appclass::trace {

/// A uniformly sampled scalar series: value[i] observed at
/// start_time + i * interval.
struct TimeSeries {
  std::int64_t start_time = 0;
  std::int64_t interval = 1;  ///< seconds between samples; > 0
  std::vector<double> values;

  std::size_t size() const noexcept { return values.size(); }
  bool empty() const noexcept { return values.empty(); }
  std::int64_t time_at(std::size_t i) const noexcept {
    return start_time + static_cast<std::int64_t>(i) * interval;
  }
};

/// Downsamples `s` by an integer factor, averaging each block of `factor`
/// consecutive samples (rate metrics stay rates). A trailing partial block
/// is averaged over its actual length.
TimeSeries downsample(const TimeSeries& s, std::size_t factor);

/// Simple moving average with a centered window of odd width `w`.
/// Edges use the available one-sided samples.
TimeSeries moving_average(const TimeSeries& s, std::size_t w);

/// Summary of one window of a series.
struct WindowSummary {
  std::size_t begin = 0;  ///< first sample index (inclusive)
  std::size_t end = 0;    ///< one-past-last sample index
  linalg::RunningStats stats;
};

/// Splits `s` into consecutive windows of `window` samples (last window may
/// be shorter) and summarizes each.
std::vector<WindowSummary> windowed_summaries(const TimeSeries& s,
                                              std::size_t window);

/// Detects change points in a series by comparing means of adjacent windows:
/// a boundary between windows i and i+1 is a change point when the absolute
/// difference of their means exceeds `threshold` times the pooled stddev.
/// Returns sample indices of detected boundaries. This is the segmentation
/// primitive behind multi-stage application analysis (paper section 7).
std::vector<std::size_t> change_points(const TimeSeries& s, std::size_t window,
                                       double threshold = 2.0);

/// Splits [0, n) into segments at the given boundaries (sorted, in-range).
std::vector<std::pair<std::size_t, std::size_t>> segments_from_boundaries(
    std::size_t n, std::span<const std::size_t> boundaries);

}  // namespace appclass::trace
