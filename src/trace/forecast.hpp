// Resource-usage forecasting.
//
// The paper positions its classifier as a complement to run-time
// prediction approaches (section 6 discusses Conservative Scheduling,
// which schedules on the predicted mean and variance of future CPU load).
// This module provides those predictors over metric series: an EWMA
// tracker with a variance estimate, and Holt's double exponential
// smoothing for trending series.
#pragma once

#include <cmath>
#include <cstddef>

#include "common/assert.hpp"

namespace appclass::trace {

/// Exponentially weighted moving average with an EW variance estimate —
/// the "predicted average and variance of CPU load" primitive of
/// Conservative Scheduling.
class EwmaForecaster {
 public:
  /// `alpha` in (0, 1]: weight of the newest observation.
  explicit EwmaForecaster(double alpha = 0.2) : alpha_(alpha) {
    APPCLASS_EXPECTS(alpha > 0.0 && alpha <= 1.0);
  }

  void observe(double x) noexcept {
    if (count_ == 0) {
      mean_ = x;
      var_ = 0.0;
    } else {
      // West (1979) incremental EW mean/variance.
      const double delta = x - mean_;
      mean_ += alpha_ * delta;
      var_ = (1.0 - alpha_) * (var_ + alpha_ * delta * delta);
    }
    ++count_;
  }

  std::size_t count() const noexcept { return count_; }
  /// Forecast of the next value (flat persistence of the EW mean).
  double forecast() const noexcept { return mean_; }
  double variance() const noexcept { return var_; }
  /// Conservative estimate: forecast plus `k` standard deviations.
  double conservative(double k = 1.0) const noexcept {
    return mean_ + k * std::sqrt(var_);
  }

 private:
  double alpha_;
  double mean_ = 0.0;
  double var_ = 0.0;
  std::size_t count_ = 0;
};

/// Holt's double exponential smoothing: tracks level and trend, so it can
/// extrapolate a ramp h steps ahead (an EWMA always lags a trend).
class HoltForecaster {
 public:
  HoltForecaster(double alpha = 0.3, double beta = 0.1)
      : alpha_(alpha), beta_(beta) {
    APPCLASS_EXPECTS(alpha > 0.0 && alpha <= 1.0);
    APPCLASS_EXPECTS(beta > 0.0 && beta <= 1.0);
  }

  void observe(double x) noexcept {
    if (count_ == 0) {
      level_ = x;
    } else if (count_ == 1) {
      trend_ = x - level_;
      level_ = x;
    } else {
      const double prev_level = level_;
      level_ = alpha_ * x + (1.0 - alpha_) * (level_ + trend_);
      trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
    }
    ++count_;
  }

  std::size_t count() const noexcept { return count_; }
  double level() const noexcept { return level_; }
  double trend() const noexcept { return trend_; }
  /// Forecast h steps ahead (h >= 1).
  double forecast(std::size_t h = 1) const noexcept {
    return level_ + static_cast<double>(h) * trend_;
  }

 private:
  double alpha_;
  double beta_;
  double level_ = 0.0;
  double trend_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace appclass::trace
