// Quantiles and fixed-bin histograms over metric samples.
//
// Used by the application database's statistical abstracts and by the
// benchmark harnesses when summarizing throughput distributions.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace appclass::linalg {

/// The q-quantile (q in [0, 1]) of `values` using linear interpolation
/// between order statistics (type-7, the R/numpy default). Values need not
/// be sorted; the input is copied. Non-empty input required.
double quantile(std::span<const double> values, double q);

/// Convenience percentiles.
double median(std::span<const double> values);

/// Fixed-width histogram over [lo, hi); samples outside clamp to the edge
/// bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void add_all(std::span<const double> values) noexcept;

  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t count() const noexcept { return total_; }
  std::size_t bin_count(std::size_t bin) const;
  /// [lower, upper) edges of a bin.
  std::pair<double, double> bin_range(std::size_t bin) const;
  /// Fraction of samples at or below the upper edge of `bin`.
  double cumulative_fraction(std::size_t bin) const;

  /// Terminal rendering: one bar line per bin.
  std::string to_string(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace appclass::linalg
