#include "linalg/stats.hpp"

#include <algorithm>
#include <cmath>

namespace appclass::linalg {

double mean(std::span<const double> v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double variance(std::span<const double> v) {
  if (v.empty()) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

double sample_variance(std::span<const double> v) {
  APPCLASS_EXPECTS(v.size() >= 2);
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size() - 1);
}

double stddev(std::span<const double> v) { return std::sqrt(variance(v)); }

ColumnStats column_stats(const Matrix& samples, double min_stddev) {
  APPCLASS_EXPECTS(samples.rows() >= 1);
  const std::size_t n = samples.rows();
  const std::size_t d = samples.cols();
  ColumnStats out;
  out.mean.assign(d, 0.0);
  out.stddev.assign(d, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    auto row = samples.row(r);
    for (std::size_t c = 0; c < d; ++c) out.mean[c] += row[c];
  }
  for (double& m : out.mean) m /= static_cast<double>(n);
  for (std::size_t r = 0; r < n; ++r) {
    auto row = samples.row(r);
    for (std::size_t c = 0; c < d; ++c) {
      const double dx = row[c] - out.mean[c];
      out.stddev[c] += dx * dx;
    }
  }
  for (double& s : out.stddev)
    s = std::max(std::sqrt(s / static_cast<double>(n)), min_stddev);
  return out;
}

Matrix normalize(const Matrix& samples, const ColumnStats& stats) {
  APPCLASS_EXPECTS(stats.dims() == samples.cols());
  Matrix out = samples;
  for (std::size_t r = 0; r < out.rows(); ++r) normalize_row(out.row(r), stats);
  return out;
}

void normalize_row(std::span<double> row, const ColumnStats& stats) {
  APPCLASS_EXPECTS(row.size() == stats.dims());
  for (std::size_t c = 0; c < row.size(); ++c)
    row[c] = (row[c] - stats.mean[c]) / stats.stddev[c];
}

Matrix covariance(const Matrix& samples) {
  APPCLASS_EXPECTS(samples.rows() >= 2);
  const std::size_t n = samples.rows();
  Matrix s = scatter(samples);
  s *= 1.0 / static_cast<double>(n - 1);
  return s;
}

Matrix scatter(const Matrix& samples) {
  APPCLASS_EXPECTS(samples.rows() >= 1);
  const std::size_t n = samples.rows();
  const std::size_t d = samples.cols();
  const ColumnStats cs = column_stats(samples, 0.0);
  Matrix s(d, d, 0.0);
  std::vector<double> centered(d);
  for (std::size_t r = 0; r < n; ++r) {
    auto row = samples.row(r);
    for (std::size_t c = 0; c < d; ++c) centered[c] = row[c] - cs.mean[c];
    for (std::size_t i = 0; i < d; ++i) {
      const double ci = centered[i];
      if (ci == 0.0) continue;
      for (std::size_t j = i; j < d; ++j) s(i, j) += ci * centered[j];
    }
  }
  for (std::size_t i = 0; i < d; ++i)
    for (std::size_t j = 0; j < i; ++j) s(i, j) = s(j, i);
  return s;
}

double correlation(std::span<const double> a, std::span<const double> b) {
  APPCLASS_EXPECTS(a.size() == b.size());
  if (a.size() < 2) return 0.0;
  const double ma = mean(a);
  const double mb = mean(b);
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  if (saa == 0.0 || sbb == 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ == 0 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

}  // namespace appclass::linalg
