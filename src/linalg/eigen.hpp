// Symmetric eigendecomposition via the cyclic Jacobi rotation method.
//
// PCA over the paper's 8-metric feature space needs the eigensystem of an
// 8x8 covariance matrix; Jacobi is exact (to round-off), unconditionally
// stable for symmetric input, and dependency-free, which is why it is used
// here instead of an external LAPACK/Eigen dependency.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace appclass::linalg {

/// Result of a symmetric eigendecomposition.
///
/// Invariants established by `symmetric_eigen`:
///   * `eigenvalues` are sorted in descending order;
///   * column j of `eigenvectors` is the unit-norm eigenvector paired with
///     `eigenvalues[j]`;
///   * `eigenvectors` is orthonormal: Vᵀ V = I (to round-off).
struct EigenDecomposition {
  std::vector<double> eigenvalues;
  Matrix eigenvectors;  // one eigenvector per column
  int sweeps = 0;       // Jacobi sweeps actually performed
};

/// Options controlling the Jacobi iteration.
struct JacobiOptions {
  /// Convergence threshold on the off-diagonal Frobenius norm, relative to
  /// the norm of the input matrix.
  double tolerance = 1e-12;
  /// Hard cap on sweeps; 8x8 covariance matrices converge in < 10.
  int max_sweeps = 64;
};

/// Computes the full eigensystem of a symmetric matrix `a` using cyclic
/// Jacobi rotations.
///
/// Preconditions: `a` is square and numerically symmetric (the routine
/// symmetrizes (a+aᵀ)/2 internally to absorb round-off asymmetry, but a
/// grossly non-symmetric input is a contract violation).
EigenDecomposition symmetric_eigen(const Matrix& a,
                                   const JacobiOptions& options = {});

/// Sum of |a(i,j)| for i != j — the Jacobi convergence functional.
double off_diagonal_norm(const Matrix& a);

}  // namespace appclass::linalg
