// Deterministic pseudo-random number generation for the workload simulator.
//
// Every stochastic component in this repository draws from an explicitly
// seeded `Rng` so that simulated runs, tests, and benchmark tables are
// bit-reproducible across machines. The generator is xoshiro256** seeded via
// SplitMix64 (the recommended seeding procedure for the xoshiro family);
// both are tiny, fast, and have no global state.
#pragma once

#include <cstdint>
#include <span>

#include "common/assert.hpp"

namespace appclass::linalg {

/// SplitMix64 step — used to expand a single 64-bit seed into a full
/// xoshiro256** state, and useful on its own for hashing seeds together.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Combines a base seed with a stream identifier into an independent seed
/// (used to give each VM / application model its own substream).
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) noexcept;

/// xoshiro256** 1.0 — public-domain generator by Blackman & Vigna.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Raw 64 uniform random bits.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Standard normal via Box–Muller (cached second deviate).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mu, double sigma) noexcept;

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) noexcept;

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) noexcept;

  /// Poisson-distributed count (Knuth for small means, normal approximation
  /// for large ones) — used for per-tick transaction counts.
  std::uint64_t poisson(double mean) noexcept;

  /// Log-normal value whose *underlying normal* has the given mu/sigma.
  double lognormal(double mu, double sigma) noexcept;

  /// Fisher–Yates shuffle of an index span.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace appclass::linalg
