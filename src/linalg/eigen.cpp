#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace appclass::linalg {

double off_diagonal_norm(const Matrix& a) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      if (i != j) s += a(i, j) * a(i, j);
  return std::sqrt(s);
}

namespace {

/// Applies one Jacobi rotation zeroing a(p,q), updating `a` (symmetric) and
/// accumulating the rotation into `v`.
void rotate(Matrix& a, Matrix& v, std::size_t p, std::size_t q) {
  const double apq = a(p, q);
  if (apq == 0.0) return;
  const double app = a(p, p);
  const double aqq = a(q, q);
  const double theta = (aqq - app) / (2.0 * apq);
  // Stable computation of tan(phi) for the smaller rotation angle.
  const double t = (theta >= 0.0)
                       ? 1.0 / (theta + std::sqrt(1.0 + theta * theta))
                       : 1.0 / (theta - std::sqrt(1.0 + theta * theta));
  const double c = 1.0 / std::sqrt(1.0 + t * t);
  const double s = t * c;
  const double tau = s / (1.0 + c);

  a(p, p) = app - t * apq;
  a(q, q) = aqq + t * apq;
  a(p, q) = 0.0;
  a(q, p) = 0.0;

  const std::size_t n = a.rows();
  for (std::size_t i = 0; i < n; ++i) {
    if (i == p || i == q) continue;
    const double aip = a(i, p);
    const double aiq = a(i, q);
    a(i, p) = aip - s * (aiq + tau * aip);
    a(p, i) = a(i, p);
    a(i, q) = aiq + s * (aip - tau * aiq);
    a(q, i) = a(i, q);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double vip = v(i, p);
    const double viq = v(i, q);
    v(i, p) = vip - s * (viq + tau * vip);
    v(i, q) = viq + s * (vip - tau * viq);
  }
}

}  // namespace

EigenDecomposition symmetric_eigen(const Matrix& a,
                                   const JacobiOptions& options) {
  APPCLASS_EXPECTS(a.rows() == a.cols());
  const std::size_t n = a.rows();

  // Symmetrize to absorb round-off asymmetry from covariance accumulation.
  Matrix work(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      work(i, j) = 0.5 * (a(i, j) + a(j, i));

  Matrix v = Matrix::identity(n);
  const double scale = std::max(work.frobenius_norm(), 1e-300);
  const double threshold = options.tolerance * scale;

  int sweep = 0;
  for (; sweep < options.max_sweeps; ++sweep) {
    if (off_diagonal_norm(work) <= threshold) break;
    for (std::size_t p = 0; p + 1 < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q)
        if (std::abs(work(p, q)) > threshold / static_cast<double>(n * n))
          rotate(work, v, p, q);
  }

  // Extract and sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> evals(n);
  for (std::size_t i = 0; i < n; ++i) evals[i] = work(i, i);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) {
                     return evals[x] > evals[y];
                   });

  EigenDecomposition out;
  out.eigenvalues.resize(n);
  out.eigenvectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.eigenvalues[j] = evals[order[j]];
    for (std::size_t i = 0; i < n; ++i)
      out.eigenvectors(i, j) = v(i, order[j]);
  }
  // Deterministic sign convention: make the largest-magnitude entry of each
  // eigenvector positive so repeated runs and tests agree on orientation.
  for (std::size_t j = 0; j < n; ++j) {
    std::size_t imax = 0;
    double amax = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double m = std::abs(out.eigenvectors(i, j));
      if (m > amax) {
        amax = m;
        imax = i;
      }
    }
    if (out.eigenvectors(imax, j) < 0.0)
      for (std::size_t i = 0; i < n; ++i) out.eigenvectors(i, j) *= -1.0;
  }
  out.sweeps = sweep;
  return out;
}

}  // namespace appclass::linalg
