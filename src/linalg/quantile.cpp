#include "linalg/quantile.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace appclass::linalg {

double quantile(std::span<const double> values, double q) {
  APPCLASS_EXPECTS(!values.empty());
  APPCLASS_EXPECTS(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(std::floor(pos));
  const auto upper = static_cast<std::size_t>(std::ceil(pos));
  if (lower == upper) return sorted[lower];
  const double frac = pos - static_cast<double>(lower);
  return sorted[lower] * (1.0 - frac) + sorted[upper] * frac;
}

double median(std::span<const double> values) {
  return quantile(values, 0.5);
}


Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  APPCLASS_EXPECTS(bins >= 1);
  APPCLASS_EXPECTS(hi > lo);
}

void Histogram::add(double x) noexcept {
  const double clamped = std::clamp(x, lo_, std::nextafter(hi_, lo_));
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::size_t>((clamped - lo_) / width);
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
  ++total_;
}

void Histogram::add_all(std::span<const double> values) noexcept {
  for (const double x : values) add(x);
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  APPCLASS_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

std::pair<double, double> Histogram::bin_range(std::size_t bin) const {
  APPCLASS_EXPECTS(bin < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return {lo_ + width * static_cast<double>(bin),
          lo_ + width * static_cast<double>(bin + 1)};
}

double Histogram::cumulative_fraction(std::size_t bin) const {
  APPCLASS_EXPECTS(bin < counts_.size());
  if (total_ == 0) return 0.0;
  std::size_t acc = 0;
  for (std::size_t b = 0; b <= bin; ++b) acc += counts_[b];
  return static_cast<double>(acc) / static_cast<double>(total_);
}

std::string Histogram::to_string(std::size_t width) const {
  std::size_t peak = 1;
  for (const std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  char buf[96];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto [lo, hi] = bin_range(b);
    const std::size_t bar = counts_[b] * width / peak;
    std::snprintf(buf, sizeof buf, "[%10.2f, %10.2f) %6zu ", lo, hi,
                  counts_[b]);
    out += buf;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace appclass::linalg
