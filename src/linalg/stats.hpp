// Column statistics and the zero-mean / unit-variance normalization used by
// the paper's data preprocessor, plus covariance/scatter matrices for PCA.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace appclass::linalg {

/// Per-column mean/stddev pair, stored so that the normalization fitted on
/// training data can be replayed verbatim on test data.
struct ColumnStats {
  std::vector<double> mean;
  std::vector<double> stddev;  // population stddev, floored at `min_stddev`

  std::size_t dims() const noexcept { return mean.size(); }
};

/// Mean of a single series.
double mean(std::span<const double> v);

/// Population variance of a single series (divides by N).
double variance(std::span<const double> v);

/// Sample variance of a single series (divides by N-1; N>=2 required).
double sample_variance(std::span<const double> v);

double stddev(std::span<const double> v);

/// Computes per-column mean and stddev of `samples` (one observation per
/// row). Columns with stddev below `min_stddev` are floored to `min_stddev`
/// so constant features normalize to zero instead of dividing by zero —
/// exactly the degenerate case an idle metric (e.g. swap traffic on a
/// CPU-bound run) produces.
ColumnStats column_stats(const Matrix& samples, double min_stddev = 1e-12);

/// Returns a copy of `samples` with each column shifted/scaled by `stats`
/// ((x - mean) / stddev). `stats.dims()` must equal `samples.cols()`.
Matrix normalize(const Matrix& samples, const ColumnStats& stats);

/// Normalizes one observation in place using `stats`.
void normalize_row(std::span<double> row, const ColumnStats& stats);

/// Covariance matrix of `samples` (observations in rows, features in
/// columns). Uses the N-1 (sample) denominator; requires >= 2 rows.
Matrix covariance(const Matrix& samples);

/// Scatter matrix: covariance times (N-1); the paper's PCA operates on the
/// scatter matrix of the normalized snapshots (the two share eigenvectors).
Matrix scatter(const Matrix& samples);

/// Pearson correlation between two equal-length series; returns 0 when
/// either series is constant.
double correlation(std::span<const double> a, std::span<const double> b);

/// Streaming mean/variance accumulator (Welford). Used by the simulator's
/// per-run statistical abstracts and by the application database.
class RunningStats {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }
  /// Population variance of the values seen so far.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  /// Merges another accumulator (parallel Welford combination).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace appclass::linalg
