// Dense row-major matrix of doubles.
//
// This is the only linear-algebra container used by the classification
// pipeline. It is deliberately small: the paper's data sets are on the order
// of 10^1 metrics by 10^3..10^4 snapshots, so a simple contiguous row-major
// buffer with bounds-checked accessors is both fast enough and easy to audit.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace appclass::linalg {

/// Dense row-major matrix of `double`.
///
/// Rows index observations or metrics depending on the caller's convention;
/// the classification pipeline documents its orientation at each step
/// (the paper's A(n x m) stores one metric per row, one snapshot per column).
class Matrix {
 public:
  /// Creates an empty 0x0 matrix.
  Matrix() = default;

  /// Creates a `rows x cols` matrix with every element set to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Creates a matrix from a nested initializer list; all rows must have the
  /// same length.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  /// Builds a matrix from `rows` contiguous rows stored in `data`
  /// (size must be rows*cols).
  static Matrix from_rows(std::size_t rows, std::size_t cols,
                          std::vector<double> data);

  /// Returns the `n x n` identity matrix.
  static Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  /// Bounds-checked element access.
  double& at(std::size_t r, std::size_t c) {
    APPCLASS_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double at(std::size_t r, std::size_t c) const {
    APPCLASS_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Unchecked element access for hot loops (still asserted in debug builds).
  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Contiguous view of row `r`.
  std::span<double> row(std::size_t r) {
    APPCLASS_EXPECTS(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    APPCLASS_EXPECTS(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  /// Copies column `c` into a fresh vector (columns are strided).
  std::vector<double> col(std::size_t c) const;

  /// Replaces row `r` with `values` (size must equal cols()).
  void set_row(std::size_t r, std::span<const double> values);

  /// Replaces column `c` with `values` (size must equal rows()).
  void set_col(std::size_t c, std::span<const double> values);

  /// Appends one row (size must equal cols(), or define cols() if empty).
  void append_row(std::span<const double> values);

  /// Underlying contiguous storage, row-major.
  std::span<const double> data() const noexcept { return data_; }
  std::span<double> data() noexcept { return data_; }

  Matrix transposed() const;

  /// Matrix product `*this * rhs`. Dimensions must agree.
  Matrix multiply(const Matrix& rhs) const;

  /// Matrix-vector product (vector length must equal cols()).
  std::vector<double> multiply(std::span<const double> v) const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
  friend Matrix operator*(Matrix lhs, double s) { return lhs *= s; }
  friend Matrix operator*(double s, Matrix rhs) { return rhs *= s; }
  friend Matrix operator*(const Matrix& lhs, const Matrix& rhs) {
    return lhs.multiply(rhs);
  }

  bool operator==(const Matrix& rhs) const = default;

  /// Largest absolute element difference against `rhs` (same shape required).
  double max_abs_diff(const Matrix& rhs) const;

  /// Frobenius norm (sqrt of sum of squares of all elements).
  double frobenius_norm() const;

  /// Sub-matrix copy: rows [r0, r0+nr) x cols [c0, c0+nc).
  Matrix block(std::size_t r0, std::size_t c0, std::size_t nr,
               std::size_t nc) const;

  /// Human-readable rendering, mainly for diagnostics and tests.
  std::string to_string(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean (L2) distance between two equal-length vectors.
double euclidean_distance(std::span<const double> a, std::span<const double> b);

/// Squared Euclidean distance (avoids the sqrt in nearest-neighbour loops).
double squared_distance(std::span<const double> a, std::span<const double> b);

/// Manhattan (L1) distance.
double manhattan_distance(std::span<const double> a, std::span<const double> b);

/// Dot product of two equal-length vectors.
double dot(std::span<const double> a, std::span<const double> b);

/// L2 norm of a vector.
double norm(std::span<const double> v);

}  // namespace appclass::linalg
