#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace appclass::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ == 0 ? 0 : init.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    APPCLASS_EXPECTS(row.size() == cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::from_rows(std::size_t rows, std::size_t cols,
                         std::vector<double> data) {
  APPCLASS_EXPECTS(data.size() == rows * cols);
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = std::move(data);
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::col(std::size_t c) const {
  APPCLASS_EXPECTS(c < cols_);
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
  return out;
}

void Matrix::set_row(std::size_t r, std::span<const double> values) {
  APPCLASS_EXPECTS(r < rows_ && values.size() == cols_);
  std::copy(values.begin(), values.end(), data_.begin() +
            static_cast<std::ptrdiff_t>(r * cols_));
}

void Matrix::set_col(std::size_t c, std::span<const double> values) {
  APPCLASS_EXPECTS(c < cols_ && values.size() == rows_);
  for (std::size_t r = 0; r < rows_; ++r) data_[r * cols_ + c] = values[r];
}

void Matrix::append_row(std::span<const double> values) {
  if (rows_ == 0 && cols_ == 0) cols_ = values.size();
  APPCLASS_EXPECTS(values.size() == cols_);
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::multiply(const Matrix& rhs) const {
  APPCLASS_EXPECTS(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_, 0.0);
  // i-k-j loop order keeps the inner loop contiguous in both rhs and out.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      const double* rhs_row = rhs.data_.data() + k * rhs.cols_;
      double* out_row = out.data_.data() + i * rhs.cols_;
      for (std::size_t j = 0; j < rhs.cols_; ++j) out_row[j] += a * rhs_row[j];
    }
  }
  return out;
}

std::vector<double> Matrix::multiply(std::span<const double> v) const {
  APPCLASS_EXPECTS(v.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = dot(row(r), v);
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  APPCLASS_EXPECTS(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  APPCLASS_EXPECTS(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

double Matrix::max_abs_diff(const Matrix& rhs) const {
  APPCLASS_EXPECTS(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::abs(data_[i] - rhs.data_[i]));
  return m;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

Matrix Matrix::block(std::size_t r0, std::size_t c0, std::size_t nr,
                     std::size_t nc) const {
  APPCLASS_EXPECTS(r0 + nr <= rows_ && c0 + nc <= cols_);
  Matrix out(nr, nc);
  for (std::size_t r = 0; r < nr; ++r)
    for (std::size_t c = 0; c < nc; ++c) out(r, c) = (*this)(r0 + r, c0 + c);
  return out;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed;
  for (std::size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < cols_; ++c) {
      os << (*this)(r, c);
      if (c + 1 < cols_) os << ", ";
    }
    os << (r + 1 < rows_ ? ";\n" : "]");
  }
  return os.str();
}

double squared_distance(std::span<const double> a, std::span<const double> b) {
  APPCLASS_EXPECTS(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

double euclidean_distance(std::span<const double> a,
                          std::span<const double> b) {
  return std::sqrt(squared_distance(a, b));
}

double manhattan_distance(std::span<const double> a,
                          std::span<const double> b) {
  APPCLASS_EXPECTS(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += std::abs(a[i] - b[i]);
  return s;
}

double dot(std::span<const double> a, std::span<const double> b) {
  APPCLASS_EXPECTS(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm(std::span<const double> v) { return std::sqrt(dot(v, v)); }

}  // namespace appclass::linalg
