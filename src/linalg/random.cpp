#include "linalg/random.hpp"

#include <cmath>
#include <numbers>

namespace appclass::linalg {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) noexcept {
  std::uint64_t s = base ^ (0x6a09e667f3bcc909ULL + stream * 0x9e3779b97f4a7c15ULL);
  return splitmix64(s);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 significant bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  APPCLASS_EXPECTS(n > 0);
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mu, double sigma) noexcept {
  return mu + sigma * normal();
}

double Rng::exponential(double rate) noexcept {
  APPCLASS_EXPECTS(rate > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::uint64_t Rng::poisson(double mean_value) noexcept {
  APPCLASS_EXPECTS(mean_value >= 0.0);
  if (mean_value == 0.0) return 0;
  if (mean_value < 30.0) {
    // Knuth's multiplicative method.
    const double limit = std::exp(-mean_value);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction for large means.
  const double x = normal(mean_value, std::sqrt(mean_value));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

}  // namespace appclass::linalg
