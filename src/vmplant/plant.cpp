#include "vmplant/plant.hpp"

#include "sim/testbed.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace appclass::vmplant {

void VmPlant::register_image(GoldenImage image) {
  APPCLASS_EXPECTS(!image.name.empty());
  APPCLASS_EXPECTS(!images_.contains(image.name));
  images_.emplace(image.name, std::move(image));
}

bool VmPlant::has_image(const std::string& name) const {
  return images_.contains(name);
}

CloneResult VmPlant::provision(const CloneRequest& request) {
  const auto image_it = images_.find(request.image);
  APPCLASS_EXPECTS(image_it != images_.end());
  APPCLASS_EXPECTS(request.config.valid());

  const GoldenImage& image = image_it->second;
  const auto order = request.config.topological_order();

  // Find the longest configuration prefix we've provisioned before.
  std::size_t cached_len = 0;
  for (std::size_t len = order.size(); len > 0; --len) {
    const auto key = std::make_pair(request.image,
                                    request.config.prefix_key(len));
    const auto it = cache_.find(key);
    if (it != cache_.end() && it->second == len) {
      cached_len = len;
      break;
    }
  }

  CloneResult result;
  result.spec = image.base_spec;
  result.spec.name = request.vm_name;
  result.spec.ip = request.vm_ip;
  result.from_cache = cached_len > 0;
  result.cached_actions = cached_len;
  result.provision_s = image.base_clone_s;
  for (std::size_t i = cached_len; i < order.size(); ++i)
    result.provision_s += request.config.action(order[i]).duration_s;
  result.spec.ram_mb += request.config.total_ram_delta_mb();
  APPCLASS_ENSURES(result.spec.ram_mb > 0.0);

  // Remember every prefix of this configuration for future requests.
  for (std::size_t len = 1; len <= order.size(); ++len)
    cache_[{request.image, request.config.prefix_key(len)}] = len;
  return result;
}

std::pair<sim::VmId, CloneResult> VmPlant::instantiate(
    sim::Engine& engine, sim::HostId host, const CloneRequest& request) {
  CloneResult result = provision(request);
  const sim::VmId vm = engine.add_vm(host, result.spec);
  return {vm, std::move(result)};
}

GoldenImage make_standard_image(const std::string& name) {
  GoldenImage image;
  image.name = name;
  image.base_spec = sim::make_vm_spec("template", "0.0.0.0", 256.0);
  image.base_clone_s = 90.0;  // copying a multi-GB disk image
  return image;
}

ConfigDag make_app_environment_dag(const std::string& app_package,
                                   double extra_ram_mb) {
  ConfigDag dag;
  const ActionId mount =
      dag.add(ConfigAction{"mount:/scratch", 4.0, 0.0, {}});
  const ActionId install = dag.add(ConfigAction{
      "install:" + app_package, 25.0, 0.0, {{"package", app_package}}});
  const ActionId input = dag.add(ConfigAction{
      "write-input:" + app_package, 2.0, 0.0, {{"deck", "default"}}});
  if (extra_ram_mb != 0.0)
    dag.add(ConfigAction{"set-memory", 1.0, extra_ram_mb, {}});
  dag.add_dependency(mount, install);
  dag.add_dependency(install, input);
  return dag;
}

}  // namespace appclass::vmplant
