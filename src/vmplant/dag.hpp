// VM configuration DAGs (paper section 2).
//
// VMPlant defines application-specific VM execution environments as a
// directed acyclic graph of configuration actions (install package, mount
// volume, write config, resize memory, ...). A DAG is validated, ordered
// topologically, and costed; the plant (plant.hpp) then applies it to a
// golden image, caching partially-configured clones so that requests
// sharing a configuration prefix provision quickly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace appclass::vmplant {

using ActionId = std::size_t;

/// One configuration step.
struct ConfigAction {
  std::string name;          ///< e.g. "install:lam-mpi", "mount:/scratch"
  double duration_s = 1.0;   ///< time to apply during provisioning
  double ram_delta_mb = 0.0; ///< change to the VM's memory configuration
  std::map<std::string, std::string> params;
};

/// A DAG of configuration actions with explicit dependencies.
class ConfigDag {
 public:
  /// Adds an action; returns its id.
  ActionId add(ConfigAction action);

  /// Declares that `before` must be applied before `after`.
  /// Both ids must exist; self-edges are rejected.
  void add_dependency(ActionId before, ActionId after);

  std::size_t size() const noexcept { return actions_.size(); }
  const ConfigAction& action(ActionId id) const;

  /// True when the dependency graph has no cycle.
  bool valid() const;

  /// Deterministic topological order (Kahn's algorithm; ties broken by
  /// insertion id). Empty when the graph is cyclic or empty.
  std::vector<ActionId> topological_order() const;

  /// Sum of all action durations (provisioning applies sequentially).
  double total_duration_s() const;

  /// Length of the longest dependency chain, in seconds — the lower bound
  /// if actions could be applied concurrently.
  double critical_path_s() const;

  /// Net memory configuration change of the whole DAG.
  double total_ram_delta_mb() const;

  /// Stable content key of the ordered action sequence; two DAGs with the
  /// same key provision identically (used by the clone cache).
  std::uint64_t sequence_key() const;

  /// Key of the first `prefix_len` actions in topological order.
  std::uint64_t prefix_key(std::size_t prefix_len) const;

 private:
  std::vector<ConfigAction> actions_;
  std::vector<std::pair<ActionId, ActionId>> edges_;
};

}  // namespace appclass::vmplant
