// The VMPlant service (paper section 2): automated creation and flexible
// configuration of application-specific virtual machines.
//
// A plant owns a catalog of golden images and a cache of partially
// configured clones. A clone request names an image and a configuration
// DAG; provisioning cost is the image's base clone time plus the duration
// of every action *not* already covered by the longest cached
// configuration prefix — VMPlant's incremental-caching behaviour. The
// resulting VM can be instantiated directly into a simulation engine.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "sim/engine.hpp"
#include "vmplant/dag.hpp"

namespace appclass::vmplant {

/// A golden VM image clones start from.
struct GoldenImage {
  std::string name;
  sim::VmSpec base_spec;       ///< template VM configuration
  double base_clone_s = 60.0;  ///< time to clone the raw image
};

/// A clone request: image + configuration DAG + identity.
struct CloneRequest {
  std::string image;
  ConfigDag config;
  std::string vm_name;
  std::string vm_ip;
};

/// Result of provisioning one VM.
struct CloneResult {
  sim::VmSpec spec;            ///< fully configured VM spec
  double provision_s = 0.0;    ///< simulated provisioning time
  std::size_t cached_actions = 0;  ///< actions skipped via the clone cache
  bool from_cache = false;     ///< true if any cached prefix was reused
};

class VmPlant {
 public:
  /// Registers a golden image; names must be unique.
  void register_image(GoldenImage image);

  bool has_image(const std::string& name) const;
  std::size_t image_count() const noexcept { return images_.size(); }

  /// Provisions a VM: applies the request's DAG to the image, reusing the
  /// longest previously provisioned configuration prefix. The DAG must be
  /// valid (acyclic); the image must exist.
  CloneResult provision(const CloneRequest& request);

  /// Provisions and registers the VM with an engine on `host`.
  /// Returns the VmId together with the provisioning record.
  std::pair<sim::VmId, CloneResult> instantiate(sim::Engine& engine,
                                                sim::HostId host,
                                                const CloneRequest& request);

  /// Number of cached configuration prefixes.
  std::size_t cache_size() const noexcept { return cache_.size(); }

 private:
  std::map<std::string, GoldenImage> images_;
  /// (image, prefix key) -> prefix length already provisioned once.
  std::map<std::pair<std::string, std::uint64_t>, std::size_t> cache_;
};

/// The paper's standard worker-VM image (256 MB, GSX-style uniprocessor).
GoldenImage make_standard_image(const std::string& name = "worker-256mb");

/// A typical application environment DAG: mount scratch space, install the
/// application package, write its input deck, and set VM memory.
ConfigDag make_app_environment_dag(const std::string& app_package,
                                   double extra_ram_mb = 0.0);

}  // namespace appclass::vmplant
