#include "vmplant/dag.hpp"

#include <algorithm>
#include <queue>

#include "common/assert.hpp"
#include "linalg/random.hpp"

namespace appclass::vmplant {

ActionId ConfigDag::add(ConfigAction action) {
  APPCLASS_EXPECTS(!action.name.empty());
  APPCLASS_EXPECTS(action.duration_s >= 0.0);
  actions_.push_back(std::move(action));
  return actions_.size() - 1;
}

void ConfigDag::add_dependency(ActionId before, ActionId after) {
  APPCLASS_EXPECTS(before < actions_.size());
  APPCLASS_EXPECTS(after < actions_.size());
  APPCLASS_EXPECTS(before != after);
  edges_.emplace_back(before, after);
}

const ConfigAction& ConfigDag::action(ActionId id) const {
  APPCLASS_EXPECTS(id < actions_.size());
  return actions_[id];
}

std::vector<ActionId> ConfigDag::topological_order() const {
  const std::size_t n = actions_.size();
  std::vector<std::vector<ActionId>> out_edges(n);
  std::vector<std::size_t> in_degree(n, 0);
  for (const auto& [before, after] : edges_) {
    out_edges[before].push_back(after);
    ++in_degree[after];
  }
  // Min-heap on id for a deterministic order.
  std::priority_queue<ActionId, std::vector<ActionId>, std::greater<>> ready;
  for (ActionId i = 0; i < n; ++i)
    if (in_degree[i] == 0) ready.push(i);
  std::vector<ActionId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const ActionId id = ready.top();
    ready.pop();
    order.push_back(id);
    for (const ActionId next : out_edges[id])
      if (--in_degree[next] == 0) ready.push(next);
  }
  if (order.size() != n) return {};  // cycle
  return order;
}

bool ConfigDag::valid() const {
  return actions_.empty() || !topological_order().empty();
}

double ConfigDag::total_duration_s() const {
  double total = 0.0;
  for (const auto& a : actions_) total += a.duration_s;
  return total;
}

double ConfigDag::critical_path_s() const {
  const auto order = topological_order();
  if (order.empty()) return actions_.empty() ? 0.0 : -1.0;
  std::vector<std::vector<ActionId>> in_edges(actions_.size());
  for (const auto& [before, after] : edges_)
    in_edges[after].push_back(before);
  std::vector<double> finish(actions_.size(), 0.0);
  double best = 0.0;
  for (const ActionId id : order) {
    double start = 0.0;
    for (const ActionId dep : in_edges[id])
      start = std::max(start, finish[dep]);
    finish[id] = start + actions_[id].duration_s;
    best = std::max(best, finish[id]);
  }
  return best;
}

double ConfigDag::total_ram_delta_mb() const {
  double total = 0.0;
  for (const auto& a : actions_) total += a.ram_delta_mb;
  return total;
}

std::uint64_t ConfigDag::prefix_key(std::size_t prefix_len) const {
  const auto order = topological_order();
  APPCLASS_EXPECTS(prefix_len <= order.size());
  std::uint64_t key = 0x243f6a8885a308d3ULL;
  for (std::size_t i = 0; i < prefix_len; ++i) {
    const ConfigAction& a = actions_[order[i]];
    for (const char c : a.name)
      key = linalg::derive_seed(key, static_cast<std::uint64_t>(c));
    for (const auto& [k, v] : a.params) {
      for (const char c : k)
        key = linalg::derive_seed(key, static_cast<std::uint64_t>(c) ^ 0x55);
      for (const char c : v)
        key = linalg::derive_seed(key, static_cast<std::uint64_t>(c) ^ 0xAA);
    }
  }
  return key;
}

std::uint64_t ConfigDag::sequence_key() const {
  return prefix_key(topological_order().size());
}

}  // namespace appclass::vmplant
