#include "obs/metrics.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace appclass::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  APPCLASS_EXPECTS(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe_many(double value, std::uint64_t n) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(n, std::memory_order_relaxed);
  count_.fetch_add(n, std::memory_order_relaxed);
  const double delta = value * static_cast<double>(n);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  exemplar_value_.store(0.0, std::memory_order_relaxed);
  exemplar_trace_.store(0, std::memory_order_relaxed);
}

const std::vector<double>& default_time_buckets() {
  // 1-2-5 per decade, 1 µs .. 10 s.
  static const std::vector<double> buckets = {
      1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3,
      5e-3, 1e-2, 2e-2, 5e-2, 0.1,  0.2,  0.5,  1.0,  2.0,  5.0,  10.0};
  return buckets;
}

namespace {

/// Canonical map key: name, then label pairs separated by unprintable
/// sentinels so no legal name/label text can collide.
std::string encode_key(std::string_view name, const Labels& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key.push_back('\x01');
    key.append(k);
    key.push_back('\x02');
    key.append(v);
  }
  return key;
}

Labels sorted(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

struct MetricsRegistry::Entry {
  enum class Kind { kCounter, kGauge, kHistogram } kind;
  std::string name;
  Labels labels;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Entry& MetricsRegistry::entry_for(std::string_view name,
                                                   const Labels& labels) {
  // Caller holds mutex_.
  const std::string key = encode_key(name, labels);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    auto entry = std::make_unique<Entry>();
    entry->name = std::string(name);
    entry->labels = labels;
    it = entries_.emplace(key, std::move(entry)).first;
  }
  return *it->second;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entry_for(name, sorted(labels));
  if (!e.counter) {
    APPCLASS_EXPECTS(!e.gauge && !e.histogram);
    e.kind = Entry::Kind::kCounter;
    e.counter = std::make_unique<Counter>();
  }
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entry_for(name, sorted(labels));
  if (!e.gauge) {
    APPCLASS_EXPECTS(!e.counter && !e.histogram);
    e.kind = Entry::Kind::kGauge;
    e.gauge = std::make_unique<Gauge>();
  }
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const Labels& labels,
                                      const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entry_for(name, sorted(labels));
  if (!e.histogram) {
    APPCLASS_EXPECTS(!e.counter && !e.gauge);
    e.kind = Entry::Kind::kHistogram;
    e.histogram = std::make_unique<Histogram>(bounds);
  }
  return *e.histogram;
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot out;
  // std::map iteration order gives the sorted-by-(name, labels) contract.
  for (const auto& [key, entry] : entries_) {
    switch (entry->kind) {
      case Entry::Kind::kCounter:
        out.counters.push_back(
            {entry->name, entry->labels, entry->counter->value()});
        break;
      case Entry::Kind::kGauge:
        out.gauges.push_back(
            {entry->name, entry->labels, entry->gauge->value()});
        break;
      case Entry::Kind::kHistogram: {
        const Histogram& h = *entry->histogram;
        HistogramSnapshot hs;
        hs.name = entry->name;
        hs.labels = entry->labels;
        hs.bounds = h.bounds();
        hs.bucket_counts.reserve(hs.bounds.size() + 1);
        for (std::size_t i = 0; i <= hs.bounds.size(); ++i)
          hs.bucket_counts.push_back(h.bucket_count(i));
        hs.count = h.count();
        hs.sum = h.sum();
        hs.exemplar_value = h.exemplar_value();
        hs.exemplar_trace_id = h.exemplar_trace_id();
        out.histograms.push_back(std::move(hs));
        break;
      }
    }
  }
  return out;
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, entry] : entries_) {
    switch (entry->kind) {
      case Entry::Kind::kCounter:
        entry->counter->reset();
        break;
      case Entry::Kind::kGauge:
        entry->gauge->reset();
        break;
      case Entry::Kind::kHistogram:
        entry->histogram->reset();
        break;
    }
  }
}

const CounterSnapshot* RegistrySnapshot::find_counter(
    std::string_view name, const Labels& labels) const {
  const Labels want = sorted(labels);
  for (const auto& c : counters)
    if (c.name == name && c.labels == want) return &c;
  return nullptr;
}

const HistogramSnapshot* RegistrySnapshot::find_histogram(
    std::string_view name, const Labels& labels) const {
  const Labels want = sorted(labels);
  for (const auto& h : histograms)
    if (h.name == name && h.labels == want) return &h;
  return nullptr;
}

}  // namespace appclass::obs
