#include "obs/federate.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>

namespace appclass::obs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Canonical ordering key, byte-identical to the registry's internal map
/// key (metrics.cpp), so parsed/merged snapshots sort exactly like
/// MetricsRegistry::snapshot() output — the fixed-point contract.
std::string series_key(std::string_view name, const Labels& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key.push_back('\x01');
    key.append(k);
    key.push_back('\x02');
    key.append(v);
  }
  return key;
}

bool is_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

/// Reverses the label-value escaping in obs/export.cpp: `\\` -> `\`,
/// `\"` -> `"`, `\n` -> newline. Any other escape is malformed.
bool unescape_label_value(std::string_view in, std::string& out) {
  out.clear();
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (++i >= in.size()) return false;
    switch (in[i]) {
      case '\\': out.push_back('\\'); break;
      case '"': out.push_back('"'); break;
      case 'n': out.push_back('\n'); break;
      default: return false;
    }
  }
  return true;
}

/// Parses `{k="v",...}` starting at `pos` (which must point at '{').
/// Advances `pos` past the closing brace.
bool parse_labels(std::string_view line, std::size_t& pos, Labels& out) {
  out.clear();
  ++pos;  // '{'
  if (pos < line.size() && line[pos] == '}') {
    ++pos;
    return true;
  }
  while (pos < line.size()) {
    std::size_t key_end = pos;
    while (key_end < line.size() && is_name_char(line[key_end])) ++key_end;
    if (key_end == pos || key_end + 1 >= line.size() ||
        line[key_end] != '=' || line[key_end + 1] != '"')
      return false;
    const std::string key(line.substr(pos, key_end - pos));
    std::size_t v = key_end + 2;  // past ="
    const std::size_t value_begin = v;
    while (v < line.size() && line[v] != '"') {
      if (line[v] == '\\') ++v;  // skip escaped char
      ++v;
    }
    if (v >= line.size()) return false;
    std::string value;
    if (!unescape_label_value(line.substr(value_begin, v - value_begin),
                              value))
      return false;
    out.emplace_back(key, std::move(value));
    ++v;  // closing quote
    if (v >= line.size()) return false;
    if (line[v] == ',') {
      pos = v + 1;
      continue;
    }
    if (line[v] == '}') {
      pos = v + 1;
      return true;
    }
    return false;
  }
  return false;
}

bool parse_uint64(std::string_view token, std::uint64_t& out) {
  if (token.empty() || token.size() > 20) return false;
  out = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') return false;
    out = out * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return true;
}

bool parse_float(std::string_view token, double& out) {
  if (token.empty() || token.size() >= 64) return false;
  char buffer[64];
  std::memcpy(buffer, token.data(), token.size());
  buffer[token.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  out = std::strtod(buffer, &end);
  return end == buffer + token.size();
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

enum class FamilyKind { kCounter, kGauge, kHistogram };

/// In-flight histogram series: buckets accumulate as they stream in,
/// validated (ascending bounds, non-decreasing cumulative counts, +Inf
/// terminal) and de-cumulated at finalize.
struct HistAcc {
  std::string name;
  Labels labels;
  std::vector<double> bounds;              // excludes +Inf
  std::vector<std::uint64_t> cumulative;   // includes the +Inf bucket
  bool saw_inf = false;
  std::uint64_t count = 0;
  double sum = 0.0;
  bool have_sum = false;
  bool have_count = false;
};

}  // namespace

std::optional<RegistrySnapshot> parse_prometheus(std::string_view text) {
  std::map<std::string, FamilyKind, std::less<>> families;
  std::map<std::string, CounterSnapshot> counters;
  std::map<std::string, GaugeSnapshot> gauges;
  std::map<std::string, HistAcc> hists;

  std::size_t line_begin = 0;
  while (line_begin <= text.size()) {
    std::size_t line_end = text.find('\n', line_begin);
    if (line_end == std::string_view::npos) line_end = text.size();
    std::string_view line = text.substr(line_begin, line_end - line_begin);
    line_begin = line_end + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;

    if (line[0] == '#') {
      // Only `# TYPE name kind` matters; HELP and free comments pass.
      constexpr std::string_view kType = "# TYPE ";
      if (line.substr(0, kType.size()) != kType) continue;
      std::string_view rest = line.substr(kType.size());
      const std::size_t space = rest.find(' ');
      if (space == std::string_view::npos) return std::nullopt;
      const std::string name(rest.substr(0, space));
      const std::string_view kind = rest.substr(space + 1);
      FamilyKind fk;
      if (kind == "counter") {
        fk = FamilyKind::kCounter;
      } else if (kind == "gauge") {
        fk = FamilyKind::kGauge;
      } else if (kind == "histogram") {
        fk = FamilyKind::kHistogram;
      } else {
        return std::nullopt;  // summary/untyped: unrepresentable here
      }
      if (!families.emplace(name, fk).second) return std::nullopt;
      continue;
    }

    // Sample line: name[{labels}] value
    std::size_t pos = 0;
    while (pos < line.size() && is_name_char(line[pos])) ++pos;
    if (pos == 0) return std::nullopt;
    const std::string_view sample_name = line.substr(0, pos);
    Labels labels;
    if (pos < line.size() && line[pos] == '{') {
      if (!parse_labels(line, pos, labels)) return std::nullopt;
    }
    if (pos >= line.size() || line[pos] != ' ') return std::nullopt;
    ++pos;
    std::string_view value_token = line.substr(pos);
    while (!value_token.empty() && value_token.back() == ' ')
      value_token.remove_suffix(1);
    if (value_token.empty() ||
        value_token.find(' ') != std::string_view::npos)
      return std::nullopt;

    const auto family = families.find(sample_name);
    if (family != families.end()) {
      if (family->second == FamilyKind::kCounter) {
        CounterSnapshot c;
        c.name = std::string(sample_name);
        c.labels = std::move(labels);
        if (!parse_uint64(value_token, c.value)) return std::nullopt;
        const std::string key = series_key(c.name, c.labels);
        if (!counters.emplace(key, std::move(c)).second)
          return std::nullopt;  // duplicate series
      } else if (family->second == FamilyKind::kGauge) {
        GaugeSnapshot g;
        g.name = std::string(sample_name);
        g.labels = std::move(labels);
        if (!parse_float(value_token, g.value)) return std::nullopt;
        const std::string key = series_key(g.name, g.labels);
        if (!gauges.emplace(key, std::move(g)).second) return std::nullopt;
      } else {
        return std::nullopt;  // bare sample named like a histogram family
      }
      continue;
    }

    // Histogram component series: <family>_bucket / _sum / _count.
    std::string_view base;
    enum class Part { kBucket, kSum, kCount } part;
    if (ends_with(sample_name, "_bucket")) {
      base = sample_name.substr(0, sample_name.size() - 7);
      part = Part::kBucket;
    } else if (ends_with(sample_name, "_sum")) {
      base = sample_name.substr(0, sample_name.size() - 4);
      part = Part::kSum;
    } else if (ends_with(sample_name, "_count")) {
      base = sample_name.substr(0, sample_name.size() - 6);
      part = Part::kCount;
    } else {
      return std::nullopt;  // sample without a declared family
    }
    const auto hist_family = families.find(base);
    if (hist_family == families.end() ||
        hist_family->second != FamilyKind::kHistogram)
      return std::nullopt;

    double le = 0.0;
    if (part == Part::kBucket) {
      const auto it = std::find_if(
          labels.begin(), labels.end(),
          [](const auto& kv) { return kv.first == "le"; });
      if (it == labels.end()) return std::nullopt;
      if (it->second == "+Inf") {
        le = kInf;
      } else if (!parse_float(it->second, le)) {
        return std::nullopt;
      }
      labels.erase(it);
    }

    HistAcc& acc =
        hists
            .emplace(series_key(base, labels),
                     HistAcc{std::string(base), labels, {}, {}, false, 0,
                             0.0, false, false})
            .first->second;
    switch (part) {
      case Part::kBucket: {
        std::uint64_t cumulative = 0;
        if (!parse_uint64(value_token, cumulative)) return std::nullopt;
        if (acc.saw_inf) return std::nullopt;  // buckets after +Inf
        if (!acc.cumulative.empty() && cumulative < acc.cumulative.back())
          return std::nullopt;  // cumulative counts must not decrease
        if (le == kInf) {
          acc.saw_inf = true;
        } else {
          if (!acc.bounds.empty() && le <= acc.bounds.back())
            return std::nullopt;  // bounds must ascend
          acc.bounds.push_back(le);
        }
        acc.cumulative.push_back(cumulative);
        break;
      }
      case Part::kSum:
        if (acc.have_sum || !parse_float(value_token, acc.sum))
          return std::nullopt;
        acc.have_sum = true;
        break;
      case Part::kCount:
        if (acc.have_count || !parse_uint64(value_token, acc.count))
          return std::nullopt;
        acc.have_count = true;
        break;
    }
  }

  RegistrySnapshot out;
  out.counters.reserve(counters.size());
  for (auto& [key, c] : counters) out.counters.push_back(std::move(c));
  out.gauges.reserve(gauges.size());
  for (auto& [key, g] : gauges) out.gauges.push_back(std::move(g));
  out.histograms.reserve(hists.size());
  for (auto& [key, acc] : hists) {
    if (!acc.saw_inf || !acc.have_sum || !acc.have_count)
      return std::nullopt;
    HistogramSnapshot h;
    h.name = std::move(acc.name);
    h.labels = std::move(acc.labels);
    h.bounds = std::move(acc.bounds);
    h.bucket_counts.reserve(acc.cumulative.size());
    std::uint64_t previous = 0;
    for (const std::uint64_t cumulative : acc.cumulative) {
      h.bucket_counts.push_back(cumulative - previous);
      previous = cumulative;
    }
    h.count = acc.count;
    h.sum = acc.sum;
    out.histograms.push_back(std::move(h));
  }
  return out;
}

FederationResult federate_snapshots(const std::vector<FederationPart>& parts,
                                    BoundedLabelSet* worker_labels) {
  FederationResult result;
  std::map<std::string, CounterSnapshot> counters;
  std::map<std::string, GaugeSnapshot> gauges;
  std::map<std::string, HistogramSnapshot> hists;

  for (const FederationPart& part : parts) {
    for (const CounterSnapshot& c : part.snapshot.counters) {
      auto [it, inserted] = counters.emplace(series_key(c.name, c.labels), c);
      if (!inserted) it->second.value += c.value;
    }
    for (const GaugeSnapshot& g : part.snapshot.gauges) {
      GaugeSnapshot labeled = g;
      if (!part.worker.empty()) {
        const std::string& value = worker_labels
                                       ? worker_labels->admit(part.worker)
                                       : part.worker;
        const std::pair<std::string, std::string> worker_label{"worker",
                                                               value};
        labeled.labels.insert(std::lower_bound(labeled.labels.begin(),
                                               labeled.labels.end(),
                                               worker_label),
                              worker_label);
      }
      const std::string key = series_key(labeled.name, labeled.labels);
      gauges.insert_or_assign(key, std::move(labeled));
    }
    for (const HistogramSnapshot& h : part.snapshot.histograms) {
      auto [it, inserted] = hists.emplace(series_key(h.name, h.labels), h);
      if (inserted) continue;
      HistogramSnapshot& merged = it->second;
      if (merged.bounds != h.bounds) {
        ++result.dropped_series;
        continue;
      }
      for (std::size_t i = 0; i < merged.bucket_counts.size(); ++i)
        merged.bucket_counts[i] += h.bucket_counts[i];
      merged.count += h.count;
      merged.sum += h.sum;
      // Slowest traced observation across the fleet wins the exemplar.
      if (h.exemplar_trace_id != 0 &&
          (merged.exemplar_trace_id == 0 ||
           h.exemplar_value > merged.exemplar_value)) {
        merged.exemplar_value = h.exemplar_value;
        merged.exemplar_trace_id = h.exemplar_trace_id;
      }
    }
  }

  result.merged.counters.reserve(counters.size());
  for (auto& [key, c] : counters)
    result.merged.counters.push_back(std::move(c));
  result.merged.gauges.reserve(gauges.size());
  for (auto& [key, g] : gauges) result.merged.gauges.push_back(std::move(g));
  result.merged.histograms.reserve(hists.size());
  for (auto& [key, h] : hists)
    result.merged.histograms.push_back(std::move(h));
  return result;
}

// ---------------------------------------------------------------------------
// Chrome trace parsing + stitching
// ---------------------------------------------------------------------------

namespace {

/// Minimal recursive-descent JSON scanner: enough to walk the recorder's
/// trace_event dialect while tolerating (and raw-capturing) anything it
/// does not model.
class JsonScanner {
 public:
  explicit JsonScanner(std::string_view s)
      : p_(s.data()), end_(s.data() + s.size()) {}

  void skip_ws() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                         *p_ == '\r'))
      ++p_;
  }

  bool consume(char c) {
    skip_ws();
    if (p_ >= end_ || *p_ != c) return false;
    ++p_;
    return true;
  }

  bool peek_is(char c) {
    skip_ws();
    return p_ < end_ && *p_ == c;
  }

  bool parse_string(std::string& out) {
    out.clear();
    skip_ws();
    if (p_ >= end_ || *p_ != '"') return false;
    ++p_;
    while (p_ < end_ && *p_ != '"') {
      char c = *p_++;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (p_ >= end_) return false;
      const char e = *p_++;
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (end_ - p_ < 4) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *p_++;
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return false;
      }
    }
    if (p_ >= end_) return false;
    ++p_;  // closing quote
    return true;
  }

  /// Parses any JSON value; when `raw` is non-null, captures its exact
  /// source text (so re-serialization preserves numbers vs strings).
  bool parse_value_raw(std::string* raw) {
    skip_ws();
    const char* start = p_;
    if (p_ >= end_) return false;
    bool ok = false;
    if (*p_ == '"') {
      std::string scratch;
      ok = parse_string(scratch);
    } else if (*p_ == '{') {
      ++p_;
      if (peek_is('}')) {
        ok = consume('}');
      } else {
        while (true) {
          std::string key;
          if (!parse_string(key) || !consume(':') ||
              !parse_value_raw(nullptr))
            return false;
          if (consume(',')) continue;
          ok = consume('}');
          break;
        }
      }
    } else if (*p_ == '[') {
      ++p_;
      if (peek_is(']')) {
        ok = consume(']');
      } else {
        while (true) {
          if (!parse_value_raw(nullptr)) return false;
          if (consume(',')) continue;
          ok = consume(']');
          break;
        }
      }
    } else {
      // number / true / false / null
      const char* token = p_;
      while (p_ < end_ &&
             (std::strchr("+-.eE", *p_) != nullptr ||
              (*p_ >= '0' && *p_ <= '9') || (*p_ >= 'a' && *p_ <= 'z')))
        ++p_;
      ok = p_ > token;
    }
    if (ok && raw) raw->assign(start, static_cast<std::size_t>(p_ - start));
    return ok;
  }

  bool parse_int(std::int64_t& out) {
    std::string raw;
    if (!parse_value_raw(&raw)) return false;
    double value = 0.0;
    if (!parse_float(raw, value)) return false;
    out = static_cast<std::int64_t>(value);
    return true;
  }

 private:
  const char* p_;
  const char* end_;
};

bool parse_trace_event(JsonScanner& scanner, ChromeTraceEvent& event) {
  if (!scanner.consume('{')) return false;
  if (scanner.peek_is('}')) return scanner.consume('}');
  while (true) {
    std::string key;
    if (!scanner.parse_string(key) || !scanner.consume(':')) return false;
    bool ok = true;
    if (key == "name") {
      ok = scanner.parse_string(event.name);
    } else if (key == "cat") {
      ok = scanner.parse_string(event.cat);
    } else if (key == "ph") {
      ok = scanner.parse_string(event.ph);
    } else if (key == "s") {
      ok = scanner.parse_string(event.scope);
    } else if (key == "pid") {
      ok = scanner.parse_int(event.pid);
    } else if (key == "tid") {
      ok = scanner.parse_int(event.tid);
    } else if (key == "ts") {
      ok = scanner.parse_int(event.ts);
    } else if (key == "dur") {
      ok = scanner.parse_int(event.dur);
      event.has_dur = true;
    } else if (key == "args") {
      if (!scanner.consume('{')) return false;
      if (scanner.peek_is('}')) {
        ok = scanner.consume('}');
      } else {
        while (true) {
          std::string arg_key, raw;
          if (!scanner.parse_string(arg_key) || !scanner.consume(':') ||
              !scanner.parse_value_raw(&raw))
            return false;
          event.args.emplace_back(std::move(arg_key), std::move(raw));
          if (scanner.consume(',')) continue;
          ok = scanner.consume('}');
          break;
        }
      }
    } else {
      ok = scanner.parse_value_raw(nullptr);
    }
    if (!ok) return false;
    if (scanner.consume(',')) continue;
    return scanner.consume('}');
  }
}

void json_escape_into(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out.append("\\\""); break;
      case '\\': out.append("\\\\"); break;
      case '\n': out.append("\\n"); break;
      case '\t': out.append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out.append(buffer);
        } else {
          out.push_back(c);
        }
    }
  }
}

void serialize_event_into(std::string& out, const ChromeTraceEvent& e) {
  out.append("\n{\"name\":\"");
  json_escape_into(out, e.name);
  out.append("\",\"ph\":\"");
  json_escape_into(out, e.ph);
  out.push_back('"');
  if (!e.cat.empty()) {
    out.append(",\"cat\":\"");
    json_escape_into(out, e.cat);
    out.push_back('"');
  }
  if (!e.scope.empty()) {
    out.append(",\"s\":\"");
    json_escape_into(out, e.scope);
    out.push_back('"');
  }
  out.append(",\"pid\":");
  out.append(std::to_string(e.pid));
  out.append(",\"tid\":");
  out.append(std::to_string(e.tid));
  out.append(",\"ts\":");
  out.append(std::to_string(e.ts));
  if (e.has_dur) {
    out.append(",\"dur\":");
    out.append(std::to_string(e.dur));
  }
  out.append(",\"args\":{");
  bool first = true;
  for (const auto& [key, raw] : e.args) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    json_escape_into(out, key);
    out.append("\":");
    out.append(raw);
  }
  out.append("}}");
}

}  // namespace

std::optional<ChromeTrace> parse_chrome_trace(std::string_view json) {
  JsonScanner scanner(json);
  ChromeTrace trace;
  if (!scanner.consume('{')) return std::nullopt;
  if (scanner.peek_is('}')) {
    scanner.consume('}');
    return trace;
  }
  while (true) {
    std::string key;
    if (!scanner.parse_string(key) || !scanner.consume(':'))
      return std::nullopt;
    bool ok = true;
    if (key == "traceEvents") {
      if (!scanner.consume('[')) return std::nullopt;
      if (scanner.peek_is(']')) {
        ok = scanner.consume(']');
      } else {
        while (true) {
          ChromeTraceEvent event;
          if (!parse_trace_event(scanner, event)) return std::nullopt;
          trace.events.push_back(std::move(event));
          if (scanner.consume(',')) continue;
          ok = scanner.consume(']');
          break;
        }
      }
    } else if (key == "epochWallUs") {
      ok = scanner.parse_int(trace.epoch_wall_us);
    } else if (key == "droppedEvents") {
      std::int64_t dropped = 0;
      ok = scanner.parse_int(dropped);
      if (dropped > 0)
        trace.dropped_events = static_cast<std::uint64_t>(dropped);
    } else {
      ok = scanner.parse_value_raw(nullptr);
    }
    if (!ok) return std::nullopt;
    if (scanner.consume(',')) continue;
    if (!scanner.consume('}')) return std::nullopt;
    return trace;
  }
}

StitchResult stitch_chrome_traces(const std::vector<TraceFleetPart>& parts) {
  StitchResult result;
  struct Parsed {
    std::string process;
    ChromeTrace trace;
  };
  std::vector<Parsed> parsed;
  parsed.reserve(parts.size());
  for (const TraceFleetPart& part : parts) {
    auto trace = parse_chrome_trace(part.json);
    if (!trace) {
      ++result.parts_failed;
      continue;
    }
    parsed.push_back({part.process, std::move(*trace)});
  }
  result.parts_stitched = parsed.size();

  // Earliest known recorder epoch anchors the merged time axis; parts
  // without an anchor (legacy dumps) keep their native timestamps.
  std::int64_t base_wall_us = 0;
  for (const Parsed& p : parsed)
    if (p.trace.epoch_wall_us != 0 &&
        (base_wall_us == 0 || p.trace.epoch_wall_us < base_wall_us))
      base_wall_us = p.trace.epoch_wall_us;

  std::vector<ChromeTraceEvent> metadata;
  std::vector<ChromeTraceEvent> events;
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    const std::int64_t pid = static_cast<std::int64_t>(i) + 1;
    const std::int64_t shift =
        (parsed[i].trace.epoch_wall_us != 0 && base_wall_us != 0)
            ? parsed[i].trace.epoch_wall_us - base_wall_us
            : 0;
    ChromeTraceEvent label;
    label.name = "process_name";
    label.ph = "M";
    label.pid = pid;
    std::string quoted = "\"";
    json_escape_into(quoted, parsed[i].process);
    quoted.push_back('"');
    label.args.emplace_back("name", std::move(quoted));
    metadata.push_back(std::move(label));
    for (ChromeTraceEvent& e : parsed[i].trace.events) {
      e.pid = pid;
      e.ts += shift;
      events.push_back(std::move(e));
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const ChromeTraceEvent& a, const ChromeTraceEvent& b) {
                     return a.ts < b.ts;
                   });

  std::string out;
  out.reserve(128 + (metadata.size() + events.size()) * 160);
  out.append("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
  bool first = true;
  for (const ChromeTraceEvent& e : metadata) {
    if (!first) out.push_back(',');
    first = false;
    serialize_event_into(out, e);
  }
  for (const ChromeTraceEvent& e : events) {
    if (!first) out.push_back(',');
    first = false;
    serialize_event_into(out, e);
  }
  out.append("\n]}\n");
  result.events = metadata.size() + events.size();
  result.json = std::move(out);
  return result;
}

}  // namespace appclass::obs
