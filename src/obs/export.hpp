// Exporters for a RegistrySnapshot:
//   * to_table()      — aligned human-readable summary (CLI `--stats`)
//   * to_json()       — one JSON object (BENCH_*.json sidecars, tooling)
//   * to_prometheus() — Prometheus text exposition format 0.0.4
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace appclass::obs {

enum class ExportFormat { kTable, kJson, kPrometheus };

std::string to_table(const RegistrySnapshot& snapshot);
std::string to_json(const RegistrySnapshot& snapshot);
std::string to_prometheus(const RegistrySnapshot& snapshot);

inline std::string export_as(const RegistrySnapshot& snapshot,
                             ExportFormat format) {
  switch (format) {
    case ExportFormat::kJson: return to_json(snapshot);
    case ExportFormat::kPrometheus: return to_prometheus(snapshot);
    case ExportFormat::kTable: break;
  }
  return to_table(snapshot);
}

}  // namespace appclass::obs
