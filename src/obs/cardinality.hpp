// Bounded label-cardinality guard for registry metrics.
//
// Prometheus-style labels make it easy to explode the registry: a metric
// labelled by node IP, request path, or any other externally-controlled
// value grows one time series per distinct value, forever. Every label
// whose value set is not statically fixed must go through a
// BoundedLabelSet: the first `max_values` distinct values keep their own
// series, everything after collapses into one shared overflow bucket
// ("other"). Admission is first-come-first-kept, which is deterministic
// for a deterministic stream and cheap to reason about; the overflow
// bucket still counts every event, so totals stay exact even when
// per-value attribution saturates.
#pragma once

#include <mutex>
#include <set>
#include <string>
#include <string_view>

namespace appclass::obs {

class BoundedLabelSet {
 public:
  explicit BoundedLabelSet(std::size_t max_values,
                           std::string overflow = "other");

  /// Returns `value` itself while it is already admitted or room remains,
  /// otherwise the overflow bucket. The returned reference stays valid
  /// for the set's lifetime. Thread-safe.
  const std::string& admit(std::string_view value);

  /// True when `value` holds its own series (admitted, not overflow).
  bool admitted(std::string_view value) const;

  /// Distinct values admitted so far (excluding the overflow bucket).
  std::size_t size() const;

  /// Distinct values that were collapsed into the overflow bucket.
  std::size_t overflowed() const;

  std::size_t max_values() const noexcept { return max_values_; }
  const std::string& overflow_label() const noexcept { return overflow_; }

 private:
  const std::size_t max_values_;
  const std::string overflow_;
  mutable std::mutex mutex_;
  std::set<std::string, std::less<>> values_;
  std::set<std::string, std::less<>> overflow_seen_;
};

}  // namespace appclass::obs
