// Online drift detection over a projected feature stream.
//
// Workload behaviour drifts in real clusters (Jakobsche et al.,
// arXiv:2109.04766; Stefanini et al., arXiv:1903.01930), and a k-NN
// model trained on yesterday's canonical runs silently degrades when it
// does. This detector watches the stream of PCA-space coordinates the
// classifier already computes per snapshot and scores, per component,
// how far the current sliding window has moved from a reference window
// using the Population Stability Index:
//
//   PSI = sum_b (p_cur[b] - p_ref[b]) * ln(p_cur[b] / p_ref[b])
//
// over `bins` buckets whose edges are the reference window's quantiles.
// The reference freezes itself from the first `reference_window` samples
// observed (the serving distribution the operator implicitly accepted at
// deploy time), so a stationary stream scores ~0 while a phase change —
// an application switching behaviour class mid-run — spikes the score of
// whichever component separates the clusters. Conventional reading:
// PSI < 0.1 stable, 0.1-0.25 moderate shift, > 0.25 drifted.
//
// Firing is hysteretic: a component enters the drifting state when its
// score crosses `fire_threshold` (invoking the on_drift callback once,
// on the rising edge) and leaves it only when the score falls back below
// `clear_threshold` — so a score oscillating around the fire line cannot
// ring the alarm every sample. Scores are recomputed every `stride`
// samples, keeping the per-sample cost to a ring-buffer update.
//
// Everything is a pure function of the observed stream: same stream,
// same scores, same events — bit-reproducible, and free of any feedback
// into classification.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace appclass::obs {

struct DriftOptions {
  /// Samples in the frozen reference window (collected first).
  std::size_t reference_window = 256;
  /// Samples in the sliding current window compared against it.
  std::size_t window = 128;
  /// PSI histogram buckets; edges are reference-window quantiles.
  std::size_t bins = 10;
  /// Score recomputation stride in samples (1 = every sample). Purely a
  /// cost knob: events fire at the same stream positions modulo stride.
  std::size_t stride = 16;
  /// Rising-edge threshold: score >= this enters the drifting state.
  double fire_threshold = 0.25;
  /// Falling-edge threshold: score <= this leaves it (hysteresis band).
  double clear_threshold = 0.10;
};

class DriftDetector {
 public:
  /// Called once per rising edge with the component index and its score.
  using DriftCallback = std::function<void(std::size_t component,
                                           double score)>;

  explicit DriftDetector(DriftOptions options = {});

  /// Fixes the reference distribution explicitly instead of self-freezing
  /// from the stream: `row_major` is samples x components, flattened.
  /// Must be called before the first observe(), with at least `bins`
  /// samples.
  void set_reference(std::span<const double> row_major,
                     std::size_t components);

  /// Feeds one projected sample (all components of one snapshot). The
  /// first call fixes the component count; later calls must match it.
  void observe(std::span<const double> projected);

  void on_drift(DriftCallback callback) { callback_ = std::move(callback); }

  std::size_t components() const noexcept { return components_.size(); }
  std::size_t samples_seen() const noexcept { return samples_seen_; }
  /// True once the reference window is frozen and scoring is live.
  bool reference_ready() const noexcept { return reference_ready_; }

  /// Latest PSI of one component (0 until the current window has filled).
  double score(std::size_t component) const;
  /// Largest per-component score.
  double max_score() const;
  /// True while `component` is in the drifting state.
  bool drifting(std::size_t component) const;
  /// True while any component is in the drifting state.
  bool any_drifting() const;
  /// Rising edges fired so far, across all components.
  std::uint64_t events() const noexcept { return events_; }

  const DriftOptions& options() const noexcept { return options_; }

  /// {"reference_ready":..,"samples":..,"events":..,"components":[...]}
  std::string to_json() const;

 private:
  struct Component {
    /// Reference proportion per bucket (bins entries, epsilon-floored).
    std::vector<double> reference;
    /// ln(reference[b]), cached at freeze so rescore() is log-free.
    std::vector<double> log_reference;
    double score = 0.0;
    bool drifting = false;
    /// Buffered raw values while the reference is self-freezing.
    std::vector<double> warmup;
    /// Cached registry series (resolved once; hot rescore never locks).
    Gauge* score_gauge = nullptr;
    Gauge* active_gauge = nullptr;
  };

  void ensure_components(std::size_t n);
  void freeze_reference();
  void freeze_component(std::size_t component, std::vector<double> values);
  std::size_t bucket_of(std::size_t component, double value) const;
  void rescore();

  DriftOptions options_;
  DriftCallback callback_;
  std::vector<Component> components_;
  /// Samples since the last rescore (avoids a per-sample modulo).
  std::size_t since_rescore_ = 0;
  // Hot per-sample state lives in flat detector-level arrays — one
  // allocation each instead of three pointer chases per component — and
  // the sliding window advances in lockstep across components, so the
  // ring head and fill are shared.
  /// Interior bucket edges: [component * (bins - 1) + e], ascending.
  std::vector<double> edges_;
  /// Window ring of bucket indices, one slot per sample:
  /// [slot * components + component].
  std::vector<std::uint8_t> ring_;
  /// Current-window bucket counts: [component * bins + b].
  std::vector<std::uint32_t> counts_;
  std::size_t ring_head_ = 0;
  std::size_t ring_size_ = 0;
  /// Current-window bucket counts are integers in [0, window], so the
  /// epsilon-floored proportion and its log are precomputed per count —
  /// rescore() is then pure table arithmetic, no transcendental calls on
  /// the streaming path.
  std::vector<double> count_prop_;
  std::vector<double> count_log_prop_;
  std::size_t samples_seen_ = 0;
  bool reference_ready_ = false;
  std::uint64_t events_ = 0;
};

}  // namespace appclass::obs
