#include "obs/health.hpp"

#include <atomic>
#include <cmath>
#include <sstream>

#include "obs/log.hpp"

namespace appclass::obs {
namespace {

/// Vote shares and margins live in (0, 1]; five equal buckets resolve
/// the interesting boundary (unanimous vs split neighbourhoods).
const std::vector<double>& share_buckets() {
  static const std::vector<double> bounds{0.2, 0.4, 0.6, 0.8, 1.0};
  return bounds;
}

std::atomic<ModelHealth*> g_instance{nullptr};

/// Minimal JSON string escaping for node IPs / class names.
void append_escaped(std::ostream& out, std::string_view text) {
  out << '"';
  for (const char ch : text) {
    if (ch == '"' || ch == '\\') out << '\\';
    out << ch;
  }
  out << '"';
}

}  // namespace

ModelHealth* ModelHealth::instance() noexcept {
  return g_instance.load(std::memory_order_acquire);
}

void ModelHealth::set_instance(ModelHealth* health) noexcept {
  g_instance.store(health, std::memory_order_release);
}

ModelHealth::ModelHealth(ModelHealthOptions options)
    : options_(std::move(options)),
      node_labels_(options_.top_nodes),
      drift_(options_.drift),
      novel_ring_(options_.novel_window == 0 ? 1 : options_.novel_window,
                  false),
      novel_total_(MetricsRegistry::global().counter(
          "appclass_health_novel_total")),
      abstained_total_(MetricsRegistry::global().counter(
          "appclass_health_abstained_total")),
      novel_fraction_gauge_(MetricsRegistry::global().gauge(
          "appclass_health_novel_fraction")),
      degraded_nodes_gauge_(MetricsRegistry::global().gauge(
          "appclass_health_degraded_nodes")),
      tracked_nodes_gauge_(MetricsRegistry::global().gauge(
          "appclass_health_tracked_nodes")) {
  classes_.resize(options_.class_names.size());
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    const Labels labels{{"class", options_.class_names[i]}};
    auto& registry = MetricsRegistry::global();
    classes_[i].samples_total =
        &registry.counter("appclass_health_samples_total", labels);
    classes_[i].confidence = &registry.histogram(
        "appclass_health_confidence", labels, share_buckets());
    classes_[i].margin = &registry.histogram(
        "appclass_health_vote_margin", labels, share_buckets());
  }
  other_.per_class.assign(classes_.size(), 0);
}

void ModelHealth::on_drift(DriftDetector::DriftCallback callback) {
  const std::lock_guard lock(mutex_);
  drift_.on_drift(std::move(callback));
}

void ModelHealth::set_drift_reference(std::span<const double> row_major,
                                      std::size_t components) {
  const std::lock_guard lock(mutex_);
  drift_.set_reference(row_major, components);
}

ModelHealth::NodeStats& ModelHealth::node_stats_locked(
    std::string_view node_ip) {
  const std::string& label = node_labels_.admit(node_ip);
  if (&label == &node_labels_.overflow_label()) return other_;
  const auto it = nodes_.find(label);
  if (it != nodes_.end()) return it->second;
  NodeStats& node = nodes_[label];
  node.per_class.assign(classes_.size(), 0);
  node.coverage_gauge = &MetricsRegistry::global().gauge(
      "appclass_health_coverage", {{"node", label}});
  tracked_nodes_gauge_.set(static_cast<double>(nodes_.size()));
  return node;
}

void ModelHealth::record(const HealthSample& sample) {
  const std::lock_guard lock(mutex_);
  ++samples_;

  // Per-class accounting (the label is assigned even for an abstained
  // observation — it enters the window, it just cannot vote).
  if (sample.class_index < classes_.size()) {
    ClassStats& cls = classes_[sample.class_index];
    ++cls.samples;
    cls.samples_total->inc();
    if (std::isfinite(sample.confidence)) {
      cls.confidence_sum += sample.confidence;
      ++cls.confidence_count;
      if (sample.confidence <= 0.5) ++cls.low_confidence;
      cls.confidence->observe(sample.confidence);
    }
    if (std::isfinite(sample.vote_margin)) {
      cls.margin_sum += sample.vote_margin;
      ++cls.margin_count;
      cls.margin->observe(sample.vote_margin);
    }
  }

  // Rolling novel fraction.
  if (novel_size_ == novel_ring_.size()) {
    if (novel_ring_[novel_head_]) --novel_count_;
  } else {
    ++novel_size_;
  }
  novel_ring_[novel_head_] = sample.novel;
  if (++novel_head_ == novel_ring_.size()) novel_head_ = 0;
  if (sample.novel) {
    ++novel_count_;
    novel_total_.inc();
  }
  novel_fraction_gauge_.set(static_cast<double>(novel_count_) /
                            static_cast<double>(novel_size_));

  // Per-node scorecard (bounded: top-K exact, the rest into "other").
  NodeStats& node = node_stats_locked(sample.node_ip);
  ++node.samples;
  if (sample.class_index < node.per_class.size())
    ++node.per_class[sample.class_index];
  node.last_class = sample.class_index;
  node.coverage = sample.coverage;
  if (node.coverage_gauge) node.coverage_gauge->set(sample.coverage);
  const bool was_degraded = node.degraded;
  node.degraded = sample.degraded;
  if (node.degraded != was_degraded) {
    std::size_t degraded = other_.degraded ? 1u : 0u;
    for (const auto& [name, n] : nodes_)
      if (n.degraded) ++degraded;
    degraded_nodes_gauge_.set(static_cast<double>(degraded));
  }
  if (sample.abstained) {
    ++abstained_;
    ++node.abstained;
    abstained_total_.inc();
  }
  if (sample.novel) ++node.novel;

  // Drift feed: the projected coordinates of every classified snapshot.
  if (options_.drift_enabled && !sample.projected.empty())
    drift_.observe(sample.projected);
}

std::string ModelHealth::classes_json() const {
  const std::lock_guard lock(mutex_);
  std::ostringstream out;
  out << "{\"total_samples\":" << samples_
      << ",\"abstained\":" << abstained_
      << ",\"novel_fraction\":"
      << (novel_size_ == 0
              ? 0.0
              : static_cast<double>(novel_count_) /
                    static_cast<double>(novel_size_))
      << ",\"classes\":[";
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    const ClassStats& cls = classes_[i];
    if (i) out << ',';
    out << "{\"class\":";
    append_escaped(out, options_.class_names[i]);
    out << ",\"samples\":" << cls.samples << ",\"share\":"
        << (samples_ == 0 ? 0.0
                          : static_cast<double>(cls.samples) /
                                static_cast<double>(samples_))
        << ",\"mean_confidence\":"
        << (cls.confidence_count == 0
                ? 0.0
                : cls.confidence_sum /
                      static_cast<double>(cls.confidence_count))
        << ",\"mean_vote_margin\":"
        << (cls.margin_count == 0
                ? 0.0
                : cls.margin_sum / static_cast<double>(cls.margin_count))
        << ",\"low_confidence\":" << cls.low_confidence << '}';
  }
  out << "]}";
  return out.str();
}

std::vector<std::uint64_t> ModelHealth::class_sample_counts() const {
  const std::lock_guard lock(mutex_);
  std::vector<std::uint64_t> out;
  out.reserve(classes_.size());
  for (const ClassStats& cls : classes_) out.push_back(cls.samples);
  return out;
}

void ModelHealth::append_node_json(std::ostream& out,
                                   const std::string& name,
                                   const NodeStats& node) const {
  out << "{\"node\":";
  append_escaped(out, name);
  out << ",\"samples\":" << node.samples
      << ",\"abstained\":" << node.abstained << ",\"novel\":" << node.novel
      << ",\"coverage\":" << node.coverage
      << ",\"degraded\":" << (node.degraded ? "true" : "false")
      << ",\"last_class\":";
  append_escaped(out, node.last_class < options_.class_names.size()
                          ? options_.class_names[node.last_class]
                          : "?");
  out << ",\"per_class\":{";
  bool first = true;
  for (std::size_t i = 0;
       i < node.per_class.size() && i < options_.class_names.size(); ++i) {
    if (node.per_class[i] == 0) continue;
    if (!first) out << ',';
    first = false;
    append_escaped(out, options_.class_names[i]);
    out << ':' << node.per_class[i];
  }
  out << "}}";
}

std::string ModelHealth::nodes_json() const {
  const std::lock_guard lock(mutex_);
  std::ostringstream out;
  out << "{\"tracked\":" << nodes_.size()
      << ",\"top_nodes\":" << options_.top_nodes
      << ",\"overflowed\":" << node_labels_.overflowed() << ",\"nodes\":[";
  bool first = true;
  for (const auto& [name, node] : nodes_) {
    if (!first) out << ',';
    first = false;
    append_node_json(out, name, node);
  }
  out << ']';
  if (other_.samples > 0) {
    out << ",\"other\":";
    append_node_json(out, node_labels_.overflow_label(), other_);
  }
  out << '}';
  return out.str();
}

std::string ModelHealth::drift_json() const {
  const std::lock_guard lock(mutex_);
  return drift_.to_json();
}

ModelHealth::Status ModelHealth::status() const {
  const std::lock_guard lock(mutex_);
  Status status;
  std::ostringstream degraded;
  bool first = true;
  const auto add = [&](const std::string& name, const NodeStats& node) {
    if (!node.degraded) return;
    ++status.degraded_nodes;
    if (!first) degraded << ',';
    first = false;
    degraded << "{\"node\":";
    append_escaped(degraded, name);
    degraded << ",\"coverage\":" << node.coverage << '}';
  };
  for (const auto& [name, node] : nodes_) add(name, node);
  add(node_labels_.overflow_label(), other_);
  status.healthy = status.degraded_nodes == 0;

  std::ostringstream out;
  out << "{\"status\":\"" << (status.healthy ? "ok" : "degraded")
      << "\",\"degraded_nodes\":" << status.degraded_nodes
      << ",\"samples\":" << samples_
      << ",\"drift_events\":" << drift_.events();
  if (!status.healthy) out << ",\"degraded\":[" << degraded.str() << ']';
  out << '}';
  status.reason_json = out.str();
  return status;
}

std::string ModelHealth::summary_line() const {
  const std::lock_guard lock(mutex_);
  std::size_t degraded = other_.degraded ? 1u : 0u;
  for (const auto& [name, node] : nodes_)
    if (node.degraded) ++degraded;
  std::ostringstream out;
  out << "health: samples=" << samples_ << " abstained=" << abstained_
      << " nodes=" << nodes_.size() << " degraded=" << degraded
      << " novel="
      << (novel_size_ == 0 ? 0.0
                           : 100.0 * static_cast<double>(novel_count_) /
                                 static_cast<double>(novel_size_))
      << "% drift_max=" << drift_.max_score()
      << " drift_events=" << drift_.events();
  return out.str();
}

std::uint64_t ModelHealth::samples() const {
  const std::lock_guard lock(mutex_);
  return samples_;
}

std::uint64_t ModelHealth::abstained() const {
  const std::lock_guard lock(mutex_);
  return abstained_;
}

std::uint64_t ModelHealth::drift_events() const {
  const std::lock_guard lock(mutex_);
  return drift_.events();
}

double ModelHealth::novel_fraction() const {
  const std::lock_guard lock(mutex_);
  return novel_size_ == 0 ? 0.0
                          : static_cast<double>(novel_count_) /
                                static_cast<double>(novel_size_);
}

}  // namespace appclass::obs
