// RAII wall-time spans over pipeline stages.
//
// A stage is any named region whose duration we want as a histogram:
//
//   void train(...) {
//     obs::ScopedTimer timer(obs::stage_histogram("pca_fit"));
//     ...
//   }  // observes the elapsed seconds on scope exit
//
// For per-item loops, time the whole loop once and charge the mean to
// every item (`stop_and_observe_per_item(n)`): one clock pair instead of
// 2n, so an 8000-snapshot classification pays nanoseconds, not percent.
//
// Span additionally emits trace-level log records at start and end, tying
// the timing substrate to the structured log stream.
#pragma once

#include <chrono>
#include <string>
#include <string_view>

#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace appclass::obs {

/// The one histogram family every pipeline stage reports to:
/// `appclass_stage_seconds{stage=<name>}` on the global registry.
Histogram& stage_histogram(std::string_view stage);

class ScopedTimer {
 public:
  using Clock = std::chrono::steady_clock;

  explicit ScopedTimer(Histogram& histogram) noexcept
      : histogram_(&histogram), start_(Clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (histogram_) histogram_->observe(elapsed_seconds());
  }

  double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Records now instead of at scope exit; returns the elapsed seconds.
  double stop() noexcept {
    const double s = elapsed_seconds();
    if (histogram_) histogram_->observe(s);
    histogram_ = nullptr;
    return s;
  }

  /// Records `items` observations of (elapsed / items) — the batched-loop
  /// form — then disarms. No-op on items == 0.
  void stop_and_observe_per_item(std::uint64_t items) noexcept {
    if (histogram_ && items > 0)
      histogram_->observe_many(elapsed_seconds() /
                                   static_cast<double>(items),
                               items);
    histogram_ = nullptr;
  }

 private:
  Histogram* histogram_;
  Clock::time_point start_;
};

/// A named ScopedTimer that also logs `span.begin` / `span.end` at trace
/// level, so `--log-level=trace` shows the live stage stream.
class Span {
 public:
  explicit Span(std::string_view name)
      : name_(name), timer_(stage_histogram(name)) {
    APPCLASS_LOG_TRACE("span.begin", {"stage", name_});
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    const double s = timer_.stop();
    APPCLASS_LOG_TRACE("span.end", {"stage", name_}, {"seconds", s});
  }

 private:
  std::string name_;
  ScopedTimer timer_;
};

}  // namespace appclass::obs
