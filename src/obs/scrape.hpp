// Minimal blocking HTTP scrape endpoint for live observability:
//
//   GET /metrics        Prometheus text exposition 0.0.4 of the global
//                       metrics registry
//   GET /healthz        liveness + model-health probe (see below)
//   GET /traces/recent  flight-recorder contents as Chrome trace JSON
//
// plus any routes registered with add_route() before start() — the serve
// subcommand mounts the model-health scorecards (/classes, /drift,
// /nodes) this way. Handlers run on the accept thread and must be
// thread-safe against whoever updates their backing state.
//
// /healthz is unconditionally "200 ok" until a health check is installed
// with set_health_check(); with one, a degraded verdict turns the probe
// into "503 Service Unavailable" with a JSON reason body, so a liveness
// prober notices a classifier that is up but abstaining.
//
// One accept thread serves requests sequentially over plain POSIX
// sockets — a deliberate non-framework design: scrapes are rare (every
// few seconds), tiny, and read-only, so a single blocking loop with a
// receive timeout is simpler and easier to audit than a connection pool.
// The server never touches classification state; it only reads the
// MetricsRegistry / TraceRecorder snapshots and the registered handlers,
// all of which are safe to read concurrently with recording.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "obs/cardinality.hpp"
#include "obs/metrics.hpp"

namespace appclass::obs {

struct ScrapeServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with port() after start().
  std::uint16_t port = 0;
  /// Per-connection socket timeouts: a client that stops reading or
  /// writing cannot wedge the accept thread past these.
  int read_timeout_ms = 2000;
  int write_timeout_ms = 2000;
  /// Requests larger than this (without a complete header block) are
  /// answered 431 and closed instead of buffered without bound.
  std::size_t max_request_bytes = 8 * 1024;
  /// bind() attempts beyond the first, with exponential backoff starting
  /// at bind_retry_initial_ms (doubling, capped at 2 s per wait). Lets a
  /// restarted worker reclaim a port still held by its dead predecessor.
  int bind_retries = 0;
  int bind_retry_initial_ms = 100;
  /// Byte cap on the /traces/recent response: the flight recorder keeps
  /// up to capacity * threads events, and an unbounded dump over a slow
  /// connection would wedge the accept thread. The oldest events drop
  /// first (to_chrome_json's `droppedEvents` marks the cut). 0 =
  /// unbounded.
  std::size_t max_trace_response_bytes = 4 * 1024 * 1024;
  /// Minimum interval between /traces/recent dumps; requests inside the
  /// window get 429 Too Many Requests. Dumping walks and serializes
  /// every thread ring under its locks, so a scrape loop pointed at the
  /// trace route by mistake must not become a recording stall. 0 = no
  /// limit.
  int trace_dump_min_interval_ms = 0;
};

/// Verdict of an installed health check (see set_health_check()).
struct HealthVerdict {
  bool healthy = true;
  /// JSON body served with the probe response (200 when healthy, 503
  /// when not). Empty falls back to {"status":"ok"} / {"status":"degraded"}.
  std::string body;
};

class ScrapeServer {
 public:
  explicit ScrapeServer(ScrapeServerOptions options = {});
  ~ScrapeServer();

  ScrapeServer(const ScrapeServer&) = delete;
  ScrapeServer& operator=(const ScrapeServer&) = delete;

  /// Registers a GET route served by `handler` (returns the body).
  /// Must be called before start(); the built-in routes cannot be
  /// overridden. Handlers run on the accept thread.
  void add_route(std::string path, std::string content_type,
                 std::function<std::string()> handler);

  /// Installs the /healthz verdict callback (nullptr restores the
  /// unconditional "ok"). Must be called before start().
  void set_health_check(std::function<HealthVerdict()> check);

  /// Binds, listens, and launches the accept thread. False (with an
  /// ERROR log) when the socket cannot be bound.
  bool start();

  /// Stops accepting, closes the listen socket, and joins the accept
  /// thread. Idempotent; also run by the destructor.
  void stop();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// The bound port (resolves port 0 requests); 0 before start().
  std::uint16_t port() const noexcept { return port_; }

 private:
  struct Route {
    std::string content_type;
    std::function<std::string()> handler;
  };

  void serve_loop();
  Counter& route_counter(const std::string& path);

  /// Monotonic ms of the last served /traces/recent dump (accept-thread
  /// only; atomic so a future multi-acceptor stays correct).
  std::atomic<std::int64_t> last_trace_dump_ms_{-1};

  ScrapeServerOptions options_;
  std::map<std::string, Route> routes_;
  std::function<HealthVerdict()> health_check_;
  /// Bounded request-counter labels: built-ins + registered routes keep
  /// their own series, arbitrary request targets collapse to "other".
  BoundedLabelSet path_labels_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace appclass::obs
