// Minimal blocking HTTP scrape endpoint for live observability:
//
//   GET /metrics        Prometheus text exposition 0.0.4 of the global
//                       metrics registry
//   GET /healthz        liveness probe ("ok")
//   GET /traces/recent  flight-recorder contents as Chrome trace JSON
//
// One accept thread serves requests sequentially over plain POSIX
// sockets — a deliberate non-framework design: scrapes are rare (every
// few seconds), tiny, and read-only, so a single blocking loop with a
// receive timeout is simpler and easier to audit than a connection pool.
// The server never touches classification state; it only reads the
// MetricsRegistry / TraceRecorder snapshots, both of which are safe to
// read concurrently with recording.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace appclass::obs {

struct ScrapeServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with port() after start().
  std::uint16_t port = 0;
};

class ScrapeServer {
 public:
  explicit ScrapeServer(ScrapeServerOptions options = {});
  ~ScrapeServer();

  ScrapeServer(const ScrapeServer&) = delete;
  ScrapeServer& operator=(const ScrapeServer&) = delete;

  /// Binds, listens, and launches the accept thread. False (with an
  /// ERROR log) when the socket cannot be bound.
  bool start();

  /// Stops accepting, closes the listen socket, and joins the accept
  /// thread. Idempotent; also run by the destructor.
  void stop();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// The bound port (resolves port 0 requests); 0 before start().
  std::uint16_t port() const noexcept { return port_; }

 private:
  void serve_loop();

  ScrapeServerOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace appclass::obs
