#include "obs/span.hpp"

namespace appclass::obs {

Histogram& stage_histogram(std::string_view stage) {
  return MetricsRegistry::global().histogram(
      "appclass_stage_seconds", {{"stage", std::string(stage)}});
}

}  // namespace appclass::obs
