#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <string_view>

namespace appclass::obs {
namespace {

std::string format_double(double v, const char* fmt = "%.9g") {
  char buffer[48];
  std::snprintf(buffer, sizeof buffer, fmt, v);
  return buffer;
}

std::string short_double(double v) { return format_double(v, "%.4g"); }

/// `name{k=v,k2=v2}` display form (table header / JSON omit braces on
/// empty labels).
std::string display_name(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string out = name;
  out.push_back('{');
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out.append(k);
    out.push_back('=');
    out.append(v);
  }
  out.push_back('}');
  return out;
}

/// Estimates quantile `q` from bucket counts: the upper bound of the
/// bucket where the cumulative count crosses q * total ("inf" for the
/// overflow bucket).
std::string quantile_estimate(const HistogramSnapshot& h, double q) {
  if (h.count == 0) return "-";
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(h.count) + 0.5);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
    cumulative += h.bucket_counts[i];
    if (cumulative >= target)
      return i < h.bounds.size() ? short_double(h.bounds[i]) : "inf";
  }
  return "inf";
}

void json_escape_into(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out.append("\\\""); break;
      case '\\': out.append("\\\\"); break;
      case '\n': out.append("\\n"); break;
      case '\t': out.append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out.append(buffer);
        } else {
          out.push_back(c);
        }
    }
  }
}

void json_labels_into(std::string& out, const Labels& labels) {
  out.append("{");
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    json_escape_into(out, k);
    out.append("\":\"");
    json_escape_into(out, v);
    out.push_back('"');
  }
  out.push_back('}');
}

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string prom_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9' && !out.empty()) || c == '_' ||
                    c == ':';
    out.push_back(ok ? c : '_');
  }
  return out.empty() ? "_" : out;
}

void prom_labels_into(std::string& out, const Labels& labels,
                      const std::string& extra_key = {},
                      const std::string& extra_value = {}) {
  if (labels.empty() && extra_key.empty()) return;
  out.push_back('{');
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out.append(prom_name(k));
    out.append("=\"");
    for (const char c : v) {
      if (c == '\\' || c == '"') out.push_back('\\');
      if (c == '\n') {
        out.append("\\n");
        continue;
      }
      out.push_back(c);
    }
    out.push_back('"');
  }
  if (!extra_key.empty()) {
    if (!first) out.push_back(',');
    out.append(extra_key);
    out.append("=\"");
    out.append(extra_value);
    out.push_back('"');
  }
  out.push_back('}');
}

void prom_type_line(std::string& out, std::set<std::string>& emitted,
                    const std::string& name, std::string_view type) {
  if (!emitted.insert(name).second) return;
  out.append("# TYPE ");
  out.append(name);
  out.push_back(' ');
  out.append(type);
  out.push_back('\n');
}

}  // namespace

std::string to_table(const RegistrySnapshot& snapshot) {
  std::string out;
  if (snapshot.empty()) return "(no metrics recorded)\n";

  std::size_t width = 24;
  for (const auto& c : snapshot.counters)
    width = std::max(width, display_name(c.name, c.labels).size());
  for (const auto& g : snapshot.gauges)
    width = std::max(width, display_name(g.name, g.labels).size());
  for (const auto& h : snapshot.histograms)
    width = std::max(width, display_name(h.name, h.labels).size());
  const int w = static_cast<int>(width);

  char line[256];
  if (!snapshot.counters.empty() || !snapshot.gauges.empty()) {
    std::snprintf(line, sizeof line, "%-*s %14s\n", w, "counter/gauge",
                  "value");
    out.append(line);
    for (const auto& c : snapshot.counters) {
      std::snprintf(line, sizeof line, "%-*s %14llu\n", w,
                    display_name(c.name, c.labels).c_str(),
                    static_cast<unsigned long long>(c.value));
      out.append(line);
    }
    for (const auto& g : snapshot.gauges) {
      std::snprintf(line, sizeof line, "%-*s %14s\n", w,
                    display_name(g.name, g.labels).c_str(),
                    short_double(g.value).c_str());
      out.append(line);
    }
  }
  if (!snapshot.histograms.empty()) {
    if (!out.empty()) out.push_back('\n');
    std::snprintf(line, sizeof line, "%-*s %10s %10s %10s %10s %10s\n", w,
                  "histogram (seconds)", "count", "mean", "p50", "p90",
                  "p99");
    out.append(line);
    for (const auto& h : snapshot.histograms) {
      std::snprintf(line, sizeof line,
                    "%-*s %10llu %10s %10s %10s %10s\n", w,
                    display_name(h.name, h.labels).c_str(),
                    static_cast<unsigned long long>(h.count),
                    h.count ? short_double(h.mean()).c_str() : "-",
                    quantile_estimate(h, 0.50).c_str(),
                    quantile_estimate(h, 0.90).c_str(),
                    quantile_estimate(h, 0.99).c_str());
      out.append(line);
    }
  }
  return out;
}

std::string to_json(const RegistrySnapshot& snapshot) {
  std::string out = "{\"counters\":[";
  bool first = true;
  for (const auto& c : snapshot.counters) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":\"");
    json_escape_into(out, c.name);
    out.append("\",\"labels\":");
    json_labels_into(out, c.labels);
    out.append(",\"value\":");
    out.append(std::to_string(c.value));
    out.push_back('}');
  }
  out.append("],\"gauges\":[");
  first = true;
  for (const auto& g : snapshot.gauges) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":\"");
    json_escape_into(out, g.name);
    out.append("\",\"labels\":");
    json_labels_into(out, g.labels);
    out.append(",\"value\":");
    out.append(format_double(g.value));
    out.push_back('}');
  }
  out.append("],\"histograms\":[");
  first = true;
  for (const auto& h : snapshot.histograms) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":\"");
    json_escape_into(out, h.name);
    out.append("\",\"labels\":");
    json_labels_into(out, h.labels);
    out.append(",\"count\":");
    out.append(std::to_string(h.count));
    out.append(",\"sum\":");
    out.append(format_double(h.sum));
    out.append(",\"mean\":");
    out.append(format_double(h.mean()));
    out.append(",\"buckets\":[");
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (i) out.push_back(',');
      out.append("{\"le\":");
      if (i < h.bounds.size()) {
        out.append(format_double(h.bounds[i]));
      } else {
        out.append("\"+Inf\"");
      }
      out.append(",\"count\":");
      out.append(std::to_string(h.bucket_counts[i]));
      out.push_back('}');
    }
    out.push_back(']');
    if (h.exemplar_trace_id != 0) {
      // Exemplars live in the JSON view only; the Prometheus text
      // exposition stays plain 0.0.4 so conformance parsers keep working.
      char hex[24];
      std::snprintf(hex, sizeof hex, "%llx",
                    static_cast<unsigned long long>(h.exemplar_trace_id));
      out.append(",\"exemplar\":{\"trace_id\":\"");
      out.append(hex);
      out.append("\",\"value\":");
      out.append(format_double(h.exemplar_value));
      out.push_back('}');
    }
    out.push_back('}');
  }
  out.append("]}");
  return out;
}

std::string to_prometheus(const RegistrySnapshot& snapshot) {
  std::string out;
  std::set<std::string> emitted;
  for (const auto& c : snapshot.counters) {
    const std::string name = prom_name(c.name);
    prom_type_line(out, emitted, name, "counter");
    out.append(name);
    prom_labels_into(out, c.labels);
    out.push_back(' ');
    out.append(std::to_string(c.value));
    out.push_back('\n');
  }
  for (const auto& g : snapshot.gauges) {
    const std::string name = prom_name(g.name);
    prom_type_line(out, emitted, name, "gauge");
    out.append(name);
    prom_labels_into(out, g.labels);
    out.push_back(' ');
    out.append(format_double(g.value));
    out.push_back('\n');
  }
  for (const auto& h : snapshot.histograms) {
    const std::string name = prom_name(h.name);
    prom_type_line(out, emitted, name, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      cumulative += h.bucket_counts[i];
      out.append(name);
      out.append("_bucket");
      prom_labels_into(out, h.labels, "le",
                       i < h.bounds.size()
                           ? format_double(h.bounds[i], "%g")
                           : "+Inf");
      out.push_back(' ');
      out.append(std::to_string(cumulative));
      out.push_back('\n');
    }
    out.append(name);
    out.append("_sum");
    prom_labels_into(out, h.labels);
    out.push_back(' ');
    out.append(format_double(h.sum));
    out.push_back('\n');
    out.append(name);
    out.append("_count");
    prom_labels_into(out, h.labels);
    out.push_back(' ');
    out.append(std::to_string(h.count));
    out.push_back('\n');
  }
  return out;
}

}  // namespace appclass::obs
