#include "obs/cardinality.hpp"

namespace appclass::obs {

BoundedLabelSet::BoundedLabelSet(std::size_t max_values, std::string overflow)
    : max_values_(max_values), overflow_(std::move(overflow)) {}

const std::string& BoundedLabelSet::admit(std::string_view value) {
  const std::lock_guard lock(mutex_);
  const auto it = values_.find(value);
  if (it != values_.end()) return *it;
  if (values_.size() < max_values_)
    return *values_.emplace(value).first;
  overflow_seen_.emplace(value);
  return overflow_;
}

bool BoundedLabelSet::admitted(std::string_view value) const {
  const std::lock_guard lock(mutex_);
  return values_.find(value) != values_.end();
}

std::size_t BoundedLabelSet::size() const {
  const std::lock_guard lock(mutex_);
  return values_.size();
}

std::size_t BoundedLabelSet::overflowed() const {
  const std::lock_guard lock(mutex_);
  return overflow_seen_.size();
}

}  // namespace appclass::obs
