// Black-box flight recorder: per-thread ring buffers of recent spans and
// log events, always-on capture when tracing is enabled, dumped as Chrome
// trace_event JSON (loadable in Perfetto / chrome://tracing) on demand,
// on crash, or through `appclass_cli trace dump` and the scrape server's
// /traces/recent route.
//
// Design: every recording thread owns a fixed-size ring (overwrite-oldest)
// guarded by a per-thread mutex that only the dumper ever contends —
// recording stays O(1) with no cross-thread traffic. The global recorder
// keeps a shared_ptr to every ring, so events from exited threads (pool
// workers, drained servers) survive until the next clear().
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"

namespace appclass::obs {

/// Microseconds since the process-wide recorder epoch (first use).
/// Monotonic; the timestamp base of every recorded event.
std::int64_t trace_now_us() noexcept;

/// Wall-clock microseconds (Unix epoch) captured at the same instant as
/// the recorder epoch. Dumped as `epochWallUs` so a fleet stitcher can
/// align per-process monotonic timestamps onto one time axis.
std::int64_t recorder_epoch_wall_us() noexcept;

/// One recorded event. `kSpan` maps to a Chrome "X" (complete) event,
/// `kInstant` to an "i" (instant) event — the log-record hook uses the
/// latter.
struct TraceEvent {
  enum class Phase { kSpan, kInstant };

  Phase phase = Phase::kSpan;
  std::string name;
  TraceContext context;      ///< ids (all 0 for un-traced instants)
  std::uint32_t tid = 0;     ///< recorder-assigned thread index
  std::int64_t ts_us = 0;    ///< start, relative to the recorder epoch
  std::int64_t dur_us = 0;   ///< kSpan only
  std::vector<SpanAttr> attrs;
};

class TraceRecorder {
 public:
  /// Events retained per recording thread before overwrite-oldest.
  static constexpr std::size_t kDefaultThreadCapacity = 4096;

  TraceRecorder();
  ~TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The process-wide recorder every TraceSpan and log hook reports to.
  static TraceRecorder& global();

  void record_span(std::string_view name, const TraceContext& context,
                   std::int64_t ts_us, std::int64_t dur_us,
                   std::vector<SpanAttr> attrs);
  void record_instant(std::string_view name, const TraceContext& context,
                      std::vector<SpanAttr> attrs);

  /// Ring capacity for threads that have not recorded yet (existing rings
  /// keep their size). Call before the workload of interest.
  void set_thread_capacity(std::size_t capacity);

  /// Copies every retained event (all threads, exited ones included),
  /// sorted by timestamp.
  std::vector<TraceEvent> events() const;

  /// Retained event count across all rings.
  std::size_t size() const;

  /// Chrome trace_event JSON ({"traceEvents":[...]}): "X" complete events
  /// for spans, "i" instants for log records, ids and span attributes
  /// under "args", plus an `epochWallUs` wall-clock anchor for
  /// cross-process stitching. `max_bytes` > 0 bounds the response for
  /// network serving: the oldest events are dropped until the document
  /// fits, and a `droppedEvents` count records the truncation. 0 means
  /// unbounded (file dumps, crash dumps).
  std::string to_chrome_json(std::size_t max_bytes = 0) const;

  /// Writes to_chrome_json() to `path`; false if the file cannot be
  /// opened or written.
  bool dump_to_file(const std::string& path) const;

  /// Drops every retained event (rings stay registered).
  void clear();

 private:
  struct ThreadRing;

  ThreadRing& ring_for_this_thread();

  mutable std::mutex mutex_;  // guards rings_ and capacity_
  std::vector<std::shared_ptr<ThreadRing>> rings_;
  std::size_t capacity_ = kDefaultThreadCapacity;
  std::uint32_t next_tid_ = 0;
  /// Process-unique id for the per-thread ring cache: a recorder
  /// reconstructed at a freed recorder's address must not inherit its
  /// cached rings.
  const std::uint64_t instance_id_;
};

/// Installs SIGSEGV/SIGBUS/SIGABRT handlers that dump the global
/// recorder's Chrome JSON to `path` before re-raising with the default
/// disposition — the post-mortem half of the flight recorder. Idempotent;
/// the latest path wins.
void install_crash_dump(const std::string& path);

}  // namespace appclass::obs
