// Process-wide metrics registry: counters, gauges, and fixed-bucket
// histograms, in the Prometheus data-model dialect (a metric is a name
// plus a small set of key=value labels).
//
// Concurrency contract:
//   * Registration (MetricsRegistry::counter/gauge/histogram) takes a
//     mutex; call sites cache the returned reference (it is stable for
//     the registry's lifetime) so the hot path never locks.
//   * Updates (inc/set/observe) are lock-free relaxed atomics.
//   * snapshot() reads whatever values are visible at the time; it is a
//     monitoring view, not a linearization point.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace appclass::obs {

/// Sorted-by-construction list of label key/value pairs.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. `bounds` are inclusive upper bucket edges in
/// ascending order; an implicit +Inf bucket catches the rest. Sum and
/// count are tracked for mean computation and Prometheus export.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value) noexcept { observe_many(value, 1); }

  /// Records `n` observations of `value` with one bucket search and three
  /// atomic adds — used by batch stages that time a whole loop and charge
  /// the mean to every item (e.g. per-snapshot k-NN queries).
  void observe_many(double value, std::uint64_t n) noexcept;

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  /// Count in bucket `i` (i == bounds().size() is the +Inf bucket).
  std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset() noexcept;

  /// Last exemplar: the most recent observation made under an active
  /// trace, referencing its trace id (obs/trace.hpp writes these on span
  /// end). The two fields are independent relaxed atomics — a torn
  /// (value, id) pair across concurrent traced observations is possible
  /// and acceptable for a monitoring view.
  void set_exemplar(double value, std::uint64_t trace_id) noexcept {
    exemplar_value_.store(value, std::memory_order_relaxed);
    exemplar_trace_.store(trace_id, std::memory_order_relaxed);
  }
  double exemplar_value() const noexcept {
    return exemplar_value_.load(std::memory_order_relaxed);
  }
  /// 0 = no exemplar recorded yet.
  std::uint64_t exemplar_trace_id() const noexcept {
    return exemplar_trace_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> exemplar_value_{0.0};
  std::atomic<std::uint64_t> exemplar_trace_{0};
};

/// Log-spaced latency buckets from 1 µs to 10 s — the default for stage
/// wall-time histograms.
const std::vector<double>& default_time_buckets();

struct CounterSnapshot {
  std::string name;
  Labels labels;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  Labels labels;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  Labels labels;
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;  // bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0.0;
  /// Last traced observation (exemplar); trace id 0 = none recorded.
  double exemplar_value = 0.0;
  std::uint64_t exemplar_trace_id = 0;

  double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Point-in-time copy of every registered metric, sorted by (name, labels).
struct RegistrySnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  const CounterSnapshot* find_counter(std::string_view name,
                                      const Labels& labels = {}) const;
  const HistogramSnapshot* find_histogram(std::string_view name,
                                          const Labels& labels = {}) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();  // out-of-line: Entry is incomplete here
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every instrumented subsystem reports to.
  static MetricsRegistry& global();

  /// Returns the metric registered under (name, labels), creating it on
  /// first use. References stay valid for the registry's lifetime; the
  /// histogram `bounds` are fixed by the first registration.
  Counter& counter(std::string_view name, const Labels& labels = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {});
  Histogram& histogram(std::string_view name, const Labels& labels = {},
                       const std::vector<double>& bounds =
                           default_time_buckets());

  RegistrySnapshot snapshot() const;

  /// Zeroes every value while keeping all registrations (and therefore
  /// every cached reference) intact. Test-only convenience.
  void reset_values();

 private:
  struct Entry;
  Entry& entry_for(std::string_view name, const Labels& labels);

  mutable std::mutex mutex_;
  // Node-based map: values never move once inserted.
  std::map<std::string, std::unique_ptr<Entry>> entries_;
};

}  // namespace appclass::obs
