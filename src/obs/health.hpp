// Model-health observability: how well the classifier is doing, not just
// how fast.
//
// ModelHealth aggregates the per-snapshot evidence the online
// classification path already produces — winning-class vote share,
// vote margin, novelty distance, coverage/abstention state, PCA-space
// coordinates — into:
//
//   * per-class confidence and vote-margin histograms plus scorecard
//     summaries (`/classes`),
//   * per-node classification scorecards with bounded cardinality —
//     the first `top_nodes` distinct nodes keep their own card, the
//     rest aggregate into an `other` bucket (`/nodes`),
//   * an online drift detector over the projected feature stream
//     (`/drift`, `appclass_drift_score{component=}`), with an
//     `on_drift` callback hook a retraining loop can subscribe to,
//   * abstention / degraded / novel-fraction gauges, and a one-line
//     summary for periodic stats dumps.
//
// The layer is strictly observational: it never feeds back into
// classification, so output is bit-identical with it attached or not.
// record() and every reader are internally synchronized — scrape-route
// handlers may run on the server thread while a fleet drain records.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/cardinality.hpp"
#include "obs/drift.hpp"
#include "obs/metrics.hpp"

namespace appclass::obs {

struct ModelHealthOptions {
  /// Class names in label-index order; fixes the class count. Required.
  std::vector<std::string> class_names;
  /// Per-node scorecards kept exactly; further nodes fold into "other".
  std::size_t top_nodes = 16;
  /// Rolling window (samples) behind the novel-fraction gauge.
  std::size_t novel_window = 256;
  /// False skips the drift feed entirely (bench baseline / cost opt-out);
  /// everything else about the aggregator is unchanged.
  bool drift_enabled = true;
  DriftOptions drift{};
};

/// One classified (or abstained) snapshot's health evidence. Fields the
/// caller cannot cheaply produce stay NaN/empty and are skipped.
struct HealthSample {
  std::string_view node_ip;
  std::size_t class_index = 0;
  /// Winning-class vote share in (0, 1]; NaN = unknown (label-only feed).
  double confidence = std::numeric_limits<double>::quiet_NaN();
  /// Winner-minus-runner-up vote share in [0, 1]; NaN = unknown.
  double vote_margin = std::numeric_limits<double>::quiet_NaN();
  /// True when the snapshot's novelty distance exceeded the pipeline's
  /// threshold (an open-environment behaviour unlike any trained class).
  bool novel = false;
  /// Window coverage of the node at this sample, in (0, 1].
  double coverage = 1.0;
  /// True while the node's classifier is abstaining (coverage too low).
  bool degraded = false;
  /// True when this specific observation was absorbed without voting.
  bool abstained = false;
  /// PCA-space coordinates; empty skips the drift feed.
  std::span<const double> projected;
};

class ModelHealth {
 public:
  explicit ModelHealth(ModelHealthOptions options);

  /// Feeds one sample. Thread-safe.
  void record(const HealthSample& sample);

  /// Fires once per drift rising edge (component index, PSI score); the
  /// hook a retraining loop subscribes to. Set before streaming.
  void on_drift(DriftDetector::DriftCallback callback);

  /// Fixes the drift reference explicitly (samples x components,
  /// row-major) instead of self-freezing from the first window.
  void set_drift_reference(std::span<const double> row_major,
                           std::size_t components);

  // -- Scrape-route scorecards (all thread-safe, all valid JSON) --------
  std::string classes_json() const;  ///< per-class scorecards (/classes)
  std::string nodes_json() const;    ///< per-node scorecards (/nodes)
  std::string drift_json() const;    ///< drift detector state (/drift)

  /// One-line scorecard summary for --stats-every periodic dumps.
  std::string summary_line() const;

  /// Liveness verdict for /healthz: unhealthy while any tracked node is
  /// degraded (abstaining on thin coverage). `reason_json` is a JSON
  /// body either way.
  struct Status {
    bool healthy = true;
    std::size_t degraded_nodes = 0;
    std::string reason_json;
  };
  Status status() const;

  std::uint64_t samples() const;
  std::uint64_t abstained() const;
  /// Per-class sample counts in class-index order (the order of
  /// options.class_names) — the distilled numbers a shard worker exposes
  /// for the coordinator's merged /classes view.
  std::vector<std::uint64_t> class_sample_counts() const;
  std::uint64_t drift_events() const;
  /// Fraction of the last `novel_window` samples flagged novel.
  double novel_fraction() const;

  /// Process-global instance hook: lets decoupled observers (the CLI's
  /// periodic stats ticker) find the serving health aggregator without
  /// plumbing. Set to nullptr on teardown; not owned.
  static ModelHealth* instance() noexcept;
  static void set_instance(ModelHealth* health) noexcept;

 private:
  struct ClassStats {
    std::uint64_t samples = 0;
    double confidence_sum = 0.0;
    std::uint64_t confidence_count = 0;
    double margin_sum = 0.0;
    std::uint64_t margin_count = 0;
    std::uint64_t low_confidence = 0;  ///< vote share <= 0.5
    Counter* samples_total = nullptr;
    Histogram* confidence = nullptr;
    Histogram* margin = nullptr;
  };

  struct NodeStats {
    std::uint64_t samples = 0;
    std::uint64_t abstained = 0;
    std::uint64_t novel = 0;
    std::vector<std::uint64_t> per_class;
    double coverage = 1.0;
    bool degraded = false;
    std::size_t last_class = 0;
    Gauge* coverage_gauge = nullptr;
  };

  NodeStats& node_stats_locked(std::string_view node_ip);
  void append_node_json(std::ostream& out, const std::string& name,
                        const NodeStats& node) const;

  const ModelHealthOptions options_;
  mutable std::mutex mutex_;
  std::vector<ClassStats> classes_;
  BoundedLabelSet node_labels_;
  std::map<std::string, NodeStats, std::less<>> nodes_;
  NodeStats other_;
  DriftDetector drift_;
  std::uint64_t samples_ = 0;
  std::uint64_t abstained_ = 0;
  /// Rolling novelty ring behind the novel-fraction gauge.
  std::vector<bool> novel_ring_;
  std::size_t novel_head_ = 0;
  std::size_t novel_size_ = 0;
  std::size_t novel_count_ = 0;
  Counter& novel_total_;
  Counter& abstained_total_;
  Gauge& novel_fraction_gauge_;
  Gauge& degraded_nodes_gauge_;
  Gauge& tracked_nodes_gauge_;
};

}  // namespace appclass::obs
