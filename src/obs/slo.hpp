// Multi-window error-budget SLO tracking for the serving fleet.
//
// Two service-level indicators matter for a classification fleet:
//
//   * freshness — an announced snapshot becomes durable (worker WAL
//     fsync acknowledged) within a threshold; a slow or resent frame is
//     a "bad" event. This is the paper's monitoring loop measured end
//     to end: announce -> collect -> classify must keep up with the
//     sampling interval or the served composition goes stale.
//   * availability — a worker answers its periodic /metrics scrape.
//
// Each indicator keeps per-second good/bad buckets over the long window
// and reports the SRE-style *burn rate* — error_rate / (1 - objective),
// i.e. how many times faster than sustainable the error budget is being
// spent — over a short and a long window. The verdict alerts only when
// BOTH windows burn (the classic multi-window rule: the short window
// proves it is happening now, the long window proves it is not a blip),
// and that verdict folds into the coordinator's /healthz 200/503.
//
// Time is injected (`now_s`) rather than read internally so tests drive
// the windows deterministically; serving feeds a monotonic clock.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace appclass::obs {

struct SloOptions {
  /// Target good fraction for announce->durable freshness.
  double freshness_objective = 0.99;
  /// Announce->durable latency above this is a bad freshness event.
  double freshness_threshold_s = 5.0;
  /// Target good fraction for worker scrape availability.
  double availability_objective = 0.99;
  /// Burn-rate windows, seconds (defaults: 5 minutes and 1 hour).
  int short_window_s = 300;
  int long_window_s = 3600;
  /// Unhealthy when an indicator burns above this in BOTH windows.
  double alert_burn_rate = 1.0;
};

class SloTracker {
 public:
  explicit SloTracker(SloOptions options = {});

  /// One announce->durable sample; latency above the freshness
  /// threshold counts against the budget.
  void record_freshness(double latency_s, std::int64_t now_s);
  /// One availability probe outcome (worker scrape success/failure).
  void record_availability(bool ok, std::int64_t now_s);

  struct WindowReport {
    int window_s = 0;
    std::uint64_t good = 0;
    std::uint64_t bad = 0;
    double error_rate = 0.0;  ///< bad / (good + bad); 0 on empty window
    double burn_rate = 0.0;   ///< error_rate / (1 - objective)
  };
  struct SliReport {
    double objective = 0.0;
    WindowReport short_window;
    WindowReport long_window;
    bool burning = false;  ///< above alert_burn_rate in both windows
  };
  struct Report {
    SliReport freshness;
    SliReport availability;
    bool healthy = true;  ///< no indicator burning
  };

  Report report(std::int64_t now_s) const;
  bool healthy(std::int64_t now_s) const;
  /// JSON verdict served at /slo and used as the /healthz body.
  std::string to_json(std::int64_t now_s) const;

  const SloOptions& options() const noexcept { return options_; }

  /// Monotonic seconds — the `now_s` the serving layer feeds.
  static std::int64_t now_s() noexcept;

 private:
  /// Ring of per-second (good, bad) buckets covering the long window.
  struct Sli {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> buckets;
    std::int64_t head_s = -1;  ///< second the newest bucket covers

    explicit Sli(std::size_t window_s) : buckets(window_s, {0, 0}) {}
    void advance(std::int64_t now_s);
    void record(bool good, std::int64_t now_s);
    WindowReport window(int window_s, std::int64_t now_s,
                        double objective) const;
  };

  const SloOptions options_;
  mutable std::mutex mutex_;
  Sli freshness_;
  Sli availability_;
};

}  // namespace appclass::obs
