#include "obs/trace.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/recorder.hpp"

namespace appclass::obs {
namespace {

std::atomic<bool> g_enabled{false};
/// One id space for trace and span ids keeps both process-unique.
std::atomic<std::uint64_t> g_next_id{1};

thread_local TraceContext t_current;

std::uint64_t next_id() noexcept {
  return g_next_id.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

bool tracing_enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

void set_tracing_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

void configure_tracing_from_env() {
  const char* v = std::getenv("APPCLASS_TRACE");
  if (!v) return;
  set_tracing_enabled(!std::strcmp(v, "1") || !std::strcmp(v, "true") ||
                      !std::strcmp(v, "on"));
}

TraceContext current_trace_context() noexcept { return t_current; }

ScopedTraceContext::ScopedTraceContext(const TraceContext& adopted) noexcept
    : saved_(t_current) {
  t_current = adopted;
}

ScopedTraceContext::~ScopedTraceContext() { t_current = saved_; }

SpanAttr::SpanAttr(std::string_view k, double v) : key(k) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.6g", v);
  value = buffer;
}

TraceSpan::TraceSpan(std::string_view name, Histogram* exemplar_histogram) {
  if (!tracing_enabled()) return;
  recording_ = true;
  name_ = name;
  exemplar_histogram_ = exemplar_histogram;
  saved_ = t_current;
  context_.trace_id = saved_.active() ? saved_.trace_id : next_id();
  context_.parent_span_id = saved_.active() ? saved_.span_id : 0;
  context_.span_id = next_id();
  t_current = context_;
  start_us_ = trace_now_us();
}

TraceSpan::~TraceSpan() {
  if (!recording_) return;
  const std::int64_t end_us = trace_now_us();
  t_current = saved_;
  if (exemplar_histogram_)
    exemplar_histogram_->set_exemplar(
        static_cast<double>(end_us - start_us_) * 1e-6, context_.trace_id);
  TraceRecorder::global().record_span(name_, context_, start_us_,
                                      end_us - start_us_,
                                      std::move(attrs_));
}

void TraceSpan::add_attr(SpanAttr attr) {
  if (recording_) attrs_.push_back(std::move(attr));
}

}  // namespace appclass::obs
