#include "obs/log.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "obs/recorder.hpp"
#include "obs/trace.hpp"

namespace appclass::obs {
namespace {

std::mutex g_sink_mutex;
std::function<void(const std::string&)> g_sink;  // guarded by g_sink_mutex
std::FILE* g_sink_file = nullptr;                // guarded by g_sink_mutex

char ascii_lower(char c) noexcept {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  return true;
}

/// True when the value needs quoting to stay one grep-able token.
bool needs_quotes(std::string_view v) noexcept {
  if (v.empty()) return true;
  for (const char c : v)
    if (c == ' ' || c == '"' || c == '=' || c == '\n' || c == '\t')
      return true;
  return false;
}

void append_value(std::string& out, std::string_view v) {
  if (!needs_quotes(v)) {
    out.append(v);
    return;
  }
  out.push_back('"');
  for (const char c : v) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out.append("\\n");
      continue;
    }
    out.push_back(c);
  }
  out.push_back('"');
}

}  // namespace

LogField::LogField(std::string_view k, double v) : key(k) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.6g", v);
  value = buffer;
}

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogLevel parse_log_level(std::string_view text, LogLevel fallback) noexcept {
  if (iequals(text, "trace")) return LogLevel::kTrace;
  if (iequals(text, "debug")) return LogLevel::kDebug;
  if (iequals(text, "info")) return LogLevel::kInfo;
  if (iequals(text, "warn") || iequals(text, "warning"))
    return LogLevel::kWarn;
  if (iequals(text, "error")) return LogLevel::kError;
  if (iequals(text, "off") || iequals(text, "none")) return LogLevel::kOff;
  return fallback;
}

Logger& Logger::global() {
  static Logger logger;
  return logger;
}

bool Logger::set_sink_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (!f) return false;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink_file) std::fclose(g_sink_file);
  g_sink_file = f;
  g_sink = nullptr;
  return true;
}

void Logger::set_sink(std::function<void(const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink_file) {
    std::fclose(g_sink_file);
    g_sink_file = nullptr;
  }
  g_sink = std::move(sink);
}

void Logger::reset_sink() { set_sink(nullptr); }

void Logger::configure_from_env() {
  if (const char* level = std::getenv("APPCLASS_LOG_LEVEL"))
    set_level(parse_log_level(level, this->level()));
  if (const char* file = std::getenv("APPCLASS_LOG_FILE"))
    if (*file) set_sink_file(file);
}

void Logger::emit(LogLevel level, std::string_view event,
                  std::initializer_list<LogField> fields) {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count();

  std::string line;
  line.reserve(64 + fields.size() * 24);
  char head[48];
  std::snprintf(head, sizeof head, "%lld.%03d ",
                static_cast<long long>(ms / 1000),
                static_cast<int>(ms % 1000));
  line.append(head);
  line.append(to_string(level));
  line.push_back(' ');
  line.append(event);
  for (const LogField& f : fields) {
    line.push_back(' ');
    line.append(f.key);
    line.push_back('=');
    append_value(line, f.value);
  }

  // Mirror the record into the flight recorder (as a Chrome instant
  // event, tagged with the ambient trace context) before taking the sink
  // lock, so recorder dumps interleave log lines with spans.
  if (tracing_enabled())
    TraceRecorder::global().record_instant(
        event, current_trace_context(), {SpanAttr("log", line)});

  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink) {
    g_sink(line);
    return;
  }
  std::FILE* out = g_sink_file ? g_sink_file : stderr;
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), out);
  std::fflush(out);
}

}  // namespace appclass::obs
