#include "obs/scrape.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "obs/export.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"

namespace appclass::obs {
namespace {

/// Reads until the end of the HTTP header block (CRLFCRLF), a timeout,
/// peer close, or the size cap. Bodies are ignored — every route is GET.
std::string read_request(int fd, std::size_t max_bytes) {
  std::string request;
  char buffer[1024];
  while (request.size() < max_bytes) {
    const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n <= 0) break;
    request.append(buffer, static_cast<std::size_t>(n));
    if (request.find("\r\n\r\n") != std::string::npos) break;
  }
  return request;
}

timeval to_timeval(int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  return tv;
}

void send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

void send_response(int fd, std::string_view status,
                   std::string_view content_type, std::string_view body) {
  std::string head;
  head.reserve(160);
  head.append("HTTP/1.1 ");
  head.append(status);
  head.append("\r\nContent-Type: ");
  head.append(content_type);
  head.append("\r\nContent-Length: ");
  head.append(std::to_string(body.size()));
  head.append("\r\nConnection: close\r\n\r\n");
  send_all(fd, head);
  send_all(fd, body);
}

struct RequestLine {
  std::string method;
  std::string path;
};

RequestLine parse_request_line(std::string_view request) {
  RequestLine out;
  const std::size_t eol = request.find("\r\n");
  std::string_view line =
      eol == std::string_view::npos ? request : request.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return out;
  out.method = std::string(line.substr(0, sp1));
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  std::string_view target = sp2 == std::string_view::npos
                                ? line.substr(sp1 + 1)
                                : line.substr(sp1 + 1, sp2 - sp1 - 1);
  // Drop any query string; the routes take no parameters.
  const std::size_t q = target.find('?');
  if (q != std::string_view::npos) target = target.substr(0, q);
  out.path = std::string(target);
  return out;
}

}  // namespace

ScrapeServer::ScrapeServer(ScrapeServerOptions options)
    : options_(std::move(options)),
      // Request-counter label budget: the three built-ins plus a handful
      // of registered routes; anything beyond collapses to "other".
      path_labels_(8) {
  path_labels_.admit("/metrics");
  path_labels_.admit("/healthz");
  path_labels_.admit("/traces/recent");
}

void ScrapeServer::add_route(std::string path, std::string content_type,
                             std::function<std::string()> handler) {
  if (running()) return;
  if (path == "/metrics" || path == "/healthz" || path == "/traces/recent")
    return;
  path_labels_.admit(path);
  routes_[std::move(path)] =
      Route{std::move(content_type), std::move(handler)};
}

void ScrapeServer::set_health_check(std::function<HealthVerdict()> check) {
  if (running()) return;
  health_check_ = std::move(check);
}

Counter& ScrapeServer::route_counter(const std::string& path) {
  // admit() returns a stable reference (either the stored path or the
  // shared "other" value), so every request target maps to one of at most
  // max_values + 1 registry series.
  return MetricsRegistry::global().counter(
      "appclass_scrape_requests_total", {{"path", path_labels_.admit(path)}});
}

ScrapeServer::~ScrapeServer() { stop(); }

bool ScrapeServer::start() {
  if (running()) return true;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    APPCLASS_LOG_ERROR("scrape.socket_failed", {"errno", errno});
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    APPCLASS_LOG_ERROR("scrape.bad_address",
                       {"address", options_.bind_address});
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  // Bind with bounded retries: a restarted worker often races its dead
  // predecessor's socket lingering in TIME_WAIT / not-yet-reaped, and a
  // short backoff loop reclaims the port without operator intervention.
  int backoff_ms = options_.bind_retry_initial_ms;
  bool listening = false;
  for (int attempt = 0; attempt <= options_.bind_retries; ++attempt) {
    if (attempt > 0) {
      APPCLASS_LOG_WARN("scrape.bind_retry", {"attempt", attempt},
                        {"port", options_.port}, {"backoff_ms", backoff_ms});
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, 2000);
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
            0 &&
        ::listen(listen_fd_, 16) == 0) {
      listening = true;
      break;
    }
  }
  if (!listening) {
    APPCLASS_LOG_ERROR("scrape.bind_failed", {"errno", errno},
                       {"port", options_.port},
                       {"attempts", options_.bind_retries + 1});
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &len) == 0)
    port_ = ntohs(bound.sin_port);

  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  APPCLASS_LOG_INFO("scrape.started", {"address", options_.bind_address},
                    {"port", port_});
  return true;
}

void ScrapeServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // Unblock accept(): shutdown makes the blocked call return, close
  // releases the port.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (thread_.joinable()) thread_.join();
  APPCLASS_LOG_INFO("scrape.stopped", {"port", port_});
}

void ScrapeServer::serve_loop() {
  auto& registry = MetricsRegistry::global();

  while (running()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running()) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    const timeval rcv = to_timeval(options_.read_timeout_ms);
    const timeval snd = to_timeval(options_.write_timeout_ms);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &rcv, sizeof rcv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &snd, sizeof snd);

    const std::string raw = read_request(fd, options_.max_request_bytes);
    // The cap was hit without a complete header block: refuse rather
    // than buffer an unbounded header stream.
    if (raw.size() >= options_.max_request_bytes &&
        raw.find("\r\n\r\n") == std::string::npos) {
      send_response(fd, "431 Request Header Fields Too Large", "text/plain",
                    "request too large\n");
      ::close(fd);
      continue;
    }
    const RequestLine request = parse_request_line(raw);
    route_counter(request.path).inc();

    if (request.method != "GET") {
      send_response(fd, "405 Method Not Allowed", "text/plain",
                    "method not allowed\n");
    } else if (request.path == "/metrics") {
      send_response(fd, "200 OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    to_prometheus(registry.snapshot()));
    } else if (request.path == "/healthz") {
      if (!health_check_) {
        send_response(fd, "200 OK", "text/plain", "ok\n");
      } else {
        const HealthVerdict verdict = health_check_();
        const std::string_view body =
            !verdict.body.empty()
                ? std::string_view(verdict.body)
                : verdict.healthy
                      ? std::string_view("{\"status\":\"ok\"}")
                      : std::string_view("{\"status\":\"degraded\"}");
        send_response(fd,
                      verdict.healthy ? "200 OK" : "503 Service Unavailable",
                      "application/json", body);
      }
    } else if (request.path == "/traces/recent") {
      // Dumping serializes every thread ring; bound both the response
      // size and the dump rate so the trace route cannot be used (or
      // misused) to stall recording threads or flood the wire.
      const std::int64_t now_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count();
      const std::int64_t last =
          last_trace_dump_ms_.load(std::memory_order_relaxed);
      if (options_.trace_dump_min_interval_ms > 0 && last >= 0 &&
          now_ms - last < options_.trace_dump_min_interval_ms) {
        registry.counter("appclass_scrape_trace_throttled_total").inc();
        send_response(fd, "429 Too Many Requests", "text/plain",
                      "trace dump rate limited\n");
      } else {
        last_trace_dump_ms_.store(now_ms, std::memory_order_relaxed);
        send_response(fd, "200 OK", "application/json",
                      TraceRecorder::global().to_chrome_json(
                          options_.max_trace_response_bytes));
      }
    } else if (const auto it = routes_.find(request.path);
               it != routes_.end()) {
      send_response(fd, "200 OK", it->second.content_type,
                    it->second.handler());
    } else {
      send_response(fd, "404 Not Found", "text/plain", "not found\n");
    }
    ::close(fd);
  }
}

}  // namespace appclass::obs
