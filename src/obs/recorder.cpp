#include "obs/recorder.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>

namespace appclass::obs {
namespace {

using Clock = std::chrono::steady_clock;

/// Monotonic and wall-clock views of the same instant: the monotonic
/// half timestamps events, the wall half anchors this process's dump on
/// a fleet-wide time axis (see obs/federate.hpp).
struct EpochAnchor {
  Clock::time_point steady;
  std::int64_t wall_us;
};

const EpochAnchor& recorder_epoch() noexcept {
  static const EpochAnchor epoch = [] {
    EpochAnchor anchor;
    anchor.steady = Clock::now();
    anchor.wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count();
    return anchor;
  }();
  return epoch;
}

void json_escape_into(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out.append("\\\""); break;
      case '\\': out.append("\\\\"); break;
      case '\n': out.append("\\n"); break;
      case '\t': out.append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out.append(buffer);
        } else {
          out.push_back(c);
        }
    }
  }
}

void append_hex(std::string& out, std::uint64_t v) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%llx",
                static_cast<unsigned long long>(v));
  out.append(buffer);
}

}  // namespace

std::int64_t trace_now_us() noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now() - recorder_epoch().steady)
      .count();
}

std::int64_t recorder_epoch_wall_us() noexcept {
  return recorder_epoch().wall_us;
}

/// One thread's ring. `mutex` is uncontended on the record path (only the
/// owner records; dumpers lock briefly and rarely), so recording stays a
/// constant-time local operation.
struct TraceRecorder::ThreadRing {
  std::mutex mutex;
  std::uint32_t tid = 0;
  std::size_t capacity = kDefaultThreadCapacity;
  std::vector<TraceEvent> ring;  // size() <= capacity
  std::uint64_t total = 0;       // events ever recorded; slot = total % cap

  void push(TraceEvent event) {
    const std::lock_guard lock(mutex);
    if (ring.size() < capacity) {
      ring.push_back(std::move(event));
    } else {
      ring[static_cast<std::size_t>(total % capacity)] = std::move(event);
    }
    ++total;
  }

  /// Events oldest-first (unwrapping the ring).
  void copy_into(std::vector<TraceEvent>& out) {
    const std::lock_guard lock(mutex);
    if (ring.size() < capacity || total <= capacity) {
      out.insert(out.end(), ring.begin(), ring.end());
      return;
    }
    const std::size_t head = static_cast<std::size_t>(total % capacity);
    out.insert(out.end(),
               ring.begin() + static_cast<std::ptrdiff_t>(head), ring.end());
    out.insert(out.end(), ring.begin(),
               ring.begin() + static_cast<std::ptrdiff_t>(head));
  }
};

TraceRecorder::TraceRecorder() : instance_id_([] {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}()) {}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  // Anchor the epoch no later than the first recorder touch.
  (void)recorder_epoch();
  return recorder;
}

TraceRecorder::ThreadRing& TraceRecorder::ring_for_this_thread() {
  // One cached ring per (thread, recorder). Tests construct their own
  // recorders, so the cache must not leak rings across instances — keyed
  // by instance id, not address, to survive allocator address reuse.
  thread_local std::uint64_t cached_owner = 0;
  thread_local std::shared_ptr<ThreadRing> cached;
  if (cached_owner != instance_id_) {
    auto ring = std::make_shared<ThreadRing>();
    {
      const std::lock_guard lock(mutex_);
      ring->tid = next_tid_++;
      ring->capacity = std::max<std::size_t>(1, capacity_);
      rings_.push_back(ring);
    }
    cached = std::move(ring);
    cached_owner = instance_id_;
  }
  return *cached;
}

void TraceRecorder::record_span(std::string_view name,
                                const TraceContext& context,
                                std::int64_t ts_us, std::int64_t dur_us,
                                std::vector<SpanAttr> attrs) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kSpan;
  event.name = name;
  event.context = context;
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.attrs = std::move(attrs);
  ThreadRing& ring = ring_for_this_thread();
  event.tid = ring.tid;
  ring.push(std::move(event));
}

void TraceRecorder::record_instant(std::string_view name,
                                   const TraceContext& context,
                                   std::vector<SpanAttr> attrs) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kInstant;
  event.name = name;
  event.context = context;
  event.ts_us = trace_now_us();
  event.attrs = std::move(attrs);
  ThreadRing& ring = ring_for_this_thread();
  event.tid = ring.tid;
  ring.push(std::move(event));
}

void TraceRecorder::set_thread_capacity(std::size_t capacity) {
  const std::lock_guard lock(mutex_);
  capacity_ = std::max<std::size_t>(1, capacity);
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    const std::lock_guard lock(mutex_);
    rings = rings_;
  }
  std::vector<TraceEvent> out;
  for (const auto& ring : rings) ring->copy_into(out);
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return out;
}

std::size_t TraceRecorder::size() const {
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    const std::lock_guard lock(mutex_);
    rings = rings_;
  }
  std::size_t total = 0;
  for (const auto& ring : rings) {
    const std::lock_guard lock(ring->mutex);
    total += ring->ring.size();
  }
  return total;
}

void TraceRecorder::clear() {
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    const std::lock_guard lock(mutex_);
    rings = rings_;
  }
  for (const auto& ring : rings) {
    const std::lock_guard lock(ring->mutex);
    ring->ring.clear();
    ring->total = 0;
  }
}

namespace {

/// One event as a standalone JSON chunk (leading newline, no separator
/// comma) so the capped dump can budget per event.
std::string event_chunk(const TraceEvent& e) {
  std::string out;
  out.reserve(160);
  out.append("\n{\"name\":\"");
  json_escape_into(out, e.name);
  out.append("\",\"cat\":\"appclass\",\"ph\":\"");
  out.append(e.phase == TraceEvent::Phase::kSpan ? "X" : "i");
  out.push_back('"');
  if (e.phase == TraceEvent::Phase::kInstant) out.append(",\"s\":\"t\"");
  out.append(",\"pid\":1,\"tid\":");
  out.append(std::to_string(e.tid));
  out.append(",\"ts\":");
  out.append(std::to_string(e.ts_us));
  if (e.phase == TraceEvent::Phase::kSpan) {
    out.append(",\"dur\":");
    out.append(std::to_string(e.dur_us));
  }
  out.append(",\"args\":{");
  bool first_arg = true;
  if (e.context.active()) {
    out.append("\"trace_id\":\"");
    append_hex(out, e.context.trace_id);
    out.append("\",\"span_id\":\"");
    append_hex(out, e.context.span_id);
    out.append("\",\"parent_span_id\":\"");
    append_hex(out, e.context.parent_span_id);
    out.push_back('"');
    first_arg = false;
  }
  for (const SpanAttr& attr : e.attrs) {
    if (!first_arg) out.push_back(',');
    first_arg = false;
    out.push_back('"');
    json_escape_into(out, attr.key);
    out.append("\":\"");
    json_escape_into(out, attr.value);
    out.push_back('"');
  }
  out.append("}}");
  return out;
}

}  // namespace

std::string TraceRecorder::to_chrome_json(std::size_t max_bytes) const {
  const std::vector<TraceEvent> all = events();
  std::vector<std::string> chunks;
  chunks.reserve(all.size());
  for (const TraceEvent& e : all) chunks.push_back(event_chunk(e));

  std::string header = "{\"displayTimeUnit\":\"ms\",\"epochWallUs\":";
  header.append(std::to_string(recorder_epoch_wall_us()));
  header.append(",\"traceEvents\":[");

  // Keep the newest events that fit the byte budget (the tail of the
  // sorted-ascending list); the drop count makes truncation visible.
  std::size_t begin = 0;
  if (max_bytes > 0) {
    // "\n],\"droppedEvents\":<u64>}\n" upper bound.
    const std::size_t footer_reserve = 24 + 20;
    std::size_t budget = max_bytes > header.size() + footer_reserve
                             ? max_bytes - header.size() - footer_reserve
                             : 0;
    begin = chunks.size();
    while (begin > 0 && chunks[begin - 1].size() + 1 <= budget) {
      budget -= chunks[begin - 1].size() + 1;
      --begin;
    }
  }
  const std::size_t dropped = begin;

  std::string out;
  out.reserve(header.size() + 64 + (chunks.size() - begin) * 160);
  out.append(header);
  for (std::size_t i = begin; i < chunks.size(); ++i) {
    if (i > begin) out.push_back(',');
    out.append(chunks[i]);
  }
  if (dropped > 0) {
    out.append("\n],\"droppedEvents\":");
    out.append(std::to_string(dropped));
    out.append("}\n");
  } else {
    out.append("\n]}\n");
  }
  return out;
}

bool TraceRecorder::dump_to_file(const std::string& path) const {
  const std::string json = to_chrome_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && written == json.size();
  return ok;
}

namespace {

/// Crash-dump destination; plain chars so the handler reads it without
/// taking locks. Written once before the handlers are armed.
char g_crash_path[512] = {0};

extern "C" void appclass_crash_handler(int signum) {
  // Post-mortem best effort: fopen/fprintf are not async-signal-safe,
  // but the process is dying anyway and a partially written dump beats
  // no dump. Restore the default disposition first so a second fault
  // inside the dumper terminates instead of recursing.
  std::signal(signum, SIG_DFL);
  if (g_crash_path[0] != 0)
    (void)TraceRecorder::global().dump_to_file(g_crash_path);
  std::raise(signum);
}

}  // namespace

void install_crash_dump(const std::string& path) {
  std::snprintf(g_crash_path, sizeof g_crash_path, "%s", path.c_str());
  std::signal(SIGSEGV, appclass_crash_handler);
  std::signal(SIGBUS, appclass_crash_handler);
  std::signal(SIGABRT, appclass_crash_handler);
}

}  // namespace appclass::obs
