// Leveled structured logging for the appclass stack.
//
// Design goals, in order:
//   1. Zero cost when disabled: the APPCLASS_LOG_* macros guard on one
//      relaxed atomic load before any field is even constructed, and the
//      default level is kOff so libraries, tests, and benchmarks stay
//      silent unless a binary (or APPCLASS_LOG_LEVEL) opts in.
//   2. Structured: every record is `<ts> <LEVEL> <event> key=value ...`,
//      machine-greppable, no printf format strings at call sites.
//   3. Swappable sink: stderr by default, a file via set_sink_file()/
//      APPCLASS_LOG_FILE, or an in-memory callback for tests.
//
// Usage:
//   APPCLASS_LOG_INFO("sched.dispatch", {"vm", vm_index}, {"job", name});
//   APPCLASS_LOG_DEBUG("fault.blackout", {"node", ip}, {"until", t});
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <string_view>

namespace appclass::obs {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

std::string_view to_string(LogLevel level) noexcept;

/// Parses "trace"/"debug"/"info"/"warn"/"error"/"off" (case-insensitive);
/// returns `fallback` on anything else.
LogLevel parse_log_level(std::string_view text,
                         LogLevel fallback = LogLevel::kOff) noexcept;

/// One key=value pair in a log record. The value is formatted eagerly, but
/// only after the level guard has passed (see the macros below).
struct LogField {
  std::string key;
  std::string value;

  LogField(std::string_view k, std::string_view v) : key(k), value(v) {}
  LogField(std::string_view k, const char* v) : key(k), value(v) {}
  LogField(std::string_view k, const std::string& v) : key(k), value(v) {}
  LogField(std::string_view k, bool v)
      : key(k), value(v ? "true" : "false") {}
  LogField(std::string_view k, double v);
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  LogField(std::string_view k, T v) : key(k), value(std::to_string(v)) {}
};

/// Process-wide logger configuration. All members are safe to call from
/// multiple threads.
class Logger {
 public:
  static Logger& global();

  void set_level(LogLevel level) noexcept {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel level() const noexcept {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  bool enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >=
           level_.load(std::memory_order_relaxed);
  }

  /// Redirects records to `path` (append). Returns false (and keeps the
  /// current sink) if the file cannot be opened.
  bool set_sink_file(const std::string& path);
  /// Sends records to a callback (tests). Passing nullptr restores stderr.
  void set_sink(std::function<void(const std::string& line)> sink);
  /// Restores the default stderr sink.
  void reset_sink();

  /// Reads APPCLASS_LOG_LEVEL and APPCLASS_LOG_FILE. Unset variables
  /// leave the current configuration untouched.
  void configure_from_env();

  /// Formats and emits one record. Call through the macros so disabled
  /// levels cost a single atomic load.
  void emit(LogLevel level, std::string_view event,
            std::initializer_list<LogField> fields);

 private:
  Logger() = default;
  std::atomic<int> level_{static_cast<int>(LogLevel::kOff)};
};

inline bool log_enabled(LogLevel level) noexcept {
  return Logger::global().enabled(level);
}

}  // namespace appclass::obs

// The guard runs before the field initializer list is evaluated, so
// call-site argument formatting is skipped entirely when disabled.
#define APPCLASS_LOG_AT(lvl, event, ...)                                  \
  do {                                                                    \
    if (::appclass::obs::log_enabled(lvl))                                \
      ::appclass::obs::Logger::global().emit((lvl), (event),              \
                                             {__VA_ARGS__});              \
  } while (0)

#define APPCLASS_LOG_TRACE(event, ...) \
  APPCLASS_LOG_AT(::appclass::obs::LogLevel::kTrace, event, ##__VA_ARGS__)
#define APPCLASS_LOG_DEBUG(event, ...) \
  APPCLASS_LOG_AT(::appclass::obs::LogLevel::kDebug, event, ##__VA_ARGS__)
#define APPCLASS_LOG_INFO(event, ...) \
  APPCLASS_LOG_AT(::appclass::obs::LogLevel::kInfo, event, ##__VA_ARGS__)
#define APPCLASS_LOG_WARN(event, ...) \
  APPCLASS_LOG_AT(::appclass::obs::LogLevel::kWarn, event, ##__VA_ARGS__)
#define APPCLASS_LOG_ERROR(event, ...) \
  APPCLASS_LOG_AT(::appclass::obs::LogLevel::kError, event, ##__VA_ARGS__)
