#include "obs/drift.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace appclass::obs {
namespace {

/// Proportion floor: keeps ln(p_cur / p_ref) finite when a bucket is
/// empty on one side. 1e-4 is the conventional PSI smoothing value.
constexpr double kEpsilon = 1e-4;

Counter& events_counter() {
  return MetricsRegistry::global().counter("appclass_drift_events_total");
}

}  // namespace

DriftDetector::DriftDetector(DriftOptions options) : options_(options) {
  if (options_.bins < 2) options_.bins = 2;
  if (options_.window < options_.bins) options_.window = options_.bins;
  if (options_.reference_window < options_.bins)
    options_.reference_window = options_.bins;
  if (options_.stride == 0) options_.stride = 1;
  if (options_.clear_threshold > options_.fire_threshold)
    options_.clear_threshold = options_.fire_threshold;

  count_prop_.resize(options_.window + 1);
  count_log_prop_.resize(options_.window + 1);
  const double total = static_cast<double>(options_.window);
  for (std::size_t k = 0; k <= options_.window; ++k) {
    count_prop_[k] = std::max(static_cast<double>(k) / total, kEpsilon);
    count_log_prop_[k] = std::log(count_prop_[k]);
  }
}

void DriftDetector::ensure_components(std::size_t n) {
  if (!components_.empty()) return;
  components_.resize(n);
  edges_.assign(n * (options_.bins - 1), 0.0);
  ring_.assign(options_.window * n, 0);
  counts_.assign(n * options_.bins, 0);
  for (std::size_t j = 0; j < n; ++j) {
    Component& c = components_[j];
    const Labels labels{{"component", std::to_string(j)}};
    c.score_gauge =
        &MetricsRegistry::global().gauge("appclass_drift_score", labels);
    c.active_gauge =
        &MetricsRegistry::global().gauge("appclass_drift_active", labels);
  }
}

void DriftDetector::set_reference(std::span<const double> row_major,
                                  std::size_t components) {
  if (components == 0 || row_major.size() < components * options_.bins)
    return;
  ensure_components(components);
  const std::size_t samples = row_major.size() / components;
  for (std::size_t j = 0; j < components; ++j) {
    std::vector<double> values(samples);
    for (std::size_t i = 0; i < samples; ++i)
      values[i] = row_major[i * components + j];
    freeze_component(j, std::move(values));
  }
  reference_ready_ = true;
}

void DriftDetector::freeze_component(std::size_t component,
                                     std::vector<double> values) {
  Component& c = components_[component];
  std::sort(values.begin(), values.end());
  // Interior edges at the i/bins quantiles of the reference sample; equal
  // edges (heavily tied data) simply leave some buckets empty, which the
  // epsilon floor absorbs.
  double* edges = &edges_[component * (options_.bins - 1)];
  const std::size_t n = values.size();
  for (std::size_t b = 1; b < options_.bins; ++b) {
    const std::size_t at =
        std::min(n - 1, b * n / options_.bins);
    edges[b - 1] = values[at];
  }
  // Reference proportions of the same sample through the frozen edges.
  std::vector<std::uint32_t> counts(options_.bins, 0);
  for (const double v : values) ++counts[bucket_of(component, v)];
  c.reference.resize(options_.bins);
  c.log_reference.resize(options_.bins);
  for (std::size_t b = 0; b < options_.bins; ++b) {
    c.reference[b] = std::max(
        static_cast<double>(counts[b]) / static_cast<double>(n), kEpsilon);
    c.log_reference[b] = std::log(c.reference[b]);
  }
  c.warmup.clear();
  c.warmup.shrink_to_fit();
}

std::size_t DriftDetector::bucket_of(std::size_t component,
                                     double value) const {
  if (std::isnan(value)) return options_.bins - 1;
  // Branchless count of edges <= value. The edge array is tiny (bins - 1
  // doubles, always cache-hot), so a predictable linear pass beats binary
  // search's mispredicted branches on the per-sample path.
  const double* edges = &edges_[component * (options_.bins - 1)];
  std::size_t b = 0;
  for (std::size_t e = 0; e + 1 < options_.bins; ++e)
    b += static_cast<std::size_t>(value >= edges[e]);
  return b;
}

void DriftDetector::freeze_reference() {
  for (std::size_t j = 0; j < components_.size(); ++j)
    freeze_component(j, std::move(components_[j].warmup));
  reference_ready_ = true;
  APPCLASS_LOG_INFO("drift.reference_frozen",
                    {"samples", options_.reference_window},
                    {"components", components_.size()});
}

void DriftDetector::observe(std::span<const double> projected) {
  if (projected.empty()) return;
  ensure_components(projected.size());
  if (projected.size() != components_.size()) return;
  ++samples_seen_;

  if (!reference_ready_) {
    for (std::size_t j = 0; j < components_.size(); ++j)
      components_[j].warmup.push_back(projected[j]);
    if (components_[0].warmup.size() >= options_.reference_window)
      freeze_reference();
    return;
  }

  // The window slides in lockstep across components: one shared ring
  // slot holds every component's bucket for this sample.
  const std::size_t n = components_.size();
  std::uint8_t* slot = &ring_[ring_head_ * n];
  const bool evicting = ring_size_ == options_.window;
  if (!evicting) ++ring_size_;
  for (std::size_t j = 0; j < n; ++j) {
    const auto bucket =
        static_cast<std::uint8_t>(bucket_of(j, projected[j]));
    std::uint32_t* counts = &counts_[j * options_.bins];
    if (evicting) --counts[slot[j]];
    slot[j] = bucket;
    ++counts[bucket];
  }
  // Compare-and-reset, not modulo: integer divisions are the single
  // largest cost on this per-sample path.
  if (++ring_head_ == options_.window) ring_head_ = 0;

  if (++since_rescore_ >= options_.stride) {
    since_rescore_ = 0;
    rescore();
  }
}

void DriftDetector::rescore() {
  if (ring_size_ < options_.window) return;  // window still filling
  for (std::size_t j = 0; j < components_.size(); ++j) {
    Component& c = components_[j];
    const std::uint32_t* counts = &counts_[j * options_.bins];
    double psi = 0.0;
    for (std::size_t b = 0; b < options_.bins; ++b) {
      // counts[b] <= window, so both factors come from the tables: no
      // divisions or logs on the streaming path.
      psi += (count_prop_[counts[b]] - c.reference[b]) *
             (count_log_prop_[counts[b]] - c.log_reference[b]);
    }
    c.score = psi;
    c.score_gauge->set(psi);
    if (!c.drifting && psi >= options_.fire_threshold) {
      c.drifting = true;
      ++events_;
      events_counter().inc();
      c.active_gauge->set(1.0);
      APPCLASS_LOG_WARN("drift.fired", {"component", j}, {"score", psi},
                        {"sample", samples_seen_});
      if (callback_) callback_(j, psi);
    } else if (c.drifting && psi <= options_.clear_threshold) {
      c.drifting = false;
      c.active_gauge->set(0.0);
      APPCLASS_LOG_INFO("drift.cleared", {"component", j}, {"score", psi},
                        {"sample", samples_seen_});
    }
  }
}

double DriftDetector::score(std::size_t component) const {
  return component < components_.size() ? components_[component].score : 0.0;
}

double DriftDetector::max_score() const {
  double best = 0.0;
  for (const auto& c : components_) best = std::max(best, c.score);
  return best;
}

bool DriftDetector::drifting(std::size_t component) const {
  return component < components_.size() && components_[component].drifting;
}

bool DriftDetector::any_drifting() const {
  for (const auto& c : components_)
    if (c.drifting) return true;
  return false;
}

std::string DriftDetector::to_json() const {
  std::ostringstream out;
  out << "{\"reference_ready\":" << (reference_ready_ ? "true" : "false")
      << ",\"samples\":" << samples_seen_ << ",\"events\":" << events_
      << ",\"window\":" << options_.window
      << ",\"reference_window\":" << options_.reference_window
      << ",\"fire_threshold\":" << options_.fire_threshold
      << ",\"clear_threshold\":" << options_.clear_threshold
      << ",\"components\":[";
  for (std::size_t j = 0; j < components_.size(); ++j) {
    const Component& c = components_[j];
    if (j) out << ',';
    out << "{\"component\":" << j << ",\"score\":" << c.score
        << ",\"drifting\":" << (c.drifting ? "true" : "false") << '}';
  }
  out << "]}";
  return out.str();
}

}  // namespace appclass::obs
