// Dapper-style trace-context propagation for the classification stack.
//
// A *trace* is one causally-linked tree of spans — e.g. one classified
// snapshot pool: a `classify` root with preprocess/pca_project/knn_query/
// vote children, whose `engine_shard` grandchildren may have run on
// stolen shards on other thread-pool workers. Context lives in a
// thread-local (`current_trace_context`); cross-thread edges are made by
// capturing the context at job submission and adopting it on the worker
// (`ScopedTraceContext`), which the engine ThreadPool does for every
// parallel_for task.
//
// Cost contract: tracing is off by default and every TraceSpan
// constructor guards on one relaxed atomic load — the k-NN hot path pays
// a predictable branch and nothing else. When tracing is on, finished
// spans are recorded into the per-thread flight-recorder ring
// (obs/recorder.hpp) and the bound histogram (if any) gains an exemplar
// referencing the trace id.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace appclass::obs {

/// W3C-trace-context-shaped identity of one span. Ids are process-unique
/// non-zero integers; trace_id == 0 means "no active trace".
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;

  bool active() const noexcept { return trace_id != 0; }
};

/// Process-wide tracing switch (relaxed atomic; default off).
bool tracing_enabled() noexcept;
void set_tracing_enabled(bool on) noexcept;

/// Reads APPCLASS_TRACE (1/true/on enables tracing).
void configure_tracing_from_env();

/// The calling thread's ambient context (inactive when no span is open
/// and nothing was adopted).
TraceContext current_trace_context() noexcept;

/// RAII adoption of a context captured on another thread: installs
/// `adopted` as this thread's ambient context so spans opened underneath
/// parent to the submitting span, and restores the previous ambient
/// context on destruction. The engine ThreadPool wraps every task in one.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& adopted) noexcept;
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

/// One structured span attribute; the value is formatted eagerly, but
/// call sites only construct attrs after checking TraceSpan::recording()
/// (or via add_attr, which drops them when not recording).
struct SpanAttr {
  std::string key;
  std::string value;

  SpanAttr(std::string_view k, std::string_view v) : key(k), value(v) {}
  SpanAttr(std::string_view k, const char* v) : key(k), value(v) {}
  SpanAttr(std::string_view k, const std::string& v) : key(k), value(v) {}
  SpanAttr(std::string_view k, double v);
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  SpanAttr(std::string_view k, T v) : key(k), value(std::to_string(v)) {}
};

/// RAII span: opens as a child of the thread's ambient context (or as a
/// new trace root when none is active), becomes the ambient context for
/// its scope, and on destruction records itself into the flight recorder.
/// A no-op (one relaxed load) when tracing is disabled.
class TraceSpan {
 public:
  /// `exemplar_histogram`, when given, receives (elapsed seconds,
  /// trace_id) as its exemplar on span end — tying the stage histogram
  /// back to a concrete trace.
  explicit TraceSpan(std::string_view name,
                     Histogram* exemplar_histogram = nullptr);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// True when this span will be recorded (tracing was enabled at
  /// construction). Guard expensive attribute computation on it.
  bool recording() const noexcept { return recording_; }

  /// Attaches a structured attribute; dropped when not recording.
  void add_attr(SpanAttr attr);

  const TraceContext& context() const noexcept { return context_; }

 private:
  bool recording_ = false;
  TraceContext context_;
  TraceContext saved_;
  std::string name_;
  Histogram* exemplar_histogram_ = nullptr;
  std::int64_t start_us_ = 0;
  std::vector<SpanAttr> attrs_;
};

}  // namespace appclass::obs
