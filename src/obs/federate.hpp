// Fleet metrics federation and cross-process trace assembly.
//
// A sharded fleet leaves every worker's registry and flight recorder an
// island: each worker exports Prometheus 0.0.4 text at /metrics and a
// Chrome trace at /traces/recent, but nothing aggregates them. This
// module is the coordinator-side half of the observability plane:
//
//   * parse_prometheus() re-ingests the exact dialect obs/export.cpp
//     emits (# TYPE lines; counters as integers; gauges as %.9g;
//     histograms as cumulative `_bucket{le=...}` series ending in +Inf,
//     plus `_sum`/`_count`) back into a RegistrySnapshot. The round trip
//     export -> parse -> export is a fixed point, which is what makes
//     federation composable: a Prometheus server scraping the
//     coordinator's /fleet/metrics sees a conformant single registry.
//
//   * federate_snapshots() merges per-worker snapshots: counters sum,
//     histograms with identical bounds merge bucket-wise (+Inf bucket
//     included), and gauges — which are not summable — gain a
//     `worker=<id>` label, guarded by a BoundedLabelSet so a churning
//     fleet cannot explode series cardinality.
//
//   * parse_chrome_trace() / stitch_chrome_traces() reassemble the
//     per-process flight-recorder dumps into one Chrome trace: each
//     process gets its own pid lane (with a process_name metadata
//     record), and timestamps are aligned across processes via the
//     `epochWallUs` anchor the recorder stamps into its dump. Sender-side
//     `dist_announce` spans and worker-side `dist_ingest` spans share a
//     trace id through the wire header, so the stitched view shows one
//     announce crossing process boundaries — the Dapper assembly step.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/cardinality.hpp"
#include "obs/metrics.hpp"

namespace appclass::obs {

/// Parses Prometheus 0.0.4 text exposition (the dialect to_prometheus()
/// writes) into a snapshot sorted by the registry's (name, labels)
/// contract. Returns nullopt on any malformed line: unknown family,
/// bad label syntax, non-numeric value, non-cumulative or +Inf-less
/// histogram buckets. `# HELP` and other comments are ignored;
/// `# TYPE summary`/`untyped` families are rejected (unrepresentable).
std::optional<RegistrySnapshot> parse_prometheus(std::string_view text);

/// One worker's contribution to a federated view.
struct FederationPart {
  /// Label value for this worker's gauges ("0", "1", ...). Empty = leave
  /// gauges unlabeled, which makes single-part federation the identity.
  std::string worker;
  RegistrySnapshot snapshot;
};

struct FederationResult {
  RegistrySnapshot merged;
  /// Histogram series whose bucket bounds disagreed across parts and
  /// were dropped from the merge (schema drift between worker builds).
  std::size_t dropped_series = 0;
};

/// Merges per-worker snapshots into one fleet snapshot: counters sum by
/// (name, labels); histograms with identical bounds sum bucket-wise and
/// keep the slowest exemplar; gauges gain a `worker` label (admitted
/// through `worker_labels` when provided, so fleet churn collapses into
/// the overflow bucket instead of minting unbounded series). Colliding
/// gauge series (e.g. two overflow workers) keep the last value.
FederationResult federate_snapshots(const std::vector<FederationPart>& parts,
                                    BoundedLabelSet* worker_labels = nullptr);

/// One event from a Chrome trace_event dump. `args` values keep their
/// raw JSON text so numbers and strings survive re-serialization.
struct ChromeTraceEvent {
  std::string name;
  std::string cat;
  std::string ph;       ///< "X" span, "i" instant, "M" metadata, ...
  std::string scope;    ///< instant scope ("t"), empty otherwise
  std::int64_t pid = 0;
  std::int64_t tid = 0;
  std::int64_t ts = 0;  ///< microseconds
  std::int64_t dur = 0;
  bool has_dur = false;
  std::vector<std::pair<std::string, std::string>> args;  ///< key, raw JSON
};

struct ChromeTrace {
  std::vector<ChromeTraceEvent> events;
  /// Wall-clock microseconds of the emitting process's recorder epoch
  /// (`epochWallUs` in the dump); 0 when the dump predates the anchor.
  std::int64_t epoch_wall_us = 0;
  std::uint64_t dropped_events = 0;  ///< truncated by the dump's byte cap
};

/// Parses a Chrome trace_event JSON document ({"traceEvents":[...]}).
/// Tolerates unknown keys at every level; nullopt on syntax errors.
std::optional<ChromeTrace> parse_chrome_trace(std::string_view json);

/// One process's flight-recorder dump, as fetched from /traces/recent.
struct TraceFleetPart {
  std::string process;  ///< pid-lane display name ("coordinator", ...)
  std::string json;
};

struct StitchResult {
  std::string json;                ///< merged Chrome trace document
  std::size_t parts_stitched = 0;  ///< parts that parsed and were merged
  std::size_t parts_failed = 0;    ///< parts dropped as unparseable
  std::size_t events = 0;          ///< events in the stitched trace
};

/// Stitches per-process dumps into one Chrome trace: part i's events move
/// to pid i+1 (a process_name metadata record labels the lane), and each
/// part's timestamps shift by its wall-clock epoch so spans from
/// different processes line up on one axis. Unparseable parts are
/// skipped and counted, never fatal — a half-stitched fleet trace beats
/// none during an incident.
StitchResult stitch_chrome_traces(const std::vector<TraceFleetPart>& parts);

}  // namespace appclass::obs
