#include "obs/slo.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/assert.hpp"

namespace appclass::obs {

SloTracker::SloTracker(SloOptions options)
    : options_(options),
      freshness_(static_cast<std::size_t>(
          std::max(options.long_window_s, 1))),
      availability_(static_cast<std::size_t>(
          std::max(options.long_window_s, 1))) {
  APPCLASS_EXPECTS(options_.freshness_objective > 0.0 &&
                   options_.freshness_objective < 1.0);
  APPCLASS_EXPECTS(options_.availability_objective > 0.0 &&
                   options_.availability_objective < 1.0);
  APPCLASS_EXPECTS(options_.short_window_s > 0 &&
                   options_.short_window_s <= options_.long_window_s);
}

void SloTracker::Sli::advance(std::int64_t now_s) {
  if (head_s < 0) {
    head_s = now_s;
    return;
  }
  if (now_s <= head_s) return;  // clock went backwards: clamp to head
  const std::int64_t gap = now_s - head_s;
  if (gap >= static_cast<std::int64_t>(buckets.size())) {
    std::fill(buckets.begin(), buckets.end(), std::pair<std::uint32_t,
                                                        std::uint32_t>{0, 0});
  } else {
    for (std::int64_t s = head_s + 1; s <= now_s; ++s)
      buckets[static_cast<std::size_t>(s) % buckets.size()] = {0, 0};
  }
  head_s = now_s;
}

void SloTracker::Sli::record(bool good, std::int64_t now_s) {
  advance(now_s);
  auto& bucket = buckets[static_cast<std::size_t>(head_s) % buckets.size()];
  if (good) {
    ++bucket.first;
  } else {
    ++bucket.second;
  }
}

SloTracker::WindowReport SloTracker::Sli::window(int window_s,
                                                 std::int64_t now_s,
                                                 double objective) const {
  WindowReport out;
  out.window_s = window_s;
  if (head_s < 0) return out;
  // Sum the seconds (now - window, now] that have been written since the
  // last wrap; seconds ahead of head_s hold stale lap data only if the
  // ring were read unadvanced, so the caller advances first.
  for (std::int64_t s = std::max<std::int64_t>(now_s - window_s + 1, 0);
       s <= std::min(now_s, head_s); ++s) {
    const auto& bucket = buckets[static_cast<std::size_t>(s) % buckets.size()];
    out.good += bucket.first;
    out.bad += bucket.second;
  }
  const std::uint64_t total = out.good + out.bad;
  if (total > 0)
    out.error_rate = static_cast<double>(out.bad) /
                     static_cast<double>(total);
  out.burn_rate = out.error_rate / (1.0 - objective);
  return out;
}

void SloTracker::record_freshness(double latency_s, std::int64_t now_s) {
  const std::lock_guard lock(mutex_);
  freshness_.record(latency_s <= options_.freshness_threshold_s, now_s);
}

void SloTracker::record_availability(bool ok, std::int64_t now_s) {
  const std::lock_guard lock(mutex_);
  availability_.record(ok, now_s);
}

SloTracker::Report SloTracker::report(std::int64_t now_s) const {
  const std::lock_guard lock(mutex_);
  Report out;
  const auto fill = [&](Sli& sli, double objective, SliReport& r) {
    sli.advance(now_s);
    r.objective = objective;
    r.short_window = sli.window(options_.short_window_s, now_s, objective);
    r.long_window = sli.window(options_.long_window_s, now_s, objective);
    r.burning = r.short_window.burn_rate > options_.alert_burn_rate &&
                r.long_window.burn_rate > options_.alert_burn_rate;
  };
  // advance() mutates the rings, so shed const inside the lock.
  auto* self = const_cast<SloTracker*>(this);
  fill(self->freshness_, options_.freshness_objective, out.freshness);
  fill(self->availability_, options_.availability_objective,
       out.availability);
  out.healthy = !out.freshness.burning && !out.availability.burning;
  return out;
}

bool SloTracker::healthy(std::int64_t now_s) const {
  return report(now_s).healthy;
}

namespace {

void window_json_into(std::string& out, const char* key,
                      const SloTracker::WindowReport& w) {
  char buffer[160];
  std::snprintf(buffer, sizeof buffer,
                "\"%s\":{\"window_s\":%d,\"good\":%llu,\"bad\":%llu,"
                "\"error_rate\":%.6g,\"burn_rate\":%.6g}",
                key, w.window_s, static_cast<unsigned long long>(w.good),
                static_cast<unsigned long long>(w.bad), w.error_rate,
                w.burn_rate);
  out.append(buffer);
}

void sli_json_into(std::string& out, const char* key,
                   const SloTracker::SliReport& sli) {
  char buffer[96];
  std::snprintf(buffer, sizeof buffer,
                "\"%s\":{\"objective\":%.6g,\"burning\":%s,", key,
                sli.objective, sli.burning ? "true" : "false");
  out.append(buffer);
  window_json_into(out, "short", sli.short_window);
  out.push_back(',');
  window_json_into(out, "long", sli.long_window);
  out.push_back('}');
}

}  // namespace

std::string SloTracker::to_json(std::int64_t now_s) const {
  const Report r = report(now_s);
  std::string out = "{\"healthy\":";
  out.append(r.healthy ? "true" : "false");
  char buffer[96];
  std::snprintf(buffer, sizeof buffer,
                ",\"now_s\":%lld,\"freshness_threshold_s\":%.6g,",
                static_cast<long long>(now_s),
                options_.freshness_threshold_s);
  out.append(buffer);
  sli_json_into(out, "freshness", r.freshness);
  out.push_back(',');
  sli_json_into(out, "availability", r.availability);
  out.append("}\n");
  return out;
}

std::int64_t SloTracker::now_s() noexcept {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace appclass::obs
