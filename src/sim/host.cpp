#include "sim/host.hpp"

namespace appclass::sim {

HostSpec make_host_a_spec() {
  HostSpec s;
  s.name = "hostA";
  s.cores = 2;
  s.cpu_speed = 1.0;
  s.cpu_mhz = 1800.0;
  s.ram_mb = 1024.0;
  return s;
}

HostSpec make_host_b_spec() {
  HostSpec s;
  s.name = "hostB";
  s.cores = 2;
  s.cpu_speed = 2.4 / 1.8;
  s.cpu_mhz = 2400.0;
  s.ram_mb = 4096.0;
  // The 4 GB host caches most of its VMs' virtual-disk files, so the
  // effective disk bandwidth seen by guests is far higher than host A's.
  s.disk_blocks_per_s = 24000.0;
  return s;
}

}  // namespace appclass::sim
