// Max-min fair allocation ("water-filling").
//
// Each contended resource is shared max-min fairly in absolute terms, the
// way a Linux CPU scheduler or a fair network queue does: demands below
// the fair share are served in full, and the remaining capacity is split
// evenly among the heavier demanders (the resource's "water level"). An
// instance's demand vector is coupled — it then consumes f_i * demand_i,
// where f_i is set by its most-constraining resource.
//
// This models both effects the paper's scheduling experiments exploit: a
// PostMark run gated by disk also issues proportionally fewer CPU
// instructions (releasing CPU to co-located jobs), while a lightweight CPU
// consumer sharing a vCPU with a spinning SPECseis96 still gets its small
// CPU slice served in full.
#pragma once

#include <span>
#include <vector>

#include "sim/resources.hpp"

namespace appclass::sim {

/// Computes max-min fair uniform scale factors.
///
/// `capacities[r]` is the capacity of resource r (may be kUncapped);
/// `demands[i]` is instance i's full-speed demand vector. Returns f with
/// f.size() == demands.size(), each in [0, 1]. Instances with an empty
/// demand get f = 1. Runs in O(R * N log N) per tick.
std::vector<double> waterfill(std::span<const double> capacities,
                              std::span<const Demand> demands);

/// Returns the per-resource load sum_i f_i * demand_i(r) for a given
/// allocation — used by tests to verify feasibility and work conservation.
std::vector<double> resource_loads(std::size_t resource_count,
                                   std::span<const Demand> demands,
                                   std::span<const double> scales);

}  // namespace appclass::sim
