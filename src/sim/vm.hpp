// Virtual machine model: memory management (paging + page cache), per-tick
// resource accounting, and production of the 33-metric snapshots a Ganglia
// gmond inside the VM would report.
//
// The VM is where the paper's two environment-sensitivity effects live:
//   * paging — when the resident working sets of the hosted applications
//     exceed VM RAM, swap traffic appears (swap_in/out + extra disk blocks)
//     and progress suffers a latency penalty (SPECseis96 B, Pagebench);
//   * page cache — file re-reads are absorbed in proportion to the cache
//     size left over after resident memory, so shrinking VM RAM turns a
//     CPU-bound run into an I/O-visible one (the 200 MB vs 1 MB buffer
//     cache the paper observed for SPECseis96 A vs B).
#pragma once

#include <string>

#include "linalg/random.hpp"
#include "metrics/snapshot.hpp"
#include "sim/resources.hpp"
#include "sim/workload.hpp"

namespace appclass::sim {

/// Static description of a virtual machine.
struct VmSpec {
  std::string name;
  std::string ip;           ///< identity on the monitoring subnet
  double ram_mb = 256.0;    ///< configured VM memory
  double swap_mb = 512.0;   ///< configured swap space
  int vcpus = 2;            ///< virtual CPUs (<= host cores)
  double os_base_mb = 48.0; ///< resident memory of the guest OS + daemons
  double disk_total_gb = 8.0;
  /// Virtual-disk bandwidth, 1 KB blocks/s: the single in-guest disk queue
  /// caps what all processes in the VM can push together, regardless of
  /// how fast the host's storage (or its cache) is.
  double vdisk_blocks_per_s = 11000.0;
  /// Virtual NIC bandwidth, bytes/s each direction (GSX vNIC emulation).
  double vnic_bytes_per_s = 72.0e6;
};

/// Per-tick resource consumption accumulated for one VM, in per-second
/// units. Reset at the start of every engine tick.
struct VmTickAccount {
  double cpu_user_cores = 0.0;
  double cpu_system_cores = 0.0;
  double cpu_wio_cores = 0.0;  ///< CPU forfeited while blocked on disk
  double bytes_in = 0.0;
  double bytes_out = 0.0;
  double io_read_blocks = 0.0;
  double io_write_blocks = 0.0;
  double swap_in_kb = 0.0;
  double swap_out_kb = 0.0;
  double resident_mb = 0.0;  ///< application working sets resident this tick
  int runnable = 0;          ///< instances that demanded CPU this tick

  void reset() { *this = VmTickAccount{}; }
};

/// A virtual machine registered with an engine.
class Vm {
 public:
  struct ResourceSlots {
    ResourceId vcpu = 0;
    ResourceId vdisk = 0;
    ResourceId vnic_in = 0;
    ResourceId vnic_out = 0;
  };

  Vm(VmSpec spec, std::size_t host_index, ResourceSlots slots,
     double host_cpu_speed, double host_cpu_mhz, std::uint64_t seed);

  const VmSpec& spec() const noexcept { return spec_; }
  std::size_t host_index() const noexcept { return host_index_; }
  ResourceId vcpu_resource() const noexcept { return slots_.vcpu; }
  ResourceId vdisk_resource() const noexcept { return slots_.vdisk; }
  ResourceId vnic_in_resource() const noexcept { return slots_.vnic_in; }
  ResourceId vnic_out_resource() const noexcept { return slots_.vnic_out; }

  VmTickAccount& tick_account() noexcept { return account_; }
  const VmTickAccount& tick_account() const noexcept { return account_; }

  /// Page-cache size currently available for file I/O absorption, MB.
  double cache_mb() const noexcept { return cache_mb_; }

  /// Fraction of `read_blocks` absorbed by the page cache for an
  /// application with the given memory profile (0 = all hit disk).
  double read_absorption(const MemoryProfile& mem) const noexcept;

  /// Write-back absorption (writes coalesce in cache, at half the read
  /// effectiveness).
  double write_absorption(const MemoryProfile& mem) const noexcept;

  /// Paging traffic (KB/s, nominal) an application with profile `mem`
  /// generates given the VM's current memory pressure. Zero when the VM is
  /// not overcommitted.
  double paging_kb_per_s(const MemoryProfile& mem) const noexcept;

  /// Multiplicative progress penalty for an application generating
  /// `paging_kb_s` of swap traffic (1 = no penalty).
  static double paging_penalty(double paging_kb_s) noexcept;

  /// Recomputes memory pressure for this tick from the sum of resident
  /// working sets (`resident_mb`) and the total paging access weight
  /// (sum of ws*intensity over hosted instances).
  void update_memory_pressure(double resident_mb, double access_weight);

  /// Finalizes the tick: updates load averages, swap occupancy, cache
  /// dynamics and returns the gmond-visible snapshot for time `now`.
  metrics::Snapshot finalize_tick(SimTime now);

 private:
  VmSpec spec_;
  std::size_t host_index_;
  ResourceSlots slots_;
  double host_cpu_speed_;
  double host_cpu_mhz_;
  linalg::Rng rng_;

  VmTickAccount account_;

  // Memory state.
  double cache_mb_ = 0.0;
  double overcommit_mb_ = 0.0;
  double resident_mb_ = 0.0;
  double access_weight_ = 0.0;
  double swap_used_kb_ = 0.0;

  // Load averages (Unix-style EWMA of the run queue length).
  double load1_ = 0.0, load5_ = 0.0, load15_ = 0.0;

  // Long-run idle accounting for cpu_aidle.
  double idle_seconds_ = 0.0;
  double total_seconds_ = 0.0;

  // Slowly filling disk.
  double disk_used_gb_ = 0.0;

  SimTime boottime_ = 0;
};

}  // namespace appclass::sim
