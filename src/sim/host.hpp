// Physical host model.
//
// A host contributes four contended resources to the engine's global table:
// CPU (in reference-core units), disk bandwidth, and NIC bandwidth in each
// direction, plus an intra-host virtual-switch capacity for VM-to-VM
// traffic that never reaches the physical NIC.
#pragma once

#include <string>

#include "sim/resources.hpp"

namespace appclass::sim {

/// Static description of a physical machine.
struct HostSpec {
  std::string name;
  /// Number of physical CPUs.
  int cores = 2;
  /// Relative per-core speed; 1.0 is the reference core (the paper's
  /// 1.80 GHz Xeon). The 2.40 GHz host is 2.4/1.8 = 1.333.
  double cpu_speed = 1.0;
  /// Nominal clock in MHz, reported through the cpu_speed metric.
  double cpu_mhz = 1800.0;
  /// Physical RAM, MB.
  double ram_mb = 1024.0;
  /// Disk bandwidth in 1 KB blocks per second (2002-era SCSI disk plus
  /// GSX virtualization overhead).
  double disk_blocks_per_s = 12000.0;
  /// Achievable NIC bandwidth, bytes per second each direction (Gigabit
  /// Ethernet through a GSX virtual NIC falls well short of line rate).
  double net_bytes_per_s = 80.0e6;
  /// Intra-host VM-to-VM switching capacity, bytes per second (GSX's
  /// vmnet switch is CPU-bound and slower than the physical NIC path).
  double vswitch_bytes_per_s = 120.0e6;
};

/// Returns the paper's two host machines.
HostSpec make_host_a_spec();  ///< dual 1.80 GHz Xeon, 1 GB RAM (hosts VM1)
HostSpec make_host_b_spec();  ///< dual 2.40 GHz Xeon, 4 GB RAM (hosts VM2-4)

/// A host registered with an engine; records its resource table slots.
struct Host {
  HostSpec spec;
  ResourceId cpu = 0;      ///< capacity: cores * cpu_speed reference cores
  ResourceId disk = 0;     ///< capacity: disk_blocks_per_s
  ResourceId net_in = 0;   ///< capacity: net_bytes_per_s
  ResourceId net_out = 0;  ///< capacity: net_bytes_per_s
  ResourceId vswitch = 0;  ///< capacity: vswitch_bytes_per_s
};

}  // namespace appclass::sim
