#include "sim/testbed.hpp"

namespace appclass::sim {

VmSpec make_vm_spec(const std::string& name, const std::string& ip,
                    double ram_mb) {
  VmSpec spec;
  spec.name = name;
  spec.ip = ip;
  spec.ram_mb = ram_mb;
  spec.swap_mb = 2.0 * ram_mb;
  spec.vcpus = 1;  // GSX-era guests are uniprocessor
  // A guest OS cannot spend 48 MB of a 32 MB VM; scale the base footprint
  // down for tiny VMs (2.6-era Linux minimal installs idle near 20 MB).
  spec.os_base_mb = ram_mb >= 128.0 ? 48.0 : 20.0;
  return spec;
}

Testbed make_testbed(const TestbedOptions& options) {
  Testbed tb;
  tb.engine = std::make_unique<Engine>(options.seed);
  tb.host_a = tb.engine->add_host(make_host_a_spec());
  tb.host_b = tb.engine->add_host(make_host_b_spec());

  tb.vm1 = tb.engine->add_vm(
      tb.host_a, make_vm_spec("vm1", "10.0.0.1", options.vm1_ram_mb));
  if (options.four_vms) {
    tb.vm2 = tb.engine->add_vm(tb.host_b, make_vm_spec("vm2", "10.0.0.2"));
    tb.vm3 = tb.engine->add_vm(tb.host_b, make_vm_spec("vm3", "10.0.0.3"));
  }
  tb.vm4 = tb.engine->add_vm(tb.host_b, make_vm_spec("vm4", "10.0.0.4"));
  return tb;
}

}  // namespace appclass::sim
