#include "sim/vm.hpp"

#include <algorithm>
#include <cmath>

namespace appclass::sim {

namespace {

// Paging traffic per unit overcommit ratio per MB of hot working set,
// KB/s. Thrashing severity scales with how far memory is oversubscribed
// *relative to what is available* — a 55 MB working set in a 32 MB VM
// faults much harder than a 380 MB array over 256 MB. Calibrated so the
// paper's Pagebench (384 MB array, 256 MB VM) swaps at ~4 MB/s.
constexpr double kPagingKbPerRatioHotMb = 13.0;

// Swap traffic (KB/s) at which paging latency halves application progress.
constexpr double kPagingHalfSpeedKb = 5000.0;

// Background daemon CPU load (cores) and its jitter.
constexpr double kDaemonCpu = 0.004;

}  // namespace

Vm::Vm(VmSpec spec, std::size_t host_index, ResourceSlots slots,
       double host_cpu_speed, double host_cpu_mhz, std::uint64_t seed)
    : spec_(std::move(spec)),
      host_index_(host_index),
      slots_(slots),
      host_cpu_speed_(host_cpu_speed),
      host_cpu_mhz_(host_cpu_mhz),
      rng_(seed) {
  cache_mb_ = std::max(1.0, spec_.ram_mb - spec_.os_base_mb);
  disk_used_gb_ = 0.35 * spec_.disk_total_gb;
}

double Vm::read_absorption(const MemoryProfile& mem) const noexcept {
  if (mem.file_footprint_mb <= 0.0 || mem.io_reuse <= 0.0) return 0.0;
  // The fraction of the re-referenced file set that fits in the current
  // page cache bounds the achievable hit ratio.
  const double fit = cache_mb_ / (cache_mb_ + mem.file_footprint_mb);
  return std::clamp(mem.io_reuse * fit * 2.0, 0.0, 0.98);
}

double Vm::write_absorption(const MemoryProfile& mem) const noexcept {
  return 0.5 * read_absorption(mem);
}

double Vm::paging_kb_per_s(const MemoryProfile& mem) const noexcept {
  if (overcommit_mb_ <= 0.0 || resident_mb_ <= 0.0) return 0.0;
  const double hot_mb = mem.working_set_mb * mem.access_intensity;
  if (hot_mb <= 0.0) return 0.0;
  const double available = std::max(1.0, spec_.ram_mb - spec_.os_base_mb);
  const double ratio = overcommit_mb_ / available;
  return kPagingKbPerRatioHotMb * ratio * hot_mb;
}

double Vm::paging_penalty(double paging_kb_s) noexcept {
  return 1.0 / (1.0 + paging_kb_s / kPagingHalfSpeedKb);
}

void Vm::update_memory_pressure(double resident_mb, double access_weight) {
  const double available = std::max(1.0, spec_.ram_mb - spec_.os_base_mb);
  overcommit_mb_ = std::max(0.0, resident_mb - available);
  resident_mb_ = resident_mb;
  access_weight_ = access_weight;
  // Page cache takes whatever RAM is left after resident sets; under
  // pressure it collapses to ~1 MB (the paper observed exactly this for
  // SPECseis96 in a 32 MB VM).
  const double target_cache = std::max(1.0, available - resident_mb);
  // First-order lag: caches grow/shrink over tens of seconds, not instantly.
  cache_mb_ += 0.2 * (target_cache - cache_mb_);
  cache_mb_ = std::clamp(cache_mb_, 1.0, available);
}

metrics::Snapshot Vm::finalize_tick(SimTime now) {
  using metrics::MetricId;

  // --- background daemon noise so an idle VM is not exactly zero ---
  const double daemon_cpu = kDaemonCpu * rng_.uniform(0.5, 2.0);
  account_.cpu_system_cores += daemon_cpu;
  if (rng_.bernoulli(0.05)) account_.io_write_blocks += rng_.uniform(1.0, 8.0);
  if (rng_.bernoulli(0.10)) {
    account_.bytes_in += rng_.uniform(200.0, 1500.0);   // gmond chatter etc.
    account_.bytes_out += rng_.uniform(200.0, 1500.0);
  }

  // --- CPU percentages, relative to this VM's vCPU capacity ---
  const double vcpu_capacity =
      static_cast<double>(spec_.vcpus) * host_cpu_speed_;
  const double to_pct = 100.0 / vcpu_capacity;
  double user_pct = account_.cpu_user_cores * to_pct;
  double system_pct = account_.cpu_system_cores * to_pct;
  double wio_pct = account_.cpu_wio_cores * to_pct;
  // Clamp the triple into [0, 100] preserving user:system ratio.
  const double busy = user_pct + system_pct;
  if (busy > 100.0) {
    user_pct *= 100.0 / busy;
    system_pct *= 100.0 / busy;
    wio_pct = 0.0;
  }
  wio_pct = std::min(wio_pct, 100.0 - user_pct - system_pct);
  const double idle_pct = 100.0 - user_pct - system_pct - wio_pct;

  idle_seconds_ += idle_pct / 100.0;
  total_seconds_ += 1.0;

  // --- load averages: EWMA of the runnable count ---
  const double runnable = account_.runnable + (busy > 5.0 ? 0.0 : 0.0);
  const auto ewma = [&](double load, double tau) {
    const double alpha = 1.0 - std::exp(-1.0 / tau);
    return load + alpha * (runnable - load);
  };
  load1_ = ewma(load1_, 60.0);
  load5_ = ewma(load5_, 300.0);
  load15_ = ewma(load15_, 900.0);

  // --- memory occupancy ---
  const double resident = std::min(account_.resident_mb,
                                   spec_.ram_mb - spec_.os_base_mb +
                                       0.0);  // resident beyond RAM is swapped
  const double used_mb = std::min(spec_.ram_mb,
                                  spec_.os_base_mb + resident + cache_mb_);
  const double mem_free_kb = std::max(0.0, spec_.ram_mb - used_mb) * 1024.0;

  // Swap occupancy follows the overcommit level with a slow lag.
  const double target_swap_kb = overcommit_mb_ * 1024.0;
  swap_used_kb_ += 0.1 * (target_swap_kb - swap_used_kb_);
  swap_used_kb_ = std::clamp(swap_used_kb_, 0.0, spec_.swap_mb * 1024.0);

  // --- disk fill: writes slowly consume space (bounded) ---
  disk_used_gb_ = std::min(0.9 * spec_.disk_total_gb,
                           disk_used_gb_ +
                               account_.io_write_blocks / (1024.0 * 1024.0));

  metrics::Snapshot s;
  s.time = now;
  s.node_ip = spec_.ip;
  s.set(MetricId::kCpuUser, user_pct);
  s.set(MetricId::kCpuSystem, system_pct);
  s.set(MetricId::kCpuNice, 0.0);
  s.set(MetricId::kCpuIdle, idle_pct);
  s.set(MetricId::kCpuWio, wio_pct);
  s.set(MetricId::kCpuAidle,
        100.0 * idle_seconds_ / std::max(1.0, total_seconds_));
  s.set(MetricId::kCpuNum, static_cast<double>(spec_.vcpus));
  s.set(MetricId::kCpuSpeed, host_cpu_mhz_);
  s.set(MetricId::kLoadOne, load1_);
  s.set(MetricId::kLoadFive, load5_);
  s.set(MetricId::kLoadFifteen, load15_);
  s.set(MetricId::kProcRun, static_cast<double>(account_.runnable) +
                                (rng_.bernoulli(0.2) ? 1.0 : 0.0));
  s.set(MetricId::kProcTotal,
        58.0 + static_cast<double>(account_.runnable) +
            std::floor(rng_.uniform(0.0, 4.0)));
  s.set(MetricId::kMemFree, mem_free_kb);
  s.set(MetricId::kMemShared, 0.0);
  s.set(MetricId::kMemBuffers,
        std::min(cache_mb_, 0.08 * spec_.ram_mb) * 1024.0);
  s.set(MetricId::kMemCached, cache_mb_ * 1024.0);
  s.set(MetricId::kMemTotal, spec_.ram_mb * 1024.0);
  s.set(MetricId::kSwapFree, spec_.swap_mb * 1024.0 - swap_used_kb_);
  s.set(MetricId::kSwapTotal, spec_.swap_mb * 1024.0);
  s.set(MetricId::kBytesIn, account_.bytes_in);
  s.set(MetricId::kBytesOut, account_.bytes_out);
  s.set(MetricId::kPktsIn, account_.bytes_in / 1200.0);
  s.set(MetricId::kPktsOut, account_.bytes_out / 1200.0);
  s.set(MetricId::kDiskTotal, spec_.disk_total_gb);
  s.set(MetricId::kDiskFree, spec_.disk_total_gb - disk_used_gb_);
  s.set(MetricId::kPartMaxUsed, 100.0 * disk_used_gb_ / spec_.disk_total_gb);
  s.set(MetricId::kBoottime, static_cast<double>(boottime_));
  s.set(MetricId::kMtu, 1500.0);
  s.set(MetricId::kIoBi,
        account_.io_read_blocks + account_.swap_in_kb);   // swap is block I/O
  s.set(MetricId::kIoBo,
        account_.io_write_blocks + account_.swap_out_kb);
  s.set(MetricId::kSwapIn, account_.swap_in_kb);
  s.set(MetricId::kSwapOut, account_.swap_out_kb);

  account_.reset();
  return s;
}

}  // namespace appclass::sim
