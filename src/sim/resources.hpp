// Capacitated resources and demand vectors for the cluster simulator.
//
// Every contended quantity in the simulation — a host's CPU, its disk
// bandwidth, its NIC in each direction, a VM's vCPU allowance — is one
// `Resource` with a scalar capacity per simulated second. An application
// instance expresses what it would consume this tick as a sparse `Demand`
// over those resources; the water-filling allocator (waterfill.hpp) then
// computes a max-min fair uniform scaling of every instance's demand.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace appclass::sim {

/// Index into the engine's global resource table.
using ResourceId = std::size_t;

/// One capacitated resource.
struct Resource {
  std::string name;     ///< e.g. "hostA.cpu", "vm1.vcpu", "hostB.net_out"
  double capacity = 0;  ///< units per simulated second; +inf = uncapped
};

/// Sparse demand vector: (resource, amount-per-second) pairs.
///
/// Amounts are what the instance would consume at full speed this tick; the
/// allocator scales the whole vector by a single fraction f in [0, 1].
class Demand {
 public:
  void add(ResourceId id, double amount) {
    APPCLASS_EXPECTS(amount >= 0.0);
    if (amount == 0.0) return;
    for (auto& [rid, a] : entries_)
      if (rid == id) {
        a += amount;
        return;
      }
    entries_.emplace_back(id, amount);
  }

  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }
  auto begin() const noexcept { return entries_.begin(); }
  auto end() const noexcept { return entries_.end(); }

  double amount(ResourceId id) const noexcept {
    for (const auto& [rid, a] : entries_)
      if (rid == id) return a;
    return 0.0;
  }

  void clear() noexcept { entries_.clear(); }

 private:
  std::vector<std::pair<ResourceId, double>> entries_;
};

inline constexpr double kUncapped = std::numeric_limits<double>::infinity();

}  // namespace appclass::sim
