#include "sim/waterfill.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace appclass::sim {

namespace {

/// Single-resource max-min fair allocation: returns the water level L such
/// that sum_i min(d_i, L) == capacity (or +inf when total demand fits).
/// Small demanders are served fully; the remainder is split evenly among
/// the rest — the way a Linux CPU scheduler or a fair network queue treats
/// competing consumers.
double water_level(double capacity, std::vector<double> demands) {
  double total = 0.0;
  for (double d : demands) total += d;
  if (total <= capacity) return std::numeric_limits<double>::infinity();

  std::sort(demands.begin(), demands.end());
  double remaining = capacity;
  std::size_t left = demands.size();
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const double fair = remaining / static_cast<double>(left);
    if (demands[i] <= fair) {
      remaining -= demands[i];
      --left;
    } else {
      return fair;
    }
  }
  return remaining;  // unreachable when total > capacity
}

}  // namespace

std::vector<double> waterfill(std::span<const double> capacities,
                              std::span<const Demand> demands) {
  const std::size_t n = demands.size();
  const std::size_t nr = capacities.size();
  std::vector<double> f(n, 1.0);
  std::vector<bool> fixed(n, false);
  std::vector<double> residual(capacities.begin(), capacities.end());
  constexpr double kTol = 1e-9;

  std::size_t unfixed = n;
  // Each round: per-resource max-min levels over the unfixed instances'
  // demands against residual capacity; an instance's candidate scale is
  // set by its tightest grant. Instances whose binding resource actually
  // saturates are frozen and their usage subtracted, releasing slack that
  // lets the rest grow in later rounds (work conservation). Terminates in
  // at most n rounds.
  while (unfixed > 0) {
    std::vector<std::vector<double>> per_resource(nr);
    for (std::size_t i = 0; i < n; ++i) {
      if (fixed[i]) continue;
      for (const auto& [rid, amount] : demands[i]) {
        APPCLASS_EXPECTS(rid < nr);
        per_resource[rid].push_back(amount);
      }
    }
    std::vector<double> level(nr, std::numeric_limits<double>::infinity());
    for (std::size_t r = 0; r < nr; ++r) {
      if (per_resource[r].empty() || std::isinf(residual[r])) continue;
      level[r] = water_level(residual[r], per_resource[r]);
    }

    // Candidate scales and the resulting per-resource loads.
    std::vector<double> candidate(n, 1.0);
    std::vector<double> load(nr, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (fixed[i]) continue;
      double fi = 1.0;
      for (const auto& [rid, amount] : demands[i]) {
        if (amount <= 0.0) continue;
        fi = std::min(fi, std::min(amount, level[rid]) / amount);
      }
      candidate[i] = fi;
      for (const auto& [rid, amount] : demands[i]) load[rid] += fi * amount;
    }

    std::vector<bool> saturated(nr, false);
    for (std::size_t r = 0; r < nr; ++r)
      saturated[r] = !std::isinf(residual[r]) && load[r] > 0.0 &&
                     load[r] >= residual[r] * (1.0 - 1e-6) - kTol;

    // Freeze instances at full speed or whose binding resource saturated.
    bool froze_any = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (fixed[i]) continue;
      bool freeze = candidate[i] >= 1.0 - kTol;
      if (!freeze) {
        for (const auto& [rid, amount] : demands[i]) {
          if (amount <= 0.0) continue;
          // Binding resources are those whose grant equals the candidate.
          if (std::min(amount, level[rid]) / amount <=
                  candidate[i] * (1.0 + 1e-9) &&
              saturated[rid]) {
            freeze = true;
            break;
          }
        }
      }
      if (freeze) {
        f[i] = candidate[i];
        fixed[i] = true;
        --unfixed;
        froze_any = true;
        for (const auto& [rid, amount] : demands[i])
          if (!std::isinf(residual[rid]))
            residual[rid] = std::max(0.0, residual[rid] - f[i] * amount);
      }
    }

    // Numerical safety net: accept the candidates rather than loop.
    if (!froze_any) {
      for (std::size_t i = 0; i < n; ++i)
        if (!fixed[i]) f[i] = candidate[i];
      break;
    }
  }
  return f;
}

std::vector<double> resource_loads(std::size_t resource_count,
                                   std::span<const Demand> demands,
                                   std::span<const double> scales) {
  APPCLASS_EXPECTS(demands.size() == scales.size());
  std::vector<double> load(resource_count, 0.0);
  for (std::size_t i = 0; i < demands.size(); ++i)
    for (const auto& [rid, amount] : demands[i]) {
      APPCLASS_EXPECTS(rid < resource_count);
      load[rid] += scales[i] * amount;
    }
  return load;
}

}  // namespace appclass::sim
