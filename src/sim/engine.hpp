// The cluster simulation engine.
//
// Discrete time, one-second ticks. Each tick the engine:
//   1. starts pending instances whose submit time / dependency allows,
//   2. recomputes every VM's memory pressure from hosted working sets,
//   3. collects each running instance's demand, translating application
//      terms (file blocks, net bytes, CPU) into the global capacitated
//      resource table (page-cache absorption, paging traffic, cross-host
//      network flows, server-side CPU cost of a flow's remote endpoint),
//   4. computes a max-min fair allocation (waterfill),
//   5. advances models by their granted fraction (times host CPU speed for
//      CPU-sensitive work, times a paging-latency penalty under memory
//      pressure) and accounts consumption into per-VM metrics,
//   6. emits one 33-metric snapshot per VM to the registered sink.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "metrics/snapshot.hpp"
#include "sim/host.hpp"
#include "sim/resources.hpp"
#include "sim/vm.hpp"
#include "sim/waterfill.hpp"
#include "sim/workload.hpp"

namespace appclass::sim {

using HostId = std::size_t;
using InstanceId = std::size_t;

/// Lifecycle of a submitted application instance.
enum class InstanceState { kPending, kRunning, kFinished };

/// Public view of an instance's progress.
struct InstanceInfo {
  InstanceId id = 0;
  VmId vm = 0;
  std::string app_name;
  InstanceState state = InstanceState::kPending;
  SimTime submit_time = 0;
  SimTime start_time = -1;
  SimTime finish_time = -1;  ///< first tick at which finished() held

  /// Wall-clock run time; only valid once finished.
  SimTime elapsed() const { return finish_time - start_time; }
};

class Engine {
 public:
  /// `seed` drives every stochastic component (instance substreams are
  /// derived from it), making whole simulations reproducible.
  explicit Engine(std::uint64_t seed = 42);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  HostId add_host(const HostSpec& spec);
  VmId add_vm(HostId host, const VmSpec& spec);

  /// Submits an instance to start at `submit_time` (default: immediately).
  InstanceId submit(VmId vm, std::unique_ptr<WorkloadModel> model,
                    SimTime submit_time = 0);

  /// Submits an instance that starts only after `prior` finishes
  /// (sequential-execution experiments).
  InstanceId submit_after(VmId vm, std::unique_ptr<WorkloadModel> model,
                          InstanceId prior);

  /// Sink invoked once per VM per tick with that VM's snapshot.
  using SnapshotSink = std::function<void(VmId, const metrics::Snapshot&)>;
  void set_snapshot_sink(SnapshotSink sink) { sink_ = std::move(sink); }

  /// Migrates a running instance to another VM (process checkpoint and
  /// restart, Condor-style). The instance pauses for a downtime
  /// proportional to its resident working set over the configured transfer
  /// bandwidth (minimum 1 s), during which it consumes nothing and makes
  /// no progress; the checkpoint transfer itself appears as network
  /// traffic on both VMs. No-op if the instance is not running or already
  /// on `to`. Returns the downtime in seconds (0 for the no-op case).
  SimTime migrate(InstanceId id, VmId to);

  /// Checkpoint transfer bandwidth used by migrate(), bytes/second.
  void set_migration_bandwidth(double bytes_per_s);

  /// Advances the simulation by one second.
  void step();

  /// Runs until every submitted instance has finished or `max_ticks`
  /// elapse; returns true when all finished.
  bool run_until_done(SimTime max_ticks = 1'000'000);

  /// Runs exactly `ticks` steps.
  void run_for(SimTime ticks);

  SimTime now() const noexcept { return now_; }
  std::size_t host_count() const noexcept { return hosts_.size(); }
  std::size_t vm_count() const noexcept { return vms_.size(); }
  std::size_t instance_count() const noexcept { return instances_.size(); }
  const Host& host(HostId id) const { return hosts_.at(id); }
  const Vm& vm(VmId id) const { return *vms_.at(id); }
  InstanceInfo instance(InstanceId id) const;

  /// True when no submitted instance is pending or running.
  bool all_done() const;

  const std::vector<Resource>& resources() const noexcept {
    return resources_;
  }

  /// Realized per-resource load of the most recent tick (same indexing as
  /// resources()); empty before the first step. Diagnostic: tests assert
  /// the allocator never oversubscribes a resource.
  const std::vector<double>& last_loads() const noexcept {
    return last_loads_;
  }

 private:
  struct Instance {
    InstanceInfo info;
    std::unique_ptr<WorkloadModel> model;
    std::optional<InstanceId> after;
    linalg::Rng rng;
    SimTime paused_until = -1;  ///< migration downtime end, exclusive

    Instance(InstanceInfo i, std::unique_ptr<WorkloadModel> m,
             std::optional<InstanceId> dep, std::uint64_t seed)
        : info(i), model(std::move(m)), after(dep), rng(seed) {}

    bool paused(SimTime now) const { return now < paused_until; }
  };

  ResourceId add_resource(std::string name, double capacity);
  void start_eligible_instances();

  std::uint64_t seed_;
  SimTime now_ = 0;
  double migration_bytes_per_s_ = 20.0e6;
  std::vector<Resource> resources_;
  std::vector<Host> hosts_;
  std::vector<std::unique_ptr<Vm>> vms_;
  std::vector<std::unique_ptr<Instance>> instances_;
  std::vector<double> last_loads_;
  SnapshotSink sink_;
};

}  // namespace appclass::sim
