// The interface between the cluster simulator and application models.
//
// `sim` knows nothing about concrete benchmarks; it asks a `WorkloadModel`
// what it would consume this tick (an `AppDemand`), allocates contended
// resources fairly, and tells the model what fraction it was granted. The
// concrete Table-2 application models live in `src/workloads`.
#pragma once

#include <cstdint>
#include <string_view>

#include "linalg/random.hpp"

namespace appclass::sim {

/// Simulated time in seconds since engine start.
using SimTime = std::int64_t;

/// Identifies a VM within an Engine.
using VmId = std::size_t;

/// Memory behaviour of an application, consumed by the VM paging and
/// buffer-cache models.
struct MemoryProfile {
  /// Resident working set the application actively touches, MB.
  double working_set_mb = 0.0;
  /// Relative rate (0..1) at which the working set is touched; scales the
  /// paging traffic generated per MB of memory overcommit.
  double access_intensity = 0.0;
  /// Distinct file data the application re-reads over its run, MB; together
  /// with the VM's page-cache size this sets the cache hit ratio.
  double file_footprint_mb = 0.0;
  /// Fraction of file reads that would hit an infinitely large page cache
  /// (i.e. the re-reference share of the I/O stream).
  double io_reuse = 0.0;
};

/// What an application instance would consume in one second at full speed.
struct AppDemand {
  /// CPU demand in reference cores (1.0 = one fully busy reference core).
  double cpu = 0.0;
  /// Fraction of granted CPU spent in user mode (rest is system mode).
  double cpu_user_fraction = 0.9;
  /// File-system read / write traffic, 1 KB blocks per second, before page
  /// cache absorption.
  double disk_read_blocks = 0.0;
  double disk_write_blocks = 0.0;
  /// Network traffic in bytes/second from this instance's point of view.
  double net_in_bytes = 0.0;
  double net_out_bytes = 0.0;
  /// Remote endpoint VM for the network traffic, or `kExternalPeer` when the
  /// traffic leaves the simulated cluster (e.g. external web clients).
  static constexpr int kExternalPeer = -1;
  int net_peer_vm = kExternalPeer;

  bool idle() const noexcept {
    return cpu == 0.0 && disk_read_blocks == 0.0 && disk_write_blocks == 0.0 &&
           net_in_bytes == 0.0 && net_out_bytes == 0.0;
  }
};

/// Feedback given to the model after allocation, used to advance progress.
struct Grant {
  /// Uniform scale in [0,1] applied to the whole demand vector.
  double fraction = 0.0;
  /// Relative CPU speed of the hosting machine (1.0 = reference core).
  /// CPU-bound phases advance `fraction * speed`, I/O-bound ones `fraction`.
  double cpu_speed = 1.0;
  /// Extra multiplicative progress penalty from paging latency (1 = none).
  double paging_penalty = 1.0;
  /// Progress multiplier for file I/O given the current page-cache hit
  /// ratio: cached I/O completes at nominal speed, disk-bound I/O at a
  /// fraction of it. 1 when the instance issued no file I/O.
  double io_penalty = 1.0;
};

/// A simulated application. Implementations are deterministic given the Rng
/// passed in (the engine hands every instance its own seeded substream).
class WorkloadModel {
 public:
  virtual ~WorkloadModel() = default;

  /// Stable, human-readable benchmark name (e.g. "postmark").
  virtual std::string_view name() const = 0;

  /// Demand for the coming one-second tick.
  virtual AppDemand demand(SimTime now, linalg::Rng& rng) = 0;

  /// Advances internal progress after allocation. Called exactly once per
  /// tick following `demand` while the instance is running.
  virtual void advance(const Grant& grant, SimTime now, linalg::Rng& rng) = 0;

  /// True once the run is complete (never true for open-ended services).
  virtual bool finished() const = 0;

  /// Current memory behaviour (may change across execution phases).
  virtual MemoryProfile memory() const = 0;
};

}  // namespace appclass::sim
