// The paper's experimental testbed, reconstructed (section 5.2):
//
//   * host A — dual 1.80 GHz Xeon, 1 GB RAM: hosts VM1
//   * host B — dual 2.40 GHz Xeon, 4 GB RAM: hosts VM2, VM3, VM4
//   * all VMs — VMware GSX style, 256 MB RAM, on a Gigabit subnet
//   * VM4 serves as the remote endpoint for network benchmarks
//
// Single-VM experiments (training, Table 3) use the same hosts with only
// VM1 plus the network peer VM4.
#pragma once

#include <memory>

#include "sim/engine.hpp"

namespace appclass::sim {

struct Testbed {
  std::unique_ptr<Engine> engine;
  HostId host_a = 0;
  HostId host_b = 0;
  VmId vm1 = 0;
  VmId vm2 = 0;
  VmId vm3 = 0;
  VmId vm4 = 0;  ///< network-server VM
};

/// Options deviating from the default testbed.
struct TestbedOptions {
  std::uint64_t seed = 42;
  double vm1_ram_mb = 256.0;  ///< the SPECseis96 B experiment uses 32 MB
  bool four_vms = true;       ///< false: only VM1 + the peer VM4
};

/// Builds the testbed. VM IPs are 10.0.0.1 .. 10.0.0.4.
Testbed make_testbed(const TestbedOptions& options = {});

/// VM spec used for the standard 256 MB worker VMs.
VmSpec make_vm_spec(const std::string& name, const std::string& ip,
                    double ram_mb = 256.0);

}  // namespace appclass::sim
