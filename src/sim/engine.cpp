#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>

namespace appclass::sim {

namespace {

// Server-side CPU cost of terminating a network flow: one reference core
// per 100 MB/s of traffic (the classic ~1 GHz per Gb/s TCP rule of thumb,
// inflated by GSX's software NIC emulation).
constexpr double kServerCpuPerByte = 1.0 / 100.0e6;

// CPU overhead of paging activity: cores per KB/s of swap traffic.
constexpr double kPagingCpuPerKb = 2e-5;

// Relative speed of disk-bound file I/O versus page-cache-hit I/O.
constexpr double kDiskSpeedFactor = 0.25;

}  // namespace

Engine::Engine(std::uint64_t seed) : seed_(seed) {}

ResourceId Engine::add_resource(std::string name, double capacity) {
  resources_.push_back(Resource{std::move(name), capacity});
  return resources_.size() - 1;
}

HostId Engine::add_host(const HostSpec& spec) {
  Host h;
  h.spec = spec;
  const double ref_cores = static_cast<double>(spec.cores) * spec.cpu_speed;
  h.cpu = add_resource(spec.name + ".cpu", ref_cores);
  h.disk = add_resource(spec.name + ".disk", spec.disk_blocks_per_s);
  h.net_in = add_resource(spec.name + ".net_in", spec.net_bytes_per_s);
  h.net_out = add_resource(spec.name + ".net_out", spec.net_bytes_per_s);
  h.vswitch = add_resource(spec.name + ".vswitch", spec.vswitch_bytes_per_s);
  hosts_.push_back(std::move(h));
  return hosts_.size() - 1;
}

VmId Engine::add_vm(HostId host, const VmSpec& spec) {
  APPCLASS_EXPECTS(host < hosts_.size());
  const Host& h = hosts_[host];
  Vm::ResourceSlots slots;
  slots.vcpu = add_resource(
      spec.name + ".vcpu",
      static_cast<double>(spec.vcpus) * h.spec.cpu_speed);
  slots.vdisk = add_resource(spec.name + ".vdisk", spec.vdisk_blocks_per_s);
  slots.vnic_in = add_resource(spec.name + ".vnic_in", spec.vnic_bytes_per_s);
  slots.vnic_out =
      add_resource(spec.name + ".vnic_out", spec.vnic_bytes_per_s);
  vms_.push_back(std::make_unique<Vm>(
      spec, host, slots, h.spec.cpu_speed, h.spec.cpu_mhz,
      linalg::derive_seed(seed_, 0x1000 + vms_.size())));
  return vms_.size() - 1;
}

InstanceId Engine::submit(VmId vm, std::unique_ptr<WorkloadModel> model,
                          SimTime submit_time) {
  APPCLASS_EXPECTS(vm < vms_.size());
  APPCLASS_EXPECTS(model != nullptr);
  InstanceInfo info;
  info.id = instances_.size();
  info.vm = vm;
  info.app_name = std::string(model->name());
  info.submit_time = std::max(submit_time, now_);
  instances_.push_back(std::make_unique<Instance>(
      info, std::move(model), std::nullopt,
      linalg::derive_seed(seed_, 0x2000 + info.id)));
  return info.id;
}

InstanceId Engine::submit_after(VmId vm, std::unique_ptr<WorkloadModel> model,
                                InstanceId prior) {
  APPCLASS_EXPECTS(prior < instances_.size());
  const InstanceId id = submit(vm, std::move(model));
  instances_[id]->after = prior;
  return id;
}

InstanceInfo Engine::instance(InstanceId id) const {
  APPCLASS_EXPECTS(id < instances_.size());
  return instances_[id]->info;
}

void Engine::set_migration_bandwidth(double bytes_per_s) {
  APPCLASS_EXPECTS(bytes_per_s > 0.0);
  migration_bytes_per_s_ = bytes_per_s;
}

SimTime Engine::migrate(InstanceId id, VmId to) {
  APPCLASS_EXPECTS(id < instances_.size());
  APPCLASS_EXPECTS(to < vms_.size());
  Instance& inst = *instances_[id];
  if (inst.info.state != InstanceState::kRunning || inst.info.vm == to)
    return 0;

  const VmId from = inst.info.vm;
  const MemoryProfile mem = inst.model->memory();
  const double checkpoint_bytes =
      std::max(1.0, mem.working_set_mb) * 1024.0 * 1024.0;
  const auto downtime = static_cast<SimTime>(
      std::max(1.0, std::ceil(checkpoint_bytes / migration_bytes_per_s_)));

  // The checkpoint stream shows up as network traffic on both endpoints,
  // amortized over one tick's announcement (coarse but visible to the
  // monitor, as Condor-style checkpoint transfers are).
  const double rate = checkpoint_bytes / static_cast<double>(downtime);
  vms_[from]->tick_account().bytes_out += rate;
  vms_[to]->tick_account().bytes_in += rate;

  inst.info.vm = to;
  inst.paused_until = now_ + downtime;
  return downtime;
}

bool Engine::all_done() const {
  return std::all_of(instances_.begin(), instances_.end(), [](const auto& i) {
    return i->info.state == InstanceState::kFinished;
  });
}

void Engine::start_eligible_instances() {
  for (auto& inst : instances_) {
    if (inst->info.state != InstanceState::kPending) continue;
    if (inst->info.submit_time > now_) continue;
    if (inst->after &&
        instances_[*inst->after]->info.state != InstanceState::kFinished)
      continue;
    inst->info.state = InstanceState::kRunning;
    inst->info.start_time = now_;
  }
}

void Engine::step() {
  start_eligible_instances();

  // --- per-VM memory pressure from hosted working sets ---
  std::vector<double> resident(vms_.size(), 0.0);
  std::vector<double> access_weight(vms_.size(), 0.0);
  for (auto& inst : instances_) {
    if (inst->info.state != InstanceState::kRunning || inst->paused(now_))
      continue;
    const MemoryProfile mem = inst->model->memory();
    resident[inst->info.vm] += mem.working_set_mb;
    access_weight[inst->info.vm] += mem.working_set_mb * mem.access_intensity;
  }
  for (std::size_t v = 0; v < vms_.size(); ++v)
    vms_[v]->update_memory_pressure(resident[v], access_weight[v]);

  // --- collect demands ---
  struct TickInstance {
    Instance* inst = nullptr;
    AppDemand app;
    MemoryProfile mem;
    double paging_kb = 0.0;      // nominal swap traffic, KB/s
    double paging_cpu = 0.0;     // CPU overhead of paging, cores
    double read_blocks = 0.0;    // post-cache disk reads
    double write_blocks = 0.0;   // post-cache disk writes
    double cpu_cores = 0.0;      // translated CPU demand (reference cores)
  };
  std::vector<TickInstance> ticks;
  std::vector<Demand> demands;

  for (auto& inst : instances_) {
    if (inst->info.state != InstanceState::kRunning || inst->paused(now_))
      continue;
    TickInstance t;
    t.inst = inst.get();
    t.app = inst->model->demand(now_, inst->rng);
    t.mem = inst->model->memory();

    Vm& vm = *vms_[inst->info.vm];
    const Host& host = hosts_[vm.host_index()];

    t.read_blocks = t.app.disk_read_blocks * (1.0 - vm.read_absorption(t.mem));
    t.write_blocks =
        t.app.disk_write_blocks * (1.0 - vm.write_absorption(t.mem));
    t.paging_kb = vm.paging_kb_per_s(t.mem);
    if (t.paging_kb > 0.0) {
      // Page faults cluster: the swap stream is bursty tick to tick.
      // Mean-one lognormal (mu = -sigma^2/2) keeps the average traffic at
      // the pressure model's value.
      constexpr double kPagingBurstSigma = 0.15;
      t.paging_kb *= inst->rng.lognormal(
          -0.5 * kPagingBurstSigma * kPagingBurstSigma, kPagingBurstSigma);
    }
    t.paging_cpu = kPagingCpuPerKb * t.paging_kb;
    // A single-threaded app saturates one *physical* core of its host, so
    // its demand in reference-core units scales with host speed.
    t.cpu_cores = t.app.cpu * host.spec.cpu_speed + t.paging_cpu;

    Demand d;
    if (t.cpu_cores > 0.0) {
      d.add(host.cpu, t.cpu_cores);
      d.add(vm.vcpu_resource(), t.cpu_cores);
    }
    const double disk_blocks =
        t.read_blocks + t.write_blocks + t.paging_kb;  // 1 KB blocks
    if (disk_blocks > 0.0) {
      d.add(host.disk, disk_blocks);
      d.add(vm.vdisk_resource(), disk_blocks);
    }

    const double net_total = t.app.net_in_bytes + t.app.net_out_bytes;
    if (net_total > 0.0) {
      if (t.app.net_peer_vm >= 0) {
        const auto peer_vm_id = static_cast<VmId>(t.app.net_peer_vm);
        APPCLASS_EXPECTS(peer_vm_id < vms_.size());
        const Vm& peer = *vms_[peer_vm_id];
        const Host& peer_host = hosts_[peer.host_index()];
        // Both endpoints' virtual NICs carry the flow either way.
        d.add(vm.vnic_out_resource(), t.app.net_out_bytes);
        d.add(vm.vnic_in_resource(), t.app.net_in_bytes);
        d.add(peer.vnic_in_resource(), t.app.net_out_bytes);
        d.add(peer.vnic_out_resource(), t.app.net_in_bytes);
        if (peer.host_index() == vm.host_index()) {
          // Intra-host VM-to-VM traffic rides the virtual switch only.
          d.add(host.vswitch, net_total);
        } else {
          d.add(host.net_out, t.app.net_out_bytes);
          d.add(host.net_in, t.app.net_in_bytes);
          d.add(peer_host.net_in, t.app.net_out_bytes);
          d.add(peer_host.net_out, t.app.net_in_bytes);
        }
        // The remote endpoint burns CPU terminating the flow; couple it
        // into the same demand vector so a CPU-starved server throttles
        // the flow, as it would in reality.
        const double server_cpu = kServerCpuPerByte * net_total;
        if (server_cpu > 0.0) {
          d.add(peer_host.cpu, server_cpu);
          d.add(peer.vcpu_resource(), server_cpu);
        }
      } else {
        // External traffic crosses the vNIC and this host's NIC.
        d.add(vm.vnic_out_resource(), t.app.net_out_bytes);
        d.add(vm.vnic_in_resource(), t.app.net_in_bytes);
        d.add(host.net_out, t.app.net_out_bytes);
        d.add(host.net_in, t.app.net_in_bytes);
      }
    }

    ticks.push_back(std::move(t));
    demands.push_back(std::move(d));
  }

  // --- allocate ---
  const std::vector<double> caps = [&] {
    std::vector<double> c(resources_.size());
    for (std::size_t r = 0; r < resources_.size(); ++r)
      c[r] = resources_[r].capacity;
    return c;
  }();
  const std::vector<double> f = waterfill(caps, demands);
  const std::vector<double> loads =
      resource_loads(resources_.size(), demands, f);
  last_loads_ = loads;
  std::vector<bool> saturated(resources_.size(), false);
  for (std::size_t r = 0; r < resources_.size(); ++r)
    saturated[r] = !std::isinf(caps[r]) && loads[r] >= 0.999 * caps[r] &&
                   loads[r] > 0.0;

  // --- account + advance ---
  for (std::size_t i = 0; i < ticks.size(); ++i) {
    TickInstance& t = ticks[i];
    Instance& inst = *t.inst;
    Vm& vm = *vms_[inst.info.vm];
    const Host& host = hosts_[vm.host_index()];
    const double fi = f[i];

    VmTickAccount& acct = vm.tick_account();
    const double granted_cpu = fi * t.cpu_cores;
    acct.cpu_user_cores += granted_cpu * t.app.cpu_user_fraction;
    acct.cpu_system_cores += granted_cpu * (1.0 - t.app.cpu_user_fraction);
    acct.bytes_in += fi * t.app.net_in_bytes;
    acct.bytes_out += fi * t.app.net_out_bytes;
    acct.io_read_blocks += fi * t.read_blocks;
    acct.io_write_blocks += fi * t.write_blocks;
    acct.swap_in_kb += fi * t.paging_kb * 0.5;
    acct.swap_out_kb += fi * t.paging_kb * 0.5;
    acct.resident_mb += t.mem.working_set_mb;
    if (t.cpu_cores > 0.01) ++acct.runnable;

    // CPU forfeited while blocked on a saturated disk shows up as I/O wait.
    if (fi < 0.999 && (t.read_blocks + t.write_blocks + t.paging_kb) > 0.0 &&
        saturated[host.disk])
      acct.cpu_wio_cores += (1.0 - fi) * t.cpu_cores;

    // Mirror the flow at the remote endpoint's VM accounting.
    if (t.app.net_peer_vm >= 0) {
      Vm& peer = *vms_[static_cast<VmId>(t.app.net_peer_vm)];
      VmTickAccount& pacct = peer.tick_account();
      pacct.bytes_in += fi * t.app.net_out_bytes;
      pacct.bytes_out += fi * t.app.net_in_bytes;
      const double server_cpu =
          fi * kServerCpuPerByte * (t.app.net_in_bytes + t.app.net_out_bytes);
      pacct.cpu_system_cores += server_cpu;
      if (server_cpu > 0.01) ++pacct.runnable;
    }

    Grant grant;
    grant.fraction = fi;
    grant.cpu_speed = host.spec.cpu_speed;
    grant.paging_penalty = Vm::paging_penalty(fi * t.paging_kb);
    const double file_blocks =
        t.app.disk_read_blocks + t.app.disk_write_blocks;
    if (file_blocks > 0.0) {
      // Blend read/write cache absorption by traffic share; misses run at
      // disk speed, hits at memory speed.
      const double absorbed =
          (t.app.disk_read_blocks * vm.read_absorption(t.mem) +
           t.app.disk_write_blocks * vm.write_absorption(t.mem)) /
          file_blocks;
      grant.io_penalty = absorbed + (1.0 - absorbed) * kDiskSpeedFactor;
    }
    inst.model->advance(grant, now_, inst.rng);

    if (inst.model->finished()) {
      inst.info.state = InstanceState::kFinished;
      inst.info.finish_time = now_ + 1;
    }
  }

  // --- emit snapshots ---
  for (std::size_t v = 0; v < vms_.size(); ++v) {
    metrics::Snapshot s = vms_[v]->finalize_tick(now_);
    if (sink_) sink_(v, s);
  }

  ++now_;
}

bool Engine::run_until_done(SimTime max_ticks) {
  const SimTime deadline = now_ + max_ticks;
  while (!all_done() && now_ < deadline) step();
  return all_done();
}

void Engine::run_for(SimTime ticks) {
  for (SimTime i = 0; i < ticks; ++i) step();
}

}  // namespace appclass::sim
