// Internal helpers shared by the per-application model files.
#pragma once

#include "sim/workload.hpp"

namespace appclass::workloads::detail {

/// Builds a MemoryProfile in one expression.
inline sim::MemoryProfile mem_profile(double ws_mb, double intensity,
                                      double footprint_mb, double reuse) {
  sim::MemoryProfile m;
  m.working_set_mb = ws_mb;
  m.access_intensity = intensity;
  m.file_footprint_mb = footprint_mb;
  m.io_reuse = reuse;
  return m;
}

}  // namespace appclass::workloads::detail
