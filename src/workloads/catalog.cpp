// Name-based registry over the per-application factories in
// workloads/apps/ (one file per Table-2 program).
#include "workloads/catalog.hpp"

namespace appclass::workloads {

ModelPtr make_by_name(const std::string& name, int peer_vm) {
  if (name == "specseis_medium") return make_specseis(SeisDataSize::kMedium);
  if (name == "specseis_small") return make_specseis(SeisDataSize::kSmall);
  if (name == "postmark") return make_postmark(false);
  if (name == "postmark_nfs") return make_postmark(true);
  if (name == "pagebench") return make_pagebench();
  if (name == "ettcp") return make_ettcp(peer_vm);
  if (name == "netpipe") return make_netpipe(peer_vm);
  if (name == "autobench") return make_autobench();
  if (name == "sftp") return make_sftp();
  if (name == "bonnie") return make_bonnie();
  if (name == "stream") return make_stream();
  if (name == "ch3d") return make_ch3d();
  if (name == "simplescalar") return make_simplescalar();
  if (name == "vmd") return make_vmd();
  if (name == "xspim") return make_xspim();
  if (name == "idle") return make_idle(300.0);
  return nullptr;
}

std::vector<std::string> catalog_names() {
  return {"specseis_medium", "specseis_small", "postmark", "postmark_nfs",
          "pagebench",       "ettcp",          "netpipe",  "autobench",
          "sftp",            "bonnie",         "stream",   "ch3d",
          "simplescalar",    "vmd",            "xspim",    "idle"};
}

}  // namespace appclass::workloads
