// Generic multi-phase application model.
//
// Every batch benchmark in the paper's Table 2 is expressed as a sequence
// of `Phase`s: an amount of abstract work, a nominal rate at which the
// program attempts it, and a per-unit resource mix (CPU seconds, file
// blocks, network bytes). The simulator scales the whole mix by the granted
// fraction each tick; phase progress additionally responds to host CPU
// speed (for compute-bound phases), page-cache misses (for I/O-bound
// phases) and paging latency — which is how one parameterization of
// SPECseis96 reproduces both the CPU-intensive run in a 256 MB VM and the
// IO-and-paging run in a 32 MB VM.
#pragma once

#include <string>
#include <vector>

#include "sim/workload.hpp"

namespace appclass::workloads {

/// One execution phase of a batch application.
struct Phase {
  std::string name;
  /// Total abstract work units in the phase.
  double work_units = 1.0;
  /// Units per second the program attempts when nothing throttles it.
  double nominal_rate = 1.0;

  // Per-unit resource mix (consumed per work unit).
  double cpu_per_unit = 0.0;          ///< reference-core seconds
  double cpu_user_fraction = 0.9;     ///< user/system split of the CPU part
  double read_blocks_per_unit = 0.0;  ///< 1 KB file reads
  double write_blocks_per_unit = 0.0; ///< 1 KB file writes
  double net_in_per_unit = 0.0;       ///< bytes received
  double net_out_per_unit = 0.0;      ///< bytes sent
  int net_peer_vm = sim::AppDemand::kExternalPeer;

  /// How strongly phase progress scales with host CPU speed (1 = perfectly
  /// CPU-bound, 0 = CPU speed irrelevant).
  double speed_sensitivity = 0.0;
  /// How strongly phase progress suffers when its file I/O misses the page
  /// cache (1 = latency-bound on every miss, 0 = insensitive).
  double io_sensitivity = 0.0;

  /// Memory behaviour while this phase runs.
  sim::MemoryProfile mem;

  /// Lognormal sigma applied to the attempted rate each tick.
  double rate_jitter = 0.08;
  /// Probability that a tick is an "off" tick with near-zero demand
  /// (models synchronization stalls and inter-transaction gaps).
  double off_probability = 0.0;
};

/// A batch application built from consecutive phases. The whole phase list
/// may repeat `iterations` times (e.g. SPECseis96's compute+checkpoint
/// cycle per seismic stage).
class PhasedApp final : public sim::WorkloadModel {
 public:
  PhasedApp(std::string app_name, std::vector<Phase> phases,
            int iterations = 1);

  std::string_view name() const override { return name_; }
  sim::AppDemand demand(sim::SimTime now, linalg::Rng& rng) override;
  void advance(const sim::Grant& grant, sim::SimTime now,
               linalg::Rng& rng) override;
  bool finished() const override;
  sim::MemoryProfile memory() const override;

  /// Index of the phase currently executing (for tests/diagnostics).
  std::size_t current_phase() const noexcept { return phase_index_; }
  int remaining_iterations() const noexcept { return iterations_left_; }

 private:
  const Phase& phase() const { return phases_[phase_index_]; }
  void next_phase();

  std::string name_;
  std::vector<Phase> phases_;
  int iterations_left_;
  std::size_t phase_index_ = 0;
  double progress_ = 0.0;        // work units completed in current phase
  double attempted_rate_ = 0.0;  // rate attempted in the pending tick
  double stall_probability_ = 0.0;  // chance the next tick is an I/O stall
  bool done_ = false;
};

}  // namespace appclass::workloads
