#include "workloads/trace_replay.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>

#include "common/assert.hpp"

namespace appclass::workloads {

std::string trace_to_csv(const DemandTrace& trace) {
  std::ostringstream os;
  os << "# appclass-demand-trace v1 app=" << trace.app_name << '\n';
  os << "cpu,cpu_user_fraction,disk_read_blocks,disk_write_blocks,"
        "net_in_bytes,net_out_bytes,net_peer_vm,"
        "working_set_mb,access_intensity,file_footprint_mb,io_reuse\n";
  os.precision(17);
  for (const auto& t : trace.ticks) {
    os << t.demand.cpu << ',' << t.demand.cpu_user_fraction << ','
       << t.demand.disk_read_blocks << ',' << t.demand.disk_write_blocks
       << ',' << t.demand.net_in_bytes << ',' << t.demand.net_out_bytes
       << ',' << t.demand.net_peer_vm << ',' << t.memory.working_set_mb
       << ',' << t.memory.access_intensity << ','
       << t.memory.file_footprint_mb << ',' << t.memory.io_reuse << '\n';
  }
  return os.str();
}

namespace {

double parse_field(const std::string& line, std::size_t& pos) {
  const std::size_t end = line.find(',', pos);
  const std::size_t len =
      (end == std::string::npos ? line.size() : end) - pos;
  double v = 0.0;
  const char* begin = line.data() + pos;
  const auto [p, ec] = std::from_chars(begin, begin + len, v);
  if (ec != std::errc{} || p != begin + len)
    throw std::runtime_error("demand trace: bad numeric field in '" + line +
                             "'");
  pos = end == std::string::npos ? line.size() : end + 1;
  return v;
}

}  // namespace

DemandTrace trace_from_csv(const std::string& csv) {
  std::istringstream is(csv);
  std::string line;
  if (!std::getline(is, line) ||
      line.rfind("# appclass-demand-trace v1", 0) != 0)
    throw std::runtime_error("demand trace: bad header");
  DemandTrace trace;
  const auto app_pos = line.find("app=");
  if (app_pos != std::string::npos)
    trace.app_name = line.substr(app_pos + 4);
  if (!std::getline(is, line))
    throw std::runtime_error("demand trace: missing column header");
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    TraceRecord t;
    std::size_t pos = 0;
    t.demand.cpu = parse_field(line, pos);
    t.demand.cpu_user_fraction = parse_field(line, pos);
    t.demand.disk_read_blocks = parse_field(line, pos);
    t.demand.disk_write_blocks = parse_field(line, pos);
    t.demand.net_in_bytes = parse_field(line, pos);
    t.demand.net_out_bytes = parse_field(line, pos);
    t.demand.net_peer_vm = static_cast<int>(parse_field(line, pos));
    t.memory.working_set_mb = parse_field(line, pos);
    t.memory.access_intensity = parse_field(line, pos);
    t.memory.file_footprint_mb = parse_field(line, pos);
    t.memory.io_reuse = parse_field(line, pos);
    trace.ticks.push_back(t);
  }
  return trace;
}

TraceRecorder::TraceRecorder(std::unique_ptr<sim::WorkloadModel> inner)
    : inner_(std::move(inner)) {
  APPCLASS_EXPECTS(inner_ != nullptr);
  trace_.app_name = std::string(inner_->name());
}

sim::AppDemand TraceRecorder::demand(sim::SimTime now, linalg::Rng& rng) {
  const sim::AppDemand d = inner_->demand(now, rng);
  trace_.ticks.push_back(TraceRecord{d, inner_->memory()});
  return d;
}

void TraceRecorder::advance(const sim::Grant& grant, sim::SimTime now,
                            linalg::Rng& rng) {
  inner_->advance(grant, now, rng);
}

TraceReplayApp::TraceReplayApp(DemandTrace trace)
    : name_("replay:" + trace.app_name), trace_(std::move(trace)) {
  APPCLASS_EXPECTS(!trace_.empty());
}

sim::AppDemand TraceReplayApp::demand(sim::SimTime /*now*/,
                                      linalg::Rng& /*rng*/) {
  if (finished()) return {};
  return trace_.ticks[position_].demand;
}

void TraceReplayApp::advance(const sim::Grant& /*grant*/,
                             sim::SimTime /*now*/, linalg::Rng& /*rng*/) {
  if (!finished()) ++position_;
}

sim::MemoryProfile TraceReplayApp::memory() const {
  if (finished()) return {};
  return trace_.ticks[position_].memory;
}

}  // namespace appclass::workloads
