// sftp — encrypted upload of a 2 GB file: a short handshake/stat phase,
// then a long network-bound transfer whose sequential source-file reads
// hide behind readahead.
#include "workloads/catalog.hpp"
#include "workloads/detail.hpp"

namespace appclass::workloads {

ModelPtr make_sftp() {
  Phase handshake;
  handshake.name = "handshake";
  handshake.work_units = 5.0;
  handshake.nominal_rate = 1.0;
  handshake.cpu_per_unit = 0.15;
  handshake.read_blocks_per_unit = 2200.0;  // key material, file stat pass
  handshake.io_sensitivity = 1.0;
  handshake.mem = detail::mem_profile(8.0, 0.05, 20.0, 0.1);

  Phase transfer;
  transfer.name = "transfer";
  transfer.work_units = 225.0;
  transfer.nominal_rate = 1.0;
  transfer.cpu_per_unit = 0.22;       // encryption cost
  transfer.cpu_user_fraction = 0.6;
  transfer.net_out_per_unit = 11.0e6; // ~2 GB payload + protocol overhead
  transfer.net_in_per_unit = 0.4e6;
  transfer.read_blocks_per_unit = 1100.0;  // reading the source file
  transfer.io_sensitivity = 0.1;           // sequential readahead hides disk
  transfer.mem = detail::mem_profile(8.0, 0.05, 2048.0, 0.0);
  transfer.rate_jitter = 0.12;
  return std::make_unique<PhasedApp>(
      "sftp", std::vector<Phase>{handshake, transfer});
}

}  // namespace appclass::workloads
