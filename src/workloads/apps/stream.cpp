// STREAM — sustainable memory bandwidth benchmark. With vectors sized
// past VM RAM, the sweep thrashes: kernel writeback and cache churn show
// as block traffic on top of the swap stream, landing the run in the
// paper's IO-and-paging group.
#include "workloads/catalog.hpp"
#include "workloads/detail.hpp"

namespace appclass::workloads {

ModelPtr make_stream(double array_mb) {
  Phase sweep;
  sweep.name = "vector-sweep";
  sweep.work_units = 210.0;
  sweep.nominal_rate = 1.0;
  sweep.cpu_per_unit = 0.55;
  sweep.cpu_user_fraction = 0.85;
  // Under memory pressure the kernel's writeback and cache churn show up
  // as file-system block traffic on top of the swap stream.
  sweep.read_blocks_per_unit = 3400.0;
  sweep.write_blocks_per_unit = 1400.0;
  sweep.mem = detail::mem_profile(array_mb, 0.22, 0.0, 0.0);
  sweep.rate_jitter = 0.15;
  return std::make_unique<PhasedApp>("stream", std::vector<Phase>{sweep});
}

}  // namespace appclass::workloads
