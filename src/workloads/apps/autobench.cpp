// Autobench — httperf wrapper driving the monitored node as a web
// server: small request stream in, large response stream out, document
// tree served from page cache.
#include "workloads/catalog.hpp"
#include "workloads/detail.hpp"

namespace appclass::workloads {

ModelPtr make_autobench() {
  Phase serve;
  serve.name = "serve";
  serve.work_units = 860.0;
  serve.nominal_rate = 1.0;
  serve.cpu_per_unit = 0.30;
  serve.cpu_user_fraction = 0.30;
  serve.net_in_per_unit = 1.2e6;   // request stream from external clients
  serve.net_out_per_unit = 9.0e6;  // responses
  serve.read_blocks_per_unit = 150.0;  // document tree, fully cacheable
  serve.mem = detail::mem_profile(40.0, 0.1, 25.0, 0.9);
  serve.rate_jitter = 0.20;
  return std::make_unique<PhasedApp>("autobench", std::vector<Phase>{serve});
}

}  // namespace appclass::workloads
