// CH3D — curvilinear-grid hydrodynamics model (coastal simulation);
// CPU-intensive timestep loop with periodic history output. Table 4's
// concurrent-vs-sequential experiment pairs it with PostMark.
#include "workloads/catalog.hpp"
#include "workloads/detail.hpp"

namespace appclass::workloads {

ModelPtr make_ch3d(double work_seconds) {
  Phase hydro;
  hydro.name = "timestep-loop";
  hydro.work_units = work_seconds;
  hydro.nominal_rate = 1.0;
  hydro.cpu_per_unit = 1.0;
  hydro.cpu_user_fraction = 0.96;
  hydro.write_blocks_per_unit = 45.0;  // periodic history output
  hydro.speed_sensitivity = 1.0;
  hydro.mem = detail::mem_profile(70.0, 0.2, 40.0, 0.9);
  hydro.rate_jitter = 0.04;
  return std::make_unique<PhasedApp>("ch3d", std::vector<Phase>{hydro});
}

}  // namespace appclass::workloads
