// Ettcp — TCP throughput benchmark between two nodes; the paper's
// network-class trainer. Modelled as a steady unidirectional stream with
// an ACK return path, at the traffic scale typical of the test apps.
#include "workloads/catalog.hpp"
#include "workloads/detail.hpp"

namespace appclass::workloads {

ModelPtr make_ettcp(int peer_vm) {
  Phase stream_phase;
  stream_phase.name = "tcp-stream";
  stream_phase.work_units = 300.0;
  stream_phase.nominal_rate = 1.0;
  stream_phase.cpu_per_unit = 0.22;
  stream_phase.cpu_user_fraction = 0.25;
  stream_phase.net_out_per_unit = 12.0e6;
  stream_phase.net_in_per_unit = 1.0e6;  // ACK stream
  stream_phase.net_peer_vm = peer_vm;
  stream_phase.rate_jitter = 0.10;
  stream_phase.mem = detail::mem_profile(12.0, 0.1, 0.0, 0.0);
  return std::make_unique<PhasedApp>("ettcp",
                                     std::vector<Phase>{stream_phase});
}

}  // namespace appclass::workloads
