// SPECseis96 — seismic processing (SPEC HPG); the paper's CPU-intensive
// exemplar and its environment-sensitivity case study. The model
// alternates long compute stages (streaming cacheable trace reads) with
// checkpoint I/O; in a memory-starved VM the page cache collapses, reads
// hit disk, paging appears, and the run splits between the CPU and IO
// classes exactly as the paper's A/B contrast shows.
#include "workloads/catalog.hpp"
#include "workloads/detail.hpp"

namespace appclass::workloads {

ModelPtr make_specseis(SeisDataSize size) {
  // Seismic processing alternates long compute stages with checkpoint I/O.
  // The compute stage streams trace data: with a healthy page cache the
  // re-reads are absorbed (run reads as CPU-intensive); in a small-memory
  // VM the same reads hit disk and paging appears.
  const sim::MemoryProfile mem =
      size == SeisDataSize::kMedium
          ? detail::mem_profile(/*ws=*/55.0, /*intensity=*/0.35, /*footprint=*/150.0,
                        /*reuse=*/0.95)
          : detail::mem_profile(/*ws=*/30.0, /*intensity=*/0.2, /*footprint=*/55.0,
                        /*reuse=*/0.95);

  Phase compute;
  compute.name = "compute";
  compute.work_units = size == SeisDataSize::kMedium ? 2050.0 : 62.0;
  compute.nominal_rate = 1.0;
  compute.cpu_per_unit = 1.0;
  compute.cpu_user_fraction = 0.97;
  compute.read_blocks_per_unit = 1400.0;  // streamed trace data (cacheable)
  compute.write_blocks_per_unit =
      size == SeisDataSize::kMedium ? 400.0 : 60.0;
  compute.speed_sensitivity = 1.0;
  compute.io_sensitivity = 0.42;
  compute.mem = mem;
  compute.rate_jitter = 0.05;

  Phase checkpoint;
  checkpoint.name = "checkpoint";
  checkpoint.work_units = size == SeisDataSize::kMedium ? 15.0 : 4.0;
  checkpoint.nominal_rate = 1.0;
  checkpoint.cpu_per_unit = 0.22;
  checkpoint.cpu_user_fraction = 0.45;
  checkpoint.read_blocks_per_unit =
      size == SeisDataSize::kMedium ? 1500.0 : 500.0;
  checkpoint.write_blocks_per_unit =
      size == SeisDataSize::kMedium ? 3800.0 : 1300.0;
  checkpoint.speed_sensitivity = 0.1;
  checkpoint.io_sensitivity = 1.0;
  checkpoint.mem = mem;
  checkpoint.rate_jitter = 0.15;

  const int stages = size == SeisDataSize::kMedium ? 8 : 8;
  const char* name =
      size == SeisDataSize::kMedium ? "specseis_medium" : "specseis_small";
  return std::make_unique<PhasedApp>(name, std::vector<Phase>{compute,
                                                              checkpoint},
                                     stages);
}

}  // namespace appclass::workloads
