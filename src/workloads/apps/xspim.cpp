// XSpim — MIPS assembly simulator with an X GUI; short interactive
// session dominated by load/step disk activity with think-time gaps.
#include "workloads/catalog.hpp"
#include "workloads/detail.hpp"

namespace appclass::workloads {

ModelPtr make_xspim(double session_seconds) {
  ActivityState think;
  think.name = "think";
  think.mean_dwell_s = 10.0;
  think.weight = 0.25;
  think.cpu = 0.01;
  think.mem = detail::mem_profile(20.0, 0.05, 0.0, 0.0);

  ActivityState step_program;
  step_program.name = "load-and-step";
  step_program.mean_dwell_s = 18.0;
  step_program.weight = 0.75;
  step_program.cpu = 0.08;
  step_program.cpu_user_fraction = 0.5;
  step_program.read_blocks = 5200.0;
  step_program.write_blocks = 2000.0;
  step_program.mem = detail::mem_profile(20.0, 0.05, 80.0, 0.1);

  return std::make_unique<InteractiveApp>(
      "xspim", std::vector<ActivityState>{think, step_program},
      session_seconds);
}

}  // namespace appclass::workloads
