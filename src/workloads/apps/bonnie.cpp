// Bonnie — classic Unix file-system benchmark: block write, rewrite,
// char-at-a-time I/O (CPU-heavy getc/putc loops), seeks, and a
// memory-mapped rewrite pass whose region exceeds VM RAM (the paper's
// Bonnie row shows ~10% paging).
#include "workloads/catalog.hpp"
#include "workloads/detail.hpp"

namespace appclass::workloads {

ModelPtr make_bonnie() {
  const sim::MemoryProfile mem = detail::mem_profile(60.0, 0.35, 350.0, 0.1);
  Phase block_write;
  block_write.name = "block-write";
  block_write.work_units = 150.0;
  block_write.nominal_rate = 1.0;
  block_write.cpu_per_unit = 0.18;
  block_write.cpu_user_fraction = 0.2;
  block_write.write_blocks_per_unit = 7000.0;
  block_write.mem = mem;

  Phase rewrite;
  rewrite.name = "rewrite";
  rewrite.work_units = 120.0;
  rewrite.nominal_rate = 1.0;
  rewrite.cpu_per_unit = 0.2;
  rewrite.cpu_user_fraction = 0.25;
  rewrite.read_blocks_per_unit = 3600.0;
  rewrite.write_blocks_per_unit = 3600.0;
  rewrite.mem = mem;

  Phase char_io;
  char_io.name = "char-io";
  char_io.work_units = 18.0;
  char_io.nominal_rate = 1.0;
  char_io.cpu_per_unit = 0.45;  // getc/putc loops burn CPU
  char_io.cpu_user_fraction = 0.8;
  char_io.read_blocks_per_unit = 2200.0;
  char_io.write_blocks_per_unit = 2200.0;
  char_io.mem = mem;

  Phase seeks;
  seeks.name = "seeks";
  seeks.work_units = 60.0;
  seeks.nominal_rate = 1.0;
  seeks.cpu_per_unit = 0.12;
  seeks.cpu_user_fraction = 0.3;
  seeks.read_blocks_per_unit = 3800.0;
  seeks.mem = mem;

  // Memory-mapped rewrite pass: the file region exceeds VM RAM, so this
  // segment pages (the paper's Bonnie row shows ~10% paging).
  Phase mmap_rewrite;
  mmap_rewrite.name = "mmap-rewrite";
  mmap_rewrite.work_units = 45.0;
  mmap_rewrite.nominal_rate = 1.0;
  mmap_rewrite.cpu_per_unit = 0.3;
  mmap_rewrite.cpu_user_fraction = 0.4;
  mmap_rewrite.write_blocks_per_unit = 900.0;
  mmap_rewrite.mem = detail::mem_profile(330.0, 0.8, 0.0, 0.0);

  return std::make_unique<PhasedApp>(
      "bonnie",
      std::vector<Phase>{block_write, rewrite, char_io, seeks, mmap_rewrite});
}

}  // namespace appclass::workloads
