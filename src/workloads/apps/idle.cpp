// Idle — nothing but the guest OS's background daemons; the training
// source for the idle class.
#include "workloads/catalog.hpp"
#include "workloads/detail.hpp"

namespace appclass::workloads {

ModelPtr make_idle(double duration_seconds) {
  Phase nothing;
  nothing.name = "idle";
  nothing.work_units = duration_seconds;
  nothing.nominal_rate = 1.0;
  nothing.rate_jitter = 0.0;
  // Zero demand: only the VM's background daemons are visible.
  return std::make_unique<PhasedApp>("idle", std::vector<Phase>{nothing});
}

}  // namespace appclass::workloads
