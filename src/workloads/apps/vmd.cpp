// VMD — interactive molecular visualization over a VNC remote display.
// A Markov session alternating think time (idle), input-file uploads
// (disk + network-in), and GUI interaction (network-out) — Figure 3(d)'s
// three-cluster mixture.
#include "workloads/catalog.hpp"
#include "workloads/detail.hpp"

namespace appclass::workloads {

ModelPtr make_vmd(double session_seconds) {
  // Figure 3(d): idle while the user thinks, IO-intensive while an input
  // file is uploaded, network-intensive while the GUI streams over VNC.
  ActivityState think;
  think.name = "think";
  think.mean_dwell_s = 45.0;
  think.weight = 0.37;
  think.cpu = 0.01;
  think.mem = detail::mem_profile(90.0, 0.05, 0.0, 0.0);

  ActivityState upload;
  upload.name = "upload-input";
  upload.mean_dwell_s = 40.0;
  upload.weight = 0.40;
  upload.cpu = 0.12;
  upload.cpu_user_fraction = 0.3;
  upload.read_blocks = 2600.0;
  upload.write_blocks = 4200.0;
  upload.net_in_bytes = 0.6e6;  // file arriving from the user's machine
  upload.mem = detail::mem_profile(90.0, 0.1, 200.0, 0.1);

  ActivityState vnc;
  vnc.name = "vnc-interaction";
  vnc.mean_dwell_s = 30.0;
  vnc.weight = 0.23;
  vnc.cpu = 0.18;
  vnc.cpu_user_fraction = 0.6;
  vnc.net_out_bytes = 12.0e6;  // remote-display frame stream
  vnc.jitter = 0.15;
  vnc.net_in_bytes = 0.3e6;    // mouse/keyboard events
  vnc.mem = detail::mem_profile(110.0, 0.1, 0.0, 0.0);

  return std::make_unique<InteractiveApp>(
      "vmd", std::vector<ActivityState>{think, upload, vnc}, session_seconds);
}

}  // namespace appclass::workloads
