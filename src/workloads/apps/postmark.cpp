// PostMark — NetApp's small-file filesystem benchmark; the paper's
// IO-intensive trainer and test app. Local-directory runs hammer the
// virtual disk with mixed read/write transactions at a strongly varying
// rate; NFS-mounted runs send the same transaction stream over the wire
// and flip the run into the network class (the paper's PostMark_NFS row).
#include "workloads/catalog.hpp"
#include "workloads/detail.hpp"

namespace appclass::workloads {

ModelPtr make_postmark(bool nfs_mounted) {
  Phase txn;
  txn.name = "transactions";
  txn.work_units = 252.0;
  txn.nominal_rate = 1.0;
  txn.cpu_per_unit = 0.22;
  txn.cpu_user_fraction = 0.25;
  // Transaction phases come and go: the rate swings widely, which also
  // gives the trained IO cluster spread toward moderate block rates.
  txn.rate_jitter = 0.35;
  txn.off_probability = 0.03;
  txn.mem = detail::mem_profile(25.0, 0.3, 450.0, 0.12);
  if (nfs_mounted) {
    // Same transaction stream, but every file operation crosses the wire
    // to the NFS server: the run flips from IO-intensive to
    // network-intensive (paper's PostMark_NFS row).
    txn.net_in_per_unit = 4.2e6;   // file reads come back over NFS
    txn.net_out_per_unit = 4.8e6;  // writes + RPC traffic
    txn.cpu_per_unit = 0.34;
    txn.cpu_user_fraction = 0.25;
    txn.work_units = 380.0;  // NFS latency stretches the run (77 samples)
    txn.mem = detail::mem_profile(25.0, 0.3, 0.0, 0.0);
    return std::make_unique<PhasedApp>("postmark_nfs",
                                       std::vector<Phase>{txn});
  }
  txn.read_blocks_per_unit = 4200.0;
  txn.write_blocks_per_unit = 4800.0;
  // PostMark's nominal rate is already a measured-on-disk rate.
  txn.io_sensitivity = 0.0;
  return std::make_unique<PhasedApp>("postmark", std::vector<Phase>{txn});
}

}  // namespace appclass::workloads
