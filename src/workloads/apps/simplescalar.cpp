// SimpleScalar — processor microarchitecture simulator; the cleanest
// CPU-intensive profile in Table 3 (100% cpu).
#include "workloads/catalog.hpp"
#include "workloads/detail.hpp"

namespace appclass::workloads {

ModelPtr make_simplescalar(double work_seconds) {
  Phase simulate;
  simulate.name = "simulate";
  simulate.work_units = work_seconds;
  simulate.nominal_rate = 1.0;
  simulate.cpu_per_unit = 1.0;
  simulate.cpu_user_fraction = 0.985;
  simulate.speed_sensitivity = 1.0;
  simulate.mem = detail::mem_profile(55.0, 0.15, 15.0, 0.95);
  simulate.rate_jitter = 0.03;
  return std::make_unique<PhasedApp>("simplescalar",
                                     std::vector<Phase>{simulate});
}

}  // namespace appclass::workloads
