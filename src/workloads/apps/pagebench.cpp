// Pagebench — the paper's synthetic trainer for the paging class:
// initializes and updates an array larger than VM memory, generating a
// steady swap stream.
#include "workloads/catalog.hpp"
#include "workloads/detail.hpp"

namespace appclass::workloads {

ModelPtr make_pagebench(double array_mb) {
  Phase walk;
  walk.name = "array-walk";
  walk.work_units = 220.0;
  walk.nominal_rate = 1.0;
  walk.cpu_per_unit = 0.45;
  walk.cpu_user_fraction = 0.6;
  walk.write_blocks_per_unit = 40.0;
  walk.mem = detail::mem_profile(array_mb, 1.0, 0.0, 0.0);
  walk.rate_jitter = 0.12;
  return std::make_unique<PhasedApp>("pagebench", std::vector<Phase>{walk});
}

}  // namespace appclass::workloads
