// NetPIPE — protocol-independent network performance probe: a ping-pong
// exchange whose message size ramps from bytes to megabytes (heavy
// tick-to-tick spread), preceded by a short disk-bound setup phase (the
// paper's NetPIPE row shows ~4% io and ~4% idle around a ~92% network
// core).
#include "workloads/catalog.hpp"
#include "workloads/detail.hpp"

namespace appclass::workloads {

ModelPtr make_netpipe(int peer_vm) {
  // Short setup phase touching the filesystem (the paper's NetPIPE row
  // shows ~4% I/O and ~4% idle around a 92% network core).
  Phase setup;
  setup.name = "setup";
  setup.work_units = 12.0;
  setup.nominal_rate = 1.0;
  setup.cpu_per_unit = 0.08;
  setup.read_blocks_per_unit = 3000.0;
  setup.write_blocks_per_unit = 1100.0;
  setup.io_sensitivity = 1.0;
  setup.mem = detail::mem_profile(10.0, 0.05, 200.0, 0.1);

  Phase pingpong;
  pingpong.name = "ping-pong";
  pingpong.work_units = 345.0;
  pingpong.nominal_rate = 1.0;
  pingpong.cpu_per_unit = 0.18;
  pingpong.cpu_user_fraction = 0.30;
  pingpong.net_in_per_unit = 35.0e6;
  pingpong.net_out_per_unit = 35.0e6;
  pingpong.net_peer_vm = peer_vm;
  // Message sizes ramp from bytes to megabytes: heavy tick-to-tick spread.
  pingpong.rate_jitter = 0.35;
  pingpong.off_probability = 0.02;  // brief gaps between size sweeps
  pingpong.mem = detail::mem_profile(10.0, 0.05, 0.0, 0.0);

  return std::make_unique<PhasedApp>("netpipe",
                                     std::vector<Phase>{setup, pingpong});
}

}  // namespace appclass::workloads
