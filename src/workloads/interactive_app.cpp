#include "workloads/interactive_app.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace appclass::workloads {

InteractiveApp::InteractiveApp(std::string app_name,
                               std::vector<ActivityState> states,
                               double session_s)
    : name_(std::move(app_name)),
      states_(std::move(states)),
      session_remaining_s_(session_s) {
  APPCLASS_EXPECTS(!states_.empty());
  APPCLASS_EXPECTS(session_s > 0.0);
  for (const auto& s : states_) {
    APPCLASS_EXPECTS(s.mean_dwell_s > 0.0);
    APPCLASS_EXPECTS(s.weight >= 0.0);
  }
}

void InteractiveApp::maybe_transition(linalg::Rng& rng) {
  if (!dwell_initialized_) {
    dwell_remaining_s_ = rng.exponential(1.0 / states_[0].mean_dwell_s);
    dwell_initialized_ = true;
    return;
  }
  if (dwell_remaining_s_ > 0.0) return;
  // Weighted choice of the next state (self-transitions allowed — they just
  // extend the stay).
  double total = 0.0;
  for (const auto& s : states_) total += s.weight;
  APPCLASS_ASSERT(total > 0.0);
  double x = rng.uniform(0.0, total);
  std::size_t next = states_.size() - 1;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (x < states_[i].weight) {
      next = i;
      break;
    }
    x -= states_[i].weight;
  }
  state_index_ = next;
  dwell_remaining_s_ = rng.exponential(1.0 / states_[next].mean_dwell_s);
}

sim::AppDemand InteractiveApp::demand(sim::SimTime /*now*/, linalg::Rng& rng) {
  sim::AppDemand d;
  if (finished()) return d;
  maybe_transition(rng);
  const ActivityState& s = states_[state_index_];
  const double scale = s.jitter > 0.0 ? rng.lognormal(0.0, s.jitter) : 1.0;
  d.cpu = s.cpu * scale;
  d.cpu_user_fraction = s.cpu_user_fraction;
  d.disk_read_blocks = s.read_blocks * scale;
  d.disk_write_blocks = s.write_blocks * scale;
  d.net_in_bytes = s.net_in_bytes * scale;
  d.net_out_bytes = s.net_out_bytes * scale;
  d.net_peer_vm = s.net_peer_vm;
  return d;
}

void InteractiveApp::advance(const sim::Grant& /*grant*/, sim::SimTime /*now*/,
                             linalg::Rng& /*rng*/) {
  // Interactive sessions progress with wall-clock time, not with granted
  // resources — a slow VM just feels sluggish to the user.
  session_remaining_s_ -= 1.0;
  dwell_remaining_s_ -= 1.0;
}

bool InteractiveApp::finished() const { return session_remaining_s_ <= 0.0; }

sim::MemoryProfile InteractiveApp::memory() const {
  return finished() ? sim::MemoryProfile{} : states_[state_index_].mem;
}

}  // namespace appclass::workloads
