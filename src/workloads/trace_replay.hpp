// Demand-trace recording and replay.
//
// The synthetic Table-2 models approximate the paper's benchmarks; when a
// *real* application trace is available (e.g. converted from sar/vmstat
// logs of a production run), it can drive the simulator directly. A
// `DemandTrace` is a per-second sequence of resource demands; the
// `TraceRecorder` captures one from any running model, and the
// `TraceReplayApp` plays one back as a first-class workload. Traces
// round-trip through CSV for archival.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/workload.hpp"

namespace appclass::workloads {

/// One recorded tick of application demand.
struct TraceRecord {
  sim::AppDemand demand;
  sim::MemoryProfile memory;
};

/// A per-second demand trace.
struct DemandTrace {
  std::string app_name;
  std::vector<TraceRecord> ticks;

  std::size_t size() const noexcept { return ticks.size(); }
  bool empty() const noexcept { return ticks.empty(); }
};

/// Serializes a trace to CSV (one row per tick).
std::string trace_to_csv(const DemandTrace& trace);

/// Parses a trace written by `trace_to_csv`. Throws std::runtime_error on
/// malformed input.
DemandTrace trace_from_csv(const std::string& csv);

/// Wraps a model, recording its demand/memory each tick while delegating
/// all behaviour. Retrieve the trace after the run.
class TraceRecorder final : public sim::WorkloadModel {
 public:
  explicit TraceRecorder(std::unique_ptr<sim::WorkloadModel> inner);

  std::string_view name() const override { return inner_->name(); }
  sim::AppDemand demand(sim::SimTime now, linalg::Rng& rng) override;
  void advance(const sim::Grant& grant, sim::SimTime now,
               linalg::Rng& rng) override;
  bool finished() const override { return inner_->finished(); }
  sim::MemoryProfile memory() const override { return inner_->memory(); }

  const DemandTrace& trace() const noexcept { return trace_; }

 private:
  std::unique_ptr<sim::WorkloadModel> inner_;
  DemandTrace trace_;
};

/// Replays a recorded trace tick by tick. The app finishes when the trace
/// is exhausted (progress is wall-clock, like the interactive model: a
/// trace is a fixed-duration recording).
class TraceReplayApp final : public sim::WorkloadModel {
 public:
  explicit TraceReplayApp(DemandTrace trace);

  std::string_view name() const override { return name_; }
  sim::AppDemand demand(sim::SimTime now, linalg::Rng& rng) override;
  void advance(const sim::Grant& grant, sim::SimTime now,
               linalg::Rng& rng) override;
  bool finished() const override { return position_ >= trace_.size(); }
  sim::MemoryProfile memory() const override;

  std::size_t position() const noexcept { return position_; }

 private:
  std::string name_;
  DemandTrace trace_;
  std::size_t position_ = 0;
};

}  // namespace appclass::workloads
