// The application catalog: models of every program in the paper's Table 2.
//
// Each factory returns a fresh `WorkloadModel` parameterized to stress the
// same dominant resources, with the same qualitative mix and similar
// standalone run time, as the real benchmark did in the paper's testbed.
// The parameter values are calibration targets against Table 3 (class
// compositions) and Table 4 / Figures 4-5 (run times and throughputs);
// EXPERIMENTS.md records how closely the reproduction lands.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/workload.hpp"
#include "workloads/interactive_app.hpp"
#include "workloads/phased_app.hpp"

namespace appclass::workloads {

using ModelPtr = std::unique_ptr<sim::WorkloadModel>;

/// Input data sizes for SPECseis96 (the paper runs medium and small).
enum class SeisDataSize { kSmall, kMedium };

/// SPECseis96 — seismic processing; alternating compute stages and
/// checkpoint I/O. CPU-intensive given enough page cache; IO-and-paging
/// intensive in a memory-starved VM (the paper's A/B/C contrast).
ModelPtr make_specseis(SeisDataSize size);

/// PostMark — small-file filesystem transaction benchmark (IO-intensive).
/// With `nfs_mounted`, the working directory is remote and all file traffic
/// becomes network traffic (the paper's PostMark_NFS row).
ModelPtr make_postmark(bool nfs_mounted = false);

/// Pagebench — the paper's synthetic trainer for the paging class: walks an
/// array larger than VM memory. `array_mb` defaults to 384 MB against the
/// standard 256 MB VM.
ModelPtr make_pagebench(double array_mb = 384.0);

/// Ettcp — TCP throughput benchmark between two nodes; trainer for the
/// network class. `peer_vm` is the engine VmId of the receiving node.
ModelPtr make_ettcp(int peer_vm);

/// NetPIPE — protocol-independent ping-pong network probe with ramping
/// message sizes.
ModelPtr make_netpipe(int peer_vm);

/// Autobench/httperf — the monitored node serves an automated web workload.
ModelPtr make_autobench();

/// sftp — encrypted upload of a 2 GB file to a remote host.
ModelPtr make_sftp();

/// Bonnie — Unix file-system benchmark (block/char read/write phases).
ModelPtr make_bonnie();

/// Stream — sustainable memory bandwidth; with an array exceeding VM RAM it
/// lands in the IO-and-paging group like the paper's run.
ModelPtr make_stream(double array_mb = 330.0);

/// CH3D — curvilinear-grid hydrodynamics model (CPU-intensive).
/// `work_seconds` is the standalone reference run time (Table 4 uses 488 s).
ModelPtr make_ch3d(double work_seconds = 488.0);

/// SimpleScalar — processor microarchitecture simulator (CPU-intensive).
ModelPtr make_simplescalar(double work_seconds = 310.0);

/// VMD — interactive molecular visualization over a VNC remote display.
ModelPtr make_vmd(double session_seconds = 430.0);

/// XSpim — MIPS assembly simulator with an X GUI; short interactive session.
ModelPtr make_xspim(double session_seconds = 45.0);

/// Idle — nothing but background daemons, for the idle training class.
ModelPtr make_idle(double duration_seconds);

/// Creates a model by catalog name ("specseis_medium", "postmark",
/// "postmark_nfs", "pagebench", "ettcp", "netpipe", "autobench", "sftp",
/// "bonnie", "stream", "ch3d", "simplescalar", "vmd", "xspim", "idle").
/// Network apps get `peer_vm` as their remote endpoint. Returns nullptr for
/// unknown names.
ModelPtr make_by_name(const std::string& name, int peer_vm = -1);

/// All catalog names accepted by make_by_name.
std::vector<std::string> catalog_names();

}  // namespace appclass::workloads
