// Interactive-session application model.
//
// User-interactive programs (the paper's VMD and XSpim rows) do not march
// through fixed phases: they hop between activity states — thinking (idle),
// uploading input files (I/O), driving a remote display (network) — with
// random dwell times. This model is a continuous-time Markov chain over
// such states, run for a fixed session length.
#pragma once

#include <string>
#include <vector>

#include "sim/workload.hpp"

namespace appclass::workloads {

/// One activity state of an interactive session.
struct ActivityState {
  std::string name;
  /// Mean dwell time in this state, seconds (exponentially distributed).
  double mean_dwell_s = 30.0;
  /// Relative probability of entering this state on a transition.
  double weight = 1.0;

  // Demand while in the state (same units as sim::AppDemand).
  double cpu = 0.0;
  double cpu_user_fraction = 0.9;
  double read_blocks = 0.0;
  double write_blocks = 0.0;
  double net_in_bytes = 0.0;
  double net_out_bytes = 0.0;
  int net_peer_vm = sim::AppDemand::kExternalPeer;
  /// Lognormal sigma on each tick's demand scale.
  double jitter = 0.25;

  sim::MemoryProfile mem;
};

class InteractiveApp final : public sim::WorkloadModel {
 public:
  /// `session_s` is the total session duration; the app starts in state 0.
  InteractiveApp(std::string app_name, std::vector<ActivityState> states,
                 double session_s);

  std::string_view name() const override { return name_; }
  sim::AppDemand demand(sim::SimTime now, linalg::Rng& rng) override;
  void advance(const sim::Grant& grant, sim::SimTime now,
               linalg::Rng& rng) override;
  bool finished() const override;
  sim::MemoryProfile memory() const override;

  std::size_t current_state() const noexcept { return state_index_; }

 private:
  void maybe_transition(linalg::Rng& rng);

  std::string name_;
  std::vector<ActivityState> states_;
  double session_remaining_s_;
  std::size_t state_index_ = 0;
  double dwell_remaining_s_ = 0.0;
  bool dwell_initialized_ = false;
};

}  // namespace appclass::workloads
