#include "workloads/phased_app.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace appclass::workloads {

PhasedApp::PhasedApp(std::string app_name, std::vector<Phase> phases,
                     int iterations)
    : name_(std::move(app_name)),
      phases_(std::move(phases)),
      iterations_left_(iterations) {
  APPCLASS_EXPECTS(!phases_.empty());
  APPCLASS_EXPECTS(iterations >= 1);
  for (const auto& p : phases_) {
    APPCLASS_EXPECTS(p.work_units > 0.0);
    APPCLASS_EXPECTS(p.nominal_rate > 0.0);
  }
}

sim::AppDemand PhasedApp::demand(sim::SimTime /*now*/, linalg::Rng& rng) {
  sim::AppDemand d;
  if (done_) {
    attempted_rate_ = 0.0;
    return d;
  }
  const Phase& p = phase();
  double rate = p.nominal_rate;
  if (p.rate_jitter > 0.0) rate *= rng.lognormal(0.0, p.rate_jitter);
  if (p.off_probability > 0.0 && rng.bernoulli(p.off_probability)) rate = 0.0;

  // Latency stalls (cache misses, paging) make execution bimodal: the
  // process alternates between full-speed work ticks and I/O-wait ticks in
  // which it drains queued blocks at disk speed while barely touching the
  // CPU. This alternation is what lets one SPECseis96 parameterization
  // read as CPU-intensive in a large-memory VM and split between the CPU
  // and IO classes in a small one (the paper's A/B contrast).
  if (stall_probability_ > 0.0 && rng.bernoulli(stall_probability_)) {
    attempted_rate_ = 0.0;  // no forward progress while blocked
    constexpr double kStallCpuFraction = 0.12;
    constexpr double kStallIoBurst = 2.5;
    d.cpu = kStallCpuFraction * rate * p.cpu_per_unit;
    d.cpu_user_fraction = 0.2;  // mostly kernel time while waiting
    d.disk_read_blocks = kStallIoBurst * rate * p.read_blocks_per_unit;
    d.disk_write_blocks = kStallIoBurst * rate * p.write_blocks_per_unit;
    return d;
  }

  // Never attempt more than what's left in the phase.
  rate = std::min(rate, p.work_units - progress_);
  attempted_rate_ = std::max(rate, 0.0);

  d.cpu = attempted_rate_ * p.cpu_per_unit;
  d.cpu_user_fraction = p.cpu_user_fraction;
  d.disk_read_blocks = attempted_rate_ * p.read_blocks_per_unit;
  d.disk_write_blocks = attempted_rate_ * p.write_blocks_per_unit;
  d.net_in_bytes = attempted_rate_ * p.net_in_per_unit;
  d.net_out_bytes = attempted_rate_ * p.net_out_per_unit;
  d.net_peer_vm = p.net_peer_vm;
  return d;
}

void PhasedApp::advance(const sim::Grant& grant, sim::SimTime /*now*/,
                        linalg::Rng& /*rng*/) {
  if (done_) return;
  const Phase& p = phase();
  // Update the stall probability for the next tick from this tick's
  // latency feedback. Capped below 1 so a brutally thrashing app still
  // makes (slow) forward progress.
  const double io_mult = 1.0 - p.io_sensitivity * (1.0 - grant.io_penalty);
  const double latency_mult = std::max(io_mult * grant.paging_penalty, 0.05);
  stall_probability_ = std::clamp(1.0 - latency_mult, 0.0, 0.95);
  if (attempted_rate_ <= 0.0) return;
  // Latency stalls surface as whole stalled ticks (see demand()); work
  // ticks run at full speed scaled by the allocator's share and host speed.
  const double speed_mult =
      1.0 + p.speed_sensitivity * (grant.cpu_speed - 1.0);
  progress_ += attempted_rate_ * std::max(grant.fraction * speed_mult, 0.0);
  attempted_rate_ = 0.0;
  if (progress_ >= phase().work_units - 1e-9) next_phase();
}

void PhasedApp::next_phase() {
  progress_ = 0.0;
  stall_probability_ = 0.0;
  ++phase_index_;
  if (phase_index_ >= phases_.size()) {
    phase_index_ = 0;
    if (--iterations_left_ <= 0) done_ = true;
  }
}

bool PhasedApp::finished() const { return done_; }

sim::MemoryProfile PhasedApp::memory() const {
  return done_ ? sim::MemoryProfile{} : phase().mem;
}

}  // namespace appclass::workloads
