// Ganglia-style cluster aggregation (gmetad).
//
// gmond daemons announce per-node metrics; gmetad listens and maintains
// the cluster view: the freshest snapshot per node, node liveness, and
// cluster-wide summaries (sums and means of every metric). Schedulers use
// the summaries for host/VM selection without touching raw streams.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "metrics/snapshot.hpp"
#include "monitor/bus.hpp"

namespace appclass::monitor {

/// Cluster-wide aggregate of one metric.
struct MetricSummary {
  double sum = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t nodes = 0;
};

class Gmetad {
 public:
  /// Nodes whose last announcement is older than `liveness_timeout_s` are
  /// considered dead and excluded from summaries.
  explicit Gmetad(MetricBus& bus, metrics::SimTime liveness_timeout_s = 60);
  ~Gmetad();

  Gmetad(const Gmetad&) = delete;
  Gmetad& operator=(const Gmetad&) = delete;

  /// Number of nodes ever seen.
  std::size_t node_count() const;

  /// Node IPs currently considered alive (as of the newest announcement).
  std::vector<std::string> live_nodes() const;

  /// Freshest snapshot of a node, or nullopt if unseen.
  std::optional<metrics::Snapshot> latest(const std::string& node_ip) const;

  /// Cluster summary of one metric over live nodes (nullopt when no node
  /// is alive).
  std::optional<MetricSummary> summary(metrics::MetricId id) const;

  /// Convenience: the live node with the largest / smallest current value
  /// of a metric (e.g. most idle CPU), or nullopt when none alive.
  std::optional<std::string> argmax(metrics::MetricId id) const;
  std::optional<std::string> argmin(metrics::MetricId id) const;

 private:
  void on_announce(const metrics::Snapshot& snapshot);
  bool alive(const metrics::Snapshot& snapshot) const;

  MetricBus& bus_;
  metrics::SimTime liveness_timeout_s_;
  SubscriptionId subscription_;
  metrics::SimTime newest_time_ = 0;
  std::map<std::string, metrics::Snapshot> latest_;
};

}  // namespace appclass::monitor
