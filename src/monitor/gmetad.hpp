// Ganglia-style cluster aggregation (gmetad).
//
// gmond daemons announce per-node metrics; gmetad listens and maintains
// the cluster view: the freshest snapshot per node, node liveness, and
// cluster-wide summaries (sums and means of every metric). Schedulers use
// the summaries for host/VM selection without touching raw streams, and
// can subscribe to node death/recovery events to react to a degraded
// monitoring plane (a node gone quiet is indistinguishable from a node
// gone down — either way, stop scheduling onto it).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "metrics/snapshot.hpp"
#include "monitor/bus.hpp"

namespace appclass::monitor {

/// Cluster-wide aggregate of one metric.
struct MetricSummary {
  double sum = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t nodes = 0;
};

/// A liveness transition observed by gmetad.
struct NodeEvent {
  enum class Kind { kDeath, kRecovery };

  std::string node_ip;
  /// Cluster time at which the transition was detected (for deaths, the
  /// newest announcement time that exposed the silence).
  metrics::SimTime time = 0;
  Kind kind = Kind::kDeath;
};

class Gmetad {
 public:
  using NodeEventCallback = std::function<void(const NodeEvent&)>;

  /// Nodes whose last announcement is older than `liveness_timeout_s` are
  /// considered dead and excluded from summaries.
  explicit Gmetad(MetricBus& bus, metrics::SimTime liveness_timeout_s = 60);
  ~Gmetad();

  Gmetad(const Gmetad&) = delete;
  Gmetad& operator=(const Gmetad&) = delete;

  /// Number of nodes ever seen.
  std::size_t node_count() const;

  /// Node IPs currently considered alive (as of the newest announcement).
  std::vector<std::string> live_nodes() const;

  /// Node IPs currently considered dead (seen once, then silent beyond
  /// the liveness timeout).
  std::vector<std::string> dead_nodes() const;

  /// Called on every detected death and recovery. Death is detected when
  /// another node's announcement advances cluster time past the silent
  /// node's timeout; recovery when the dead node announces again.
  void on_node_event(NodeEventCallback callback);

  /// Freshest snapshot of a node, or nullopt if unseen.
  std::optional<metrics::Snapshot> latest(const std::string& node_ip) const;

  /// Cluster summary of one metric over live nodes (nullopt when no node
  /// is alive).
  std::optional<MetricSummary> summary(metrics::MetricId id) const;

  /// Convenience: the live node with the largest / smallest current value
  /// of a metric (e.g. most idle CPU), or nullopt when none alive.
  std::optional<std::string> argmax(metrics::MetricId id) const;
  std::optional<std::string> argmin(metrics::MetricId id) const;

 private:
  struct NodeRecord {
    metrics::Snapshot snapshot;
    bool dead = false;
  };

  void on_announce(const metrics::Snapshot& snapshot);
  bool alive(const metrics::Snapshot& snapshot) const;

  MetricBus& bus_;
  metrics::SimTime liveness_timeout_s_;
  SubscriptionId subscription_;
  metrics::SimTime newest_time_ = 0;
  std::map<std::string, NodeRecord> nodes_;
  NodeEventCallback node_event_callback_;
};

}  // namespace appclass::monitor
