// Wire format for metric announcements.
//
// Real gmond marshals metrics with XDR onto UDP multicast. This module
// provides the equivalent binary framing for snapshots so announcements
// can cross process or machine boundaries: a fixed magic + version header,
// the node identity, the timestamp, and the 33 metric values as
// big-endian IEEE-754 doubles, closed by a checksum. Decoding validates
// every field and rejects corrupt or truncated packets.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "metrics/snapshot.hpp"

namespace appclass::monitor {

/// Maximum node-IP length accepted on the wire.
inline constexpr std::size_t kMaxNodeIpLength = 64;

/// Encodes a snapshot into a self-contained packet.
std::vector<std::uint8_t> encode_packet(const metrics::Snapshot& snapshot);

/// Decodes a packet; returns nullopt for anything malformed: wrong magic
/// or version, truncated buffer, oversized node id, trailing bytes, or a
/// checksum mismatch.
std::optional<metrics::Snapshot> decode_packet(
    std::span<const std::uint8_t> packet);

/// Exact encoded size of a snapshot with the given node-IP length.
std::size_t packet_size(std::size_t node_ip_length);

}  // namespace appclass::monitor
