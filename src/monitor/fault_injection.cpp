#include "monitor/fault_injection.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace appclass::monitor {

FaultyChannel::FaultyChannel(MetricBus& source, MetricBus& target,
                             FaultOptions options, std::uint64_t seed)
    : source_(source), target_(target), options_(options), rng_(seed) {
  APPCLASS_EXPECTS(options.drop_probability >= 0.0 &&
                   options.drop_probability <= 1.0);
  APPCLASS_EXPECTS(options.blackout_probability >= 0.0 &&
                   options.blackout_probability <= 1.0);
  subscription_ = source_.subscribe(
      [this](const metrics::Snapshot& s) { relay(s); });
}

FaultyChannel::~FaultyChannel() { source_.unsubscribe(subscription_); }

void FaultyChannel::relay(const metrics::Snapshot& snapshot) {
  // Node blackout?
  const auto it = std::find_if(
      blackouts_.begin(), blackouts_.end(),
      [&](const auto& b) { return b.first == snapshot.node_ip; });
  if (it != blackouts_.end()) {
    if (snapshot.time < it->second) {
      ++dropped_;
      return;
    }
    blackouts_.erase(it);
  }
  if (options_.blackout_probability > 0.0 &&
      rng_.bernoulli(options_.blackout_probability)) {
    blackouts_.emplace_back(snapshot.node_ip,
                            snapshot.time + options_.blackout_s);
    ++dropped_;
    return;
  }
  if (options_.drop_probability > 0.0 &&
      rng_.bernoulli(options_.drop_probability)) {
    ++dropped_;
    return;
  }
  ++delivered_;
  target_.announce(snapshot);
}

}  // namespace appclass::monitor
