#include "monitor/fault_injection.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace appclass::monitor {
namespace {

struct FaultMetrics {
  obs::Counter& delivered = obs::MetricsRegistry::global().counter(
      "appclass_fault_delivered_total");
  obs::Counter& dropped_blackout = obs::MetricsRegistry::global().counter(
      "appclass_fault_dropped_total", {{"reason", "blackout"}});
  obs::Counter& dropped_random = obs::MetricsRegistry::global().counter(
      "appclass_fault_dropped_total", {{"reason", "drop"}});
  obs::Counter& blackouts = obs::MetricsRegistry::global().counter(
      "appclass_fault_blackouts_total");
};

FaultMetrics& fault_metrics() {
  static FaultMetrics metrics;
  return metrics;
}

}  // namespace

FaultyChannel::FaultyChannel(MetricBus& source, MetricBus& target,
                             FaultOptions options, std::uint64_t seed)
    : source_(source), target_(target), options_(options), rng_(seed) {
  APPCLASS_EXPECTS(options.drop_probability >= 0.0 &&
                   options.drop_probability <= 1.0);
  APPCLASS_EXPECTS(options.blackout_probability >= 0.0 &&
                   options.blackout_probability <= 1.0);
  subscription_ = source_.subscribe(
      [this](const metrics::Snapshot& s) { relay(s); });
}

FaultyChannel::~FaultyChannel() { source_.unsubscribe(subscription_); }

void FaultyChannel::relay(const metrics::Snapshot& snapshot) {
  FaultMetrics& fm = fault_metrics();
  // Node blackout?
  const auto it = std::find_if(
      blackouts_.begin(), blackouts_.end(),
      [&](const auto& b) { return b.first == snapshot.node_ip; });
  if (it != blackouts_.end()) {
    if (snapshot.time < it->second) {
      ++dropped_;
      fm.dropped_blackout.inc();
      return;
    }
    blackouts_.erase(it);
  }
  if (options_.blackout_probability > 0.0 &&
      rng_.bernoulli(options_.blackout_probability)) {
    blackouts_.emplace_back(snapshot.node_ip,
                            snapshot.time + options_.blackout_s);
    ++dropped_;
    fm.blackouts.inc();
    fm.dropped_blackout.inc();
    APPCLASS_LOG_DEBUG("fault.blackout", {"node", snapshot.node_ip},
                       {"from", snapshot.time},
                       {"until", snapshot.time + options_.blackout_s});
    return;
  }
  if (options_.drop_probability > 0.0 &&
      rng_.bernoulli(options_.drop_probability)) {
    ++dropped_;
    fm.dropped_random.inc();
    return;
  }
  ++delivered_;
  fm.delivered.inc();
  target_.announce(snapshot);
}

}  // namespace appclass::monitor
