#include "monitor/fault_injection.hpp"

#include <limits>

#include "common/assert.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace appclass::monitor {
namespace {

struct FaultMetrics {
  obs::Counter& delivered = obs::MetricsRegistry::global().counter(
      "appclass_fault_delivered_total");
  obs::Counter& dropped_blackout = obs::MetricsRegistry::global().counter(
      "appclass_fault_dropped_total", {{"reason", "blackout"}});
  obs::Counter& dropped_random = obs::MetricsRegistry::global().counter(
      "appclass_fault_dropped_total", {{"reason", "drop"}});
  obs::Counter& blackouts = obs::MetricsRegistry::global().counter(
      "appclass_fault_blackouts_total");
  obs::Counter& corrupted = obs::MetricsRegistry::global().counter(
      "appclass_fault_corrupted_total");
  obs::Counter& duplicated = obs::MetricsRegistry::global().counter(
      "appclass_fault_duplicated_total");
  obs::Counter& replayed = obs::MetricsRegistry::global().counter(
      "appclass_fault_replayed_total");
  obs::Counter& metric_dropouts = obs::MetricsRegistry::global().counter(
      "appclass_fault_metric_dropouts_total");
};

FaultMetrics& fault_metrics() {
  static FaultMetrics metrics;
  return metrics;
}

/// Full sweeps of the blackout map happen at most every this many relayed
/// announcements; per-announcement work stays O(log nodes).
constexpr std::size_t kPurgeInterval = 1024;

void expect_probability(double p) {
  APPCLASS_EXPECTS(p >= 0.0 && p <= 1.0);
}

}  // namespace

FaultyChannel::FaultyChannel(MetricBus& source, MetricBus& target,
                             FaultOptions options, std::uint64_t seed)
    : source_(source), target_(target), options_(options), rng_(seed) {
  expect_probability(options.drop_probability);
  expect_probability(options.blackout_probability);
  expect_probability(options.corruption_probability);
  expect_probability(options.duplicate_probability);
  expect_probability(options.replay_probability);
  expect_probability(options.metric_dropout_probability);
  APPCLASS_EXPECTS(options.corruption_metrics >= 1);
  APPCLASS_EXPECTS(options.replay_depth >= 1);
  subscription_ = source_.subscribe(
      [this](const metrics::Snapshot& s) { relay(s); });
}

FaultyChannel::~FaultyChannel() { source_.unsubscribe(subscription_); }

void FaultyChannel::purge_expired_blackouts(metrics::SimTime now) {
  for (auto it = blackouts_.begin(); it != blackouts_.end();) {
    if (it->second <= now)
      it = blackouts_.erase(it);
    else
      ++it;
  }
}

void FaultyChannel::corrupt(metrics::Snapshot& snapshot) {
  for (std::size_t n = 0; n < options_.corruption_metrics; ++n) {
    const std::size_t i =
        static_cast<std::size_t>(rng_.uniform_index(metrics::kMetricCount));
    switch (rng_.uniform_index(4)) {
      case 0:
        snapshot.values[i] = std::numeric_limits<double>::quiet_NaN();
        break;
      case 1:
        snapshot.values[i] = std::numeric_limits<double>::infinity();
        break;
      case 2:
        snapshot.values[i] = -std::numeric_limits<double>::infinity();
        break;
      default:
        // Garbage spike: a bit pattern that decodes to an absurd level.
        snapshot.values[i] =
            (snapshot.values[i] + 1.0) * rng_.uniform(1.0e15, 1.0e18);
        break;
    }
  }
}

void FaultyChannel::relay(const metrics::Snapshot& snapshot) {
  FaultMetrics& fm = fault_metrics();
  if (++relayed_since_purge_ >= kPurgeInterval) {
    relayed_since_purge_ = 0;
    purge_expired_blackouts(snapshot.time);
  }

  // Node blackout?
  const auto it = blackouts_.find(snapshot.node_ip);
  if (it != blackouts_.end()) {
    if (snapshot.time < it->second) {
      ++dropped_;
      fm.dropped_blackout.inc();
      return;
    }
    blackouts_.erase(it);
  }
  if (options_.blackout_probability > 0.0 &&
      rng_.bernoulli(options_.blackout_probability)) {
    blackouts_[snapshot.node_ip] = snapshot.time + options_.blackout_s;
    ++dropped_;
    fm.blackouts.inc();
    fm.dropped_blackout.inc();
    APPCLASS_LOG_DEBUG("fault.blackout", {"node", snapshot.node_ip},
                       {"from", snapshot.time},
                       {"until", snapshot.time + options_.blackout_s});
    return;
  }
  if (options_.drop_probability > 0.0 &&
      rng_.bernoulli(options_.drop_probability)) {
    ++dropped_;
    fm.dropped_random.inc();
    return;
  }

  // The announcement survives; decide payload-level faults.
  metrics::Snapshot delivered = snapshot;
  if (options_.corruption_probability > 0.0 &&
      rng_.bernoulli(options_.corruption_probability)) {
    corrupt(delivered);
    ++corrupted_;
    fm.corrupted.inc();
  }
  if (options_.metric_dropout_probability > 0.0) {
    for (double& v : delivered.values) {
      if (rng_.bernoulli(options_.metric_dropout_probability)) {
        v = std::numeric_limits<double>::quiet_NaN();
        ++metric_dropouts_;
        fm.metric_dropouts.inc();
      }
    }
  }

  ++delivered_;
  fm.delivered.inc();
  target_.announce(delivered);

  // Duplicate delivery: the same payload arrives twice.
  if (options_.duplicate_probability > 0.0 &&
      rng_.bernoulli(options_.duplicate_probability)) {
    ++duplicated_;
    ++delivered_;
    fm.duplicated.inc();
    fm.delivered.inc();
    target_.announce(delivered);
  }

  // Stale replay: an old delivery for this node resurfaces out of order.
  if (options_.replay_probability > 0.0) {
    auto& history = history_[snapshot.node_ip];
    if (!history.empty() && rng_.bernoulli(options_.replay_probability)) {
      const std::size_t pick =
          static_cast<std::size_t>(rng_.uniform_index(history.size()));
      ++replayed_;
      ++delivered_;
      fm.replayed.inc();
      fm.delivered.inc();
      target_.announce(history[pick]);
    }
    history.push_back(delivered);
    if (history.size() > options_.replay_depth) history.pop_front();
  }
}

}  // namespace appclass::monitor
