// Convenience wiring between the cluster simulator and the monitoring
// substrate: one Gmond per VM feeding a shared bus, plus a helper that
// profiles a single application run end to end (the common path of the
// trainer, the benchmarks, and the examples).
#pragma once

#include <memory>
#include <vector>

#include "metrics/snapshot.hpp"
#include "monitor/bus.hpp"
#include "monitor/profiler.hpp"
#include "sim/engine.hpp"

namespace appclass::monitor {

/// Attaches Ganglia-style monitoring to an engine: creates a Gmond for
/// every VM currently registered and installs a snapshot sink that routes
/// each VM's per-tick snapshot through its gmond onto the internal bus.
///
/// Must outlive the engine's use of the sink; add all VMs before
/// constructing it.
class ClusterMonitor {
 public:
  explicit ClusterMonitor(sim::Engine& engine);

  MetricBus& bus() noexcept { return bus_; }

 private:
  MetricBus bus_;
  std::vector<std::unique_ptr<Gmond>> gmonds_;
};

/// Result of profiling one application run.
struct ProfiledRun {
  metrics::DataPool pool;       ///< target VM's snapshots, one per d seconds
  sim::SimTime start_time = 0;  ///< t0
  sim::SimTime end_time = 0;    ///< t1
  bool completed = false;       ///< instance finished before the tick budget

  sim::SimTime elapsed() const { return end_time - start_time; }
};

/// Runs the engine until `instance` finishes (or `max_ticks` pass),
/// sampling the monitored subnet every `sampling_interval_s` seconds and
/// returning the data pool of the VM hosting the instance.
ProfiledRun profile_instance(sim::Engine& engine, ClusterMonitor& mon,
                             sim::InstanceId instance,
                             int sampling_interval_s = 5,
                             sim::SimTime max_ticks = 200'000);

}  // namespace appclass::monitor
