#include "monitor/wire.hpp"

#include <bit>
#include <cstring>

#include "common/assert.hpp"

namespace appclass::monitor {

namespace {

constexpr std::uint32_t kMagic = 0x41504D43;  // "APMC"
constexpr std::uint16_t kVersion = 1;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8)
    out.push_back(static_cast<std::uint8_t>(v >> shift));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8)
    out.push_back(static_cast<std::uint8_t>(v >> shift));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// FNV-1a over the packet body (everything after the header checksum slot).
std::uint32_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint32_t h = 2166136261u;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 16777619u;
  }
  return h;
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  bool ok() const noexcept { return ok_; }
  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }

  std::uint16_t u16() { return static_cast<std::uint16_t>(read(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(read(4)); }
  std::uint64_t u64() { return read(8); }
  double f64() { return std::bit_cast<double>(read(8)); }

  std::string bytes(std::size_t n) {
    if (remaining() < n) {
      ok_ = false;
      return {};
    }
    std::string out(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return out;
  }

 private:
  std::uint64_t read(std::size_t n) {
    if (remaining() < n) {
      ok_ = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i)
      v = (v << 8) | bytes_[pos_ + i];
    pos_ += n;
    return v;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

std::size_t packet_size(std::size_t node_ip_length) {
  // magic + version + checksum + time + ip length + ip + 33 doubles.
  return 4 + 2 + 4 + 8 + 2 + node_ip_length + 8 * metrics::kMetricCount;
}

std::vector<std::uint8_t> encode_packet(const metrics::Snapshot& snapshot) {
  APPCLASS_EXPECTS(snapshot.node_ip.size() <= kMaxNodeIpLength);
  std::vector<std::uint8_t> out;
  out.reserve(packet_size(snapshot.node_ip.size()));
  put_u32(out, kMagic);
  put_u16(out, kVersion);
  const std::size_t checksum_slot = out.size();
  put_u32(out, 0);  // placeholder
  put_u64(out, static_cast<std::uint64_t>(snapshot.time));
  put_u16(out, static_cast<std::uint16_t>(snapshot.node_ip.size()));
  out.insert(out.end(), snapshot.node_ip.begin(), snapshot.node_ip.end());
  for (const double v : snapshot.values) put_f64(out, v);

  const std::uint32_t checksum = fnv1a(
      std::span<const std::uint8_t>(out).subspan(checksum_slot + 4));
  out[checksum_slot + 0] = static_cast<std::uint8_t>(checksum >> 24);
  out[checksum_slot + 1] = static_cast<std::uint8_t>(checksum >> 16);
  out[checksum_slot + 2] = static_cast<std::uint8_t>(checksum >> 8);
  out[checksum_slot + 3] = static_cast<std::uint8_t>(checksum);
  APPCLASS_ENSURES(out.size() == packet_size(snapshot.node_ip.size()));
  return out;
}

std::optional<metrics::Snapshot> decode_packet(
    std::span<const std::uint8_t> packet) {
  Reader reader(packet);
  if (reader.u32() != kMagic) return std::nullopt;
  if (reader.u16() != kVersion) return std::nullopt;
  const std::uint32_t checksum = reader.u32();
  if (!reader.ok()) return std::nullopt;
  if (fnv1a(packet.subspan(10)) != checksum) return std::nullopt;

  metrics::Snapshot s;
  s.time = static_cast<metrics::SimTime>(reader.u64());
  const std::uint16_t ip_len = reader.u16();
  if (!reader.ok() || ip_len > kMaxNodeIpLength) return std::nullopt;
  s.node_ip = reader.bytes(ip_len);
  for (std::size_t i = 0; i < metrics::kMetricCount; ++i)
    s.values[i] = reader.f64();
  if (!reader.ok() || reader.remaining() != 0) return std::nullopt;
  return s;
}

}  // namespace appclass::monitor
