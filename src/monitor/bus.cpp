#include "monitor/bus.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace appclass::monitor {
namespace {

/// Ingest-side backpressure telemetry: announcement volume and fan-out,
/// resolved once so the announce path never touches the registry lock.
struct BusMetrics {
  obs::Counter& announcements = obs::MetricsRegistry::global().counter(
      "appclass_bus_announcements_total");
  obs::Gauge& listeners =
      obs::MetricsRegistry::global().gauge("appclass_bus_listeners");
};

BusMetrics& bus_metrics() {
  static BusMetrics metrics;
  return metrics;
}

}  // namespace

SubscriptionId MetricBus::subscribe(Listener listener) {
  APPCLASS_EXPECTS(listener != nullptr);
  const std::lock_guard lock(mutex_);
  const SubscriptionId id = next_id_++;
  listeners_.push_back(Entry{id, std::move(listener)});
  bus_metrics().listeners.set(static_cast<double>(listeners_.size()));
  return id;
}

void MetricBus::unsubscribe(SubscriptionId id) {
  const std::lock_guard lock(mutex_);
  std::erase_if(listeners_, [id](const Entry& e) { return e.id == id; });
  bus_metrics().listeners.set(static_cast<double>(listeners_.size()));
}

void MetricBus::announce(const metrics::Snapshot& snapshot) {
  // Copy the listener list under the lock, invoke outside it, so a listener
  // may (un)subscribe re-entrantly without deadlocking.
  std::vector<Listener> current;
  {
    const std::lock_guard lock(mutex_);
    current.reserve(listeners_.size());
    for (const auto& e : listeners_) current.push_back(e.listener);
  }
  for (const auto& l : current) l(snapshot);
  bus_metrics().announcements.inc();
}

std::size_t MetricBus::listener_count() const {
  const std::lock_guard lock(mutex_);
  return listeners_.size();
}

Gmond::Gmond(std::string node_ip, MetricBus& bus, int announce_interval_s)
    : node_ip_(std::move(node_ip)),
      bus_(bus),
      announce_interval_s_(announce_interval_s) {
  APPCLASS_EXPECTS(announce_interval_s_ >= 1);
}

void Gmond::observe(const metrics::Snapshot& snapshot) {
  APPCLASS_EXPECTS(snapshot.node_ip == node_ip_);
  if (ticks_seen_++ % announce_interval_s_ == 0) bus_.announce(snapshot);
}

}  // namespace appclass::monitor
