#include "monitor/bus.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace appclass::monitor {
namespace {

/// Ingest-side backpressure telemetry: announcement volume and fan-out,
/// resolved once so the announce path never touches the registry lock.
struct BusMetrics {
  obs::Counter& announcements = obs::MetricsRegistry::global().counter(
      "appclass_bus_announcements_total");
  obs::Gauge& listeners =
      obs::MetricsRegistry::global().gauge("appclass_bus_listeners");
  /// Listener-list copies, i.e. the bus's only allocating operations —
  /// a steady-state announce workload must not move this counter.
  obs::Counter& rebuilds = obs::MetricsRegistry::global().counter(
      "appclass_bus_listener_rebuilds_total");
};

BusMetrics& bus_metrics() {
  static BusMetrics metrics;
  return metrics;
}

}  // namespace

void MetricBus::publish_locked(std::unique_ptr<const ListenerList> next) {
  bus_metrics().listeners.set(static_cast<double>(next->size()));
  bus_metrics().rebuilds.inc();
  // Release pairs with announce()'s acquire load: a reader that sees the
  // new pointer sees the fully built list behind it. The superseded list
  // stays alive in retained_ for any announce still iterating it.
  retained_.push_back(std::move(next));
  active_.store(retained_.back().get(), std::memory_order_release);
}

SubscriptionId MetricBus::subscribe(Listener listener) {
  APPCLASS_EXPECTS(listener != nullptr);
  const std::lock_guard lock(mutex_);
  const SubscriptionId id = next_id_++;
  // Copy-on-write: in-flight announces keep iterating the old list.
  const ListenerList* current = active_.load(std::memory_order_relaxed);
  auto next = current != nullptr ? std::make_unique<ListenerList>(*current)
                                 : std::make_unique<ListenerList>();
  next->push_back(Entry{id, std::move(listener)});
  publish_locked(std::move(next));
  return id;
}

void MetricBus::unsubscribe(SubscriptionId id) {
  const std::lock_guard lock(mutex_);
  const ListenerList* current = active_.load(std::memory_order_relaxed);
  auto next = current != nullptr ? std::make_unique<ListenerList>(*current)
                                 : std::make_unique<ListenerList>();
  std::erase_if(*next, [id](const Entry& e) { return e.id == id; });
  publish_locked(std::move(next));
}

void MetricBus::announce(const metrics::Snapshot& snapshot) {
  // The whole read side: one acquire load. The list it yields is
  // immutable and retained until the bus dies, so no pin (lock or
  // refcount) is needed before invoking, and a listener may
  // (un)subscribe re-entrantly without deadlocking — the re-entrant
  // change lands in a fresh list and takes effect on the next announce.
  const ListenerList* current = active_.load(std::memory_order_acquire);
  if (current != nullptr)
    for (const auto& e : *current) e.listener(snapshot);
  bus_metrics().announcements.inc();
}

std::size_t MetricBus::listener_count() const {
  const ListenerList* current = active_.load(std::memory_order_acquire);
  return current != nullptr ? current->size() : 0;
}

Gmond::Gmond(std::string node_ip, MetricBus& bus, int announce_interval_s)
    : node_ip_(std::move(node_ip)),
      bus_(bus),
      announce_interval_s_(announce_interval_s) {
  APPCLASS_EXPECTS(announce_interval_s_ >= 1);
}

void Gmond::observe(const metrics::Snapshot& snapshot) {
  APPCLASS_EXPECTS(snapshot.node_ip == node_ip_);
  if (ticks_seen_++ % announce_interval_s_ == 0) bus_.announce(snapshot);
}

}  // namespace appclass::monitor
