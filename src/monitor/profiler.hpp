// The performance profiler and filter (paper Figure 1, section 4.1).
//
// The profiler subscribes to the subnet-wide metric bus and, between a
// start and stop instruction from the resource manager, samples the stream
// once every `d` seconds (the paper uses d = 5). Because the bus carries
// every node's announcements, the raw capture holds all subnet nodes; the
// `PerformanceFilter` then extracts the target application node's snapshots
// into the per-run `DataPool` handed to the classification center.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "metrics/snapshot.hpp"
#include "monitor/bus.hpp"

namespace appclass::monitor {

/// Captures the subnet's metric stream at a fixed sampling period.
class PerformanceProfiler {
 public:
  /// `sampling_interval_s` is the paper's d (default 5 seconds).
  explicit PerformanceProfiler(MetricBus& bus, int sampling_interval_s = 5);
  ~PerformanceProfiler();

  PerformanceProfiler(const PerformanceProfiler&) = delete;
  PerformanceProfiler& operator=(const PerformanceProfiler&) = delete;

  /// Begins capturing (idempotent). Announcements whose timestamp t
  /// satisfies (t - first_seen) % d == 0 are retained, for every node.
  void start();

  /// Stops capturing. The collected raw pool remains available.
  void stop();

  bool running() const noexcept { return running_; }
  int sampling_interval() const noexcept { return sampling_interval_s_; }

  /// Every retained sample from every node, in arrival order.
  const std::vector<metrics::Snapshot>& raw_samples() const noexcept {
    return raw_samples_;
  }

  /// Discards captured samples (for reuse across runs).
  void clear();

 private:
  void on_announce(const metrics::Snapshot& snapshot);

  MetricBus& bus_;
  int sampling_interval_s_;
  SubscriptionId subscription_ = 0;
  bool running_ = false;
  std::optional<metrics::SimTime> first_time_;
  std::vector<metrics::Snapshot> raw_samples_;
};

/// Extracts one node's snapshots from a raw subnet capture.
class PerformanceFilter {
 public:
  /// Returns the data pool of `target_ip` — the paper's A(n x m) source.
  static metrics::DataPool extract(
      const std::vector<metrics::Snapshot>& raw_samples,
      const std::string& target_ip);

  /// Lists the node IPs present in a raw capture.
  static std::vector<std::string> nodes(
      const std::vector<metrics::Snapshot>& raw_samples);
};

}  // namespace appclass::monitor
