// The monitoring substrate: a Ganglia-style listen/announce metric bus.
//
// Real Ganglia gmond daemons multicast their host's metrics on the subnet;
// every listener receives every node's announcements and filters what it
// needs. This module reproduces that data path in-process: `Gmond`
// publishers (one per VM) announce snapshots onto a `MetricBus`, and any
// number of subscribers (the performance profiler, online classifiers,
// dashboards) receive the full subnet stream.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "metrics/snapshot.hpp"

namespace appclass::monitor {

/// Subscription handle returned by MetricBus::subscribe.
using SubscriptionId = std::size_t;

/// An in-process stand-in for the Ganglia multicast channel. Thread-safe:
/// announcements and (un)subscriptions may come from different threads.
///
/// The listener list is RCU with deferred reclamation: announce() reads
/// the current immutable list through one atomic pointer load — no lock,
/// no refcount traffic, no allocation — and a listener may (un)subscribe
/// re-entrantly without deadlocking. Only subscribe/unsubscribe build a
/// new list (and allocate); superseded lists are retained until the bus
/// is destroyed rather than freed, so in-flight announces never race
/// reclamation. Retention grows with subscription churn only — it is
/// control-plane rare by design, and the
/// appclass_bus_listener_rebuilds_total counter watches it.
///
/// Consequence of the read side being unsynchronized (same as the old
/// refcount scheme): a listener may still observe announcements that
/// were in flight when unsubscribe() returned.
class MetricBus {
 public:
  using Listener = std::function<void(const metrics::Snapshot&)>;

  /// Registers a listener; it will see every announcement from every node.
  SubscriptionId subscribe(Listener listener);

  /// Removes a listener. Unknown ids are ignored (idempotent).
  void unsubscribe(SubscriptionId id);

  /// Publishes one node snapshot to all current listeners.
  /// Allocation- and lock-free: one atomic load of the current list.
  void announce(const metrics::Snapshot& snapshot);

  std::size_t listener_count() const;

 private:
  struct Entry {
    SubscriptionId id;
    Listener listener;
  };
  using ListenerList = std::vector<Entry>;

  /// Swaps in `next` as the active list, retaining the old one. Caller
  /// must hold mutex_.
  void publish_locked(std::unique_ptr<const ListenerList> next);

  mutable std::mutex mutex_;  // guards retained_ + next_id_ (writers only)
  /// Every list ever published, newest last; active_ points at the
  /// newest. Never shrinks while the bus lives (deferred reclamation).
  std::vector<std::unique_ptr<const ListenerList>> retained_;
  std::atomic<const ListenerList*> active_{nullptr};
  SubscriptionId next_id_ = 1;
};

/// Per-node metric daemon. In this reproduction the simulator produces a
/// complete snapshot per VM per tick; gmond decides how often to announce
/// it on the bus (Ganglia's default announce interval for volatile metrics
/// is a few seconds; 1 s here keeps the profiler free to subsample).
class Gmond {
 public:
  Gmond(std::string node_ip, MetricBus& bus, int announce_interval_s = 1);

  /// Feeds the simulator's per-tick snapshot; announces on the bus every
  /// `announce_interval_s` ticks.
  void observe(const metrics::Snapshot& snapshot);

  const std::string& node_ip() const noexcept { return node_ip_; }

 private:
  std::string node_ip_;
  MetricBus& bus_;
  int announce_interval_s_;
  std::int64_t ticks_seen_ = 0;
};

}  // namespace appclass::monitor
