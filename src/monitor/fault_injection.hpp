// Monitoring-path fault injection.
//
// Ganglia announcements travel over UDP multicast: messages get dropped,
// whole nodes go quiet, payloads are corrupted in flight, packets arrive
// twice or out of order, and individual sensors flake. `FaultyChannel`
// relays a source bus onto a target bus while injecting those failure
// modes deterministically (seeded), so robustness of the downstream
// consumers — the sanitizer, the profiler, the online classifier — can be
// tested and quantified (see core/robustness.hpp for the sweep harness).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "linalg/random.hpp"
#include "monitor/bus.hpp"

namespace appclass::monitor {

struct FaultOptions {
  /// Probability each announcement is silently dropped (UDP loss).
  double drop_probability = 0.0;
  /// Probability per announcement that its node enters a blackout
  /// (gmond crash / partition) for `blackout_s` seconds.
  double blackout_probability = 0.0;
  metrics::SimTime blackout_s = 30;
  /// Probability a delivered announcement has `corruption_metrics` of its
  /// values corrupted (NaN, ±Inf, or garbage spikes on random metrics).
  double corruption_probability = 0.0;
  /// Metrics corrupted per corrupted announcement.
  std::size_t corruption_metrics = 1;
  /// Probability a delivered announcement is delivered a second time
  /// (duplicate UDP delivery).
  double duplicate_probability = 0.0;
  /// Probability that, after a delivery, a stale announcement previously
  /// delivered for the same node is replayed out of order (daemon restart
  /// re-announcing old state).
  double replay_probability = 0.0;
  /// How many past deliveries per node are eligible for replay.
  std::size_t replay_depth = 8;
  /// Probability each individual metric of a delivered announcement is
  /// blanked to NaN (per-sensor dropout).
  double metric_dropout_probability = 0.0;
};

class FaultyChannel {
 public:
  /// Relays `source` onto `target`. Both must outlive the channel.
  FaultyChannel(MetricBus& source, MetricBus& target, FaultOptions options,
                std::uint64_t seed = 1);
  ~FaultyChannel();

  FaultyChannel(const FaultyChannel&) = delete;
  FaultyChannel& operator=(const FaultyChannel&) = delete;

  /// Announcements relayed onto the target (duplicates and replays count
  /// once each — they are extra announcements).
  std::size_t delivered() const noexcept { return delivered_; }
  std::size_t dropped() const noexcept { return dropped_; }
  std::size_t corrupted() const noexcept { return corrupted_; }
  std::size_t duplicated() const noexcept { return duplicated_; }
  std::size_t replayed() const noexcept { return replayed_; }
  std::size_t metric_dropouts() const noexcept { return metric_dropouts_; }

 private:
  void relay(const metrics::Snapshot& snapshot);
  void corrupt(metrics::Snapshot& snapshot);
  void purge_expired_blackouts(metrics::SimTime now);

  MetricBus& source_;
  MetricBus& target_;
  FaultOptions options_;
  linalg::Rng rng_;
  SubscriptionId subscription_;
  std::size_t delivered_ = 0;
  std::size_t dropped_ = 0;
  std::size_t corrupted_ = 0;
  std::size_t duplicated_ = 0;
  std::size_t replayed_ = 0;
  std::size_t metric_dropouts_ = 0;
  std::size_t relayed_since_purge_ = 0;
  /// Blackout end time per node; expired entries are purged on the node's
  /// next announcement and in periodic sweeps, so long chaos runs stay
  /// O(log nodes) per announcement.
  std::map<std::string, metrics::SimTime> blackouts_;
  /// Recently delivered announcements per node (stale-replay source).
  std::map<std::string, std::deque<metrics::Snapshot>> history_;
};

}  // namespace appclass::monitor
