// Monitoring-path fault injection.
//
// Ganglia announcements travel over UDP multicast: messages get dropped,
// whole nodes go quiet, and listeners must cope. `FaultyChannel` relays a
// source bus onto a target bus while injecting those failure modes
// deterministically (seeded), so robustness of the downstream consumers —
// the profiler, the online classifier — can be tested and quantified.
#pragma once

#include <string>
#include <vector>

#include "linalg/random.hpp"
#include "monitor/bus.hpp"

namespace appclass::monitor {

struct FaultOptions {
  /// Probability each announcement is silently dropped (UDP loss).
  double drop_probability = 0.0;
  /// Probability per announcement that its node enters a blackout
  /// (gmond crash / partition) for `blackout_s` seconds.
  double blackout_probability = 0.0;
  metrics::SimTime blackout_s = 30;
};

class FaultyChannel {
 public:
  /// Relays `source` onto `target`. Both must outlive the channel.
  FaultyChannel(MetricBus& source, MetricBus& target, FaultOptions options,
                std::uint64_t seed = 1);
  ~FaultyChannel();

  FaultyChannel(const FaultyChannel&) = delete;
  FaultyChannel& operator=(const FaultyChannel&) = delete;

  std::size_t delivered() const noexcept { return delivered_; }
  std::size_t dropped() const noexcept { return dropped_; }

 private:
  void relay(const metrics::Snapshot& snapshot);

  MetricBus& source_;
  MetricBus& target_;
  FaultOptions options_;
  linalg::Rng rng_;
  SubscriptionId subscription_;
  std::size_t delivered_ = 0;
  std::size_t dropped_ = 0;
  /// Per-node blackout end time.
  std::vector<std::pair<std::string, metrics::SimTime>> blackouts_;
};

}  // namespace appclass::monitor
