#include "monitor/profiler.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace appclass::monitor {

PerformanceProfiler::PerformanceProfiler(MetricBus& bus,
                                         int sampling_interval_s)
    : bus_(bus), sampling_interval_s_(sampling_interval_s) {
  APPCLASS_EXPECTS(sampling_interval_s >= 1);
}

PerformanceProfiler::~PerformanceProfiler() { stop(); }

void PerformanceProfiler::start() {
  if (running_) return;
  running_ = true;
  first_time_.reset();
  subscription_ = bus_.subscribe(
      [this](const metrics::Snapshot& s) { on_announce(s); });
}

void PerformanceProfiler::stop() {
  if (!running_) return;
  bus_.unsubscribe(subscription_);
  running_ = false;
}

void PerformanceProfiler::clear() {
  raw_samples_.clear();
  first_time_.reset();
}

void PerformanceProfiler::on_announce(const metrics::Snapshot& snapshot) {
  if (!first_time_) first_time_ = snapshot.time;
  const auto elapsed = snapshot.time - *first_time_;
  if (elapsed % sampling_interval_s_ != 0) return;
  raw_samples_.push_back(snapshot);
}

metrics::DataPool PerformanceFilter::extract(
    const std::vector<metrics::Snapshot>& raw_samples,
    const std::string& target_ip) {
  metrics::DataPool pool(target_ip);
  for (const auto& s : raw_samples)
    if (s.node_ip == target_ip) pool.add(s);
  return pool;
}

std::vector<std::string> PerformanceFilter::nodes(
    const std::vector<metrics::Snapshot>& raw_samples) {
  std::vector<std::string> out;
  for (const auto& s : raw_samples)
    if (std::find(out.begin(), out.end(), s.node_ip) == out.end())
      out.push_back(s.node_ip);
  return out;
}

}  // namespace appclass::monitor
