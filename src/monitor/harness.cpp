#include "monitor/harness.hpp"

#include "common/assert.hpp"

namespace appclass::monitor {

ClusterMonitor::ClusterMonitor(sim::Engine& engine) {
  gmonds_.reserve(engine.vm_count());
  for (sim::VmId v = 0; v < engine.vm_count(); ++v)
    gmonds_.push_back(
        std::make_unique<Gmond>(engine.vm(v).spec().ip, bus_));
  engine.set_snapshot_sink(
      [this](sim::VmId vm, const metrics::Snapshot& snapshot) {
        APPCLASS_ASSERT(vm < gmonds_.size());
        gmonds_[vm]->observe(snapshot);
      });
}

ProfiledRun profile_instance(sim::Engine& engine, ClusterMonitor& mon,
                             sim::InstanceId instance,
                             int sampling_interval_s,
                             sim::SimTime max_ticks) {
  const sim::InstanceInfo before = engine.instance(instance);
  const std::string target_ip = engine.vm(before.vm).spec().ip;

  PerformanceProfiler profiler(mon.bus(), sampling_interval_s);
  profiler.start();

  const sim::SimTime deadline = engine.now() + max_ticks;
  while (engine.instance(instance).state != sim::InstanceState::kFinished &&
         engine.now() < deadline)
    engine.step();

  profiler.stop();

  ProfiledRun run;
  run.pool = PerformanceFilter::extract(profiler.raw_samples(), target_ip);
  const sim::InstanceInfo after = engine.instance(instance);
  run.completed = after.state == sim::InstanceState::kFinished;
  run.start_time = after.start_time;
  run.end_time = run.completed ? after.finish_time : engine.now();
  return run;
}

}  // namespace appclass::monitor
