#include "monitor/harness.hpp"

#include "common/assert.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace appclass::monitor {
namespace {

struct HarnessMetrics {
  obs::Histogram& profile_seconds = obs::stage_histogram("monitor_profile");
  obs::Counter& snapshots = obs::MetricsRegistry::global().counter(
      "appclass_monitor_snapshots_total");
  obs::Counter& ticks = obs::MetricsRegistry::global().counter(
      "appclass_monitor_ticks_total");
  obs::Counter& runs = obs::MetricsRegistry::global().counter(
      "appclass_monitor_profile_runs_total");
};

HarnessMetrics& harness_metrics() {
  static HarnessMetrics metrics;
  return metrics;
}

}  // namespace

ClusterMonitor::ClusterMonitor(sim::Engine& engine) {
  gmonds_.reserve(engine.vm_count());
  for (sim::VmId v = 0; v < engine.vm_count(); ++v)
    gmonds_.push_back(
        std::make_unique<Gmond>(engine.vm(v).spec().ip, bus_));
  obs::Counter& snapshot_counter = harness_metrics().snapshots;
  engine.set_snapshot_sink(
      [this, &snapshot_counter](sim::VmId vm,
                                const metrics::Snapshot& snapshot) {
        APPCLASS_ASSERT(vm < gmonds_.size());
        snapshot_counter.inc();
        gmonds_[vm]->observe(snapshot);
      });
}

ProfiledRun profile_instance(sim::Engine& engine, ClusterMonitor& mon,
                             sim::InstanceId instance,
                             int sampling_interval_s,
                             sim::SimTime max_ticks) {
  const sim::InstanceInfo before = engine.instance(instance);
  const std::string target_ip = engine.vm(before.vm).spec().ip;

  HarnessMetrics& hm = harness_metrics();
  obs::ScopedTimer profile_timer(hm.profile_seconds);
  PerformanceProfiler profiler(mon.bus(), sampling_interval_s);
  profiler.start();

  const sim::SimTime start_tick = engine.now();
  const sim::SimTime deadline = engine.now() + max_ticks;
  while (engine.instance(instance).state != sim::InstanceState::kFinished &&
         engine.now() < deadline)
    engine.step();

  profiler.stop();
  hm.ticks.inc(static_cast<std::uint64_t>(engine.now() - start_tick));
  hm.runs.inc();

  ProfiledRun run;
  run.pool = PerformanceFilter::extract(profiler.raw_samples(), target_ip);
  const sim::InstanceInfo after = engine.instance(instance);
  run.completed = after.state == sim::InstanceState::kFinished;
  run.start_time = after.start_time;
  run.end_time = run.completed ? after.finish_time : engine.now();
  APPCLASS_LOG_DEBUG("monitor.profile", {"node", target_ip},
                     {"completed", run.completed},
                     {"snapshots", run.pool.size()},
                     {"ticks", engine.now() - start_tick});
  return run;
}

}  // namespace appclass::monitor
