#include "monitor/gmetad.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace appclass::monitor {
namespace {

struct GmetadMetrics {
  obs::Counter& announcements = obs::MetricsRegistry::global().counter(
      "appclass_gmetad_announcements_total");
  obs::Gauge& nodes =
      obs::MetricsRegistry::global().gauge("appclass_gmetad_nodes");
};

GmetadMetrics& gmetad_metrics() {
  static GmetadMetrics metrics;
  return metrics;
}

}  // namespace

Gmetad::Gmetad(MetricBus& bus, metrics::SimTime liveness_timeout_s)
    : bus_(bus), liveness_timeout_s_(liveness_timeout_s) {
  APPCLASS_EXPECTS(liveness_timeout_s >= 1);
  subscription_ = bus_.subscribe(
      [this](const metrics::Snapshot& s) { on_announce(s); });
}

Gmetad::~Gmetad() { bus_.unsubscribe(subscription_); }

void Gmetad::on_announce(const metrics::Snapshot& snapshot) {
  newest_time_ = std::max(newest_time_, snapshot.time);
  latest_[snapshot.node_ip] = snapshot;
  GmetadMetrics& gm = gmetad_metrics();
  gm.announcements.inc();
  gm.nodes.set(static_cast<double>(latest_.size()));
}

bool Gmetad::alive(const metrics::Snapshot& snapshot) const {
  return newest_time_ - snapshot.time <= liveness_timeout_s_;
}

std::size_t Gmetad::node_count() const { return latest_.size(); }

std::vector<std::string> Gmetad::live_nodes() const {
  std::vector<std::string> out;
  for (const auto& [ip, snapshot] : latest_)
    if (alive(snapshot)) out.push_back(ip);
  return out;
}

std::optional<metrics::Snapshot> Gmetad::latest(
    const std::string& node_ip) const {
  const auto it = latest_.find(node_ip);
  if (it == latest_.end()) return std::nullopt;
  return it->second;
}

std::optional<MetricSummary> Gmetad::summary(metrics::MetricId id) const {
  MetricSummary out;
  bool first = true;
  for (const auto& [ip, snapshot] : latest_) {
    if (!alive(snapshot)) continue;
    const double v = snapshot.get(id);
    out.sum += v;
    if (first) {
      out.min = out.max = v;
      first = false;
    } else {
      out.min = std::min(out.min, v);
      out.max = std::max(out.max, v);
    }
    ++out.nodes;
  }
  if (out.nodes == 0) return std::nullopt;
  out.mean = out.sum / static_cast<double>(out.nodes);
  return out;
}

std::optional<std::string> Gmetad::argmax(metrics::MetricId id) const {
  std::optional<std::string> best;
  double best_value = 0.0;
  for (const auto& [ip, snapshot] : latest_) {
    if (!alive(snapshot)) continue;
    const double v = snapshot.get(id);
    if (!best || v > best_value) {
      best = ip;
      best_value = v;
    }
  }
  return best;
}

std::optional<std::string> Gmetad::argmin(metrics::MetricId id) const {
  std::optional<std::string> best;
  double best_value = 0.0;
  for (const auto& [ip, snapshot] : latest_) {
    if (!alive(snapshot)) continue;
    const double v = snapshot.get(id);
    if (!best || v < best_value) {
      best = ip;
      best_value = v;
    }
  }
  return best;
}

}  // namespace appclass::monitor
