#include "monitor/gmetad.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace appclass::monitor {
namespace {

struct GmetadMetrics {
  obs::Counter& announcements = obs::MetricsRegistry::global().counter(
      "appclass_gmetad_announcements_total");
  obs::Gauge& nodes =
      obs::MetricsRegistry::global().gauge("appclass_gmetad_nodes");
  obs::Counter& deaths = obs::MetricsRegistry::global().counter(
      "appclass_gmetad_node_deaths_total");
  obs::Counter& recoveries = obs::MetricsRegistry::global().counter(
      "appclass_gmetad_node_recoveries_total");
};

GmetadMetrics& gmetad_metrics() {
  static GmetadMetrics metrics;
  return metrics;
}

}  // namespace

Gmetad::Gmetad(MetricBus& bus, metrics::SimTime liveness_timeout_s)
    : bus_(bus), liveness_timeout_s_(liveness_timeout_s) {
  APPCLASS_EXPECTS(liveness_timeout_s >= 1);
  subscription_ = bus_.subscribe(
      [this](const metrics::Snapshot& s) { on_announce(s); });
}

Gmetad::~Gmetad() { bus_.unsubscribe(subscription_); }

void Gmetad::on_node_event(NodeEventCallback callback) {
  node_event_callback_ = std::move(callback);
}

void Gmetad::on_announce(const metrics::Snapshot& snapshot) {
  GmetadMetrics& gm = gmetad_metrics();
  newest_time_ = std::max(newest_time_, snapshot.time);

  auto [it, inserted] = nodes_.try_emplace(snapshot.node_ip);
  NodeRecord& record = it->second;
  const bool was_dead = !inserted && record.dead;
  if (inserted || snapshot.time >= record.snapshot.time)
    record.snapshot = snapshot;
  if (was_dead && alive(record.snapshot)) {
    record.dead = false;
    gm.recoveries.inc();
    APPCLASS_LOG_INFO("gmetad.node_recovery", {"node", snapshot.node_ip},
                      {"time", snapshot.time});
    if (node_event_callback_)
      node_event_callback_({snapshot.node_ip, snapshot.time,
                            NodeEvent::Kind::kRecovery});
  }

  // Detect deaths exposed by this announcement advancing cluster time.
  for (auto& [ip, other] : nodes_) {
    if (other.dead || alive(other.snapshot)) continue;
    other.dead = true;
    gm.deaths.inc();
    APPCLASS_LOG_WARN("gmetad.node_death", {"node", ip},
                      {"last_seen", other.snapshot.time},
                      {"time", newest_time_});
    if (node_event_callback_)
      node_event_callback_({ip, newest_time_, NodeEvent::Kind::kDeath});
  }

  gm.announcements.inc();
  gm.nodes.set(static_cast<double>(nodes_.size()));
}

bool Gmetad::alive(const metrics::Snapshot& snapshot) const {
  return newest_time_ - snapshot.time <= liveness_timeout_s_;
}

std::size_t Gmetad::node_count() const { return nodes_.size(); }

std::vector<std::string> Gmetad::live_nodes() const {
  std::vector<std::string> out;
  for (const auto& [ip, record] : nodes_)
    if (alive(record.snapshot)) out.push_back(ip);
  return out;
}

std::vector<std::string> Gmetad::dead_nodes() const {
  std::vector<std::string> out;
  for (const auto& [ip, record] : nodes_)
    if (!alive(record.snapshot)) out.push_back(ip);
  return out;
}

std::optional<metrics::Snapshot> Gmetad::latest(
    const std::string& node_ip) const {
  const auto it = nodes_.find(node_ip);
  if (it == nodes_.end()) return std::nullopt;
  return it->second.snapshot;
}

std::optional<MetricSummary> Gmetad::summary(metrics::MetricId id) const {
  MetricSummary out;
  bool first = true;
  for (const auto& [ip, record] : nodes_) {
    if (!alive(record.snapshot)) continue;
    const double v = record.snapshot.get(id);
    out.sum += v;
    if (first) {
      out.min = out.max = v;
      first = false;
    } else {
      out.min = std::min(out.min, v);
      out.max = std::max(out.max, v);
    }
    ++out.nodes;
  }
  if (out.nodes == 0) return std::nullopt;
  out.mean = out.sum / static_cast<double>(out.nodes);
  return out;
}

std::optional<std::string> Gmetad::argmax(metrics::MetricId id) const {
  std::optional<std::string> best;
  double best_value = 0.0;
  for (const auto& [ip, record] : nodes_) {
    if (!alive(record.snapshot)) continue;
    const double v = record.snapshot.get(id);
    if (!best || v > best_value) {
      best = ip;
      best_value = v;
    }
  }
  return best;
}

std::optional<std::string> Gmetad::argmin(metrics::MetricId id) const {
  std::optional<std::string> best;
  double best_value = 0.0;
  for (const auto& [ip, record] : nodes_) {
    if (!alive(record.snapshot)) continue;
    const double v = record.snapshot.get(id);
    if (!best || v < best_value) {
      best = ip;
      best_value = v;
    }
  }
  return best;
}

}  // namespace appclass::monitor
