// Execution context: the one knob deciding serial vs pooled execution.
//
// Everything in the engine (and the pipeline above it) expresses batch
// work as *deterministically sharded loops*: the index range [0, n) is cut
// into fixed-size shards whose boundaries depend only on `n` and the
// grain — never on the thread count — and each shard writes results into
// disjoint, pre-sized slots. A serial context runs the shards in order on
// the calling thread; a pooled context runs them on a work-stealing
// ThreadPool. Because shard boundaries and per-shard arithmetic are
// identical either way, results are bit-identical across 1, 2, or N
// threads; any final reduction is done serially over the full result
// vector by the caller.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

#include "engine/thread_pool.hpp"

namespace appclass::engine {

/// Default shard size for per-snapshot loops: big enough to amortize the
/// deque hop, small enough that a single large pool spreads across
/// workers.
inline constexpr std::size_t kDefaultGrain = 256;

class ExecutionContext {
 public:
  /// parallelism <= 1: serial (no pool, zero threads spawned).
  /// parallelism == 0 is reserved by callers for "one per hardware core"
  /// and must be resolved before construction (see make()).
  explicit ExecutionContext(std::size_t parallelism);

  /// Resolves the PipelineOptions convention: 0 = hardware concurrency,
  /// 1 = serial, N = pool of N workers.
  static std::shared_ptr<ExecutionContext> make(std::size_t parallelism);

  /// The process-wide serial context (no pool); cheap to share.
  static const std::shared_ptr<ExecutionContext>& serial();

  bool pooled() const noexcept { return pool_ != nullptr; }
  std::size_t parallelism() const noexcept {
    return pool_ ? pool_->size() : 1;
  }

  /// Shard callback: fn(begin, end, shard_index) over [begin, end).
  using ShardFn =
      std::function<void(std::size_t, std::size_t, std::size_t)>;

  /// Cuts [0, n) into ceil(n / grain) shards and runs `fn` once per
  /// shard — in order when serial, work-stolen when pooled. Shard
  /// boundaries depend only on (n, grain).
  void for_shards(std::size_t n, std::size_t grain, const ShardFn& fn) const;

  /// One task per item — the outer loop over pools / nodes / streams.
  void for_each(std::size_t n,
                const std::function<void(std::size_t)>& fn) const;

  /// Direct pool access for bespoke task graphs (null when serial).
  ThreadPool* pool() const noexcept { return pool_.get(); }

 private:
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace appclass::engine
