// Fixed-size worker pool with per-worker work-stealing queues.
//
// The engine's unit of work is a *pool-sized task*: a shard of a few
// hundred snapshots, one training pool, or one node's buffered stream —
// coarse enough that a mutex per deque is noise, fine enough that an
// uneven fleet (one 8000-snapshot pool among fifty small ones) still
// balances. Tasks are distributed round-robin across the worker deques at
// submission; a worker drained of its own deque steals from the busiest
// sibling's tail.
//
// `parallel_for` is the only entry point and it is *cooperative*: the
// calling thread claims and runs tasks of its own job alongside the
// workers, so nested parallel_for calls (a pooled pipeline inside a
// pooled fleet) cannot deadlock — every caller makes progress on its own
// job even when all workers are busy elsewhere.
//
// Observability: `appclass_engine_queue_depth` gauge (tasks submitted but
// not yet started), `appclass_engine_tasks_total`,
// `appclass_engine_jobs_total`, and `appclass_engine_steals_total`
// counters, `appclass_engine_job_wait_seconds` (submission-to-start
// latency per task), and `appclass_engine_worker_queue_depth{worker=}`
// gauges (per-deque backlog; shared across pool instances, last-write
// wins — a monitoring view, not an invariant).
//
// Trace propagation: parallel_for captures the caller's ambient
// obs::TraceContext into the job; every claimed task adopts it before
// running, so spans opened inside tasks — even stolen ones on other
// workers — parent to the submitting span.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace appclass::obs {
class Gauge;
}

namespace appclass::engine {

/// Scratch-pool placement hint for the calling thread: pool worker i
/// reports i + 1, every non-pool thread (including cooperative callers
/// inside parallel_for) reports 0. Purely a hint — distinct threads may
/// report the same slot, so pools keyed by it must still lease slots
/// atomically; the hint just makes the common case a one-probe hit on a
/// worker-warm slot.
std::size_t current_worker_slot() noexcept;

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1). `threads == 0` means one
  /// worker per hardware core.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (excluding cooperative callers).
  std::size_t size() const noexcept { return workers_.size(); }

  /// Runs `fn(0) .. fn(count - 1)` across the workers and the calling
  /// thread; returns when every task has finished. Task *results* must be
  /// written to disjoint, caller-owned slots — the pool guarantees each
  /// index runs exactly once and everything written by the tasks
  /// happens-before the return, nothing about ordering. The first
  /// exception thrown by a task is rethrown here after the job drains.
  /// Safe to call from multiple threads and from inside a task.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

 private:
  struct Job;

  void worker_loop(std::size_t worker_index);
  /// Pops one task of `job` (own deque first, then steal); returns false
  /// when the job has no unstarted tasks left.
  bool run_one(Job& job, std::size_t deque_hint);

  std::vector<std::thread> workers_;
  std::mutex mutex_;                    // guards jobs_ and stop_
  std::condition_variable work_ready_;  // workers wait here for jobs
  std::vector<std::shared_ptr<Job>> jobs_;
  bool stop_ = false;
  /// Per-deque backlog gauges, indexed like Job::deques (workers then
  /// caller); cached registry references, set under the deque mutexes.
  std::vector<obs::Gauge*> depth_gauges_;
};

}  // namespace appclass::engine
