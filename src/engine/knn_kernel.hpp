// Blocked structure-of-arrays k-NN kernel.
//
// The seed classifier walked an AoS row-major matrix one training point
// at a time through a `std::span` distance call, heap-allocated an
// n-entry (distance, index) vector per query, and partial_sort'ed it —
// cache-hostile and allocation-bound. This kernel stores the training
// set feature-major (column-major: feature j of every point contiguous),
// computes distances tile-by-tile so the compiler vectorizes across the
// points of a tile, and keeps only the best k via insertion into a
// k-slot scratch array. No allocation on the query path.
//
// Numerical contract: per-point distance accumulation visits features in
// ascending order — exactly the order of linalg::squared_distance /
// manhattan_distance — so distances (and therefore neighbour order,
// votes, and novelty scores) are bit-identical to the seed's scalar
// path. Ties in distance break toward the lower training index, matching
// partial_sort over (distance, index) pairs.
//
// Precomputed norms: each point's squared L2 norm (or L1 norm under
// Manhattan) is stored at build time, folded into per-tile [min, max]
// norm bounds. A tile whose whole norm range is provably farther than
// the current k-th best — by the reverse triangle inequality
// d(q, x) >= |norm(q) - norm(x)| — is skipped without touching its
// features. The bound is slackened by a relative epsilon so floating-
// point rounding can never prune a point the exact scan would keep.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/class_label.hpp"
#include "linalg/matrix.hpp"

namespace appclass::engine {

enum class DistanceMetric { kEuclidean, kManhattan };

/// A batch of query points in the kernel's own feature-major SoA layout:
/// feature j of query i lives at data()[j * stride() + i]. Producers
/// (the pipeline's batched normalize+project stage) write straight into
/// this layout, so the kernel consumes query points without any
/// per-snapshot repacking or per-query allocation. Grow-only: reset()
/// reuses the backing store across batches once it has seen the largest
/// batch.
class QueryBlock {
 public:
  /// Prepares the block for `count` points of `dims` features. Contents
  /// are unspecified until every point is written.
  void reset(std::size_t dims, std::size_t count) {
    dims_ = dims;
    count_ = count;
    if (count > capacity_) capacity_ = count;
    if (data_.size() < dims_ * capacity_) data_.resize(dims_ * capacity_);
  }

  std::size_t dims() const noexcept { return dims_; }
  std::size_t count() const noexcept { return count_; }
  /// Distance (in doubles) between consecutive features of one point.
  std::size_t stride() const noexcept { return capacity_; }

  /// Base of point i: feature j at point(i)[j * stride()].
  double* point(std::size_t i) noexcept { return data_.data() + i; }
  const double* point(std::size_t i) const noexcept {
    return data_.data() + i;
  }

  double at(std::size_t i, std::size_t j) const noexcept {
    return data_[j * capacity_ + i];
  }

 private:
  std::vector<double> data_;  ///< [dims_][capacity_] feature-major
  std::size_t dims_ = 0;
  std::size_t count_ = 0;
  std::size_t capacity_ = 0;
};

class BlockedKnnIndex {
 public:
  /// Points per tile: 256 doubles = 2 KiB per feature column slice, so a
  /// tile of the paper's 2-D projected space lives in L1.
  static constexpr std::size_t kTile = 256;

  /// One neighbour candidate: metric-space distance (squared L2, or L1
  /// sum) and the training-point index.
  struct Hit {
    double distance = 0.0;
    std::uint32_t index = 0;
  };

  /// Outcome of the majority vote over the k hits.
  struct Vote {
    core::ApplicationClass label = core::ApplicationClass::kIdle;
    double share = 0.0;  ///< winning votes / k, in (0, 1]
  };

  /// Per-thread scratch reused across queries (tile accumulators + the
  /// k-slot selection array). Cheap to default-construct; sized lazily.
  struct Scratch {
    std::vector<double> acc;
    std::vector<Hit> hits;
    /// Per-8-candidate chunk minima of `acc`, filled by the batched scan
    /// so its selection loop can skip whole chunks (see top_k_block).
    std::vector<double> chunk_mins;
    /// Tiles skipped by the norm-bound prune since construction (or the
    /// caller's last reset); accumulates across queries so shard spans
    /// can report prune effectiveness.
    std::uint64_t pruned_tiles = 0;
  };

  BlockedKnnIndex() = default;

  /// Copies `points` (row-major, one training point per row) into the
  /// blocked SoA layout. `k` is clamped to the point count at query time.
  void build(const linalg::Matrix& points,
             std::vector<core::ApplicationClass> labels, std::size_t k,
             DistanceMetric metric);

  bool built() const noexcept { return !labels_.empty(); }
  std::size_t size() const noexcept { return labels_.size(); }
  std::size_t dimension() const noexcept { return dims_; }
  std::size_t k() const noexcept { return k_; }
  DistanceMetric metric() const noexcept { return metric_; }
  std::span<const core::ApplicationClass> labels() const noexcept {
    return labels_;
  }

  /// The k nearest training points of `q`, ascending (distance, index);
  /// the returned span lives in `scratch`.
  std::span<const Hit> top_k(std::span<const double> q,
                             Scratch& scratch) const;

  /// Same query, reading point `i` of a feature-major QueryBlock in
  /// place (stride = block.stride()). This is the batched-ingest entry
  /// point: it runs the tuned block scan (no-fill distance tiles plus a
  /// branch-free threshold filter over the selection sweep), which is
  /// bit-identical to the span overload on the same coordinates — the
  /// per-feature arithmetic, candidate order, and tie handling are the
  /// reference scan's, only provably-skippable work is skipped.
  std::span<const Hit> top_k(const QueryBlock& block, std::size_t i,
                             Scratch& scratch) const;

  /// Metric-space distance to the single nearest training point
  /// (squared L2 under Euclidean — take sqrt for the novelty score).
  double nearest_distance(std::span<const double> q,
                          Scratch& scratch) const;

  /// Majority vote over hits; ties break by summed inverse rank (nearer
  /// neighbours win), matching the seed classifier.
  Vote vote(std::span<const Hit> hits) const;

 private:
  /// Shared strided implementation: feature j of the query at
  /// q[j * qstride]. The span path passes qstride = 1, the QueryBlock
  /// path its stride — per-feature arithmetic and order are identical.
  std::span<const Hit> top_k_strided(const double* q, std::size_t qstride,
                                     Scratch& scratch) const;
  /// The tuned scan behind the QueryBlock overload. Output-identical to
  /// top_k_strided; faster on drain-sized batches because the selection
  /// sweep tests candidate runs against the current k-th distance with a
  /// branch-free compare-OR before touching the insertion loop, and the
  /// distance tiles skip their zeroing pass.
  std::span<const Hit> top_k_block(const double* q, std::size_t qstride,
                                   Scratch& scratch) const;
  /// Computes distances of points [t0, t0+width) into scratch.acc.
  void tile_distances(const double* q, std::size_t qstride, std::size_t t0,
                      std::size_t width, std::vector<double>& acc) const;
  /// tile_distances with the first feature storing instead of adding
  /// into a zeroed accumulator (0 + term == term for the non-negative
  /// per-feature terms, so results are bit-identical).
  void tile_distances_nofill(const double* q, std::size_t qstride,
                             std::size_t t0, std::size_t width,
                             std::vector<double>& acc) const;
  /// Reverse-triangle-inequality lower bound of tile t for a query of
  /// norm `qnorm` (metric space: squared for L2), slackened for FP
  /// safety; 0 when the tile cannot be pruned.
  double tile_lower_bound(std::size_t t, double qnorm) const;
  double query_norm(const double* q, std::size_t qstride) const;

  std::size_t dims_ = 0;
  std::size_t k_ = 3;
  DistanceMetric metric_ = DistanceMetric::kEuclidean;
  std::size_t padded_ = 0;           ///< point count rounded up to kTile
  std::vector<double> features_;     ///< [dims_][padded_] feature-major
  std::vector<double> sq_norms_;     ///< per point: |x|^2 (L2) or |x|_1
  std::vector<double> tile_min_norm_;  ///< per tile, unsquared norms
  std::vector<double> tile_max_norm_;
  std::vector<core::ApplicationClass> labels_;
};

/// The seed's scalar query path, preserved verbatim as the ground truth
/// for kernel tests and the baseline for bench/engine_throughput: per
/// query, allocate an n-entry (distance, index) vector, fill it with
/// span-based distance calls over the row-major matrix, partial_sort.
std::vector<BlockedKnnIndex::Hit> reference_top_k(
    const linalg::Matrix& points, std::span<const double> q, std::size_t k,
    DistanceMetric metric);

}  // namespace appclass::engine
