#include "engine/knn_kernel.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <utility>

#include "common/assert.hpp"
#include "engine/knn_block_tiles.hpp"

namespace appclass::engine {
namespace {

/// Relative slack applied to the prune bound: computed distances carry a
/// handful of ulps of rounding, the bound is slackened by ~1e-6 — six
/// orders of magnitude more than needed, still pruning everything a real
/// novelty outlier should prune.
constexpr double kPruneSlack = 0.999999;

}  // namespace

void BlockedKnnIndex::build(const linalg::Matrix& points,
                            std::vector<core::ApplicationClass> labels,
                            std::size_t k, DistanceMetric metric) {
  APPCLASS_EXPECTS(points.rows() == labels.size());
  APPCLASS_EXPECTS(points.rows() >= 1);
  APPCLASS_EXPECTS(points.cols() >= 1);
  const std::size_t n = points.rows();
  dims_ = points.cols();
  k_ = k;
  metric_ = metric;
  labels_ = std::move(labels);
  padded_ = (n + kTile - 1) / kTile * kTile;

  // Feature-major copy: feature j of point i at features_[j * padded_ + i].
  features_.assign(dims_ * padded_, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = points.row(i);
    for (std::size_t j = 0; j < dims_; ++j)
      features_[j * padded_ + i] = row[j];
  }

  // Per-point norms (ascending-feature accumulation, like the distances)
  // and per-tile unsquared bounds for the prune test.
  sq_norms_.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    const auto row = points.row(i);
    if (metric_ == DistanceMetric::kManhattan) {
      for (std::size_t j = 0; j < dims_; ++j) acc += std::abs(row[j]);
    } else {
      for (std::size_t j = 0; j < dims_; ++j) acc += row[j] * row[j];
    }
    sq_norms_[i] = acc;
  }
  const std::size_t tiles = padded_ / kTile;
  tile_min_norm_.assign(tiles, std::numeric_limits<double>::infinity());
  tile_max_norm_.assign(tiles, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double norm = metric_ == DistanceMetric::kManhattan
                            ? sq_norms_[i]
                            : std::sqrt(sq_norms_[i]);
    const std::size_t t = i / kTile;
    tile_min_norm_[t] = std::min(tile_min_norm_[t], norm);
    tile_max_norm_[t] = std::max(tile_max_norm_[t], norm);
  }
}

double BlockedKnnIndex::query_norm(const double* q,
                                   std::size_t qstride) const {
  double acc = 0.0;
  if (metric_ == DistanceMetric::kManhattan) {
    for (std::size_t j = 0; j < dims_; ++j) acc += std::abs(q[j * qstride]);
    return acc;
  }
  for (std::size_t j = 0; j < dims_; ++j) {
    const double v = q[j * qstride];
    acc += v * v;
  }
  return std::sqrt(acc);
}

double BlockedKnnIndex::tile_lower_bound(std::size_t t, double qnorm) const {
  // Reverse triangle inequality: d(q, x) >= |norm(q) - norm(x)| for any
  // norm-induced metric. Zero (never prunes) when qnorm falls inside the
  // tile's norm range.
  double delta = 0.0;
  if (qnorm < tile_min_norm_[t])
    delta = tile_min_norm_[t] - qnorm;
  else if (qnorm > tile_max_norm_[t])
    delta = qnorm - tile_max_norm_[t];
  else
    return 0.0;
  const double bound =
      metric_ == DistanceMetric::kManhattan ? delta : delta * delta;
  return bound * kPruneSlack;
}

void BlockedKnnIndex::tile_distances(const double* q, std::size_t qstride,
                                     std::size_t t0, std::size_t width,
                                     std::vector<double>& acc) const {
  // Vectorizes across the tile's points; each point's accumulator sees
  // features in ascending order — the exact summation order of
  // linalg::squared_distance / manhattan_distance. The query's stride
  // only changes where feature j is loaded from, never the arithmetic.
  std::fill(acc.begin(), acc.begin() + static_cast<std::ptrdiff_t>(width),
            0.0);
  double* const a = acc.data();
  if (metric_ == DistanceMetric::kManhattan) {
    for (std::size_t j = 0; j < dims_; ++j) {
      const double qj = q[j * qstride];
      const double* const col = features_.data() + j * padded_ + t0;
      for (std::size_t i = 0; i < width; ++i)
        a[i] += std::abs(col[i] - qj);
    }
    return;
  }
  for (std::size_t j = 0; j < dims_; ++j) {
    const double qj = q[j * qstride];
    const double* const col = features_.data() + j * padded_ + t0;
    for (std::size_t i = 0; i < width; ++i) {
      const double d = col[i] - qj;
      a[i] += d * d;
    }
  }
}

std::span<const BlockedKnnIndex::Hit> BlockedKnnIndex::top_k(
    std::span<const double> q, Scratch& scratch) const {
  APPCLASS_EXPECTS(q.size() == dims_);
  return top_k_strided(q.data(), 1, scratch);
}

std::span<const BlockedKnnIndex::Hit> BlockedKnnIndex::top_k(
    const QueryBlock& block, std::size_t i, Scratch& scratch) const {
  APPCLASS_EXPECTS(block.dims() == dims_);
  APPCLASS_EXPECTS(i < block.count());
  return top_k_block(block.point(i), block.stride(), scratch);
}

std::span<const BlockedKnnIndex::Hit> BlockedKnnIndex::top_k_strided(
    const double* q, std::size_t qstride, Scratch& scratch) const {
  APPCLASS_EXPECTS(built());
  const std::size_t n = labels_.size();
  const std::size_t k = std::min(k_, n);
  scratch.acc.resize(kTile);
  scratch.hits.resize(k);
  Hit* const hits = scratch.hits.data();
  std::size_t count = 0;
  const double qnorm = query_norm(q, qstride);

  for (std::size_t t0 = 0; t0 < n; t0 += kTile) {
    const std::size_t width = std::min(kTile, n - t0);
    if (count == k &&
        tile_lower_bound(t0 / kTile, qnorm) > hits[k - 1].distance) {
      ++scratch.pruned_tiles;
      continue;
    }
    tile_distances(q, qstride, t0, width, scratch.acc);
    for (std::size_t i = 0; i < width; ++i) {
      const double d = scratch.acc[i];
      // Candidates arrive in ascending index, so a distance tie keeps
      // the incumbent — the (distance, index) pair order of the seed's
      // partial_sort.
      if (count == k && d >= hits[k - 1].distance) continue;
      std::size_t pos = count < k ? count : k - 1;
      while (pos > 0 && d < hits[pos - 1].distance) {
        hits[pos] = hits[pos - 1];
        --pos;
      }
      hits[pos] =
          Hit{d, static_cast<std::uint32_t>(t0 + i)};
      if (count < k) ++count;
    }
  }
  return {hits, count};
}

void BlockedKnnIndex::tile_distances_nofill(const double* q,
                                            std::size_t qstride,
                                            std::size_t t0, std::size_t width,
                                            std::vector<double>& acc) const {
  // Same per-point accumulation as tile_distances, but the first feature
  // stores instead of adding into a zeroed array (every per-feature term
  // is non-negative, so 0 + term == term bit for bit and the zeroing
  // pass is pure overhead), and the per-feature sweeps run through the
  // vectorized blocktiles primitives.
  double* const a = acc.data();
  if (metric_ == DistanceMetric::kManhattan) {
    if (dims_ == 2) {
      blocktiles::l1_pair(features_.data() + t0, features_.data() + padded_ + t0,
                          q[0], q[qstride], a, width);
      return;
    }
    blocktiles::l1_first(features_.data() + t0, q[0], a, width);
    for (std::size_t j = 1; j < dims_; ++j)
      blocktiles::l1_accumulate(features_.data() + j * padded_ + t0,
                                q[j * qstride], a, width);
    return;
  }
  if (dims_ == 2) {
    blocktiles::sq_pair(features_.data() + t0, features_.data() + padded_ + t0,
                        q[0], q[qstride], a, width);
    return;
  }
  blocktiles::sq_first(features_.data() + t0, q[0], a, width);
  for (std::size_t j = 1; j < dims_; ++j)
    blocktiles::sq_accumulate(features_.data() + j * padded_ + t0,
                              q[j * qstride], a, width);
}

std::span<const BlockedKnnIndex::Hit> BlockedKnnIndex::top_k_block(
    const double* q, std::size_t qstride, Scratch& scratch) const {
  APPCLASS_EXPECTS(built());
  const std::size_t n = labels_.size();
  const std::size_t k = std::min(k_, n);
  constexpr std::size_t kChunk = blocktiles::kMinChunk;
  scratch.acc.resize(kTile);
  scratch.chunk_mins.resize(kTile / kChunk);
  scratch.hits.resize(k);
  Hit* const hits = scratch.hits.data();
  std::size_t count = 0;
  // The norm (and its sqrt) only feeds the cross-tile prune test, which
  // a single-tile index never reaches — common for this domain's small
  // labeled training pools.
  const double qnorm = n > kTile ? query_norm(q, qstride) : 0.0;

  // Lexicographic (distance, index) insertion, valid under ANY candidate
  // processing order. The reference ascending scan keeps exactly the k
  // lexicographically smallest (distance, index) pairs — its strict '<'
  // on distance means a later tie never displaces an earlier index — so
  // maintaining that set directly frees the loop below to visit chunks
  // out of order and still return bit-identical hits in the same order.
  const auto consider = [&](double d, std::size_t index) {
    const auto idx = static_cast<std::uint32_t>(index);
    if (count == k && (d > hits[k - 1].distance ||
                       (d == hits[k - 1].distance && idx > hits[k - 1].index)))
      return;
    std::size_t pos = count < k ? count : k - 1;
    while (pos > 0 && (d < hits[pos - 1].distance ||
                       (d == hits[pos - 1].distance &&
                        idx < hits[pos - 1].index))) {
      hits[pos] = hits[pos - 1];
      --pos;
    }
    hits[pos] = Hit{d, idx};
    if (count < k) ++count;
  };

  for (std::size_t t0 = 0; t0 < n; t0 += kTile) {
    const std::size_t width = std::min(kTile, n - t0);
    if (count == k &&
        tile_lower_bound(t0 / kTile, qnorm) > hits[k - 1].distance) {
      ++scratch.pruned_tiles;
      continue;
    }
    tile_distances_nofill(q, qstride, t0, width, scratch.acc);
    const double* const a = scratch.acc.data();
    const std::size_t blocks = width / kChunk;
    if (blocks > 0) {
      // Per-8 minima come from the vectorized sweep TU, near-free next
      // to the distance pass. Seeding from the most promising chunk
      // usually collapses the k-th distance to its final value at once,
      // so the single compare below then discards almost every other
      // chunk wholesale — unlike an ascending scan, where a query near
      // a late cluster drags a loose k-th bound across all the early
      // chunks. (A scalar chunk filter in ascending order was measured
      // and lost to the plain scan.)
      double* const mins = scratch.chunk_mins.data();
      blocktiles::chunk_mins(a, width, mins);
      std::size_t best = 0;
      for (std::size_t b = 1; b < blocks; ++b)
        if (mins[b] < mins[best]) best = b;
      const std::size_t b0 = best * kChunk;
      for (std::size_t i = b0; i < b0 + kChunk; ++i) consider(a[i], t0 + i);
      for (std::size_t b = 0; b < blocks; ++b) {
        if (b == best) continue;
        // Strict '>': a chunk whose min ties the k-th distance may hold
        // an equal-distance lower index, which the set does admit.
        if (count == k && mins[b] > hits[k - 1].distance) continue;
        const std::size_t i0 = b * kChunk;
        for (std::size_t i = i0; i < i0 + kChunk; ++i) consider(a[i], t0 + i);
      }
    }
    for (std::size_t i = blocks * kChunk; i < width; ++i)
      consider(a[i], t0 + i);
  }
  return {hits, count};
}

double BlockedKnnIndex::nearest_distance(std::span<const double> q,
                                         Scratch& scratch) const {
  APPCLASS_EXPECTS(built());
  APPCLASS_EXPECTS(q.size() == dims_);
  const std::size_t n = labels_.size();
  scratch.acc.resize(kTile);
  double best = std::numeric_limits<double>::infinity();
  const double qnorm = query_norm(q.data(), 1);
  for (std::size_t t0 = 0; t0 < n; t0 += kTile) {
    const std::size_t width = std::min(kTile, n - t0);
    if (tile_lower_bound(t0 / kTile, qnorm) > best) {
      ++scratch.pruned_tiles;
      continue;
    }
    tile_distances(q.data(), 1, t0, width, scratch.acc);
    for (std::size_t i = 0; i < width; ++i)
      best = std::min(best, scratch.acc[i]);
  }
  return best;
}

BlockedKnnIndex::Vote BlockedKnnIndex::vote(std::span<const Hit> hits) const {
  APPCLASS_EXPECTS(!hits.empty());
  // Majority vote; ties resolved by summed inverse rank (nearer wins) —
  // verbatim the seed classifier's rule.
  std::array<int, core::kClassCount> votes{};
  std::array<double, core::kClassCount> rank_weight{};
  for (std::size_t r = 0; r < hits.size(); ++r) {
    const std::size_t c = core::index_of(labels_[hits[r].index]);
    votes[c] += 1;
    rank_weight[c] += 1.0 / static_cast<double>(r + 1);
  }
  std::size_t best = 0;
  for (std::size_t c = 1; c < core::kClassCount; ++c) {
    if (votes[c] > votes[best] ||
        (votes[c] == votes[best] && rank_weight[c] > rank_weight[best]))
      best = c;
  }
  return Vote{core::class_from_index(best),
              static_cast<double>(votes[best]) /
                  static_cast<double>(hits.size())};
}

std::vector<BlockedKnnIndex::Hit> reference_top_k(
    const linalg::Matrix& points, std::span<const double> q, std::size_t k,
    DistanceMetric metric) {
  const std::size_t n = points.rows();
  k = std::min(k, n);
  std::vector<std::pair<double, std::size_t>> dist(n);
  for (std::size_t i = 0; i < n; ++i) {
    dist[i] = {metric == DistanceMetric::kManhattan
                   ? linalg::manhattan_distance(points.row(i), q)
                   : linalg::squared_distance(points.row(i), q),
               i};
  }
  std::partial_sort(dist.begin(),
                    dist.begin() + static_cast<std::ptrdiff_t>(k),
                    dist.end());
  std::vector<BlockedKnnIndex::Hit> out(k);
  for (std::size_t i = 0; i < k; ++i)
    out[i] = {dist[i].first, static_cast<std::uint32_t>(dist[i].second)};
  return out;
}

}  // namespace appclass::engine
