#include "engine/knn_kernel.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <utility>

#include "common/assert.hpp"

namespace appclass::engine {
namespace {

/// Relative slack applied to the prune bound: computed distances carry a
/// handful of ulps of rounding, the bound is slackened by ~1e-6 — six
/// orders of magnitude more than needed, still pruning everything a real
/// novelty outlier should prune.
constexpr double kPruneSlack = 0.999999;

}  // namespace

void BlockedKnnIndex::build(const linalg::Matrix& points,
                            std::vector<core::ApplicationClass> labels,
                            std::size_t k, DistanceMetric metric) {
  APPCLASS_EXPECTS(points.rows() == labels.size());
  APPCLASS_EXPECTS(points.rows() >= 1);
  APPCLASS_EXPECTS(points.cols() >= 1);
  const std::size_t n = points.rows();
  dims_ = points.cols();
  k_ = k;
  metric_ = metric;
  labels_ = std::move(labels);
  padded_ = (n + kTile - 1) / kTile * kTile;

  // Feature-major copy: feature j of point i at features_[j * padded_ + i].
  features_.assign(dims_ * padded_, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = points.row(i);
    for (std::size_t j = 0; j < dims_; ++j)
      features_[j * padded_ + i] = row[j];
  }

  // Per-point norms (ascending-feature accumulation, like the distances)
  // and per-tile unsquared bounds for the prune test.
  sq_norms_.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    const auto row = points.row(i);
    if (metric_ == DistanceMetric::kManhattan) {
      for (std::size_t j = 0; j < dims_; ++j) acc += std::abs(row[j]);
    } else {
      for (std::size_t j = 0; j < dims_; ++j) acc += row[j] * row[j];
    }
    sq_norms_[i] = acc;
  }
  const std::size_t tiles = padded_ / kTile;
  tile_min_norm_.assign(tiles, std::numeric_limits<double>::infinity());
  tile_max_norm_.assign(tiles, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double norm = metric_ == DistanceMetric::kManhattan
                            ? sq_norms_[i]
                            : std::sqrt(sq_norms_[i]);
    const std::size_t t = i / kTile;
    tile_min_norm_[t] = std::min(tile_min_norm_[t], norm);
    tile_max_norm_[t] = std::max(tile_max_norm_[t], norm);
  }
}

double BlockedKnnIndex::query_norm(std::span<const double> q) const {
  double acc = 0.0;
  if (metric_ == DistanceMetric::kManhattan) {
    for (const double v : q) acc += std::abs(v);
    return acc;
  }
  for (const double v : q) acc += v * v;
  return std::sqrt(acc);
}

double BlockedKnnIndex::tile_lower_bound(std::size_t t, double qnorm) const {
  // Reverse triangle inequality: d(q, x) >= |norm(q) - norm(x)| for any
  // norm-induced metric. Zero (never prunes) when qnorm falls inside the
  // tile's norm range.
  double delta = 0.0;
  if (qnorm < tile_min_norm_[t])
    delta = tile_min_norm_[t] - qnorm;
  else if (qnorm > tile_max_norm_[t])
    delta = qnorm - tile_max_norm_[t];
  else
    return 0.0;
  const double bound =
      metric_ == DistanceMetric::kManhattan ? delta : delta * delta;
  return bound * kPruneSlack;
}

void BlockedKnnIndex::tile_distances(std::span<const double> q,
                                     std::size_t t0, std::size_t width,
                                     std::vector<double>& acc) const {
  // Vectorizes across the tile's points; each point's accumulator sees
  // features in ascending order — the exact summation order of
  // linalg::squared_distance / manhattan_distance.
  std::fill(acc.begin(), acc.begin() + static_cast<std::ptrdiff_t>(width),
            0.0);
  double* const a = acc.data();
  if (metric_ == DistanceMetric::kManhattan) {
    for (std::size_t j = 0; j < dims_; ++j) {
      const double qj = q[j];
      const double* const col = features_.data() + j * padded_ + t0;
      for (std::size_t i = 0; i < width; ++i)
        a[i] += std::abs(col[i] - qj);
    }
    return;
  }
  for (std::size_t j = 0; j < dims_; ++j) {
    const double qj = q[j];
    const double* const col = features_.data() + j * padded_ + t0;
    for (std::size_t i = 0; i < width; ++i) {
      const double d = col[i] - qj;
      a[i] += d * d;
    }
  }
}

std::span<const BlockedKnnIndex::Hit> BlockedKnnIndex::top_k(
    std::span<const double> q, Scratch& scratch) const {
  APPCLASS_EXPECTS(built());
  APPCLASS_EXPECTS(q.size() == dims_);
  const std::size_t n = labels_.size();
  const std::size_t k = std::min(k_, n);
  scratch.acc.resize(kTile);
  scratch.hits.resize(k);
  Hit* const hits = scratch.hits.data();
  std::size_t count = 0;
  const double qnorm = query_norm(q);

  for (std::size_t t0 = 0; t0 < n; t0 += kTile) {
    const std::size_t width = std::min(kTile, n - t0);
    if (count == k &&
        tile_lower_bound(t0 / kTile, qnorm) > hits[k - 1].distance) {
      ++scratch.pruned_tiles;
      continue;
    }
    tile_distances(q, t0, width, scratch.acc);
    for (std::size_t i = 0; i < width; ++i) {
      const double d = scratch.acc[i];
      // Candidates arrive in ascending index, so a distance tie keeps
      // the incumbent — the (distance, index) pair order of the seed's
      // partial_sort.
      if (count == k && d >= hits[k - 1].distance) continue;
      std::size_t pos = count < k ? count : k - 1;
      while (pos > 0 && d < hits[pos - 1].distance) {
        hits[pos] = hits[pos - 1];
        --pos;
      }
      hits[pos] =
          Hit{d, static_cast<std::uint32_t>(t0 + i)};
      if (count < k) ++count;
    }
  }
  return {hits, count};
}

double BlockedKnnIndex::nearest_distance(std::span<const double> q,
                                         Scratch& scratch) const {
  APPCLASS_EXPECTS(built());
  APPCLASS_EXPECTS(q.size() == dims_);
  const std::size_t n = labels_.size();
  scratch.acc.resize(kTile);
  double best = std::numeric_limits<double>::infinity();
  const double qnorm = query_norm(q);
  for (std::size_t t0 = 0; t0 < n; t0 += kTile) {
    const std::size_t width = std::min(kTile, n - t0);
    if (tile_lower_bound(t0 / kTile, qnorm) > best) {
      ++scratch.pruned_tiles;
      continue;
    }
    tile_distances(q, t0, width, scratch.acc);
    for (std::size_t i = 0; i < width; ++i)
      best = std::min(best, scratch.acc[i]);
  }
  return best;
}

BlockedKnnIndex::Vote BlockedKnnIndex::vote(std::span<const Hit> hits) const {
  APPCLASS_EXPECTS(!hits.empty());
  // Majority vote; ties resolved by summed inverse rank (nearer wins) —
  // verbatim the seed classifier's rule.
  std::array<int, core::kClassCount> votes{};
  std::array<double, core::kClassCount> rank_weight{};
  for (std::size_t r = 0; r < hits.size(); ++r) {
    const std::size_t c = core::index_of(labels_[hits[r].index]);
    votes[c] += 1;
    rank_weight[c] += 1.0 / static_cast<double>(r + 1);
  }
  std::size_t best = 0;
  for (std::size_t c = 1; c < core::kClassCount; ++c) {
    if (votes[c] > votes[best] ||
        (votes[c] == votes[best] && rank_weight[c] > rank_weight[best]))
      best = c;
  }
  return Vote{core::class_from_index(best),
              static_cast<double>(votes[best]) /
                  static_cast<double>(hits.size())};
}

std::vector<BlockedKnnIndex::Hit> reference_top_k(
    const linalg::Matrix& points, std::span<const double> q, std::size_t k,
    DistanceMetric metric) {
  const std::size_t n = points.rows();
  k = std::min(k, n);
  std::vector<std::pair<double, std::size_t>> dist(n);
  for (std::size_t i = 0; i < n; ++i) {
    dist[i] = {metric == DistanceMetric::kManhattan
                   ? linalg::manhattan_distance(points.row(i), q)
                   : linalg::squared_distance(points.row(i), q),
               i};
  }
  std::partial_sort(dist.begin(),
                    dist.begin() + static_cast<std::ptrdiff_t>(k),
                    dist.end());
  std::vector<BlockedKnnIndex::Hit> out(k);
  for (std::size_t i = 0; i < k; ++i)
    out[i] = {dist[i].first, static_cast<std::uint32_t>(dist[i].second)};
  return out;
}

}  // namespace appclass::engine
