// Fixed-capacity, overwrite-aware snapshot ring — the FleetStream
// backlog's storage.
//
// Same idiom as the obs flight recorder's per-thread event ring: a flat
// slot array with a head index, where "push" hands out a *slot to
// assign into* rather than copy-constructing a fresh element. Slots are
// never destroyed by clear()/swap(), so a drained ring keeps its warmed
// Snapshot payloads (the node_ip string capacity in particular) and a
// steady-state push→drain cycle re-assigns in place without touching
// the heap. Growth is geometric and grow-only; the owner decides the
// overflow policy (drop the newcomer, or displace_oldest() to
// overwrite) — the ring only provides the mechanics.
//
// Each slot carries an optional WAL sequence number (kNoSeq when the
// snapshot was accepted while no durability hook was installed), so the
// drain can compute an exact ingest horizon even when the hook was
// attached or detached mid-stream.
//
// Not thread-safe; FleetStream serializes access under its own lock.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "metrics/snapshot.hpp"

namespace appclass::engine {

class SnapshotRing {
 public:
  /// Sentinel: this slot was accepted without a durability hook.
  static constexpr std::uint64_t kNoSeq = ~std::uint64_t{0};

  struct Slot {
    metrics::Snapshot snapshot;
    std::uint64_t seq = kNoSeq;
  };

  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  std::size_t capacity() const noexcept { return slots_.size(); }

  /// Allocations performed since construction (initial sizing + every
  /// geometric growth) — the "is steady state actually allocation-free"
  /// probe the backpressure metrics export.
  std::uint64_t grows() const noexcept { return grows_; }

  /// Grow-only: relinearizes the live slots to the front of a larger
  /// array. No-op when already at least `cap` slots.
  void reserve(std::size_t cap) {
    if (cap <= slots_.size()) return;
    std::vector<Slot> next(std::max<std::size_t>(
        {cap, slots_.size() * 2, kMinCapacity}));
    for (std::size_t i = 0; i < count_; ++i) next[i] = std::move(at(i));
    slots_.swap(next);
    head_ = 0;
    ++grows_;
  }

  /// Appends one logical slot and returns it for assignment; grows when
  /// full. The returned slot holds a previous cycle's payload — assign
  /// both fields.
  Slot& append() {
    if (count_ == slots_.size()) reserve(count_ + 1);
    Slot& slot = slots_[(head_ + count_) % slots_.size()];
    ++count_;
    return slot;
  }

  /// Overwrite-oldest: retires the oldest entry and returns the slot at
  /// the new newest logical position for assignment (size unchanged).
  /// When the ring is physically full that is the retired entry's own
  /// storage; when logical size < capacity it is the next warm slot, and
  /// the retired payload re-enters the rotation later. Requires a
  /// non-empty ring.
  Slot& displace_oldest() {
    APPCLASS_EXPECTS(count_ > 0);
    head_ = (head_ + 1) % slots_.size();
    return slots_[(head_ + count_ - 1) % slots_.size()];
  }

  /// Logical indexing, 0 = oldest.
  Slot& at(std::size_t i) {
    APPCLASS_EXPECTS(i < count_);
    return slots_[(head_ + i) % slots_.size()];
  }
  const Slot& at(std::size_t i) const {
    APPCLASS_EXPECTS(i < count_);
    return slots_[(head_ + i) % slots_.size()];
  }

  /// Forgets the contents but keeps every warmed slot.
  void clear() noexcept {
    head_ = 0;
    count_ = 0;
  }

  void swap(SnapshotRing& other) noexcept {
    slots_.swap(other.slots_);
    std::swap(head_, other.head_);
    std::swap(count_, other.count_);
    std::swap(grows_, other.grows_);
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  std::vector<Slot> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::uint64_t grows_ = 0;
};

}  // namespace appclass::engine
