// SIMD-friendly tile primitives for the batched (QueryBlock) k-NN scan.
//
// These are the inner loops of BlockedKnnIndex::top_k_block, hoisted
// into their own translation unit so they can be compiled with the
// vectorizer fully enabled (and AVX2 function clones resolved at load
// time) without touching the code generation of the reference span-query
// path, which doubles as the kernel's ground truth.
//
// Numerical contract: every helper performs exactly the element-wise
// IEEE operations of the scalar reference loops — subtract, multiply,
// add (or abs/add), in ascending point order per feature — and the
// clones are generated without FMA, so results are bit-identical to the
// scalar path on every CPU the resolver can pick.
#pragma once

#include <cstddef>

namespace appclass::engine::blocktiles {

/// acc[i] = (col[i] - q)^2 for i in [0, width) — first-feature store.
void sq_first(const double* col, double q, double* acc, std::size_t width);
/// acc[i] = (c0[i] - q0)^2 + (c1[i] - q1)^2 — the two-feature query in
/// one pass over the tile (half the acc traffic of store + accumulate).
/// Same mul, mul, add rounding sequence as the two-sweep form, so the
/// fusion is bit-transparent. Two features is the common case: the
/// paper keeps two principal components.
void sq_pair(const double* c0, const double* c1, double q0, double q1,
             double* acc, std::size_t width);
/// acc[i] += (col[i] - q)^2 for i in [0, width).
void sq_accumulate(const double* col, double q, double* acc,
                   std::size_t width);
/// acc[i] = |col[i] - q| for i in [0, width) — first-feature store.
void l1_first(const double* col, double q, double* acc, std::size_t width);
/// acc[i] = |c0[i] - q0| + |c1[i] - q1| — fused two-feature Manhattan
/// pass; same abs, abs, add sequence as the two-sweep form.
void l1_pair(const double* c0, const double* c1, double q0, double q1,
             double* acc, std::size_t width);
/// acc[i] += |col[i] - q| for i in [0, width).
void l1_accumulate(const double* col, double q, double* acc,
                   std::size_t width);

/// Candidates per chunk_mins() block — the granularity at which the
/// batched selection loop can skip distances wholesale.
inline constexpr std::size_t kMinChunk = 8;

/// mins[j] = min(acc[8j .. 8j+8)) for every complete 8-wide chunk
/// (floor(width / 8) of them); a trailing partial chunk is the caller's
/// to scan. Pure min-reduction — no arithmetic, so no rounding concerns.
void chunk_mins(const double* acc, std::size_t width, double* mins);

}  // namespace appclass::engine::blocktiles
