// Fleet-scale classification: many pools / many nodes' online streams
// through one trained pipeline.
//
// Two entry points share the pipeline's engine::ExecutionContext:
//
//   * BatchClassifier fans a set of DataPools out as one task per pool
//     (each pool's classify() additionally shards internally), for
//     offline jobs that re-classify a whole fleet's recorded runs.
//   * FleetStream is the online counterpart: it buffers grid-aligned
//     snapshots pushed from any thread (e.g. a monitor::MetricBus
//     subscription) and, on drain(), classifies the backlog in parallel
//     but ingests the labels into the OnlineClassifier serially in push
//     order — so window state, debounce, and change events are
//     bit-identical to calling observe() snapshot by snapshot.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "core/online.hpp"
#include "core/pipeline.hpp"
#include "engine/snapshot_ring.hpp"
#include "metrics/snapshot.hpp"
#include "monitor/bus.hpp"

namespace appclass::engine {

/// Classifies many recorded runs concurrently. Results are indexed like
/// the input and independent of the thread count.
class BatchClassifier {
 public:
  /// The pipeline must stay alive for the classifier's lifetime.
  explicit BatchClassifier(const core::ClassificationPipeline& pipeline)
      : pipeline_(pipeline) {}

  /// One ClassificationResult per pool, in input order.
  std::vector<core::ClassificationResult> classify_pools(
      const std::vector<metrics::DataPool>& pools) const;

 private:
  const core::ClassificationPipeline& pipeline_;
};

/// Online fan-in for a whole fleet of nodes.
///
/// The backlog is a pair of SnapshotRings double-buffered between the
/// push side and the drainer: push() assigns into a warmed ring slot
/// under the lock, drain() swaps the rings (O(1)) and classifies the
/// drained ring through the pipeline's batched SoA path. After the rings
/// and the batch have seen their largest drain, a steady-state
/// push→drain cycle performs zero heap allocations (bare-label path; an
/// attached health aggregator adds its own evidence copies).
class FleetStream {
 public:
  /// What to do with a push that finds the bounded backlog full.
  enum class OverflowPolicy {
    /// Drop the newcomer (count on appclass_fleet_dropped_total) — the
    /// default, and the only policy compatible with an ingest hook: the
    /// WAL must never log a snapshot the drain will not ingest.
    kDropNewest,
    /// Overwrite the oldest buffered snapshot (count on
    /// appclass_fleet_overwritten_total): freshest-data-wins for purely
    /// observational streams with no durability hook.
    kOverwriteOldest,
  };

  /// The pipeline must stay alive for the stream's lifetime.
  /// `max_backlog` bounds the pending buffer (0 = unbounded); `policy`
  /// picks what a push into a full buffer sacrifices.
  FleetStream(const core::ClassificationPipeline& pipeline,
              core::OnlineOptions options = {}, std::size_t max_backlog = 0,
              OverflowPolicy policy = OverflowPolicy::kDropNewest);
  ~FleetStream();

  FleetStream(const FleetStream&) = delete;
  FleetStream& operator=(const FleetStream&) = delete;

  /// Buffers one snapshot if it falls on the sampling grid (thread-safe;
  /// off-grid snapshots are dropped exactly as observe() would skip
  /// them). Returns false when the snapshot was dropped on a full buffer.
  bool push(const metrics::Snapshot& snapshot);

  /// Durability hook, called under the stream lock for every *accepted*
  /// push, in exactly the order the snapshots will later be ingested —
  /// the serve path points it at persist::WalWriter::append so the log
  /// order equals ingest order. Returns the snapshot's WAL sequence
  /// number. Keep the callee fast (it runs inside the push critical
  /// section — that is the point: accept and log are atomic with respect
  /// to each other). Installing a hook resets the ingest horizon: the
  /// horizon describes *this* hook's log, and snapshots buffered before
  /// the install carry no sequence and never advance it (hook-attach
  /// mid-stream is safe). Rejected under kOverwriteOldest.
  using IngestHook = std::function<std::uint64_t(const metrics::Snapshot&)>;
  void set_ingest_hook(IngestHook hook);

  /// One past the WAL sequence of the last hook-logged snapshot actually
  /// ingested by drain() — the `wal_next` horizon a checkpoint of
  /// online() state is entitled to claim. 0 until the current hook has
  /// fed a drain; monotonic for the lifetime of one hook.
  std::uint64_t ingested_wal_horizon() const;

  /// Classifies the buffered backlog in parallel on the pipeline's
  /// execution context, then ingests the labels serially in push order.
  /// Returns the number of snapshots classified.
  std::size_t drain();

  /// Snapshots buffered and not yet drained (thread-safe).
  std::size_t backlog() const;

  /// Largest backlog depth observed since construction or the last
  /// attach() — peak is sticky across drains (it answers "how far behind
  /// did this stream ever get"), and attach() starts a fresh episode so
  /// a re-attached stream does not inherit a stale ceiling (thread-safe).
  std::size_t backlog_peak() const;

  /// Pushes dropped on a full buffer since construction (thread-safe).
  std::size_t dropped() const;

  /// Buffered snapshots overwritten by newer ones under
  /// OverflowPolicy::kOverwriteOldest (thread-safe).
  std::size_t overwritten() const;

  /// Heap allocations the backlog rings have performed (initial sizing
  /// plus growth; thread-safe). Flat across a steady-state workload.
  std::uint64_t ring_grows() const;

  /// Subscribes push() to a bus; detaches from any previous bus first,
  /// and resets backlog_peak() for the new subscription episode.
  /// The bus must outlive the stream (or call detach() before it dies).
  void attach(monitor::MetricBus& bus);
  void detach();

  /// Per-node rolling state (compositions, stable classes, change
  /// callback registration). Not thread-safe against a concurrent
  /// drain() — inspect between drains.
  core::OnlineClassifier& online() noexcept { return online_; }
  const core::OnlineClassifier& online() const noexcept { return online_; }

 private:
  const core::ClassificationPipeline& pipeline_;
  core::OnlineClassifier online_;
  std::size_t max_backlog_ = 0;
  OverflowPolicy policy_ = OverflowPolicy::kDropNewest;
  mutable std::mutex mutex_;  // guards pending_ / hook / peak / counters
  /// Double buffer: push() fills pending_; drain() swaps it with
  /// drained_ (owned by the drainer outside the lock) so slot and string
  /// capacity circulate between the two instead of being reallocated.
  SnapshotRing pending_;
  SnapshotRing drained_;
  /// Reused classification outputs (SoA queries + labels/details).
  core::SnapshotBatch batch_;
  IngestHook ingest_hook_;
  std::uint64_t ingested_wal_horizon_ = 0;
  std::size_t backlog_peak_ = 0;
  std::size_t dropped_ = 0;
  std::size_t overwritten_ = 0;
  /// Rate-limited backpressure WARN: time of the most recent drop, so the
  /// first drop after a quiet period logs and a drop storm does not.
  std::chrono::steady_clock::time_point last_drop_;
  monitor::MetricBus* bus_ = nullptr;
  monitor::SubscriptionId subscription_ = 0;
};

}  // namespace appclass::engine
