// Fleet-scale classification: many pools / many nodes' online streams
// through one trained pipeline.
//
// Two entry points share the pipeline's engine::ExecutionContext:
//
//   * BatchClassifier fans a set of DataPools out as one task per pool
//     (each pool's classify() additionally shards internally), for
//     offline jobs that re-classify a whole fleet's recorded runs.
//   * FleetStream is the online counterpart: it buffers grid-aligned
//     snapshots pushed from any thread (e.g. a monitor::MetricBus
//     subscription) and, on drain(), classifies the backlog in parallel
//     but ingests the labels into the OnlineClassifier serially in push
//     order — so window state, debounce, and change events are
//     bit-identical to calling observe() snapshot by snapshot.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "core/online.hpp"
#include "core/pipeline.hpp"
#include "metrics/snapshot.hpp"
#include "monitor/bus.hpp"

namespace appclass::engine {

/// Classifies many recorded runs concurrently. Results are indexed like
/// the input and independent of the thread count.
class BatchClassifier {
 public:
  /// The pipeline must stay alive for the classifier's lifetime.
  explicit BatchClassifier(const core::ClassificationPipeline& pipeline)
      : pipeline_(pipeline) {}

  /// One ClassificationResult per pool, in input order.
  std::vector<core::ClassificationResult> classify_pools(
      const std::vector<metrics::DataPool>& pools) const;

 private:
  const core::ClassificationPipeline& pipeline_;
};

/// Online fan-in for a whole fleet of nodes.
class FleetStream {
 public:
  /// The pipeline must stay alive for the stream's lifetime.
  /// `max_backlog` bounds the pending buffer: a push arriving with the
  /// buffer full is dropped (and counted on
  /// appclass_fleet_dropped_total) instead of growing memory without
  /// bound when drains fall behind the fleet. 0 = unbounded.
  FleetStream(const core::ClassificationPipeline& pipeline,
              core::OnlineOptions options = {}, std::size_t max_backlog = 0);
  ~FleetStream();

  FleetStream(const FleetStream&) = delete;
  FleetStream& operator=(const FleetStream&) = delete;

  /// Buffers one snapshot if it falls on the sampling grid (thread-safe;
  /// off-grid snapshots are dropped exactly as observe() would skip
  /// them). Returns false when the snapshot was dropped on a full buffer.
  bool push(const metrics::Snapshot& snapshot);

  /// Durability hook, called under the stream lock for every *accepted*
  /// push, in exactly the order the snapshots will later be ingested —
  /// the serve path points it at persist::WalWriter::append so the log
  /// order equals ingest order. Returns the snapshot's WAL sequence
  /// number. Install before the first push; keep the callee fast (it runs
  /// inside the push critical section — that is the point: accept and
  /// log are atomic with respect to each other).
  using IngestHook = std::function<std::uint64_t(const metrics::Snapshot&)>;
  void set_ingest_hook(IngestHook hook);

  /// One past the WAL sequence of the last snapshot actually ingested by
  /// drain() — the `wal_next` horizon a checkpoint of online() state is
  /// entitled to claim. 0 until the hook has fed a drain.
  std::uint64_t ingested_wal_horizon() const;

  /// Classifies the buffered backlog in parallel on the pipeline's
  /// execution context, then ingests the labels serially in push order.
  /// Returns the number of snapshots classified.
  std::size_t drain();

  /// Snapshots buffered and not yet drained (thread-safe).
  std::size_t backlog() const;

  /// Largest backlog depth observed since construction (thread-safe).
  std::size_t backlog_peak() const;

  /// Pushes dropped on a full buffer since construction (thread-safe).
  std::size_t dropped() const;

  /// Subscribes push() to a bus; detaches from any previous bus first.
  /// The bus must outlive the stream (or call detach() before it dies).
  void attach(monitor::MetricBus& bus);
  void detach();

  /// Per-node rolling state (compositions, stable classes, change
  /// callback registration). Not thread-safe against a concurrent
  /// drain() — inspect between drains.
  core::OnlineClassifier& online() noexcept { return online_; }
  const core::OnlineClassifier& online() const noexcept { return online_; }

 private:
  const core::ClassificationPipeline& pipeline_;
  core::OnlineClassifier online_;
  std::size_t max_backlog_ = 0;
  mutable std::mutex mutex_;  // guards pending_ / seqs / peak / dropped
  std::vector<metrics::Snapshot> pending_;
  std::vector<std::uint64_t> pending_seqs_;  // parallel to pending_ (hooked)
  IngestHook ingest_hook_;
  std::uint64_t ingested_wal_horizon_ = 0;
  std::size_t backlog_peak_ = 0;
  std::size_t dropped_ = 0;
  /// Rate-limited backpressure WARN: time of the most recent drop, so the
  /// first drop after a quiet period logs and a drop storm does not.
  std::chrono::steady_clock::time_point last_drop_;
  monitor::MetricBus* bus_ = nullptr;
  monitor::SubscriptionId subscription_ = 0;
};

}  // namespace appclass::engine
