// Fleet-scale classification: many pools / many nodes' online streams
// through one trained pipeline.
//
// Two entry points share the pipeline's engine::ExecutionContext:
//
//   * BatchClassifier fans a set of DataPools out as one task per pool
//     (each pool's classify() additionally shards internally), for
//     offline jobs that re-classify a whole fleet's recorded runs.
//   * FleetStream is the online counterpart: it buffers grid-aligned
//     snapshots pushed from any thread (e.g. a monitor::MetricBus
//     subscription) and, on drain(), classifies the backlog in parallel
//     but ingests the labels into the OnlineClassifier serially in push
//     order — so window state, debounce, and change events are
//     bit-identical to calling observe() snapshot by snapshot.
#pragma once

#include <mutex>
#include <vector>

#include "core/online.hpp"
#include "core/pipeline.hpp"
#include "metrics/snapshot.hpp"
#include "monitor/bus.hpp"

namespace appclass::engine {

/// Classifies many recorded runs concurrently. Results are indexed like
/// the input and independent of the thread count.
class BatchClassifier {
 public:
  /// The pipeline must stay alive for the classifier's lifetime.
  explicit BatchClassifier(const core::ClassificationPipeline& pipeline)
      : pipeline_(pipeline) {}

  /// One ClassificationResult per pool, in input order.
  std::vector<core::ClassificationResult> classify_pools(
      const std::vector<metrics::DataPool>& pools) const;

 private:
  const core::ClassificationPipeline& pipeline_;
};

/// Online fan-in for a whole fleet of nodes.
class FleetStream {
 public:
  /// The pipeline must stay alive for the stream's lifetime.
  /// `max_backlog` bounds the pending buffer: a push arriving with the
  /// buffer full is dropped (and counted on
  /// appclass_fleet_dropped_total) instead of growing memory without
  /// bound when drains fall behind the fleet. 0 = unbounded.
  FleetStream(const core::ClassificationPipeline& pipeline,
              core::OnlineOptions options = {}, std::size_t max_backlog = 0);
  ~FleetStream();

  FleetStream(const FleetStream&) = delete;
  FleetStream& operator=(const FleetStream&) = delete;

  /// Buffers one snapshot if it falls on the sampling grid (thread-safe;
  /// off-grid snapshots are dropped exactly as observe() would skip
  /// them). Returns false when the snapshot was dropped on a full buffer.
  bool push(const metrics::Snapshot& snapshot);

  /// Classifies the buffered backlog in parallel on the pipeline's
  /// execution context, then ingests the labels serially in push order.
  /// Returns the number of snapshots classified.
  std::size_t drain();

  /// Snapshots buffered and not yet drained (thread-safe).
  std::size_t backlog() const;

  /// Largest backlog depth observed since construction (thread-safe).
  std::size_t backlog_peak() const;

  /// Pushes dropped on a full buffer since construction (thread-safe).
  std::size_t dropped() const;

  /// Subscribes push() to a bus; detaches from any previous bus first.
  /// The bus must outlive the stream (or call detach() before it dies).
  void attach(monitor::MetricBus& bus);
  void detach();

  /// Per-node rolling state (compositions, stable classes, change
  /// callback registration). Not thread-safe against a concurrent
  /// drain() — inspect between drains.
  core::OnlineClassifier& online() noexcept { return online_; }
  const core::OnlineClassifier& online() const noexcept { return online_; }

 private:
  const core::ClassificationPipeline& pipeline_;
  core::OnlineClassifier online_;
  std::size_t max_backlog_ = 0;
  mutable std::mutex mutex_;  // guards pending_ / peak / dropped
  std::vector<metrics::Snapshot> pending_;
  std::size_t backlog_peak_ = 0;
  std::size_t dropped_ = 0;
  monitor::MetricBus* bus_ = nullptr;
  monitor::SubscriptionId subscription_ = 0;
};

}  // namespace appclass::engine
