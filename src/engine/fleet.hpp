// Fleet-scale classification: many pools / many nodes' online streams
// through one trained pipeline.
//
// Two entry points share the pipeline's engine::ExecutionContext:
//
//   * BatchClassifier fans a set of DataPools out as one task per pool
//     (each pool's classify() additionally shards internally), for
//     offline jobs that re-classify a whole fleet's recorded runs.
//   * FleetStream is the online counterpart: it buffers grid-aligned
//     snapshots pushed from any thread (e.g. a monitor::MetricBus
//     subscription) and, on drain(), classifies the backlog in parallel
//     but ingests the labels into the OnlineClassifier serially in push
//     order — so window state, debounce, and change events are
//     bit-identical to calling observe() snapshot by snapshot.
#pragma once

#include <mutex>
#include <vector>

#include "core/online.hpp"
#include "core/pipeline.hpp"
#include "metrics/snapshot.hpp"
#include "monitor/bus.hpp"

namespace appclass::engine {

/// Classifies many recorded runs concurrently. Results are indexed like
/// the input and independent of the thread count.
class BatchClassifier {
 public:
  /// The pipeline must stay alive for the classifier's lifetime.
  explicit BatchClassifier(const core::ClassificationPipeline& pipeline)
      : pipeline_(pipeline) {}

  /// One ClassificationResult per pool, in input order.
  std::vector<core::ClassificationResult> classify_pools(
      const std::vector<metrics::DataPool>& pools) const;

 private:
  const core::ClassificationPipeline& pipeline_;
};

/// Online fan-in for a whole fleet of nodes.
class FleetStream {
 public:
  /// The pipeline must stay alive for the stream's lifetime.
  FleetStream(const core::ClassificationPipeline& pipeline,
              core::OnlineOptions options = {});
  ~FleetStream();

  FleetStream(const FleetStream&) = delete;
  FleetStream& operator=(const FleetStream&) = delete;

  /// Buffers one snapshot if it falls on the sampling grid (thread-safe;
  /// off-grid snapshots are dropped exactly as observe() would skip them).
  void push(const metrics::Snapshot& snapshot);

  /// Classifies the buffered backlog in parallel on the pipeline's
  /// execution context, then ingests the labels serially in push order.
  /// Returns the number of snapshots classified.
  std::size_t drain();

  /// Snapshots buffered and not yet drained (thread-safe).
  std::size_t backlog() const;

  /// Subscribes push() to a bus; detaches from any previous bus first.
  /// The bus must outlive the stream (or call detach() before it dies).
  void attach(monitor::MetricBus& bus);
  void detach();

  /// Per-node rolling state (compositions, stable classes, change
  /// callback registration). Not thread-safe against a concurrent
  /// drain() — inspect between drains.
  core::OnlineClassifier& online() noexcept { return online_; }
  const core::OnlineClassifier& online() const noexcept { return online_; }

 private:
  const core::ClassificationPipeline& pipeline_;
  core::OnlineClassifier online_;
  mutable std::mutex mutex_;  // guards pending_ only
  std::vector<metrics::Snapshot> pending_;
  monitor::MetricBus* bus_ = nullptr;
  monitor::SubscriptionId subscription_ = 0;
};

}  // namespace appclass::engine
