#include "engine/fleet.hpp"

#include <utility>

#include "common/assert.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace appclass::engine {
namespace {

struct FleetMetrics {
  obs::Gauge& backlog =
      obs::MetricsRegistry::global().gauge("appclass_fleet_backlog");
  obs::Counter& drained = obs::MetricsRegistry::global().counter(
      "appclass_fleet_drained_total");
  obs::Counter& batch_pools = obs::MetricsRegistry::global().counter(
      "appclass_fleet_batch_pools_total");
  // Backpressure telemetry: is ingest keeping up with the fleet?
  obs::Counter& dropped = obs::MetricsRegistry::global().counter(
      "appclass_fleet_dropped_total");
  obs::Gauge& backlog_peak =
      obs::MetricsRegistry::global().gauge("appclass_fleet_backlog_peak");
  obs::Gauge& drain_rate = obs::MetricsRegistry::global().gauge(
      "appclass_fleet_drain_snapshots_per_second");
  obs::Histogram& drain_seconds = obs::stage_histogram("fleet_drain");
  obs::Histogram& drain_batch = obs::MetricsRegistry::global().histogram(
      "appclass_fleet_drain_batch_size", {},
      {1.0, 8.0, 64.0, 512.0, 4096.0, 32768.0});
};

FleetMetrics& fleet_metrics() {
  static FleetMetrics metrics;
  return metrics;
}

}  // namespace

std::vector<core::ClassificationResult> BatchClassifier::classify_pools(
    const std::vector<metrics::DataPool>& pools) const {
  APPCLASS_EXPECTS(pipeline_.trained());
  std::vector<core::ClassificationResult> results(pools.size());
  obs::TraceSpan span("batch_classify");
  span.add_attr({"pools", pools.size()});
  // One task per pool; classify() shards further on the same context
  // (nested parallel_for is cooperative, so this never deadlocks).
  pipeline_.context()->for_each(pools.size(), [&](std::size_t p) {
    results[p] = pipeline_.classify(pools[p]);
  });
  fleet_metrics().batch_pools.inc(pools.size());
  return results;
}

FleetStream::FleetStream(const core::ClassificationPipeline& pipeline,
                         core::OnlineOptions options, std::size_t max_backlog)
    : pipeline_(pipeline),
      online_(pipeline, options),
      max_backlog_(max_backlog) {}

FleetStream::~FleetStream() { detach(); }

void FleetStream::set_ingest_hook(IngestHook hook) {
  const std::lock_guard lock(mutex_);
  ingest_hook_ = std::move(hook);
}

std::uint64_t FleetStream::ingested_wal_horizon() const {
  const std::lock_guard lock(mutex_);
  return ingested_wal_horizon_;
}

bool FleetStream::push(const metrics::Snapshot& snapshot) {
  if (!online_.on_grid(snapshot)) return true;
  FleetMetrics& fm = fleet_metrics();
  const std::lock_guard lock(mutex_);
  if (max_backlog_ > 0 && pending_.size() >= max_backlog_) {
    // Drop-on-full: losing one snapshot degrades one node's coverage for
    // one grid slot (the online layer is built for exactly that), while
    // an unbounded buffer under sustained overload degrades everything.
    const auto now = std::chrono::steady_clock::now();
    // WARN once per overload episode: the first drop ever, or the first
    // after 10 s without one. A sustained storm stays on the counters.
    if (dropped_ == 0 || now - last_drop_ > std::chrono::seconds(10)) {
      APPCLASS_LOG_WARN("fleet.backpressure_drop",
                        {"node", snapshot.node_ip},
                        {"backlog", pending_.size()},
                        {"dropped_total", dropped_ + 1});
    }
    last_drop_ = now;
    ++dropped_;
    fm.dropped.inc();
    return false;
  }
  if (ingest_hook_) pending_seqs_.push_back(ingest_hook_(snapshot));
  pending_.push_back(snapshot);
  if (pending_.size() > backlog_peak_) {
    backlog_peak_ = pending_.size();
    fm.backlog_peak.set(static_cast<double>(backlog_peak_));
  }
  fm.backlog.add(1.0);
  return true;
}

std::size_t FleetStream::backlog() const {
  const std::lock_guard lock(mutex_);
  return pending_.size();
}

std::size_t FleetStream::backlog_peak() const {
  const std::lock_guard lock(mutex_);
  return backlog_peak_;
}

std::size_t FleetStream::dropped() const {
  const std::lock_guard lock(mutex_);
  return dropped_;
}

std::size_t FleetStream::drain() {
  std::vector<metrics::Snapshot> batch;
  std::vector<std::uint64_t> seqs;
  {
    const std::lock_guard lock(mutex_);
    batch.swap(pending_);
    seqs.swap(pending_seqs_);
  }
  if (batch.empty()) return 0;
  FleetMetrics& fm = fleet_metrics();
  fm.backlog.add(-static_cast<double>(batch.size()));
  fm.drain_batch.observe(static_cast<double>(batch.size()));

  obs::TraceSpan span("fleet_drain");
  span.add_attr({"snapshots", batch.size()});
  obs::ScopedTimer drain_timer(fm.drain_seconds);

  // Parallel classification (the pipeline's snapshot path is const and
  // uses thread-local kernel scratch), then strictly serial ingestion in
  // push order — the per-node windows and debounce see exactly the
  // sequence observe() would have. With a health aggregator attached the
  // parallel stage keeps the full vote evidence per snapshot; the labels
  // are computed by the identical arithmetic either way.
  if (online_.health() != nullptr) {
    std::vector<core::SnapshotClassification> details(batch.size());
    pipeline_.context()->for_each(batch.size(), [&](std::size_t i) {
      details[i] = pipeline_.classify_detailed(batch[i]);
    });
    for (std::size_t i = 0; i < batch.size(); ++i)
      online_.ingest(batch[i], details[i]);
  } else {
    std::vector<core::ApplicationClass> labels(batch.size());
    pipeline_.context()->for_each(batch.size(), [&](std::size_t i) {
      labels[i] = pipeline_.classify(batch[i]);
    });
    for (std::size_t i = 0; i < batch.size(); ++i)
      online_.ingest(batch[i], labels[i]);
  }

  if (!seqs.empty()) {
    const std::lock_guard lock(mutex_);
    ingested_wal_horizon_ = seqs.back() + 1;
  }

  const double seconds = drain_timer.stop();
  if (seconds > 0.0)
    fm.drain_rate.set(static_cast<double>(batch.size()) / seconds);
  fm.drained.inc(batch.size());
  APPCLASS_LOG_DEBUG("fleet.drain", {"snapshots", batch.size()},
                     {"seconds", seconds},
                     {"parallelism", pipeline_.context()->parallelism()});
  return batch.size();
}

void FleetStream::attach(monitor::MetricBus& bus) {
  detach();
  bus_ = &bus;
  subscription_ = bus.subscribe(
      [this](const metrics::Snapshot& snapshot) { push(snapshot); });
}

void FleetStream::detach() {
  if (bus_ == nullptr) return;
  bus_->unsubscribe(subscription_);
  bus_ = nullptr;
  subscription_ = 0;
}

}  // namespace appclass::engine
