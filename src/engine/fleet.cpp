#include "engine/fleet.hpp"

#include <utility>

#include "common/assert.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace appclass::engine {
namespace {

struct FleetMetrics {
  obs::Gauge& backlog =
      obs::MetricsRegistry::global().gauge("appclass_fleet_backlog");
  obs::Counter& drained = obs::MetricsRegistry::global().counter(
      "appclass_fleet_drained_total");
  obs::Counter& batch_pools = obs::MetricsRegistry::global().counter(
      "appclass_fleet_batch_pools_total");
};

FleetMetrics& fleet_metrics() {
  static FleetMetrics metrics;
  return metrics;
}

}  // namespace

std::vector<core::ClassificationResult> BatchClassifier::classify_pools(
    const std::vector<metrics::DataPool>& pools) const {
  APPCLASS_EXPECTS(pipeline_.trained());
  std::vector<core::ClassificationResult> results(pools.size());
  obs::TraceSpan span("batch_classify");
  span.add_attr({"pools", pools.size()});
  // One task per pool; classify() shards further on the same context
  // (nested parallel_for is cooperative, so this never deadlocks).
  pipeline_.context()->for_each(pools.size(), [&](std::size_t p) {
    results[p] = pipeline_.classify(pools[p]);
  });
  fleet_metrics().batch_pools.inc(pools.size());
  return results;
}

FleetStream::FleetStream(const core::ClassificationPipeline& pipeline,
                         core::OnlineOptions options)
    : pipeline_(pipeline), online_(pipeline, options) {}

FleetStream::~FleetStream() { detach(); }

void FleetStream::push(const metrics::Snapshot& snapshot) {
  if (!online_.on_grid(snapshot)) return;
  const std::lock_guard lock(mutex_);
  pending_.push_back(snapshot);
  fleet_metrics().backlog.add(1.0);
}

std::size_t FleetStream::backlog() const {
  const std::lock_guard lock(mutex_);
  return pending_.size();
}

std::size_t FleetStream::drain() {
  std::vector<metrics::Snapshot> batch;
  {
    const std::lock_guard lock(mutex_);
    batch.swap(pending_);
  }
  if (batch.empty()) return 0;
  FleetMetrics& fm = fleet_metrics();
  fm.backlog.add(-static_cast<double>(batch.size()));

  obs::TraceSpan span("fleet_drain");
  span.add_attr({"snapshots", batch.size()});

  // Parallel classification (the pipeline's snapshot path is const and
  // uses thread-local kernel scratch), then strictly serial ingestion in
  // push order — the per-node windows and debounce see exactly the
  // sequence observe() would have.
  std::vector<core::ApplicationClass> labels(batch.size());
  pipeline_.context()->for_each(batch.size(), [&](std::size_t i) {
    labels[i] = pipeline_.classify(batch[i]);
  });
  for (std::size_t i = 0; i < batch.size(); ++i)
    online_.ingest(batch[i], labels[i]);

  fm.drained.inc(batch.size());
  APPCLASS_LOG_DEBUG("fleet.drain", {"snapshots", batch.size()},
                     {"parallelism", pipeline_.context()->parallelism()});
  return batch.size();
}

void FleetStream::attach(monitor::MetricBus& bus) {
  detach();
  bus_ = &bus;
  subscription_ = bus.subscribe(
      [this](const metrics::Snapshot& snapshot) { push(snapshot); });
}

void FleetStream::detach() {
  if (bus_ == nullptr) return;
  bus_->unsubscribe(subscription_);
  bus_ = nullptr;
  subscription_ = 0;
}

}  // namespace appclass::engine
