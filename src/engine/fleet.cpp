#include "engine/fleet.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace appclass::engine {
namespace {

struct FleetMetrics {
  obs::Gauge& backlog =
      obs::MetricsRegistry::global().gauge("appclass_fleet_backlog");
  obs::Counter& drained = obs::MetricsRegistry::global().counter(
      "appclass_fleet_drained_total");
  obs::Counter& batch_pools = obs::MetricsRegistry::global().counter(
      "appclass_fleet_batch_pools_total");
  // Backpressure telemetry: is ingest keeping up with the fleet?
  obs::Counter& dropped = obs::MetricsRegistry::global().counter(
      "appclass_fleet_dropped_total");
  obs::Counter& overwritten = obs::MetricsRegistry::global().counter(
      "appclass_fleet_overwritten_total");
  obs::Gauge& backlog_peak =
      obs::MetricsRegistry::global().gauge("appclass_fleet_backlog_peak");
  // Allocation telemetry: backlog-ring growth events and current slot
  // capacity. A steady-state workload must leave the counter flat.
  obs::Counter& ring_grows = obs::MetricsRegistry::global().counter(
      "appclass_fleet_ring_grows_total");
  obs::Gauge& ring_capacity =
      obs::MetricsRegistry::global().gauge("appclass_fleet_ring_capacity");
  obs::Gauge& drain_rate = obs::MetricsRegistry::global().gauge(
      "appclass_fleet_drain_snapshots_per_second");
  obs::Histogram& drain_seconds = obs::stage_histogram("fleet_drain");
  obs::Histogram& drain_batch = obs::MetricsRegistry::global().histogram(
      "appclass_fleet_drain_batch_size", {},
      {1.0, 8.0, 64.0, 512.0, 4096.0, 32768.0});
};

FleetMetrics& fleet_metrics() {
  static FleetMetrics metrics;
  return metrics;
}

}  // namespace

std::vector<core::ClassificationResult> BatchClassifier::classify_pools(
    const std::vector<metrics::DataPool>& pools) const {
  APPCLASS_EXPECTS(pipeline_.trained());
  std::vector<core::ClassificationResult> results(pools.size());
  obs::TraceSpan span("batch_classify");
  span.add_attr({"pools", pools.size()});
  // One task per pool; classify() shards further on the same context
  // (nested parallel_for is cooperative, so this never deadlocks).
  pipeline_.context()->for_each(pools.size(), [&](std::size_t p) {
    results[p] = pipeline_.classify(pools[p]);
  });
  fleet_metrics().batch_pools.inc(pools.size());
  return results;
}

FleetStream::FleetStream(const core::ClassificationPipeline& pipeline,
                         core::OnlineOptions options, std::size_t max_backlog,
                         OverflowPolicy policy)
    : pipeline_(pipeline),
      online_(pipeline, options),
      max_backlog_(max_backlog),
      policy_(policy) {}

FleetStream::~FleetStream() { detach(); }

void FleetStream::set_ingest_hook(IngestHook hook) {
  const std::lock_guard lock(mutex_);
  // Overwriting a logged-but-not-yet-ingested snapshot would leave WAL
  // entries the online state never saw — the two features are mutually
  // exclusive by contract.
  APPCLASS_EXPECTS(hook == nullptr ||
                   policy_ != OverflowPolicy::kOverwriteOldest);
  ingest_hook_ = std::move(hook);
  // The horizon describes the new hook's log; sequences of a previous
  // hook must not leak into the next checkpoint's wal_next claim.
  ingested_wal_horizon_ = 0;
}

std::uint64_t FleetStream::ingested_wal_horizon() const {
  const std::lock_guard lock(mutex_);
  return ingested_wal_horizon_;
}

bool FleetStream::push(const metrics::Snapshot& snapshot) {
  if (!online_.on_grid(snapshot)) return true;
  FleetMetrics& fm = fleet_metrics();
  const std::lock_guard lock(mutex_);
  if (max_backlog_ > 0 && pending_.size() >= max_backlog_) {
    if (policy_ == OverflowPolicy::kOverwriteOldest) {
      // Freshest-data-wins: retire the oldest buffered snapshot in
      // place. The slot's payload is reused; nothing is allocated.
      SnapshotRing::Slot& slot = pending_.displace_oldest();
      slot.snapshot = snapshot;
      slot.seq = SnapshotRing::kNoSeq;
      ++overwritten_;
      fm.overwritten.inc();
      return true;
    }
    // Drop-on-full: losing one snapshot degrades one node's coverage for
    // one grid slot (the online layer is built for exactly that), while
    // an unbounded buffer under sustained overload degrades everything.
    const auto now = std::chrono::steady_clock::now();
    // WARN once per overload episode: the first drop ever, or the first
    // after 10 s without one. A sustained storm stays on the counters.
    if (dropped_ == 0 || now - last_drop_ > std::chrono::seconds(10)) {
      APPCLASS_LOG_WARN("fleet.backpressure_drop",
                        {"node", snapshot.node_ip},
                        {"backlog", pending_.size()},
                        {"dropped_total", dropped_ + 1});
    }
    last_drop_ = now;
    ++dropped_;
    fm.dropped.inc();
    return false;
  }
  const std::size_t capacity_before = pending_.capacity();
  SnapshotRing::Slot& slot = pending_.append();
  // Assigning into the warmed slot reuses the previous occupant's string
  // capacity — the only allocations here are ring growth, counted below.
  slot.snapshot = snapshot;
  // The hook runs after the slot is claimed but under the same lock, so
  // log order == buffer order == ingest order.
  slot.seq = ingest_hook_ ? ingest_hook_(snapshot) : SnapshotRing::kNoSeq;
  if (pending_.capacity() != capacity_before) {
    fm.ring_grows.inc();
    fm.ring_capacity.set(static_cast<double>(pending_.capacity()));
  }
  if (pending_.size() > backlog_peak_) {
    backlog_peak_ = pending_.size();
    fm.backlog_peak.set(static_cast<double>(backlog_peak_));
  }
  // set(), not add(): the exact depth is in hand under the lock, and a
  // plain store beats the add() CAS loop on this per-snapshot path.
  fm.backlog.set(static_cast<double>(pending_.size()));
  return true;
}

std::size_t FleetStream::backlog() const {
  const std::lock_guard lock(mutex_);
  return pending_.size();
}

std::size_t FleetStream::backlog_peak() const {
  const std::lock_guard lock(mutex_);
  return backlog_peak_;
}

std::size_t FleetStream::dropped() const {
  const std::lock_guard lock(mutex_);
  return dropped_;
}

std::size_t FleetStream::overwritten() const {
  const std::lock_guard lock(mutex_);
  return overwritten_;
}

std::uint64_t FleetStream::ring_grows() const {
  const std::lock_guard lock(mutex_);
  return pending_.grows() + drained_.grows();
}

std::size_t FleetStream::drain() {
  // Double-buffer swap: the drainer hands its (already-consumed) ring
  // back and takes the pending one — O(1) under the lock, and the warmed
  // slots circulate between the two rings instead of being reallocated.
  drained_.clear();
  FleetMetrics& fm = fleet_metrics();
  {
    const std::lock_guard lock(mutex_);
    pending_.swap(drained_);
    // Published while the lock still serializes us against pushers, so
    // the gauge never goes stale-high after a swap.
    fm.backlog.set(0.0);
  }
  const std::size_t n = drained_.size();
  if (n == 0) return 0;
  fm.drain_batch.observe(static_cast<double>(n));

  obs::TraceSpan span("fleet_drain");
  if (span.recording()) span.add_attr({"snapshots", n});
  obs::ScopedTimer drain_timer(fm.drain_seconds);

  // Parallel classification through the pipeline's batched SoA path
  // (each shard leases its own query scratch and writes disjoint batch
  // slots), then strictly serial ingestion in push order — the per-node
  // windows and debounce see exactly the sequence observe() would have.
  // With a health aggregator attached the batch keeps the full vote
  // evidence per snapshot; the labels are computed by the identical
  // arithmetic either way.
  const bool detailed = online_.health() != nullptr;
  pipeline_.begin_snapshot_batch(batch_, n, detailed);
  if (!pipeline_.context()->pooled()) {
    // Serial context: classify inline with one scratch lease. Bypassing
    // for_shards also avoids materializing a std::function per drain.
    auto scratch = pipeline_.acquire_scratch();
    for (std::size_t i = 0; i < n; ++i)
      pipeline_.classify_snapshot_into(drained_.at(i).snapshot, batch_, i,
                                       *scratch);
  } else {
    pipeline_.context()->for_shards(
        n, kDefaultGrain,
        [&](std::size_t begin, std::size_t end, std::size_t) {
          auto scratch = pipeline_.acquire_scratch();
          for (std::size_t i = begin; i < end; ++i)
            pipeline_.classify_snapshot_into(drained_.at(i).snapshot, batch_,
                                             i, *scratch);
        });
  }
  if (detailed) {
    for (std::size_t i = 0; i < n; ++i)
      online_.ingest(drained_.at(i).snapshot, batch_.detail(i));
  } else {
    for (std::size_t i = 0; i < n; ++i)
      online_.ingest(drained_.at(i).snapshot, batch_.label(i));
  }

  // Ingest horizon: one past the newest hook-logged sequence we just
  // ingested. Snapshots accepted without a hook carry kNoSeq and are
  // skipped, so a hook attached mid-stream sees an exact horizon. The
  // max keeps it monotonic for the lifetime of one hook.
  for (std::size_t i = n; i-- > 0;) {
    const std::uint64_t seq = drained_.at(i).seq;
    if (seq == SnapshotRing::kNoSeq) continue;
    const std::lock_guard lock(mutex_);
    ingested_wal_horizon_ = std::max(ingested_wal_horizon_, seq + 1);
    break;
  }

  const double seconds = drain_timer.stop();
  if (seconds > 0.0) fm.drain_rate.set(static_cast<double>(n) / seconds);
  fm.drained.inc(n);
  APPCLASS_LOG_DEBUG("fleet.drain", {"snapshots", n}, {"seconds", seconds},
                     {"parallelism", pipeline_.context()->parallelism()});
  return n;
}

void FleetStream::attach(monitor::MetricBus& bus) {
  detach();
  {
    // New subscription, new backpressure episode: the peak should answer
    // "how far behind did *this* attachment get".
    const std::lock_guard lock(mutex_);
    backlog_peak_ = 0;
    fleet_metrics().backlog_peak.set(0.0);
  }
  bus_ = &bus;
  subscription_ = bus.subscribe(
      [this](const metrics::Snapshot& snapshot) { push(snapshot); });
}

void FleetStream::detach() {
  if (bus_ == nullptr) return;
  bus_->unsubscribe(subscription_);
  bus_ = nullptr;
  subscription_ = 0;
}

}  // namespace appclass::engine
