// Block-kernel tile primitives. Compiled with -ftree-vectorize and a
// permissive vectorizer cost model (see src/engine/CMakeLists.txt), plus
// AVX2 function clones picked by the loader on capable hosts. FMA
// contraction is disabled for this TU: each lane must round after the
// multiply exactly like the scalar reference, or distances would drift
// by an ulp and break the kernel's bit-identity contract.
#include "engine/knn_block_tiles.hpp"

#include <cmath>

namespace appclass::engine::blocktiles {

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define APPCLASS_TILE_CLONES __attribute__((target_clones("avx2", "default")))
#else
#define APPCLASS_TILE_CLONES
#endif

APPCLASS_TILE_CLONES
void sq_first(const double* col, double q, double* acc, std::size_t width) {
  for (std::size_t i = 0; i < width; ++i) {
    const double d = col[i] - q;
    acc[i] = d * d;
  }
}

APPCLASS_TILE_CLONES
void sq_accumulate(const double* col, double q, double* acc,
                   std::size_t width) {
  for (std::size_t i = 0; i < width; ++i) {
    const double d = col[i] - q;
    acc[i] += d * d;
  }
}

APPCLASS_TILE_CLONES
void sq_pair(const double* c0, const double* c1, double q0, double q1,
             double* acc, std::size_t width) {
  for (std::size_t i = 0; i < width; ++i) {
    const double d0 = c0[i] - q0;
    const double d1 = c1[i] - q1;
    acc[i] = d0 * d0 + d1 * d1;
  }
}

APPCLASS_TILE_CLONES
void l1_first(const double* col, double q, double* acc, std::size_t width) {
  for (std::size_t i = 0; i < width; ++i) acc[i] = std::abs(col[i] - q);
}

APPCLASS_TILE_CLONES
void l1_accumulate(const double* col, double q, double* acc,
                   std::size_t width) {
  for (std::size_t i = 0; i < width; ++i) acc[i] += std::abs(col[i] - q);
}

APPCLASS_TILE_CLONES
void l1_pair(const double* c0, const double* c1, double q0, double q1,
             double* acc, std::size_t width) {
  for (std::size_t i = 0; i < width; ++i)
    acc[i] = std::abs(c0[i] - q0) + std::abs(c1[i] - q1);
}

APPCLASS_TILE_CLONES
void chunk_mins(const double* acc, std::size_t width, double* mins) {
  const std::size_t blocks = width / kMinChunk;
  for (std::size_t j = 0; j < blocks; ++j) {
    const double* const a = acc + j * kMinChunk;
    // Pairwise tree, not a serial scan: a left-to-right min is a chain
    // of 7 dependent ops, while this shape is 3 levels deep and its
    // first level is a single 4-lane vector min.
    const double t0 = a[0] < a[4] ? a[0] : a[4];
    const double t1 = a[1] < a[5] ? a[1] : a[5];
    const double t2 = a[2] < a[6] ? a[2] : a[6];
    const double t3 = a[3] < a[7] ? a[3] : a[7];
    const double u0 = t0 < t2 ? t0 : t2;
    const double u1 = t1 < t3 ? t1 : t3;
    mins[j] = u0 < u1 ? u0 : u1;
  }
}

#undef APPCLASS_TILE_CLONES

}  // namespace appclass::engine::blocktiles
