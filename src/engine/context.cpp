#include "engine/context.hpp"

#include <thread>

#include "common/assert.hpp"

namespace appclass::engine {

ExecutionContext::ExecutionContext(std::size_t parallelism) {
  if (parallelism > 1) pool_ = std::make_unique<ThreadPool>(parallelism);
}

std::shared_ptr<ExecutionContext> ExecutionContext::make(
    std::size_t parallelism) {
  if (parallelism == 0) {
    parallelism = std::thread::hardware_concurrency();
    if (parallelism == 0) parallelism = 1;
  }
  if (parallelism == 1) return serial();
  return std::make_shared<ExecutionContext>(parallelism);
}

const std::shared_ptr<ExecutionContext>& ExecutionContext::serial() {
  static const std::shared_ptr<ExecutionContext> context =
      std::make_shared<ExecutionContext>(1);
  return context;
}

void ExecutionContext::for_shards(std::size_t n, std::size_t grain,
                                  const ShardFn& fn) const {
  if (n == 0) return;
  APPCLASS_EXPECTS(grain >= 1);
  const std::size_t shards = (n + grain - 1) / grain;
  auto run_shard = [&](std::size_t s) {
    const std::size_t begin = s * grain;
    const std::size_t end = std::min(n, begin + grain);
    fn(begin, end, s);
  };
  if (!pool_) {
    for (std::size_t s = 0; s < shards; ++s) run_shard(s);
    return;
  }
  // Single shards still go through the pool so task accounting
  // (appclass_engine_tasks_total) covers every pool-backed run.
  pool_->parallel_for(shards, run_shard);
}

void ExecutionContext::for_each(
    std::size_t n, const std::function<void(std::size_t)>& fn) const {
  if (n == 0) return;
  if (!pool_) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool_->parallel_for(n, fn);
}

}  // namespace appclass::engine
