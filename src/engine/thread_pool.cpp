#include "engine/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <optional>

#include "common/assert.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace appclass::engine {
namespace {

using Clock = std::chrono::steady_clock;

struct PoolMetrics {
  obs::Gauge& queue_depth =
      obs::MetricsRegistry::global().gauge("appclass_engine_queue_depth");
  obs::Counter& tasks = obs::MetricsRegistry::global().counter(
      "appclass_engine_tasks_total");
  obs::Counter& jobs = obs::MetricsRegistry::global().counter(
      "appclass_engine_jobs_total");
  obs::Counter& steals = obs::MetricsRegistry::global().counter(
      "appclass_engine_steals_total");
  obs::Histogram& job_wait = obs::MetricsRegistry::global().histogram(
      "appclass_engine_job_wait_seconds");
};

PoolMetrics& pool_metrics() {
  static PoolMetrics metrics;
  return metrics;
}

}  // namespace

/// One parallel_for invocation. Task indices are dealt round-robin across
/// the deques at submission; dequeuing is own-front-first, steal-from-
/// busiest-back second. The deque a task ends up running on is
/// scheduling-dependent — callers rely only on every-index-runs-once.
struct ThreadPool::Job {
  struct Deque {
    std::mutex mutex;
    std::deque<std::size_t> tasks;  // guarded by mutex
    /// Mirror of tasks.size(), maintained under mutex, readable without
    /// it — the steal scan probes sizes lock-free and TSan-clean.
    std::atomic<std::size_t> approx_size{0};
  };

  explicit Job(std::size_t deque_count) : deques(deque_count) {}

  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t count = 0;
  /// Ambient trace context captured at submission; tasks adopt it so
  /// spans opened inside them parent across the thread hop.
  obs::TraceContext trace_ctx;
  Clock::time_point submitted{};
  std::vector<Deque> deques;
  std::atomic<std::size_t> unclaimed{0};  // fast "any task left?" probe
  std::atomic<std::size_t> completed{0};
  std::mutex done_mutex;
  std::condition_variable done;
  std::exception_ptr first_exception;  // guarded by done_mutex
};

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  depth_gauges_.reserve(threads + 1);
  for (std::size_t w = 0; w <= threads; ++w) {
    const std::string label = w < threads ? std::to_string(w) : "caller";
    depth_gauges_.push_back(&obs::MetricsRegistry::global().gauge(
        "appclass_engine_worker_queue_depth", {{"worker", label}}));
  }
  workers_.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool ThreadPool::run_one(Job& job, std::size_t deque_hint) {
  if (job.unclaimed.load(std::memory_order_acquire) == 0) return false;

  std::size_t task = 0;
  bool claimed = false;
  bool stolen = false;

  {  // Own deque first (front: submission order).
    Job::Deque& own = job.deques[deque_hint];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      task = own.tasks.front();
      own.tasks.pop_front();
      own.approx_size.store(own.tasks.size(), std::memory_order_relaxed);
      depth_gauges_[deque_hint]->set(static_cast<double>(own.tasks.size()));
      claimed = true;
    }
  }

  while (!claimed) {
    // Steal from the sibling with the most queued tasks (size probes are
    // racy; the victim is re-checked under its lock).
    std::size_t victim = job.deques.size();
    std::size_t victim_size = 0;
    for (std::size_t d = 0; d < job.deques.size(); ++d) {
      if (d == deque_hint) continue;
      const std::size_t s =
          job.deques[d].approx_size.load(std::memory_order_relaxed);
      if (s > victim_size) {
        victim = d;
        victim_size = s;
      }
    }
    if (victim == job.deques.size()) return false;  // nothing visible
    Job::Deque& target = job.deques[victim];
    std::lock_guard<std::mutex> lock(target.mutex);
    if (target.tasks.empty()) {
      if (job.unclaimed.load(std::memory_order_acquire) == 0) return false;
      continue;  // lost the race; re-scan
    }
    task = target.tasks.back();
    target.tasks.pop_back();
    target.approx_size.store(target.tasks.size(), std::memory_order_relaxed);
    depth_gauges_[victim]->set(static_cast<double>(target.tasks.size()));
    claimed = true;
    stolen = true;
  }

  job.unclaimed.fetch_sub(1, std::memory_order_acq_rel);
  PoolMetrics& pm = pool_metrics();
  pm.queue_depth.add(-1.0);
  if (stolen) pm.steals.inc();
  pm.job_wait.observe(
      std::chrono::duration<double>(Clock::now() - job.submitted).count());

  // Run the task under the submitter's trace context so any spans it
  // opens parent to the submitting span, even across a steal.
  std::optional<obs::ScopedTraceContext> adopted;
  if (job.trace_ctx.active()) adopted.emplace(job.trace_ctx);

  try {
    (*job.fn)(task);
  } catch (...) {
    std::lock_guard<std::mutex> lock(job.done_mutex);
    if (!job.first_exception) job.first_exception = std::current_exception();
  }

  if (job.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
      job.count) {
    std::lock_guard<std::mutex> lock(job.done_mutex);
    job.done.notify_all();
  }
  return true;
}

namespace {
/// See current_worker_slot(): workers claim slot worker_index + 1, every
/// other thread reports the shared caller slot 0.
thread_local std::size_t t_worker_slot = 0;
}  // namespace

std::size_t current_worker_slot() noexcept { return t_worker_slot; }

void ThreadPool::worker_loop(std::size_t worker_index) {
  t_worker_slot = worker_index + 1;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    std::shared_ptr<Job> job;
    for (const auto& candidate : jobs_) {
      if (candidate->unclaimed.load(std::memory_order_acquire) > 0) {
        job = candidate;
        break;
      }
    }
    if (job) {
      lock.unlock();
      while (run_one(*job, worker_index)) {
      }
      lock.lock();
      continue;
    }
    if (stop_) return;
    work_ready_.wait(lock);
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  PoolMetrics& pm = pool_metrics();
  pm.jobs.inc();
  pm.tasks.inc(count);
  if (count == 1 || workers_.empty()) {
    // Inline execution: same thread, so the ambient trace context is
    // already in place and there is no queue wait to measure.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // The caller gets the extra deque past the workers' and drains it first.
  const std::size_t caller_deque = workers_.size();
  auto job = std::make_shared<Job>(workers_.size() + 1);
  job->fn = &fn;
  job->count = count;
  job->trace_ctx = obs::current_trace_context();
  job->submitted = Clock::now();
  for (std::size_t i = 0; i < count; ++i)
    job->deques[i % job->deques.size()].tasks.push_back(i);
  for (std::size_t d = 0; d < job->deques.size(); ++d) {
    job->deques[d].approx_size.store(job->deques[d].tasks.size(),
                                     std::memory_order_relaxed);
    depth_gauges_[d]->set(static_cast<double>(job->deques[d].tasks.size()));
  }
  job->unclaimed.store(count, std::memory_order_release);
  pm.queue_depth.add(static_cast<double>(count));

  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push_back(job);
  }
  work_ready_.notify_all();

  // Cooperative drain: the caller works its own job, so nested
  // parallel_for calls always make progress.
  while (run_one(*job, caller_deque)) {
  }

  {
    std::unique_lock<std::mutex> lock(job->done_mutex);
    job->done.wait(lock, [&] {
      return job->completed.load(std::memory_order_acquire) == job->count;
    });
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      if (jobs_[j] == job) {
        jobs_.erase(jobs_.begin() + static_cast<std::ptrdiff_t>(j));
        break;
      }
    }
  }

  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(job->done_mutex);
    error = job->first_exception;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace appclass::engine
