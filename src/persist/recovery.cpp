#include "persist/recovery.hpp"

#include <chrono>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "persist/checkpoint.hpp"
#include "persist/wal.hpp"

namespace appclass::persist {
namespace {

struct RecoveryMetrics {
  obs::Counter& recoveries = obs::MetricsRegistry::global().counter(
      "appclass_recoveries_total");
  obs::Counter& replayed = obs::MetricsRegistry::global().counter(
      "appclass_recovery_replayed_total");
  obs::Counter& corrupt_checkpoints = obs::MetricsRegistry::global().counter(
      "appclass_recovery_corrupt_checkpoints_total");
  obs::Gauge& duration = obs::MetricsRegistry::global().gauge(
      "appclass_recovery_duration_seconds");
};

RecoveryMetrics& recovery_metrics() {
  static RecoveryMetrics metrics;
  return metrics;
}

bool same_options(const core::OnlineOptions& a, const core::OnlineOptions& b) {
  return a.sampling_interval_s == b.sampling_interval_s &&
         a.window == b.window && a.stability == b.stability &&
         a.min_coverage == b.min_coverage;
}

}  // namespace

RecoveryReport recover(const std::string& state_dir,
                       const core::ClassificationPipeline& pipeline,
                       core::OnlineClassifier& online,
                       core::ApplicationDatabase* db) {
  const auto t0 = std::chrono::steady_clock::now();
  RecoveryMetrics& rm = recovery_metrics();
  RecoveryReport report;

  if (const auto checkpoint = load_latest_checkpoint(state_dir + "/checkpoints")) {
    if (!same_options(checkpoint->data.options, online.options()))
      throw std::runtime_error(
          "recovery: checkpoint " + checkpoint->path +
          " was written under different OnlineOptions than the running "
          "classifier; refusing to mix incomparable state");
    online.import_state(checkpoint->data.online);
    if (db != nullptr && !checkpoint->data.appdb_csv.empty())
      *db = core::ApplicationDatabase::from_csv(checkpoint->data.appdb_csv);
    report.checkpoint_loaded = true;
    report.checkpoint_wal_next = checkpoint->data.wal_next;
    report.corrupt_checkpoints = checkpoint->corrupt_skipped;
    rm.corrupt_checkpoints.inc(checkpoint->corrupt_skipped);
  }

  // Replay the tail through the exact drain arithmetic: classify (with
  // health evidence when an aggregator is attached) then serial ingest in
  // sequence order. The WAL holds only grid-aligned accepted snapshots,
  // so every record ingests.
  report.wal_next_seq = report.checkpoint_wal_next;
  const WalScan scan = replay_wal(
      state_dir + "/wal", report.checkpoint_wal_next,
      [&](const WalRecord& record) {
        if (online.health() != nullptr) {
          online.ingest(record.snapshot,
                        pipeline.classify_detailed(record.snapshot));
        } else {
          online.ingest(record.snapshot, pipeline.classify(record.snapshot));
        }
        report.wal_next_seq = record.seq + 1;
      });
  report.replayed = scan.records;
  report.wal_truncated = scan.truncated_tail;

  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  rm.recoveries.inc();
  rm.replayed.inc(scan.records);
  rm.duration.set(report.seconds);
  APPCLASS_LOG_INFO("recovery.done",
                    {"checkpoint", report.checkpoint_loaded},
                    {"checkpoint_wal_next", report.checkpoint_wal_next},
                    {"replayed", report.replayed},
                    {"truncated", report.wal_truncated},
                    {"seconds", report.seconds});
  return report;
}

}  // namespace appclass::persist
