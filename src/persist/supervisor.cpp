#include "persist/supervisor.hpp"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <thread>

#include "common/assert.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace appclass::persist {
namespace {

using Clock = std::chrono::steady_clock;

struct SupervisorMetrics {
  obs::Counter& restarts = obs::MetricsRegistry::global().counter(
      "appclass_supervisor_restarts_total");
  obs::Counter& crash_loops = obs::MetricsRegistry::global().counter(
      "appclass_supervisor_crash_loops_total");
  obs::Gauge& backoff = obs::MetricsRegistry::global().gauge(
      "appclass_supervisor_backoff_seconds");
};

SupervisorMetrics& supervisor_metrics() {
  static SupervisorMetrics metrics;
  return metrics;
}

// Async-signal state: the handler only flips a flag; all forwarding
// happens on the supervision loop.
volatile std::sig_atomic_t g_terminate_requested = 0;

void on_terminate(int) { g_terminate_requested = 1; }

/// Exit code convention: WEXITSTATUS for exits, 128+signal for kills.
int status_to_code(int status) {
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return 1;
}

}  // namespace

Supervisor::Supervisor(SupervisorOptions options) : options_(options) {
  APPCLASS_EXPECTS(options_.backoff_factor >= 1.0);
  APPCLASS_EXPECTS(options_.crash_loop_threshold >= 1);
}

SupervisorResult Supervisor::run(const std::function<int()>& worker) {
  SupervisorMetrics& sm = supervisor_metrics();
  SupervisorResult result;
  std::deque<Clock::time_point> failures;
  double backoff_s = options_.backoff_initial_s;

  g_terminate_requested = 0;
  ::setenv(kRestartsEnvVar, "0", 1);
  struct sigaction action {};
  action.sa_handler = on_terminate;
  struct sigaction old_term {}, old_int {};
  ::sigaction(SIGTERM, &action, &old_term);
  ::sigaction(SIGINT, &action, &old_int);

  for (;;) {
    const pid_t child = ::fork();
    if (child < 0) {
      APPCLASS_LOG_ERROR("supervisor.fork_failed", {"errno", errno});
      result.exit_code = 1;
      break;
    }
    if (child == 0) {
      // Worker process: default signal dispositions so the worker can
      // install its own graceful-shutdown handler, then run and leave
      // without the parent's atexit machinery.
      ::sigaction(SIGTERM, &old_term, nullptr);
      ::sigaction(SIGINT, &old_int, nullptr);
      ::_exit(worker());
    }

    APPCLASS_LOG_INFO("supervisor.worker_started", {"pid", child},
                      {"restarts", result.restarts});
    const auto started = Clock::now();
    bool term_forwarded = false;
    auto term_deadline = Clock::time_point::max();
    int status = 0;
    for (;;) {
      if (g_terminate_requested && !term_forwarded) {
        APPCLASS_LOG_INFO("supervisor.forwarding_sigterm", {"pid", child});
        ::kill(child, SIGTERM);
        term_forwarded = true;
        term_deadline = Clock::now() + std::chrono::duration_cast<
            Clock::duration>(std::chrono::duration<double>(
            options_.term_grace_s));
      }
      if (term_forwarded && Clock::now() >= term_deadline) {
        APPCLASS_LOG_WARN("supervisor.escalating_sigkill", {"pid", child});
        ::kill(child, SIGKILL);
        term_deadline = Clock::time_point::max();
      }
      const pid_t waited = ::waitpid(child, &status, WNOHANG);
      if (waited == child) break;
      if (waited < 0 && errno != EINTR) {
        status = 0;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }

    const double lifetime_s =
        std::chrono::duration<double>(Clock::now() - started).count();
    result.exit_code = status_to_code(status);

    if (term_forwarded) {
      result.terminated = true;
      APPCLASS_LOG_INFO("supervisor.terminated", {"exit", result.exit_code});
      break;
    }
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      APPCLASS_LOG_INFO("supervisor.worker_done", {"uptime_s", lifetime_s});
      break;
    }

    // Crash path: count it, detect a loop, back off, restart.
    if (WIFSIGNALED(status)) {
      APPCLASS_LOG_WARN("supervisor.worker_killed",
                        {"signal", WTERMSIG(status)},
                        {"uptime_s", lifetime_s});
    } else {
      APPCLASS_LOG_WARN("supervisor.worker_failed",
                        {"exit", result.exit_code},
                        {"uptime_s", lifetime_s});
    }

    const auto now = Clock::now();
    if (lifetime_s >= options_.stable_s) {
      failures.clear();
      backoff_s = options_.backoff_initial_s;
    }
    failures.push_back(now);
    while (!failures.empty() &&
           std::chrono::duration<double>(now - failures.front()).count() >
               options_.crash_loop_window_s)
      failures.pop_front();
    if (failures.size() >= options_.crash_loop_threshold) {
      result.crash_loop = true;
      sm.crash_loops.inc();
      APPCLASS_LOG_ERROR("supervisor.crash_loop",
                         {"failures", failures.size()},
                         {"window_s", options_.crash_loop_window_s});
      break;
    }

    sm.backoff.set(backoff_s);
    APPCLASS_LOG_INFO("supervisor.restarting", {"backoff_s", backoff_s},
                      {"restarts", result.restarts + 1});
    // Interruptible backoff sleep: a SIGTERM during backoff ends
    // supervision instead of spawning one more doomed worker.
    const auto wake = now + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double>(backoff_s));
    while (Clock::now() < wake && !g_terminate_requested)
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    if (g_terminate_requested) {
      result.terminated = true;
      break;
    }
    backoff_s = std::min(backoff_s * options_.backoff_factor,
                         options_.backoff_max_s);
    ++result.restarts;
    sm.restarts.inc();
    char ordinal[32];
    std::snprintf(ordinal, sizeof ordinal, "%zu", result.restarts);
    ::setenv(kRestartsEnvVar, ordinal, 1);
  }

  ::sigaction(SIGTERM, &old_term, nullptr);
  ::sigaction(SIGINT, &old_int, nullptr);
  return result;
}

}  // namespace appclass::persist
