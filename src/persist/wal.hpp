// Write-ahead log of ingested snapshots.
//
// The serving path appends every accepted grid-aligned snapshot here
// *before* it is classified and folded into OnlineClassifier state, so a
// crash between ingest and the next checkpoint loses nothing durable:
// recovery replays the tail of the log through the identical
// classify+ingest arithmetic and lands on bit-identical state.
//
// On-disk layout (one directory, segment files `wal-<8-digit seq>.seg`):
//
//   "appclass-wal v1\n"                      segment header (text)
//   repeated records, each big-endian binary:
//     u32  magic 'WALR'
//     u64  sequence number (monotonic across segments)
//     u32  payload length
//     ...  payload = monitor::encode_packet(snapshot)
//     u64  FNV-1a-64 over seq|len|payload   (the serialize.cpp footer
//                                            idiom, applied per record)
//
// A reader stops at the first invalid record: a torn final record is the
// normal artifact of SIGKILL mid-append and is reported, not fatal.
// Segments rotate at a size threshold so checkpointing can prune whole
// files below the checkpoint horizon.
//
// Durability is policy-selectable (`FsyncPolicy`): kAlways syncs every
// record (zero loss under SIGKILL *and* power cut), kInterval syncs every
// `sync_every` records (loss bounded by the interval), kNever leaves
// flushing to the page cache / buffer threshold. bench/recovery_curve
// quantifies the loss/throughput trade.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "metrics/snapshot.hpp"

namespace appclass::persist {

enum class FsyncPolicy {
  kAlways,    ///< write + fsync after every append
  kInterval,  ///< write + fsync every `sync_every` appends
  kNever,     ///< write when the user-space buffer fills; never fsync
};

std::string_view to_string(FsyncPolicy policy) noexcept;
std::optional<FsyncPolicy> fsync_policy_from_string(
    std::string_view name) noexcept;

struct WalOptions {
  FsyncPolicy fsync = FsyncPolicy::kAlways;
  /// Records between syncs under kInterval.
  std::size_t sync_every = 64;
  /// Rotate to a new segment once the current one exceeds this many bytes.
  std::size_t max_segment_bytes = 4u << 20;
};

class WalWriter {
 public:
  /// Opens (creates) `dir` for appending. `next_seq` is the sequence
  /// number of the first record this writer will append — recovery passes
  /// last replayed seq + 1 so numbering stays monotonic across restarts.
  WalWriter(std::string dir, WalOptions options = {},
            std::uint64_t next_seq = 0);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one snapshot and returns its sequence number. Applies the
  /// fsync policy; throws std::runtime_error with errno context on I/O
  /// failure.
  std::uint64_t append(const metrics::Snapshot& snapshot);

  /// Forces buffered records to the OS and to stable storage regardless
  /// of policy (graceful shutdown, pre-checkpoint barrier).
  void sync();

  /// Deletes whole segments whose every record is <= `seq` (covered by a
  /// durable checkpoint). The active segment is never deleted. Returns
  /// the number of segments removed.
  std::size_t prune_through(std::uint64_t seq);

  /// Sequence number the next append will receive.
  std::uint64_t next_seq() const noexcept { return next_seq_; }

  /// Records appended through this writer (not counting prior segments).
  std::uint64_t appended() const noexcept { return appended_; }

  /// Test hook simulating SIGKILL: drops the user-space buffer without
  /// flushing and closes the fd. Any further append throws.
  void simulate_crash();

 private:
  void open_segment();
  void flush_buffer();

  std::string dir_;
  WalOptions options_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t appended_ = 0;
  std::uint64_t segment_first_seq_ = 0;
  int fd_ = -1;
  std::string segment_path_;
  std::size_t segment_bytes_ = 0;
  std::string buffer_;
  std::size_t unsynced_records_ = 0;
  bool crashed_ = false;
};

/// One decoded record.
struct WalRecord {
  std::uint64_t seq = 0;
  metrics::Snapshot snapshot;
};

/// Result of scanning a WAL directory.
struct WalScan {
  std::uint64_t records = 0;      ///< valid records delivered
  std::uint64_t last_seq = 0;     ///< seq of the last valid record
  bool truncated_tail = false;    ///< stopped at a torn/corrupt record
  std::size_t segments = 0;       ///< segment files visited
};

/// Replays every valid record with seq >= `from_seq`, in sequence order,
/// through `fn`. A torn/corrupt record terminates its segment (flagged as
/// truncated_tail) — everything after a torn write within one segment is
/// untrusted, while later segments were written by a post-recovery
/// process and stay valid. A missing directory yields an empty scan.
WalScan replay_wal(const std::string& dir, std::uint64_t from_seq,
                   const std::function<void(const WalRecord&)>& fn);

/// Paths of the WAL segments in `dir`, in ascending segment order.
std::vector<std::string> wal_segments(const std::string& dir);

}  // namespace appclass::persist
