// Supervised recovery: newest valid checkpoint + deterministic WAL tail
// replay.
//
// recover() restores an OnlineClassifier (and optionally the application
// database) from a state directory:
//
//   1. load the newest checkpoint that validates (corrupt ones are
//      skipped with a WARN — an interrupted checkpoint write cannot brick
//      the service);
//   2. import its state image (refusing an options mismatch: state
//      recorded under different window/stability knobs is not comparable);
//   3. replay every WAL record with seq >= wal_next through the same
//      classify + ingest arithmetic the live drain uses, serially in
//      sequence order — so the recovered state is bit-identical to a
//      process that never died (proven by persist_recovery_test with real
//      SIGKILLs).
//
// Everything is observable: recovery duration, replayed record count, and
// recovery totals land in the obs metrics registry for /metrics.
#pragma once

#include <cstdint>
#include <string>

#include "core/appdb.hpp"
#include "core/online.hpp"
#include "core/pipeline.hpp"

namespace appclass::persist {

struct RecoveryReport {
  bool checkpoint_loaded = false;
  /// wal_next of the checkpoint used (0 when none).
  std::uint64_t checkpoint_wal_next = 0;
  /// Corrupt checkpoint files skipped before a valid one was found.
  std::size_t corrupt_checkpoints = 0;
  /// WAL records replayed through classify+ingest.
  std::uint64_t replayed = 0;
  /// Sequence number the resumed WAL writer should start at (one past the
  /// last applied record, or the checkpoint horizon when the log held
  /// nothing newer; 0 on a cold start).
  std::uint64_t wal_next_seq = 0;
  /// True when the WAL scan stopped at a torn/corrupt record.
  bool wal_truncated = false;
  /// Wall-clock recovery duration.
  double seconds = 0.0;
};

/// Restores `online` (and `db`, when non-null) from `state_dir`. The
/// classifier must be freshly constructed under the same pipeline and
/// options the checkpoint was written with; an options mismatch throws.
/// A missing/empty directory is a clean cold start (report with
/// checkpoint_loaded=false, replayed=0).
RecoveryReport recover(const std::string& state_dir,
                       const core::ClassificationPipeline& pipeline,
                       core::OnlineClassifier& online,
                       core::ApplicationDatabase* db = nullptr);

}  // namespace appclass::persist
