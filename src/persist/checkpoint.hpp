// Atomic, versioned checkpoints of the serving state.
//
// A checkpoint is the durable image of everything the serve loop mutates:
// the OnlineClassifier's windows/debounce/counters, the application
// database, and the WAL horizon (`wal_next` — the first log sequence NOT
// yet folded into this state). Recovery = newest valid checkpoint + a
// deterministic replay of WAL records >= wal_next.
//
// Format: line-oriented text like core/serialize.cpp, closed by the same
// FNV-1a-64 `checksum` footer, written via common::atomic_write_file
// (temp + fsync + rename) so a crash mid-checkpoint leaves the previous
// one intact. Files are named `checkpoint-<16-hex wal_next>.ckpt`; the
// newest `keep` are retained, and a corrupt newest file falls back to the
// next older (counted, warned, never fatal while any valid one remains).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/appdb.hpp"
#include "core/online.hpp"

namespace appclass::persist {

struct CheckpointData {
  /// First WAL sequence number NOT included in this state.
  std::uint64_t wal_next = 0;
  /// Options the OnlineClassifier ran under — recovery refuses a
  /// checkpoint written under different knobs (the state would not be
  /// comparable to a fresh run).
  core::OnlineOptions options;
  core::OnlineStateImage online;
  /// Application database rows (ApplicationDatabase::to_csv; may be empty).
  std::string appdb_csv;
};

/// Serializes a checkpoint (text, checksum footer included).
std::string encode_checkpoint(const CheckpointData& data);

/// Parses + verifies a checkpoint; throws std::runtime_error on a bad
/// header, checksum mismatch, truncation, or malformed field.
CheckpointData decode_checkpoint(const std::string& text);

/// Atomically writes `data` into `dir` and deletes all but the newest
/// `keep` checkpoint files. Returns the path written.
std::string write_checkpoint(const std::string& dir,
                             const CheckpointData& data, std::size_t keep = 2);

struct LoadedCheckpoint {
  CheckpointData data;
  std::string path;
  /// Newer checkpoint files that failed validation and were skipped.
  std::size_t corrupt_skipped = 0;
};

/// Loads the newest valid checkpoint in `dir` (skipping corrupt ones,
/// newest first). nullopt when none exists or none validates.
std::optional<LoadedCheckpoint> load_latest_checkpoint(const std::string& dir);

/// Paths of checkpoint files in `dir`, ascending by wal_next.
std::vector<std::string> checkpoint_files(const std::string& dir);

}  // namespace appclass::persist
