#include "persist/checkpoint.hpp"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <sstream>
#include <stdexcept>

#include "common/fs.hpp"
#include "obs/log.hpp"

namespace appclass::persist {
namespace {

constexpr std::string_view kMagic = "appclass-checkpoint v1";
constexpr std::string_view kChecksumTag = "checksum ";
constexpr std::string_view kFilePrefix = "checkpoint-";
constexpr std::string_view kFileSuffix = ".ckpt";

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("checkpoint deserialization: " + what);
}

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string to_hex64(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i, v >>= 4)
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
  return out;
}

void expect_tag(std::istream& is, const std::string& tag) {
  std::string got;
  if (!(is >> got) || got != tag) fail("expected '" + tag + "'");
}

double read_double(std::istream& is) {
  double v = 0.0;
  if (!(is >> v)) fail("truncated number");
  return v;
}

long long read_ll(std::istream& is) {
  long long v = 0;
  if (!(is >> v)) fail("truncated integer");
  return v;
}

std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  if (!(is >> v)) fail("truncated integer");
  return v;
}

std::size_t read_size(std::istream& is) {
  const long long v = read_ll(is);
  if (v < 0) fail("negative count");
  return static_cast<std::size_t>(v);
}

core::ApplicationClass read_class(std::istream& is) {
  std::string name;
  if (!(is >> name)) fail("truncated class label");
  const auto label = core::class_from_string(name);
  if (!label) fail("unknown class '" + name + "'");
  return *label;
}

/// wal_next encoded in a checkpoint file name; nullopt for other files.
std::optional<std::uint64_t> file_wal_next(std::string_view name) {
  if (name.size() != kFilePrefix.size() + 16 + kFileSuffix.size())
    return std::nullopt;
  if (name.substr(0, kFilePrefix.size()) != kFilePrefix) return std::nullopt;
  if (name.substr(name.size() - kFileSuffix.size()) != kFileSuffix)
    return std::nullopt;
  std::uint64_t seq = 0;
  for (const char c : name.substr(kFilePrefix.size(), 16)) {
    if (c >= '0' && c <= '9') seq = (seq << 4) | static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      seq = (seq << 4) | static_cast<std::uint64_t>(c - 'a' + 10);
    else
      return std::nullopt;
  }
  return seq;
}

}  // namespace

std::string encode_checkpoint(const CheckpointData& data) {
  std::ostringstream os;
  os.precision(17);
  os << kMagic << '\n';
  os << "wal-next " << data.wal_next << '\n';
  os << "options " << data.options.sampling_interval_s << ' '
     << data.options.window << ' ' << data.options.stability << ' '
     << data.options.min_coverage << '\n';
  os << "online " << data.online.classified << ' ' << data.online.abstained
     << ' ' << data.online.nodes.size() << '\n';
  for (const auto& node : data.online.nodes) {
    os << "node " << node.node_ip << ' ' << node.first_time << ' '
       << node.coverage << ' '
       << (node.stable_class ? core::to_string(*node.stable_class)
                             : std::string_view("-"))
       << ' ' << core::to_string(node.candidate) << ' '
       << node.candidate_streak << ' ' << node.window.size();
    for (const auto& [time, label] : node.window)
      os << ' ' << time << ' ' << core::to_string(label);
    os << '\n';
  }
  // Byte-count framing: the CSV is opaque payload, newlines included.
  os << "appdb " << data.appdb_csv.size() << '\n' << data.appdb_csv << '\n';
  std::string body = os.str();
  body.append(kChecksumTag);
  body.append(to_hex64(fnv1a64(
      std::string_view(body.data(), body.size() - kChecksumTag.size()))));
  body.push_back('\n');
  return body;
}

CheckpointData decode_checkpoint(const std::string& text) {
  std::string_view view = text;
  if (view.empty()) fail("empty checkpoint file");
  if (view.rfind(kMagic, 0) != 0) fail("bad magic/version header");

  const std::size_t footer = view.rfind(kChecksumTag);
  if (footer == std::string_view::npos)
    fail("missing checksum footer (truncated file?)");
  std::string_view recorded = view.substr(footer + kChecksumTag.size());
  while (!recorded.empty() &&
         (recorded.back() == '\n' || recorded.back() == '\r' ||
          recorded.back() == ' '))
    recorded.remove_suffix(1);
  if (recorded.size() != 16 ||
      recorded.find_first_not_of("0123456789abcdef") != std::string_view::npos)
    fail("truncated checksum footer (found '" + std::string(recorded) + "')");
  const std::string computed = to_hex64(fnv1a64(view.substr(0, footer)));
  if (recorded != computed)
    fail("checksum mismatch: checkpoint is corrupt (expected " + computed +
         ", found '" + std::string(recorded) + "')");

  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != kMagic)
    fail("bad magic/version header");

  CheckpointData data;
  expect_tag(is, "wal-next");
  data.wal_next = read_u64(is);

  expect_tag(is, "options");
  data.options.sampling_interval_s = static_cast<int>(read_ll(is));
  data.options.window = read_size(is);
  data.options.stability = read_size(is);
  data.options.min_coverage = read_double(is);

  expect_tag(is, "online");
  data.online.classified = read_size(is);
  data.online.abstained = read_size(is);
  const std::size_t node_count = read_size(is);
  data.online.nodes.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    expect_tag(is, "node");
    core::OnlineNodeImage node;
    if (!(is >> node.node_ip)) fail("truncated node id");
    node.first_time = read_ll(is);
    node.coverage = read_double(is);
    std::string stable;
    if (!(is >> stable)) fail("truncated stable class");
    if (stable != "-") {
      const auto label = core::class_from_string(stable);
      if (!label) fail("unknown class '" + stable + "'");
      node.stable_class = *label;
    }
    node.candidate = read_class(is);
    node.candidate_streak = read_size(is);
    const std::size_t window = read_size(is);
    node.window.reserve(window);
    for (std::size_t w = 0; w < window; ++w) {
      const metrics::SimTime time = read_ll(is);
      node.window.emplace_back(time, read_class(is));
    }
    data.online.nodes.push_back(std::move(node));
  }

  expect_tag(is, "appdb");
  const std::size_t appdb_bytes = read_size(is);
  if (!std::getline(is, line)) fail("truncated appdb section");
  data.appdb_csv.resize(appdb_bytes);
  if (appdb_bytes > 0 &&
      !is.read(data.appdb_csv.data(),
               static_cast<std::streamsize>(appdb_bytes)))
    fail("truncated appdb payload");
  return data;
}

std::vector<std::string> checkpoint_files(const std::string& dir) {
  std::vector<std::string> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (dirent* entry = ::readdir(d)) {
    if (file_wal_next(entry->d_name)) out.push_back(dir + "/" + entry->d_name);
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

std::string write_checkpoint(const std::string& dir,
                             const CheckpointData& data, std::size_t keep) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
    common::throw_errno("cannot create checkpoint directory:", dir);
  char name[64];
  std::snprintf(name, sizeof name, "%.*s%016llx%.*s",
                static_cast<int>(kFilePrefix.size()), kFilePrefix.data(),
                static_cast<unsigned long long>(data.wal_next),
                static_cast<int>(kFileSuffix.size()), kFileSuffix.data());
  const std::string path = dir + "/" + name;
  common::atomic_write_file(path, encode_checkpoint(data));

  const std::vector<std::string> files = checkpoint_files(dir);
  if (files.size() > keep) {
    for (std::size_t i = 0; i + keep < files.size(); ++i)
      ::unlink(files[i].c_str());
  }
  return path;
}

std::optional<LoadedCheckpoint> load_latest_checkpoint(
    const std::string& dir) {
  const std::vector<std::string> files = checkpoint_files(dir);
  std::size_t corrupt = 0;
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    try {
      LoadedCheckpoint loaded{
          decode_checkpoint(common::read_file_or_throw(*it)), *it, corrupt};
      return loaded;
    } catch (const std::runtime_error& e) {
      ++corrupt;
      APPCLASS_LOG_WARN("checkpoint.corrupt_skipped", {"path", *it},
                        {"error", e.what()});
    }
  }
  return std::nullopt;
}

}  // namespace appclass::persist
