// Process supervision for the serving path.
//
// Supervisor::run forks the worker into a child process and watches it:
//
//   * a clean exit (code 0) ends supervision;
//   * a crash (non-zero exit or a fatal signal, SIGKILL included) is
//     logged, counted, and restarted after an exponential backoff that
//     resets once a child survives `stable_s`;
//   * `crash_loop_threshold` failures inside `crash_loop_window_s` is a
//     crash loop — the supervisor gives up instead of burning CPU on a
//     worker that can never come up (a poisoned checkpoint, a bad model);
//   * SIGTERM/SIGINT to the supervisor is forwarded to the child, which
//     gets `term_grace_s` to shut down gracefully (drain, flush WAL,
//     final checkpoint) before SIGKILL.
//
// The child sees APPCLASS_SUPERVISED_RESTARTS in its environment (its
// restart ordinal) so the worker can expose the count on /metrics — the
// supervisor's own registry is invisible to scrapes of the worker.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

namespace appclass::persist {

struct SupervisorOptions {
  double backoff_initial_s = 0.25;
  double backoff_max_s = 8.0;
  double backoff_factor = 2.0;
  /// Failures within crash_loop_window_s that abort supervision.
  std::size_t crash_loop_threshold = 5;
  double crash_loop_window_s = 30.0;
  /// A child alive this long resets the backoff and the crash-loop clock.
  double stable_s = 10.0;
  /// Grace between forwarding SIGTERM and escalating to SIGKILL.
  double term_grace_s = 20.0;
};

struct SupervisorResult {
  /// Exit code of the last worker (128+signal when it died to a signal).
  int exit_code = 0;
  std::size_t restarts = 0;
  bool crash_loop = false;
  /// True when supervision ended because the supervisor was terminated.
  bool terminated = false;
};

/// Name of the restart-ordinal environment variable the child inherits.
inline constexpr const char* kRestartsEnvVar = "APPCLASS_SUPERVISED_RESTARTS";

class Supervisor {
 public:
  explicit Supervisor(SupervisorOptions options = {});

  /// Runs `worker` under supervision until it exits cleanly, crash-loops,
  /// or the supervisor is terminated. The worker runs in a forked child;
  /// its return value becomes the child's exit code. Must not be called
  /// from a multi-threaded process (fork + threads do not mix).
  SupervisorResult run(const std::function<int()>& worker);

 private:
  SupervisorOptions options_;
};

}  // namespace appclass::persist
