#include "persist/wal.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "common/assert.hpp"
#include "common/fs.hpp"
#include "monitor/wire.hpp"
#include "obs/log.hpp"

namespace appclass::persist {
namespace {

constexpr std::string_view kSegmentHeader = "appclass-wal v1\n";
constexpr std::uint32_t kRecordMagic = 0x57414C52;  // "WALR"
constexpr std::string_view kSegmentPrefix = "wal-";
constexpr std::string_view kSegmentSuffix = ".seg";
/// kNever flushes to the OS at this buffer size (memory bound, no fsync).
constexpr std::size_t kNeverPolicyFlushBytes = 256 * 1024;

std::uint64_t fnv1a64(const unsigned char* data, std::size_t size) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8)
    out.push_back(static_cast<char>((v >> shift) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8)
    out.push_back(static_cast<char>((v >> shift) & 0xff));
}

std::uint64_t read_u64(const unsigned char* p, std::size_t n) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < n; ++i) v = (v << 8) | p[i];
  return v;
}

std::string segment_name(std::uint64_t first_seq) {
  char name[64];
  std::snprintf(name, sizeof name, "%.*s%016llx%.*s",
                static_cast<int>(kSegmentPrefix.size()), kSegmentPrefix.data(),
                static_cast<unsigned long long>(first_seq),
                static_cast<int>(kSegmentSuffix.size()), kSegmentSuffix.data());
  return name;
}

/// First record seq encoded in a segment file name; nullopt if the name
/// is not a WAL segment.
std::optional<std::uint64_t> segment_first_seq(std::string_view name) {
  if (name.size() != kSegmentPrefix.size() + 16 + kSegmentSuffix.size())
    return std::nullopt;
  if (name.substr(0, kSegmentPrefix.size()) != kSegmentPrefix) return std::nullopt;
  if (name.substr(name.size() - kSegmentSuffix.size()) != kSegmentSuffix)
    return std::nullopt;
  std::uint64_t seq = 0;
  for (const char c : name.substr(kSegmentPrefix.size(), 16)) {
    if (c >= '0' && c <= '9') seq = (seq << 4) | static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      seq = (seq << 4) | static_cast<std::uint64_t>(c - 'a' + 10);
    else
      return std::nullopt;
  }
  return seq;
}

}  // namespace

std::string_view to_string(FsyncPolicy policy) noexcept {
  switch (policy) {
    case FsyncPolicy::kAlways: return "always";
    case FsyncPolicy::kInterval: return "interval";
    case FsyncPolicy::kNever: return "never";
  }
  return "always";
}

std::optional<FsyncPolicy> fsync_policy_from_string(
    std::string_view name) noexcept {
  if (name == "always") return FsyncPolicy::kAlways;
  if (name == "interval") return FsyncPolicy::kInterval;
  if (name == "never") return FsyncPolicy::kNever;
  return std::nullopt;
}

WalWriter::WalWriter(std::string dir, WalOptions options,
                     std::uint64_t next_seq)
    : dir_(std::move(dir)), options_(options), next_seq_(next_seq) {
  APPCLASS_EXPECTS(options_.sync_every >= 1);
  if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST)
    common::throw_errno("cannot create WAL directory:", dir_);
  open_segment();
}

WalWriter::~WalWriter() {
  if (fd_ < 0) return;
  try {
    sync();
  } catch (...) {
    // Destructor must not throw; the data at risk is bounded by policy.
  }
  ::close(fd_);
}

void WalWriter::open_segment() {
  segment_path_ = dir_ + "/" + segment_name(next_seq_);
  // A leftover segment with this exact first-seq can only hold records a
  // prior recovery already declared lost (torn tail / nothing replayable)
  // — replace it rather than appending after garbage.
  ::unlink(segment_path_.c_str());
  fd_ = ::open(segment_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) common::throw_errno("cannot open WAL segment:", segment_path_);
  segment_first_seq_ = next_seq_;
  buffer_.assign(kSegmentHeader);
  segment_bytes_ = kSegmentHeader.size();
  unsynced_records_ = 0;
}

void WalWriter::flush_buffer() {
  if (buffer_.empty()) return;
  if (!common::write_all(fd_, buffer_.data(), buffer_.size()))
    common::throw_errno("WAL write failed:", segment_path_);
  buffer_.clear();
}

std::uint64_t WalWriter::append(const metrics::Snapshot& snapshot) {
  if (crashed_ || fd_ < 0)
    throw std::runtime_error("WAL writer is closed: " + segment_path_);

  const std::vector<std::uint8_t> payload = monitor::encode_packet(snapshot);
  const std::size_t record_size = 4 + 8 + 4 + payload.size() + 8;
  if (segment_bytes_ + record_size > options_.max_segment_bytes &&
      segment_bytes_ > kSegmentHeader.size()) {
    // Rotate: the outgoing segment is flushed AND fsynced, so only the
    // active segment can ever lose records to a crash.
    flush_buffer();
    if (::fsync(fd_) != 0)
      common::throw_errno("WAL fsync failed:", segment_path_);
    ::close(fd_);
    open_segment();
  }

  const std::uint64_t seq = next_seq_++;
  const std::size_t body_start = buffer_.size() + 4;  // after the magic
  put_u32(buffer_, kRecordMagic);
  put_u64(buffer_, seq);
  put_u32(buffer_, static_cast<std::uint32_t>(payload.size()));
  buffer_.append(reinterpret_cast<const char*>(payload.data()),
                 payload.size());
  const std::uint64_t checksum = fnv1a64(
      reinterpret_cast<const unsigned char*>(buffer_.data()) + body_start,
      buffer_.size() - body_start);
  put_u64(buffer_, checksum);
  segment_bytes_ += record_size;
  ++appended_;
  ++unsynced_records_;

  switch (options_.fsync) {
    case FsyncPolicy::kAlways:
      sync();
      break;
    case FsyncPolicy::kInterval:
      if (unsynced_records_ >= options_.sync_every) sync();
      break;
    case FsyncPolicy::kNever:
      if (buffer_.size() >= kNeverPolicyFlushBytes) flush_buffer();
      break;
  }
  return seq;
}

void WalWriter::sync() {
  if (crashed_ || fd_ < 0) return;
  flush_buffer();
  if (::fsync(fd_) != 0)
    common::throw_errno("WAL fsync failed:", segment_path_);
  unsynced_records_ = 0;
}

std::size_t WalWriter::prune_through(std::uint64_t seq) {
  const std::vector<std::string> segments = wal_segments(dir_);
  std::size_t removed = 0;
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    const std::size_t slash = segments[i].find_last_of('/');
    const auto first = segment_first_seq(segments[i].substr(slash + 1));
    const std::size_t next_slash = segments[i + 1].find_last_of('/');
    const auto next_first =
        segment_first_seq(segments[i + 1].substr(next_slash + 1));
    if (!first || !next_first) continue;
    if (segments[i] == segment_path_) break;  // never the active segment
    // Records of segment i are < next segment's first seq.
    if (*next_first == 0 || *next_first - 1 > seq) break;
    if (::unlink(segments[i].c_str()) == 0) {
      ++removed;
      APPCLASS_LOG_DEBUG("wal.pruned", {"segment", segments[i]},
                         {"through_seq", seq});
    }
  }
  return removed;
}

void WalWriter::simulate_crash() {
  // SIGKILL semantics: whatever reached write(2) survives in the page
  // cache; the user-space buffer vanishes.
  buffer_.clear();
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  crashed_ = true;
}

std::vector<std::string> wal_segments(const std::string& dir) {
  std::vector<std::string> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (dirent* entry = ::readdir(d)) {
    if (segment_first_seq(entry->d_name))
      out.push_back(dir + "/" + entry->d_name);
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

WalScan replay_wal(const std::string& dir, std::uint64_t from_seq,
                   const std::function<void(const WalRecord&)>& fn) {
  WalScan scan;
  std::uint64_t last_delivered = 0;
  bool any_delivered = false;
  for (const std::string& path : wal_segments(dir)) {
    ++scan.segments;
    std::string data;
    try {
      data = common::read_file_or_throw(path);
    } catch (const std::runtime_error&) {
      scan.truncated_tail = true;
      continue;
    }
    const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
    std::size_t pos = 0;
    if (data.size() < kSegmentHeader.size() ||
        std::string_view(data.data(), kSegmentHeader.size()) !=
            kSegmentHeader) {
      scan.truncated_tail = true;
      APPCLASS_LOG_WARN("wal.bad_segment_header", {"segment", path});
      continue;
    }
    pos = kSegmentHeader.size();
    // Records until EOF or the first torn/corrupt one. A tear terminates
    // this segment only: later segments were written by a post-recovery
    // process that had already accepted the loss.
    while (pos < data.size()) {
      if (data.size() - pos < 4 + 8 + 4 ||
          read_u64(bytes + pos, 4) != kRecordMagic) {
        scan.truncated_tail = true;
        break;
      }
      const std::uint64_t seq = read_u64(bytes + pos + 4, 8);
      const std::size_t len =
          static_cast<std::size_t>(read_u64(bytes + pos + 12, 4));
      if (data.size() - pos < 4 + 8 + 4 + len + 8) {
        scan.truncated_tail = true;
        break;
      }
      const std::uint64_t recorded = read_u64(bytes + pos + 16 + len, 8);
      if (fnv1a64(bytes + pos + 4, 12 + len) != recorded) {
        scan.truncated_tail = true;
        break;
      }
      const auto snapshot = monitor::decode_packet(
          std::span<const std::uint8_t>(bytes + pos + 16, len));
      pos += 4 + 8 + 4 + len + 8;
      if (!snapshot) {
        scan.truncated_tail = true;
        break;
      }
      if (seq >= from_seq && (!any_delivered || seq > last_delivered)) {
        fn(WalRecord{seq, *snapshot});
        ++scan.records;
        last_delivered = seq;
        any_delivered = true;
        scan.last_seq = seq;
      }
    }
  }
  return scan;
}

}  // namespace appclass::persist
