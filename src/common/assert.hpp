// Lightweight contract-checking macros used across the appclass libraries.
//
// Follows the C++ Core Guidelines Expects/Ensures idiom: preconditions and
// postconditions are always checked (they guard against programmer error in
// library composition, not user input), and failures terminate with a
// diagnostic rather than continuing with corrupted state.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace appclass::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "appclass: %s violated: (%s) at %s:%d\n", kind, expr,
               file, line);
  std::abort();
}

}  // namespace appclass::detail

#define APPCLASS_EXPECTS(cond)                                               \
  ((cond) ? static_cast<void>(0)                                             \
          : ::appclass::detail::contract_failure("precondition", #cond,      \
                                                 __FILE__, __LINE__))

#define APPCLASS_ENSURES(cond)                                               \
  ((cond) ? static_cast<void>(0)                                             \
          : ::appclass::detail::contract_failure("postcondition", #cond,     \
                                                 __FILE__, __LINE__))

#define APPCLASS_ASSERT(cond)                                                \
  ((cond) ? static_cast<void>(0)                                             \
          : ::appclass::detail::contract_failure("invariant", #cond,         \
                                                 __FILE__, __LINE__))
