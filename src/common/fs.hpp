// Crash-safe file helpers shared by model serialization (core) and the
// checkpoint/WAL layer (persist).
//
// atomic_write_file() writes to a temporary file *in the same directory*
// as the target (rename(2) is only atomic within one filesystem), flushes
// it to stable storage, and renames it over the target. A crash at any
// point leaves either the old file or the new one — never a truncated
// hybrid. Errors throw std::runtime_error carrying the path and errno
// text so operators can tell a full disk from a bad mount.
#pragma once

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

namespace appclass::common {

[[noreturn]] inline void throw_errno(const std::string& what,
                                     const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " +
                           std::strerror(errno ? errno : EIO));
}

/// Writes `content` to `fd` completely (retrying short writes / EINTR).
/// Returns false with errno set on failure.
inline bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

/// fsync() of a directory, so a rename into it survives a power cut.
/// Best effort: some filesystems refuse O_DIRECTORY fsync; that is not a
/// correctness problem for process-level crashes.
inline void sync_directory_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

/// Atomically replaces `path` with `content`: write temp in the same
/// directory, fsync, rename, fsync directory. Throws std::runtime_error
/// with errno context on any failure (the temp file is removed).
inline void atomic_write_file(const std::string& path,
                              const std::string& content) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("cannot open for write:", tmp);
  if (!write_all(fd, content.data(), content.size())) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw_errno("write failed:", tmp);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw_errno("fsync failed:", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("close failed:", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("rename failed:", path);
  }
  sync_directory_of(path);
}

/// Reads a whole file; throws std::runtime_error with errno context when
/// it cannot be opened or read.
inline std::string read_file_or_throw(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw_errno("cannot open for read:", path);
  std::string out;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof buffer);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_errno("read failed:", path);
    }
    if (n == 0) break;
    out.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

}  // namespace appclass::common
