#include "dist/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace appclass::dist {

namespace {

timeval to_timeval(int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  return tv;
}

bool send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;  // signal, not failure: retry
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::optional<std::string> http_get(const std::string& host,
                                    std::uint16_t port,
                                    const std::string& path,
                                    int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;

  const timeval tv = to_timeval(timeout_ms);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return std::nullopt;
  }

  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (!send_all(fd, request.data(), request.size())) {
    ::close(fd);
    return std::nullopt;
  }

  // Connection: close — read to EOF, then split headers from body.
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;  // signal, not failure: retry
      // EAGAIN/EWOULDBLOCK here means the SO_RCVTIMEO budget expired —
      // a genuine timeout, reported as failure like any other error.
      ::close(fd);
      return std::nullopt;
    }
    if (n == 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);

  if (response.rfind("HTTP/1.1 200", 0) != 0 &&
      response.rfind("HTTP/1.0 200", 0) != 0)
    return std::nullopt;
  const std::size_t body = response.find("\r\n\r\n");
  if (body == std::string::npos) return std::nullopt;
  return response.substr(body + 4);
}

}  // namespace appclass::dist
