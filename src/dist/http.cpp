#include "dist/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string_view>

namespace appclass::dist {

namespace {

timeval to_timeval(int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  return tv;
}

bool send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;  // signal, not failure: retry
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Case-insensitive header search within the raw header block.
bool headers_contain(std::string_view headers, std::string_view name,
                     std::string_view value) {
  std::string lower(headers);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(
                     std::tolower(c)); });
  std::string needle(name);
  std::transform(needle.begin(), needle.end(), needle.begin(),
                 [](unsigned char c) { return static_cast<char>(
                     std::tolower(c)); });
  std::size_t pos = 0;
  while ((pos = lower.find(needle, pos)) != std::string::npos) {
    // Must start a header line.
    if (pos != 0 && lower[pos - 1] != '\n') {
      ++pos;
      continue;
    }
    const std::size_t line_end = lower.find('\n', pos);
    const std::string_view line(lower.data() + pos,
                                (line_end == std::string::npos
                                     ? lower.size()
                                     : line_end) -
                                    pos);
    if (line.find(value) != std::string_view::npos) return true;
    pos += needle.size();
  }
  return false;
}

}  // namespace

const char* to_string(HttpError error) noexcept {
  switch (error) {
    case HttpError::kOk: return "ok";
    case HttpError::kConnect: return "connect";
    case HttpError::kTimeout: return "timeout";
    case HttpError::kTooLarge: return "too-large";
    case HttpError::kChunked: return "chunked";
    case HttpError::kProtocol: return "protocol";
    case HttpError::kStatus: return "status";
  }
  return "unknown";
}

HttpResult http_get_ex(const std::string& host, std::uint16_t port,
                       const std::string& path,
                       const HttpGetOptions& options) {
  HttpResult result;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return result;  // kConnect

  const timeval tv = to_timeval(options.timeout_ms);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return result;  // kConnect
  }

  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (!send_all(fd, request.data(), request.size())) {
    ::close(fd);
    result.error = HttpError::kTimeout;
    return result;
  }

  // Connection: close — read to EOF under the byte cap, then split
  // headers from body. A Content-Length that already exceeds the cap
  // aborts mid-stream instead of buffering the excess first.
  std::string response;
  char buffer[4096];
  std::size_t headers_end = std::string::npos;
  bool checked_headers = false;
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;  // signal, not failure: retry
      ::close(fd);
      // EAGAIN/EWOULDBLOCK here means the SO_RCVTIMEO budget expired.
      result.error = (errno == EAGAIN || errno == EWOULDBLOCK)
                         ? HttpError::kTimeout
                         : HttpError::kConnect;
      return result;
    }
    if (n == 0) break;
    if (response.size() + static_cast<std::size_t>(n) >
        options.max_response_bytes) {
      ::close(fd);
      result.error = HttpError::kTooLarge;
      return result;
    }
    response.append(buffer, static_cast<std::size_t>(n));
    if (!checked_headers) {
      headers_end = response.find("\r\n\r\n");
      if (headers_end != std::string::npos) {
        checked_headers = true;
        const std::string_view headers(response.data(), headers_end);
        if (headers_contain(headers, "transfer-encoding", "chunked")) {
          ::close(fd);
          result.error = HttpError::kChunked;
          return result;
        }
        // Reject an announced oversize body before draining it.
        const std::size_t cl = std::string(headers).find("Content-Length:");
        if (cl != std::string::npos) {
          const unsigned long long announced =
              std::strtoull(response.c_str() + cl + 15, nullptr, 10);
          if (announced > options.max_response_bytes) {
            ::close(fd);
            result.error = HttpError::kTooLarge;
            return result;
          }
        }
      }
    }
  }
  ::close(fd);

  if (headers_end == std::string::npos) {
    result.error = HttpError::kProtocol;
    return result;
  }
  // Status line: HTTP/1.x NNN ...
  if (response.rfind("HTTP/1.", 0) != 0 || response.size() < 12) {
    result.error = HttpError::kProtocol;
    return result;
  }
  result.status = std::atoi(response.c_str() + 9);
  result.body = response.substr(headers_end + 4);
  result.error =
      result.status == 200 ? HttpError::kOk : HttpError::kStatus;
  return result;
}

std::optional<std::string> http_get(const std::string& host,
                                    std::uint16_t port,
                                    const std::string& path,
                                    int timeout_ms) {
  HttpGetOptions options;
  options.timeout_ms = timeout_ms;
  HttpResult result = http_get_ex(host, port, path, options);
  if (!result.ok()) return std::nullopt;
  return std::move(result.body);
}

}  // namespace appclass::dist
