#include "dist/wire.hpp"

#include <chrono>
#include <cstring>

#include "common/assert.hpp"
#include "monitor/wire.hpp"

namespace appclass::dist {

namespace {

constexpr std::uint32_t kFrameMagic = 0x41534E50;  // "ASNP"
constexpr std::uint32_t kHelloMagic = 0x41534E48;  // "ASNH"
constexpr std::uint32_t kAckMagic = 0x41534E41;    // "ASNA"

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8)
    out.push_back(static_cast<std::uint8_t>(v >> shift));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8)
    out.push_back(static_cast<std::uint8_t>(v >> shift));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

/// FNV-1a-64 — the WAL / serialize.cpp footer hash, applied per frame.
std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

const char* to_string(DecodeStatus status) noexcept {
  switch (status) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kNeedMore: return "need-more";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadVersion: return "bad-version";
    case DecodeStatus::kBadChecksum: return "bad-checksum";
    case DecodeStatus::kBadPayload: return "bad-payload";
  }
  return "unknown";
}

std::uint64_t wall_now_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::vector<std::uint8_t> encode_frame(const metrics::Snapshot& snapshot,
                                       std::uint64_t seq,
                                       const obs::TraceContext& trace,
                                       std::uint64_t announce_us) {
  const std::vector<std::uint8_t> payload = monitor::encode_packet(snapshot);
  APPCLASS_EXPECTS(!payload.empty() && payload.size() <= kMaxFramePayload);
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + payload.size() + 8);
  put_u32(out, kFrameMagic);
  out.push_back(kWireVersion);
  put_u64(out, seq);
  put_u64(out, trace.trace_id);
  put_u64(out, trace.span_id);
  put_u64(out, announce_us);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  // Checksum covers version..payload — everything after the magic.
  put_u64(out, fnv1a64(std::span<const std::uint8_t>(out).subspan(4)));
  return out;
}

void FrameDecoder::append(std::span<const std::uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void FrameDecoder::compact() {
  // Drop consumed prefix once it dominates the buffer, so a long-lived
  // connection does not accrete every frame it ever saw.
  if (pos_ > 0 && pos_ * 2 >= buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
}

DecodeStatus FrameDecoder::next(Frame& out) {
  const std::size_t have = buffer_.size() - pos_;
  const std::uint8_t* p = buffer_.data() + pos_;
  if (have < 4) return DecodeStatus::kNeedMore;
  if (get_u32(p) != kFrameMagic) return DecodeStatus::kBadMagic;
  if (have < 5) return DecodeStatus::kNeedMore;
  // Version is judged before anything else is trusted: an unknown schema
  // must not masquerade as corruption.
  if (p[4] != kWireVersion) return DecodeStatus::kBadVersion;
  if (have < kFrameHeaderBytes) return DecodeStatus::kNeedMore;
  const std::uint32_t payload_len = get_u32(p + 37);
  if (payload_len == 0 || payload_len > kMaxFramePayload)
    return DecodeStatus::kBadPayload;
  const std::size_t total = kFrameHeaderBytes + payload_len + 8;
  if (have < total) return DecodeStatus::kNeedMore;

  const std::uint64_t checksum = get_u64(p + kFrameHeaderBytes + payload_len);
  if (fnv1a64({p + 4, kFrameHeaderBytes + payload_len - 4}) != checksum)
    return DecodeStatus::kBadChecksum;

  const auto snapshot =
      monitor::decode_packet({p + kFrameHeaderBytes, payload_len});
  if (!snapshot) return DecodeStatus::kBadPayload;

  out.seq = get_u64(p + 5);
  out.trace.trace_id = get_u64(p + 13);
  out.trace.span_id = get_u64(p + 21);
  out.trace.parent_span_id = 0;
  out.announce_us = get_u64(p + 29);
  out.snapshot = *snapshot;
  pos_ += total;
  compact();
  return DecodeStatus::kOk;
}

std::vector<std::uint8_t> encode_hello(const Hello& hello) {
  std::vector<std::uint8_t> out;
  out.reserve(kHelloBytes);
  put_u32(out, kHelloMagic);
  out.push_back(kWireVersion);
  put_u64(out, hello.wal_next);
  put_u64(out, fnv1a64(std::span<const std::uint8_t>(out).subspan(4)));
  APPCLASS_ENSURES(out.size() == kHelloBytes);
  return out;
}

DecodeStatus decode_hello(std::span<const std::uint8_t> bytes, Hello& out) {
  if (bytes.size() != kHelloBytes) return DecodeStatus::kBadPayload;
  if (get_u32(bytes.data()) != kHelloMagic) return DecodeStatus::kBadMagic;
  if (bytes[4] != kWireVersion) return DecodeStatus::kBadVersion;
  if (fnv1a64(bytes.subspan(4, 9)) != get_u64(bytes.data() + 13))
    return DecodeStatus::kBadChecksum;
  out.wal_next = get_u64(bytes.data() + 5);
  return DecodeStatus::kOk;
}

std::vector<std::uint8_t> encode_ack(std::uint64_t seq) {
  std::vector<std::uint8_t> out;
  out.reserve(kAckBytes);
  put_u32(out, kAckMagic);
  put_u64(out, seq);
  APPCLASS_ENSURES(out.size() == kAckBytes);
  return out;
}

DecodeStatus decode_ack(std::span<const std::uint8_t> bytes,
                        std::uint64_t& seq) {
  if (bytes.size() != kAckBytes) return DecodeStatus::kBadPayload;
  if (get_u32(bytes.data()) != kAckMagic) return DecodeStatus::kBadMagic;
  seq = get_u64(bytes.data() + 4);
  return DecodeStatus::kOk;
}

}  // namespace appclass::dist
