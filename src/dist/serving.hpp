// The unified serving API: single-process, shard worker, and coordinator
// are three modes of one library-level surface.
//
// `appclass_cli serve` used to be a ~280-line monolith of flag parsing,
// state-dir wiring, drain loop, and signal handling. That block now
// lives here as `ServeOptions` (parsed once, by parse_serve_args, for
// every mode) and `ServeApp` (the run loop), so the CLI is a thin
// adapter and the distributed topology shares — rather than forks — the
// crash-safety, health, and observability plumbing:
//
//   * kSingle — the classic loop: replay the five canonical workload
//     streams through a FleetStream, scrape endpoint, optional
//     WAL/checkpoint state dir, optional supervisor.
//   * kWorker — identical plumbing, but snapshots arrive over a
//     dist::IngestListener socket instead of the local replay; acks are
//     written only after the WAL append, so the coordinator's
//     exactly-once window survives SIGKILL + supervised restart.
//   * kCoordinator — replays the canonical streams, shards them by node
//     ip over a dist::ShardMap, ships them to the workers through
//     dist::WorkerLink, and serves the merged fleet view (/composition,
//     /classes, /appdb, /workers, /replay) by scraping the workers'
//     own read-only routes — plus the fleet observability plane:
//     federated worker metrics (/fleet/metrics, /fleet/workers), the
//     stitched cross-process trace (/fleet/traces), and the multi-window
//     SLO verdict (/slo, folded into /healthz).
//
// Determinism contract (what the CI topology smoke proves): each node ip
// lives on exactly one shard, per-link TCP preserves the coordinator's
// announce order, and workers ingest serially in arrival order — so
// every node's OnlineClassifier evolves exactly as in single-process
// serve, and the merged composition text is byte-identical to the
// single-process /composition for the same --cycles replay.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/online.hpp"
#include "persist/wal.hpp"

namespace appclass::serving {

enum class ServeMode { kSingle, kWorker, kCoordinator };

/// One shard worker, as the coordinator addresses it: the scrape port
/// serves the merge routes, the ingest port accepts snapshot frames.
struct WorkerEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t scrape_port = 0;
  std::uint16_t ingest_port = 0;
};

struct ServeOptions {
  ServeMode mode = ServeMode::kSingle;
  std::string model_path;
  long long port = 9464;
  long long duration_s = 0;    ///< 0 = run until terminated
  /// Replay cycles before the stream stops and /replay reports complete
  /// (single + coordinator modes; 0 = replay until duration/signal).
  long long cycles = 0;
  long long drift_window = 0;  ///< 0 = DriftOptions default
  /// Empty disables persistence; otherwise the crash-safety state
  /// directory (<dir>/wal + <dir>/checkpoints).
  std::string state_dir;
  persist::WalOptions wal;
  /// Non-empty drains between automatic checkpoints.
  long long checkpoint_every = 16;
  /// FleetStream buffer bound (0 = unbounded).
  long long max_backlog = 0;
  bool supervised = false;
  /// Worker mode: frame listener port (0 = ephemeral).
  long long ingest_port = 0;
  /// Coordinator mode: the shard fleet, in shard-index order.
  std::vector<WorkerEndpoint> workers;
  /// Coordinator mode: worker /metrics scrape period for the federated
  /// /fleet/metrics view; each scrape also feeds the availability SLI.
  long long fleet_scrape_every_ms = 1000;
  /// Coordinator mode: announce->durable latency above this is a bad
  /// freshness event for the SLO verdict (/slo, /healthz).
  long long slo_freshness_ms = 5000;
  /// Coordinator mode: the SLO short burn-rate window in seconds (the
  /// long window is 12x, the classic 5m/1h pairing at the default).
  long long slo_window_s = 300;
  /// Coordinator mode: shared objective percentage for both SLIs
  /// (99 -> 0.99 target good fraction).
  long long slo_objective_pct = 99;
  /// Engine execution width (the CLI forwards its global --threads).
  std::size_t threads = 1;
  core::OnlineOptions online;
};

struct ParseResult {
  /// Set on success; empty means "print nothing more and exit".
  std::optional<ServeOptions> options;
  /// Exit code when options is empty (usage errors print to stderr).
  int exit_code = 2;
};

/// Parses the serve flag vector (everything after the model path) into
/// options, enforcing per-mode flag validity. All error messages go to
/// stderr, exactly as the old in-CLI parser printed them.
ParseResult parse_serve_args(const std::string& model_path,
                             const std::vector<std::string>& flags);

/// Canonical plain-text rendering of an OnlineClassifier's state — the
/// /composition route body. Deterministic: nodes in map (lexicographic)
/// order, every counter and window entry included, so two classifiers
/// with equal state render byte-identically.
std::string composition_text(const core::OnlineClassifier& online);

/// Merges per-shard composition texts into the aggregate: node lines
/// pass through verbatim (re-sorted by ip), counters sum. Because each
/// node lives on exactly one shard, the merge of the shard texts equals
/// the single-process text by construction. Throws std::runtime_error
/// on a malformed part or a node ip claimed by two shards.
std::string merge_composition_texts(const std::vector<std::string>& parts);

/// Node ip a replayed canonical run is announced under: run r becomes
/// fleet node "10.0.<r>.1", so the five workloads are five distinct
/// monitored nodes (and shard across workers) instead of one
/// interleaved stream.
std::string replay_node_ip(std::size_t run_index);

class ServeApp {
 public:
  explicit ServeApp(ServeOptions options);

  /// Runs the configured mode to completion; with options.supervised,
  /// forks it under persist::Supervisor first. Returns the process exit
  /// code.
  int run();

 private:
  int run_mode();
  int run_node();         // kSingle and kWorker share one body
  int run_coordinator();

  ServeOptions options_;
};

}  // namespace appclass::serving
