// Minimal blocking HTTP GET client for coordinator-side merges.
//
// The coordinator aggregates worker state by scraping the workers' own
// ScrapeServer routes (/composition, /shard/classes, /appdb, /replay,
// /metrics, /traces/recent) — the same read-only surface operators curl.
// One short-lived connection per request, hard read/write timeouts, no
// keep-alive: merge traffic is a handful of tiny requests per scrape, so
// the simplest correct client wins (the mirror image of obs/scrape.hpp's
// deliberately non-framework server).
//
// The client is hardened against a misbehaving or hostile peer: the
// response is capped (a worker cannot balloon the coordinator's memory),
// reads run under SO_RCVTIMEO, and chunked transfer encoding — which
// this deliberately simple client does not implement — is rejected
// rather than mis-parsed. Each failure mode gets a distinct error so
// per-worker scrape health can say *why* a worker is unreachable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace appclass::dist {

enum class HttpError {
  kOk,        ///< 200 with a complete body
  kConnect,   ///< socket/resolve/connect failure
  kTimeout,   ///< read or write tripped the timeout budget
  kTooLarge,  ///< response exceeded max_response_bytes
  kChunked,   ///< Transfer-Encoding: chunked (unsupported, rejected)
  kProtocol,  ///< malformed status line / headers
  kStatus,    ///< well-formed response with a non-200 status
};

const char* to_string(HttpError error) noexcept;

struct HttpGetOptions {
  int timeout_ms = 2000;
  /// Hard cap on the bytes read (headers + body). The default comfortably
  /// holds a large /metrics or bounded /traces/recent dump.
  std::size_t max_response_bytes = 8 * 1024 * 1024;
};

struct HttpResult {
  HttpError error = HttpError::kConnect;
  int status = 0;     ///< HTTP status when one was parsed, else 0
  std::string body;   ///< response body on kOk (also on kStatus)

  bool ok() const noexcept { return error == HttpError::kOk; }
};

/// Fetches http://host:port/path with distinct failure classification.
HttpResult http_get_ex(const std::string& host, std::uint16_t port,
                       const std::string& path,
                       const HttpGetOptions& options = {});

/// Fetches http://host:port/path and returns the response body on a 200,
/// nullopt on connect/timeout/protocol failure or any other status.
/// Thin wrapper over http_get_ex for callers that don't need the cause.
std::optional<std::string> http_get(const std::string& host,
                                    std::uint16_t port,
                                    const std::string& path,
                                    int timeout_ms = 2000);

}  // namespace appclass::dist
