// Minimal blocking HTTP GET client for coordinator-side merges.
//
// The coordinator aggregates worker state by scraping the workers' own
// ScrapeServer routes (/composition, /shard/classes, /appdb, /replay) —
// the same read-only surface operators curl. One short-lived connection
// per request, hard read/write timeouts, no keep-alive: merge traffic is
// a handful of tiny requests per scrape, so the simplest correct client
// wins (the mirror image of obs/scrape.hpp's deliberately non-framework
// server).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace appclass::dist {

/// Fetches http://host:port/path and returns the response body on a 200,
/// nullopt on connect/timeout/protocol failure or any other status.
std::optional<std::string> http_get(const std::string& host,
                                    std::uint16_t port,
                                    const std::string& path,
                                    int timeout_ms = 2000);

}  // namespace appclass::dist
