#include "dist/ingest.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>

#include "dist/wire.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace appclass::dist {

namespace {

timeval to_timeval(int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  return tv;
}

bool send_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;  // signal, not failure: retry
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

IngestListener::IngestListener(IngestListenerOptions options, Sink sink,
                               std::uint64_t start_seq)
    : options_(std::move(options)),
      sink_(std::move(sink)),
      expected_(start_seq) {}

IngestListener::~IngestListener() { stop(); }

bool IngestListener::start() {
  if (running_.load(std::memory_order_acquire)) return true;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    APPCLASS_LOG_ERROR("dist.ingest_socket_failed", {"errno", errno});
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    APPCLASS_LOG_ERROR("dist.ingest_bad_address",
                       {"address", options_.bind_address});
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  // Same restart-over-dying-socket bind loop as the scrape server: a
  // supervised worker restarting after SIGKILL must reclaim its port.
  int backoff_ms = options_.bind_retry_initial_ms;
  bool listening = false;
  for (int attempt = 0; attempt <= options_.bind_retries; ++attempt) {
    if (attempt > 0) {
      APPCLASS_LOG_WARN("dist.ingest_bind_retry", {"attempt", attempt},
                        {"port", options_.port}, {"backoff_ms", backoff_ms});
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, 2000);
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
            0 &&
        ::listen(listen_fd_, 4) == 0) {
      listening = true;
      break;
    }
  }
  if (!listening) {
    APPCLASS_LOG_ERROR("dist.ingest_bind_failed", {"errno", errno},
                       {"port", options_.port});
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0)
    port_ = ntohs(bound.sin_port);

  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { accept_loop(); });
  APPCLASS_LOG_INFO("dist.ingest_started", {"port", port_},
                    {"expected", expected()});
  return true;
}

void IngestListener::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  // Kick the in-flight connection too, or the thread would linger until
  // its read timeout expires.
  const int conn = conn_fd_.exchange(-1, std::memory_order_acq_rel);
  if (conn >= 0) ::shutdown(conn, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  APPCLASS_LOG_INFO("dist.ingest_stopped", {"port", port_});
}

void IngestListener::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load(std::memory_order_acquire)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    const timeval tv = to_timeval(options_.read_timeout_ms);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    conn_fd_.store(fd, std::memory_order_release);
    handle_connection(fd);
    const int prev = conn_fd_.exchange(-1, std::memory_order_acq_rel);
    if (prev >= 0) ::close(prev);
  }
}

void IngestListener::handle_connection(int fd) {
  auto& registry = obs::MetricsRegistry::global();
  auto& frames_total = registry.counter("appclass_dist_frames_total");
  auto& duplicates_total = registry.counter("appclass_dist_duplicates_total");
  auto& errors_total =
      registry.counter("appclass_dist_protocol_errors_total");
  auto& e2e_ingest_hist =
      registry.histogram("appclass_e2e_ingest_seconds");
  registry.counter("appclass_dist_connections_total").inc();

  {
    const auto hello = encode_hello({.wal_next = expected()});
    if (!send_all(fd, hello.data(), hello.size())) return;
  }

  FrameDecoder decoder;
  std::uint8_t buffer[8192];
  while (running_.load(std::memory_order_acquire)) {
    Frame frame;
    const DecodeStatus status = decoder.next(frame);
    if (status == DecodeStatus::kNeedMore) {
      const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
      if (n < 0 && errno == EINTR) continue;  // signal, not failure: retry
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
        continue;  // idle between replay cycles; just keep listening
      if (n <= 0) return;  // 0 = peer closed; < 0 = real socket error
      decoder.append({buffer, static_cast<std::size_t>(n)});
      continue;
    }
    if (status != DecodeStatus::kOk) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      errors_total.inc();
      APPCLASS_LOG_WARN("dist.ingest_bad_frame",
                        {"status", to_string(status)});
      return;
    }

    const std::uint64_t expected = expected_.load(std::memory_order_acquire);
    if (frame.seq < expected) {
      // Retransmit of a frame that is already durable: the ack was lost
      // with the previous connection. Re-ack, do not re-ingest.
      duplicates_.fetch_add(1, std::memory_order_relaxed);
      duplicates_total.inc();
      const auto ack = encode_ack(frame.seq);
      if (!send_all(fd, ack.data(), ack.size())) return;
      continue;
    }
    if (frame.seq > expected ||
        frame.snapshot.time % options_.sampling_interval_s != 0) {
      // A sequence gap or an off-grid snapshot breaks the frame-seq ==
      // WAL-seq invariant; there is no coherent way to ack it.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      errors_total.inc();
      APPCLASS_LOG_WARN("dist.ingest_protocol_error", {"seq", frame.seq},
                        {"expected", expected},
                        {"time", frame.snapshot.time});
      return;
    }

    bool accepted = false;
    {
      // Adopt the coordinator's context so the ingest span lands in the
      // same trace as the announce span that produced this frame.
      obs::ScopedTraceContext adopted(frame.trace);
      obs::TraceSpan span("dist_ingest");
      if (span.recording()) {
        span.add_attr({"seq", frame.seq});
        span.add_attr({"node", frame.snapshot.node_ip});
      }
      accepted = sink_(frame.snapshot);
    }
    if (!accepted) {
      // Backlog full: drop the connection unacked; the coordinator will
      // reconnect and resend once the drain catches up.
      APPCLASS_LOG_WARN("dist.ingest_backpressure", {"seq", frame.seq});
      return;
    }
    frames_total.inc();
    if (frame.announce_us > 0) {
      // Announce->ingested latency across the process boundary; the two
      // hosts' wall clocks may disagree, so negative skew clamps to 0.
      const std::uint64_t now_us = wall_now_us();
      const double e2e_s =
          now_us > frame.announce_us
              ? static_cast<double>(now_us - frame.announce_us) * 1e-6
              : 0.0;
      e2e_ingest_hist.observe(e2e_s);
      if (frame.trace.trace_id != 0 &&
          e2e_s >= e2e_ingest_hist.exemplar_value())
        e2e_ingest_hist.set_exemplar(e2e_s, frame.trace.trace_id);
    }
    expected_.store(expected + 1, std::memory_order_release);
    const auto ack = encode_ack(frame.seq);
    if (!send_all(fd, ack.data(), ack.size())) return;
  }
}

}  // namespace appclass::dist
