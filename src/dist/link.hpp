// Coordinator-side link to one shard worker's ingest listener.
//
// A WorkerLink owns the TCP connection, the per-shard sequence counter,
// and the sliding window of sent-but-unacked frames that makes delivery
// exactly-once across worker crashes:
//
//   * connect reads the worker's hello (its durable WAL horizon). On the
//     first connect the link adopts it as the starting sequence number
//     (a worker resuming from a checkpointed state dir starts mid-
//     sequence); on reconnects, unacked frames below the horizon were
//     durable before the crash and are retired, the rest are resent in
//     order.
//   * send() stamps the next sequence number, buffers the encoded frame
//     in the unacked window, and writes it. When the window is full the
//     call blocks draining acks — bounded in-flight data is the
//     backpressure: a worker that stops acking stops the coordinator.
//   * a send/recv failure tears the connection down and the next call
//     reconnects with exponential backoff, retrying until the stop
//     predicate fires — a SIGKILLed worker being restarted by its
//     supervisor looks like a long reconnect, not data loss.
//
// Single-threaded by design: the coordinator's replay loop is the only
// caller, so per-link ordering (the property the bit-identical aggregate
// rests on) needs no locking.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "metrics/snapshot.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace appclass::dist {

struct WorkerLinkOptions {
  /// Max frames in flight before send() blocks on acks.
  std::size_t window = 64;
  /// Socket read/write timeouts; an ack wait that trips this tears the
  /// connection down and reconnects.
  int io_timeout_ms = 2000;
  /// Reconnect backoff: initial, doubling to max.
  int backoff_initial_ms = 100;
  int backoff_max_ms = 2000;
  /// Checked between connect attempts and ack waits; true aborts the
  /// operation (graceful shutdown mid-retry).
  std::function<bool()> should_stop;
  /// Called once per frame when it becomes durable on the worker, with
  /// the announce->durable latency in seconds — the freshness SLI feed
  /// (obs::SloTracker). Runs on the replay thread; keep it cheap.
  std::function<void(double)> on_durable;
};

class WorkerLink {
 public:
  WorkerLink(std::string host, std::uint16_t port,
             WorkerLinkOptions options = {});
  ~WorkerLink();

  WorkerLink(const WorkerLink&) = delete;
  WorkerLink& operator=(const WorkerLink&) = delete;

  /// Sends one snapshot (next sequence number, carrying `trace`).
  /// Blocks while the window is full or the worker is down; false only
  /// when the stop predicate fired before the frame was written.
  bool send(const metrics::Snapshot& snapshot,
            const obs::TraceContext& trace);

  /// Blocks until every sent frame is acked (== durable in the worker's
  /// WAL); false when the stop predicate fired first.
  bool flush();

  // Stats are atomics so a scrape-route handler on another thread can
  // read them while the replay loop sends.
  std::uint64_t sent() const noexcept {
    return sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t acked() const noexcept {
    return acked_.load(std::memory_order_relaxed);
  }
  std::uint64_t reconnects() const noexcept {
    return reconnects_.load(std::memory_order_relaxed);
  }
  std::size_t in_flight() const noexcept { return unacked_.size(); }
  bool connected() const noexcept { return fd_ >= 0; }

  const std::string& host() const noexcept { return host_; }
  std::uint16_t port() const noexcept { return port_; }

 private:
  struct Pending {
    std::uint64_t seq;
    std::vector<std::uint8_t> bytes;
    std::uint64_t announce_us = 0;     ///< wall clock at first send
    std::uint64_t trace_id = 0;        ///< for slow-sample exemplars
    std::int64_t sent_steady_us = 0;   ///< monotonic, reset on resend
  };

  bool ensure_connected();
  void disconnect();
  bool stop_requested() const;
  bool write_bytes(const std::vector<std::uint8_t>& bytes);
  /// Reads acks; `block` waits for at least one (up to the timeout).
  bool drain_acks(bool block);
  void apply_ack(std::uint64_t seq);
  /// Retires the head unacked frame: e2e latency histograms, exemplars,
  /// and the on_durable hook. `acked_on_wire` false = retired via a
  /// reconnect hello horizon (no RTT sample: the ack never arrived).
  void retire_front(bool acked_on_wire);

  std::string host_;
  std::uint16_t port_;
  WorkerLinkOptions options_;
  // Cached per-link series (peer-labeled through a BoundedLabelSet so a
  // misconfigured fleet cannot mint unbounded cardinality).
  obs::Histogram& e2e_durable_hist_;
  obs::Histogram& ack_rtt_hist_;
  obs::Gauge& horizon_lag_gauge_;
  int fd_ = -1;
  bool seq_adopted_ = false;
  std::uint64_t next_seq_ = 0;
  std::deque<Pending> unacked_;
  std::vector<std::uint8_t> ack_buffer_;
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> acked_{0};
  std::atomic<std::uint64_t> reconnects_{0};
};

}  // namespace appclass::dist
