#include "dist/serving.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/class_label.hpp"
#include "core/robustness.hpp"
#include "core/serialize.hpp"
#include "dist/http.hpp"
#include "dist/ingest.hpp"
#include "dist/link.hpp"
#include "dist/shard.hpp"
#include "engine/fleet.hpp"
#include "monitor/bus.hpp"
#include "obs/cardinality.hpp"
#include "obs/export.hpp"
#include "obs/federate.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/scrape.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "persist/checkpoint.hpp"
#include "persist/recovery.hpp"
#include "persist/supervisor.hpp"

namespace appclass::serving {

namespace {

/// Graceful-shutdown request flag, set by SIGTERM/SIGINT. Every mode's
/// loop polls it; shutdown then drains, flushes the WAL / the links,
/// writes a final checkpoint, and exits 0 (so a supervisor treating the
/// forwarded SIGTERM as "please stop" sees a clean exit, not a crash).
volatile std::sig_atomic_t g_serve_stop = 0;

void handle_serve_signal(int) { g_serve_stop = 1; }

void install_serve_signals() {
  g_serve_stop = 0;
  std::signal(SIGTERM, handle_serve_signal);
  std::signal(SIGINT, handle_serve_signal);
}

/// Digits-only integer parse for flag/env values. Deliberately stricter
/// than strtoll, which accepts leading whitespace and a sign — so
/// "--shard-port= 80", "+80", or "-1" read as valid ports/counts. Every
/// value parsed here is a count, port, or ordinal: non-negative by
/// definition, so only [0-9]+ is well-formed. Length-capped below
/// LLONG_MAX's 19 digits, so overflow cannot occur.
std::optional<long long> parse_int(const std::string& text) {
  if (text.empty() || text.size() > 18) return std::nullopt;
  long long v = 0;
  for (const char ch : text) {
    if (ch < '0' || ch > '9') return std::nullopt;
    v = v * 10 + (ch - '0');
  }
  return v;
}

std::vector<std::string> split_list(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::istringstream is(text);
  std::string item;
  while (std::getline(is, item, sep)) out.push_back(item);
  return out;
}

constexpr std::string_view kCompositionHeader = "appclass-composition v1";

/// Snapshots announced per run per replay cycle (the historical serve
/// loop's batch size, kept identical across single and coordinator modes
/// so their per-node announce orders match exactly).
constexpr std::size_t kAnnouncesPerCycle = 32;

void export_restart_ordinal() {
  // Under --supervised the watchdog's registry lives in another process;
  // the restart ordinal reaches the worker's /metrics via environment.
  if (const char* env = std::getenv(persist::kRestartsEnvVar)) {
    if (const auto ordinal = parse_int(env); ordinal && *ordinal >= 0)
      obs::MetricsRegistry::global()
          .gauge("appclass_supervised_restart_ordinal")
          .set(static_cast<double>(*ordinal));
  }
}

std::string label_name(core::ApplicationClass c) {
  return std::string(core::to_string(c));
}

/// Plain-text app-DB view: one "ip class" line per node, the class being
/// the debounced stable class ("-" while undecided). Deterministic
/// (export_state node order), so the coordinator can merge by sorting.
std::string appdb_text(const core::OnlineStateImage& state) {
  std::string out;
  for (const auto& node : state.nodes) {
    out += node.node_ip;
    out += ' ';
    out += node.stable_class ? label_name(*node.stable_class) : "-";
    out += '\n';
  }
  return out;
}

/// Plain-text per-class sample counts ("name count" per line, class
/// order) — the distilled scorecard a worker exposes on /shard/classes
/// for the coordinator's merged /classes.
std::string shard_classes_text(const obs::ModelHealth& health) {
  const auto counts = health.class_sample_counts();
  std::string out;
  for (std::size_t i = 0; i < counts.size() && i < core::kClassCount; ++i) {
    out += core::kClassNames[i];
    out += ' ';
    out += std::to_string(counts[i]);
    out += '\n';
  }
  return out;
}

}  // namespace

std::string replay_node_ip(std::size_t run_index) {
  return "10.0." + std::to_string(run_index) + ".1";
}

std::string composition_text(const core::OnlineClassifier& online) {
  const core::OnlineStateImage state = online.export_state();
  std::ostringstream out;
  out << kCompositionHeader << '\n';
  out << "classified " << state.classified << '\n';
  out << "abstained " << state.abstained << '\n';
  for (const auto& node : state.nodes) {
    out << "node " << node.node_ip << " first " << node.first_time
        << " coverage ";
    char coverage[32];
    std::snprintf(coverage, sizeof coverage, "%.17g", node.coverage);
    out << coverage << " stable "
        << (node.stable_class ? label_name(*node.stable_class) : "-")
        << " candidate " << label_name(node.candidate) << " streak "
        << node.candidate_streak << " window ";
    if (node.window.empty()) {
      out << '-';
    } else {
      for (std::size_t i = 0; i < node.window.size(); ++i) {
        if (i) out << ',';
        out << node.window[i].first << ':'
            << label_name(node.window[i].second);
      }
    }
    out << '\n';
  }
  return out.str();
}

std::string merge_composition_texts(const std::vector<std::string>& parts) {
  std::uint64_t classified = 0;
  std::uint64_t abstained = 0;
  std::map<std::string, std::string> node_lines;  // ip -> full line
  for (const std::string& part : parts) {
    std::istringstream in(part);
    std::string line;
    if (!std::getline(in, line) || line != kCompositionHeader)
      throw std::runtime_error("merge: bad composition header");
    for (const char* key : {"classified ", "abstained "}) {
      if (!std::getline(in, line) || line.rfind(key, 0) != 0)
        throw std::runtime_error("merge: missing counter line");
      const auto value = parse_int(line.substr(std::strlen(key)));
      if (!value || *value < 0)
        throw std::runtime_error("merge: bad counter value");
      (key[0] == 'c' ? classified : abstained) +=
          static_cast<std::uint64_t>(*value);
    }
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      if (line.rfind("node ", 0) != 0)
        throw std::runtime_error("merge: unexpected line: " + line);
      const std::size_t ip_end = line.find(' ', 5);
      if (ip_end == std::string::npos)
        throw std::runtime_error("merge: truncated node line");
      const std::string ip = line.substr(5, ip_end - 5);
      // Sharding places each node on exactly one worker; two workers
      // claiming one ip means the shard map and the fleet disagree.
      if (!node_lines.emplace(ip, line).second)
        throw std::runtime_error("merge: node " + ip +
                                 " reported by two shards");
    }
  }
  std::ostringstream out;
  out << kCompositionHeader << '\n';
  out << "classified " << classified << '\n';
  out << "abstained " << abstained << '\n';
  for (const auto& [ip, line] : node_lines) out << line << '\n';
  return out.str();
}

ParseResult parse_serve_args(const std::string& model_path,
                             const std::vector<std::string>& flags) {
  ServeOptions config;
  config.model_path = model_path;
  bool saw_fleet_flag = false;
  for (const auto& flag : flags) {
    if (flag.rfind("--mode=", 0) == 0) {
      const std::string name = flag.substr(std::strlen("--mode="));
      if (name == "single") {
        config.mode = ServeMode::kSingle;
      } else if (name == "worker") {
        config.mode = ServeMode::kWorker;
      } else if (name == "coordinator") {
        config.mode = ServeMode::kCoordinator;
      } else {
        std::fprintf(stderr,
                     "serve: bad mode '%s' (expected single, worker, "
                     "coordinator)\n",
                     name.c_str());
        return {};
      }
    } else if (flag.rfind("--drift-window=", 0) == 0) {
      const auto parsed =
          parse_int(flag.substr(std::strlen("--drift-window=")));
      if (!parsed || *parsed < 0) {
        std::fprintf(stderr, "serve: bad drift window '%s'\n",
                     flag.substr(std::strlen("--drift-window=")).c_str());
        return {};
      }
      config.drift_window = *parsed;
    } else if (flag.rfind("--port=", 0) == 0) {
      const auto parsed = parse_int(flag.substr(std::strlen("--port=")));
      if (!parsed || *parsed < 0 || *parsed > 65535) {
        std::fprintf(stderr, "serve: bad port '%s'\n",
                     flag.substr(std::strlen("--port=")).c_str());
        return {};
      }
      config.port = *parsed;
    } else if (flag.rfind("--ingest-port=", 0) == 0) {
      const auto parsed =
          parse_int(flag.substr(std::strlen("--ingest-port=")));
      if (!parsed || *parsed < 0 || *parsed > 65535) {
        std::fprintf(stderr, "serve: bad ingest port '%s'\n",
                     flag.substr(std::strlen("--ingest-port=")).c_str());
        return {};
      }
      config.ingest_port = *parsed;
    } else if (flag.rfind("--duration=", 0) == 0) {
      const auto parsed = parse_int(flag.substr(std::strlen("--duration=")));
      if (!parsed || *parsed < 0) {
        std::fprintf(stderr, "serve: bad duration '%s'\n",
                     flag.substr(std::strlen("--duration=")).c_str());
        return {};
      }
      config.duration_s = *parsed;
    } else if (flag.rfind("--cycles=", 0) == 0) {
      const auto parsed = parse_int(flag.substr(std::strlen("--cycles=")));
      if (!parsed || *parsed < 0) {
        std::fprintf(stderr, "serve: bad cycle count '%s'\n",
                     flag.substr(std::strlen("--cycles=")).c_str());
        return {};
      }
      config.cycles = *parsed;
    } else if (flag.rfind("--workers=", 0) == 0) {
      for (const std::string& token :
           split_list(flag.substr(std::strlen("--workers=")), ',')) {
        const auto ports = split_list(token, ':');
        std::optional<long long> scrape, ingest;
        if (ports.size() == 2) {
          scrape = parse_int(ports[0]);
          ingest = parse_int(ports[1]);
        }
        if (!scrape || !ingest || *scrape < 1 || *scrape > 65535 ||
            *ingest < 1 || *ingest > 65535) {
          std::fprintf(stderr,
                       "serve: bad worker '%s' (expected "
                       "SCRAPE_PORT:INGEST_PORT)\n",
                       token.c_str());
          return {};
        }
        config.workers.push_back(
            {.host = "127.0.0.1",
             .scrape_port = static_cast<std::uint16_t>(*scrape),
             .ingest_port = static_cast<std::uint16_t>(*ingest)});
      }
      if (config.workers.empty()) {
        std::fprintf(stderr, "serve: --workers needs at least one entry\n");
        return {};
      }
    } else if (flag.rfind("--state-dir=", 0) == 0) {
      config.state_dir = flag.substr(std::strlen("--state-dir="));
      if (config.state_dir.empty()) {
        std::fprintf(stderr, "serve: --state-dir needs a path\n");
        return {};
      }
    } else if (flag.rfind("--fsync=", 0) == 0) {
      const std::string name = flag.substr(std::strlen("--fsync="));
      const auto policy = persist::fsync_policy_from_string(name);
      if (!policy) {
        std::fprintf(stderr,
                     "serve: bad fsync policy '%s' (expected always, "
                     "interval, never)\n",
                     name.c_str());
        return {};
      }
      config.wal.fsync = *policy;
    } else if (flag.rfind("--sync-every=", 0) == 0) {
      const auto parsed =
          parse_int(flag.substr(std::strlen("--sync-every=")));
      if (!parsed || *parsed < 1) {
        std::fprintf(stderr, "serve: bad sync interval '%s'\n",
                     flag.substr(std::strlen("--sync-every=")).c_str());
        return {};
      }
      config.wal.sync_every = static_cast<std::size_t>(*parsed);
    } else if (flag.rfind("--checkpoint-every=", 0) == 0) {
      const auto parsed =
          parse_int(flag.substr(std::strlen("--checkpoint-every=")));
      if (!parsed || *parsed < 1) {
        std::fprintf(stderr, "serve: bad checkpoint interval '%s'\n",
                     flag.substr(std::strlen("--checkpoint-every=")).c_str());
        return {};
      }
      config.checkpoint_every = *parsed;
    } else if (flag.rfind("--max-backlog=", 0) == 0) {
      const auto parsed =
          parse_int(flag.substr(std::strlen("--max-backlog=")));
      if (!parsed || *parsed < 0) {
        std::fprintf(stderr, "serve: bad backlog bound '%s'\n",
                     flag.substr(std::strlen("--max-backlog=")).c_str());
        return {};
      }
      config.max_backlog = *parsed;
    } else if (flag.rfind("--fleet-scrape-every=", 0) == 0) {
      const auto parsed =
          parse_int(flag.substr(std::strlen("--fleet-scrape-every=")));
      if (!parsed || *parsed < 1) {
        std::fprintf(
            stderr, "serve: bad fleet scrape period '%s'\n",
            flag.substr(std::strlen("--fleet-scrape-every=")).c_str());
        return {};
      }
      config.fleet_scrape_every_ms = *parsed;
      saw_fleet_flag = true;
    } else if (flag.rfind("--slo-freshness-ms=", 0) == 0) {
      const auto parsed =
          parse_int(flag.substr(std::strlen("--slo-freshness-ms=")));
      if (!parsed || *parsed < 1) {
        std::fprintf(stderr, "serve: bad freshness threshold '%s'\n",
                     flag.substr(std::strlen("--slo-freshness-ms=")).c_str());
        return {};
      }
      config.slo_freshness_ms = *parsed;
      saw_fleet_flag = true;
    } else if (flag.rfind("--slo-window=", 0) == 0) {
      const auto parsed =
          parse_int(flag.substr(std::strlen("--slo-window=")));
      if (!parsed || *parsed < 1 || *parsed > 86400) {
        std::fprintf(stderr, "serve: bad SLO window '%s' (seconds, <= 1d)\n",
                     flag.substr(std::strlen("--slo-window=")).c_str());
        return {};
      }
      config.slo_window_s = *parsed;
      saw_fleet_flag = true;
    } else if (flag.rfind("--slo-objective=", 0) == 0) {
      const auto parsed =
          parse_int(flag.substr(std::strlen("--slo-objective=")));
      if (!parsed || *parsed < 1 || *parsed > 99) {
        std::fprintf(stderr,
                     "serve: bad SLO objective '%s' (percent, 1-99)\n",
                     flag.substr(std::strlen("--slo-objective=")).c_str());
        return {};
      }
      config.slo_objective_pct = *parsed;
      saw_fleet_flag = true;
    } else if (flag == "--supervised") {
      config.supervised = true;
    } else {
      std::fprintf(stderr, "serve: unknown flag '%s'\n", flag.c_str());
      return {};
    }
  }

  // Per-mode flag validity: one parser, three modes, no silent ignores.
  if (config.mode != ServeMode::kCoordinator && !config.workers.empty()) {
    std::fprintf(stderr,
                 "serve: --workers only applies to --mode=coordinator\n");
    return {};
  }
  if (config.mode != ServeMode::kWorker && config.ingest_port != 0) {
    std::fprintf(stderr,
                 "serve: --ingest-port only applies to --mode=worker\n");
    return {};
  }
  if (config.mode == ServeMode::kWorker && config.cycles != 0) {
    std::fprintf(stderr,
                 "serve: --cycles applies to the replaying modes (single, "
                 "coordinator), not worker\n");
    return {};
  }
  if (config.mode != ServeMode::kCoordinator && saw_fleet_flag) {
    std::fprintf(stderr,
                 "serve: --fleet-scrape-every/--slo-* only apply to "
                 "--mode=coordinator\n");
    return {};
  }
  if (config.mode == ServeMode::kCoordinator) {
    if (config.workers.empty()) {
      std::fprintf(stderr, "serve: --mode=coordinator requires --workers\n");
      return {};
    }
    if (!config.state_dir.empty()) {
      std::fprintf(stderr,
                   "serve: the coordinator is stateless; --state-dir "
                   "belongs on the workers\n");
      return {};
    }
  }
  return {.options = std::move(config), .exit_code = 0};
}

ServeApp::ServeApp(ServeOptions options) : options_(std::move(options)) {}

int ServeApp::run_mode() {
  return options_.mode == ServeMode::kCoordinator ? run_coordinator()
                                                  : run_node();
}

int ServeApp::run() {
  if (!options_.supervised) return run_mode();

  // Everything state-dependent (model load, recovery, serving) runs in
  // the forked child, so a poisoned state directory kills only the
  // worker — and the crash-loop detector turns "can never come up" into
  // a clean supervisor exit instead of an infinite restart burn.
  persist::Supervisor supervisor;
  const persist::SupervisorResult result =
      supervisor.run([this] { return run_mode(); });
  std::printf("supervisor: worker exited %d after %zu restart%s%s%s\n",
              result.exit_code, result.restarts,
              result.restarts == 1 ? "" : "s",
              result.crash_loop ? " (crash loop)" : "",
              result.terminated ? " (terminated)" : "");
  if (result.crash_loop) return 1;
  return result.exit_code;
}

int ServeApp::run_node() {
  const ServeOptions& config = options_;
  const bool is_worker = config.mode == ServeMode::kWorker;
  install_serve_signals();
  export_restart_ordinal();

  core::ClassificationPipeline pipeline =
      core::load_pipeline_file(config.model_path);
  pipeline.set_parallelism(config.threads);

  std::vector<core::RecordedRun> runs;
  if (!is_worker) {
    std::printf("recording canonical workload streams for replay...\n");
    std::fflush(stdout);
    runs = core::record_canonical_runs();
  }

  monitor::MetricBus bus;
  engine::FleetStream stream(pipeline, config.online,
                             static_cast<std::size_t>(config.max_backlog));

  // Model-health aggregator: fed by every drained snapshot (the detailed
  // classify path), read by the scorecard routes, /healthz, and the
  // --stats-every ticker. Strictly observational — labels are identical
  // with or without it. Attached before recovery so WAL replay runs the
  // same detailed arithmetic the live drain will.
  obs::ModelHealth health(core::make_health_options(
      static_cast<std::size_t>(config.drift_window)));
  stream.online().attach_health(&health);
  obs::ModelHealth::set_instance(&health);

  // Crash safety: recover checkpoint + WAL tail, then log every accepted
  // push (under the stream lock, so log order == ingest order) and
  // checkpoint periodically. All of it is off unless --state-dir is set.
  std::uint64_t recovered_wal_next = 0;
  std::optional<persist::WalWriter> wal;
  if (!config.state_dir.empty()) {
    if (::mkdir(config.state_dir.c_str(), 0755) != 0 && errno != EEXIST) {
      std::fprintf(stderr, "serve: cannot create state dir %s: %s\n",
                   config.state_dir.c_str(), std::strerror(errno));
      obs::ModelHealth::set_instance(nullptr);
      return 1;
    }
    const persist::RecoveryReport report =
        persist::recover(config.state_dir, pipeline, stream.online());
    recovered_wal_next = report.wal_next_seq;
    if (report.checkpoint_loaded || report.replayed > 0)
      std::printf(
          "recovered state: checkpoint %s (wal-next %llu), %llu WAL "
          "records replayed%s in %.3fs\n",
          report.checkpoint_loaded ? "loaded" : "absent",
          static_cast<unsigned long long>(report.checkpoint_wal_next),
          static_cast<unsigned long long>(report.replayed),
          report.wal_truncated ? " (torn tail dropped)" : "",
          report.seconds);
    wal.emplace(config.state_dir + "/wal", config.wal, report.wal_next_seq);
    stream.set_ingest_hook([&wal](const metrics::Snapshot& snapshot) {
      return wal->append(snapshot);
    });
  }
  if (!is_worker) stream.attach(bus);

  // Guards OnlineClassifier state between the drain loop and the scrape
  // handlers that export it (/composition, /appdb): online() is not safe
  // against a concurrent drain.
  std::mutex state_mutex;

  // Checkpoint barrier: WAL synced first so the claimed horizon is
  // durable, then the state image lands atomically, then fully-covered
  // segments are pruned. Callers hold state_mutex.
  const auto write_state_checkpoint = [&] {
    if (!wal) return;
    wal->sync();
    persist::CheckpointData data;
    data.wal_next =
        std::max(recovered_wal_next, stream.ingested_wal_horizon());
    data.options = stream.online().options();
    data.online = stream.online().export_state();
    persist::write_checkpoint(config.state_dir + "/checkpoints", data);
    if (data.wal_next > 0) wal->prune_through(data.wal_next - 1);
  };

  // Worker mode: the frame listener replaces the local replay. The sink
  // routes through the same push path the bus would use, so the WAL
  // hook, backlog bound, and grid filter behave identically; acks are
  // written by the listener only after push (and therefore the WAL
  // append) returns.
  std::optional<dist::IngestListener> listener;
  if (is_worker) {
    listener.emplace(
        dist::IngestListenerOptions{
            .port = static_cast<std::uint16_t>(config.ingest_port),
            .sampling_interval_s = config.online.sampling_interval_s,
            .bind_retries = 4},
        [&stream](const metrics::Snapshot& snapshot) {
          return stream.push(snapshot);
        },
        recovered_wal_next);
    if (!listener->start()) {
      obs::ModelHealth::set_instance(nullptr);
      std::fprintf(stderr, "serve: cannot bind ingest port %lld\n",
                   config.ingest_port);
      return 1;
    }
  }

  std::atomic<std::uint64_t> announced{0};
  std::atomic<long long> cycles_done{0};
  std::atomic<bool> replay_complete{false};

  obs::ScrapeServer server(
      {.bind_address = "127.0.0.1",
       .port = static_cast<std::uint16_t>(config.port),
       // A restarted worker may race its predecessor's dying socket.
       .bind_retries = 4,
       // Trace dumps walk every thread ring under locks; a scrape loop
       // pointed at /traces/recent must not become a recording stall.
       .trace_dump_min_interval_ms = 100});
  server.add_route("/classes", "application/json",
                   [&health] { return health.classes_json(); });
  server.add_route("/drift", "application/json",
                   [&health] { return health.drift_json(); });
  server.add_route("/nodes", "application/json",
                   [&health] { return health.nodes_json(); });
  server.add_route("/composition", "text/plain; version=1",
                   [&stream, &state_mutex] {
                     const std::lock_guard lock(state_mutex);
                     return composition_text(stream.online());
                   });
  server.add_route("/appdb", "text/plain; version=1",
                   [&stream, &state_mutex] {
                     const std::lock_guard lock(state_mutex);
                     return appdb_text(stream.online().export_state());
                   });
  server.add_route("/shard/classes", "text/plain; version=1",
                   [&health] { return shard_classes_text(health); });
  server.add_route(
      "/replay", "application/json",
      [&, is_worker] {
        std::ostringstream out;
        if (is_worker) {
          out << "{\"mode\":\"worker\",\"expected\":" << listener->expected()
              << ",\"backlog\":" << stream.backlog()
              << ",\"duplicates\":" << listener->duplicates()
              << ",\"connections\":" << listener->connections() << "}";
        } else {
          out << "{\"mode\":\"single\",\"cycles\":" << config.cycles
              << ",\"cycles_done\":" << cycles_done.load()
              << ",\"announced\":" << announced.load()
              << ",\"backlog\":" << stream.backlog() << ",\"complete\":"
              << (replay_complete.load() ? "true" : "false") << "}";
        }
        return out.str();
      });
  server.set_health_check([&health] {
    const obs::ModelHealth::Status status = health.status();
    return obs::HealthVerdict{status.healthy, status.reason_json};
  });
  if (!server.start()) {
    if (listener) listener->stop();
    obs::ModelHealth::set_instance(nullptr);
    std::fprintf(stderr, "serve: cannot bind 127.0.0.1:%lld\n", config.port);
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u (/metrics /healthz /traces/recent"
              " /classes /drift /nodes)%s%s\n",
              server.port(),
              wal ? " with WAL + checkpoints" : "",
              config.duration_s > 0 ? "" : "; interrupt to stop");
  if (is_worker)
    std::printf("worker ingest on 127.0.0.1:%u (expecting seq %llu)\n",
                listener->port(),
                static_cast<unsigned long long>(listener->expected()));
  std::fflush(stdout);

  // Replay the recorded announcement streams cyclically through the bus
  // (single mode; workers are fed by the listener instead). The
  // FleetStream grid-samples, batches, and classifies, so every scrape
  // sees live pipeline + engine metrics (and spans when tracing).
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(config.duration_s);
  std::size_t classified = 0;
  long long drains_since_checkpoint = 0;
  for (std::size_t cycle = 0; g_serve_stop == 0; ++cycle) {
    const bool replaying =
        !is_worker &&
        (config.cycles == 0 || cycles_done.load() < config.cycles);
    if (replaying) {
      for (std::size_t r = 0; r < runs.size(); ++r) {
        const auto& run = runs[r];
        if (run.announcements.empty()) continue;
        // Each canonical run is announced as its own fleet node, so the
        // five workloads shard as five monitored nodes.
        const std::string node_ip = replay_node_ip(r);
        for (std::size_t n = 0; n < kAnnouncesPerCycle; ++n) {
          metrics::Snapshot snapshot =
              run.announcements[(cycle * kAnnouncesPerCycle + n) %
                                run.announcements.size()];
          snapshot.node_ip = node_ip;
          bus.announce(snapshot);
          announced.fetch_add(1, std::memory_order_relaxed);
        }
      }
      cycles_done.fetch_add(1, std::memory_order_relaxed);
    }
    std::size_t drained = 0;
    {
      const std::lock_guard lock(state_mutex);
      drained = stream.drain();
      classified += drained;
      if (drained > 0 &&
          ++drains_since_checkpoint >= config.checkpoint_every) {
        write_state_checkpoint();
        drains_since_checkpoint = 0;
      }
    }
    if (!is_worker && config.cycles > 0 &&
        cycles_done.load() >= config.cycles && stream.backlog() == 0)
      replay_complete.store(true, std::memory_order_release);
    if (config.duration_s > 0 &&
        std::chrono::steady_clock::now() >= deadline)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }

  // Graceful shutdown: stop accepting, fold in whatever is buffered,
  // make the log durable, and leave a checkpoint covering all of it.
  if (listener) listener->stop();
  stream.detach();
  {
    const std::lock_guard lock(state_mutex);
    classified += stream.drain();
    write_state_checkpoint();
  }
  server.stop();
  obs::ModelHealth::set_instance(nullptr);
  if (g_serve_stop != 0) std::printf("shutdown signal: drained and flushed\n");
  if (is_worker)
    std::printf("served %llu ingested frames (%zu classified)\n",
                static_cast<unsigned long long>(listener->expected() -
                                                recovered_wal_next),
                classified);
  else
    std::printf("served %zu announcements (%zu classified)\n",
                static_cast<std::size_t>(announced.load()), classified);
  std::printf("%s\n", health.summary_line().c_str());
  return 0;
}

int ServeApp::run_coordinator() {
  const ServeOptions& config = options_;
  install_serve_signals();
  export_restart_ordinal();

  std::printf("recording canonical workload streams for replay...\n");
  std::fflush(stdout);
  const auto runs = core::record_canonical_runs();

  // SLO verdict for the whole fleet: freshness fed by the links' durable
  // acks (below), availability by the federation scraper's probe results.
  const double objective =
      static_cast<double>(config.slo_objective_pct) / 100.0;
  obs::SloTracker slo(
      {.freshness_objective = objective,
       .freshness_threshold_s =
           static_cast<double>(config.slo_freshness_ms) * 1e-3,
       .availability_objective = objective,
       .short_window_s = static_cast<int>(config.slo_window_s),
       .long_window_s = static_cast<int>(config.slo_window_s * 12)});

  const dist::ShardMap shard_map(config.workers.size());
  std::vector<std::unique_ptr<dist::WorkerLink>> links;
  links.reserve(config.workers.size());
  for (const WorkerEndpoint& worker : config.workers)
    links.push_back(std::make_unique<dist::WorkerLink>(
        worker.host, worker.ingest_port,
        dist::WorkerLinkOptions{
            .should_stop = [] { return g_serve_stop != 0; },
            .on_durable = [&slo](double e2e_s) {
              slo.record_freshness(e2e_s, obs::SloTracker::now_s());
            }}));

  auto& announced_total =
      obs::MetricsRegistry::global().counter("appclass_dist_announced_total");
  std::atomic<std::uint64_t> announced{0};
  std::atomic<long long> cycles_done{0};
  std::atomic<bool> flushed{false};

  // --- Metrics federation -----------------------------------------------
  // A background scraper pulls every worker's /metrics on a fixed
  // period, re-parses the text exposition, and caches the merged fleet
  // registry — /fleet/metrics serves from this cache instead of fanning
  // out per request, and every probe outcome feeds the availability SLI.
  // A worker that stops answering keeps its last-good snapshot in the
  // merge (stale beats absent mid-incident); its scrape health says so.
  struct WorkerScrape {
    std::uint64_t scrapes = 0;
    std::uint64_t failures = 0;
    std::uint64_t consecutive_failures = 0;
    std::uint64_t parse_errors = 0;
    std::string last_error = "never";  ///< last outcome ("ok", "connect"...)
    std::size_t last_bytes = 0;
  };
  std::mutex fleet_mutex;
  std::string fleet_metrics_text;
  std::size_t fleet_dropped_series = 0;
  long long fleet_last_scrape_us = 0;
  std::vector<WorkerScrape> worker_scrapes(config.workers.size());
  std::vector<std::optional<obs::RegistrySnapshot>> last_parsed(
      config.workers.size());
  obs::BoundedLabelSet worker_labels(config.workers.size() + 1);
  std::atomic<bool> fleet_stop{false};
  std::thread fleet_thread([&] {
    while (!fleet_stop.load(std::memory_order_acquire)) {
      const auto scrape_start = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < config.workers.size(); ++i) {
        const WorkerEndpoint& worker = config.workers[i];
        const dist::HttpResult res =
            dist::http_get_ex(worker.host, worker.scrape_port, "/metrics");
        slo.record_availability(res.ok(), obs::SloTracker::now_s());
        std::optional<obs::RegistrySnapshot> parsed;
        if (res.ok()) parsed = obs::parse_prometheus(res.body);
        const std::lock_guard lock(fleet_mutex);
        WorkerScrape& health = worker_scrapes[i];
        ++health.scrapes;
        if (parsed) {
          health.consecutive_failures = 0;
          health.last_error = "ok";
          health.last_bytes = res.body.size();
          last_parsed[i] = std::move(parsed);
        } else {
          ++health.failures;
          ++health.consecutive_failures;
          if (res.ok()) {
            // Reachable but emitting text the parser rejects — a schema
            // mismatch worth distinguishing from a dead worker.
            ++health.parse_errors;
            health.last_error = "parse";
          } else {
            health.last_error = dist::to_string(res.error);
          }
        }
      }
      {
        const std::lock_guard lock(fleet_mutex);
        std::vector<obs::FederationPart> parts;
        for (std::size_t i = 0; i < last_parsed.size(); ++i)
          if (last_parsed[i])
            parts.push_back({std::to_string(i), *last_parsed[i]});
        const obs::FederationResult merged =
            obs::federate_snapshots(parts, &worker_labels);
        fleet_metrics_text = obs::to_prometheus(merged.merged);
        fleet_dropped_series = merged.dropped_series;
        fleet_last_scrape_us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - scrape_start)
                .count();
      }
      // Sleep the period in small slices so shutdown stays prompt.
      for (long long slept = 0;
           slept < config.fleet_scrape_every_ms &&
           !fleet_stop.load(std::memory_order_acquire);
           slept += 20)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  // All merge routes are assembled by scraping the workers' own
  // read-only routes — the coordinator holds no classifier state.
  const auto fetch_all = [&config](const std::string& path)
      -> std::optional<std::vector<std::string>> {
    std::vector<std::string> bodies;
    for (const WorkerEndpoint& worker : config.workers) {
      auto body = dist::http_get(worker.host, worker.scrape_port, path);
      if (!body) return std::nullopt;
      bodies.push_back(std::move(*body));
    }
    return bodies;
  };

  obs::ScrapeServer server(
      {.bind_address = "127.0.0.1",
       .port = static_cast<std::uint16_t>(config.port),
       .bind_retries = 4,
       .trace_dump_min_interval_ms = 100});
  server.add_route("/composition", "text/plain; version=1", [&] {
    const auto parts = fetch_all("/composition");
    if (!parts) return std::string("merge-error: worker unreachable\n");
    try {
      return merge_composition_texts(*parts);
    } catch (const std::exception& e) {
      return std::string("merge-error: ") + e.what() + "\n";
    }
  });
  server.add_route("/classes", "application/json", [&] {
    const auto parts = fetch_all("/shard/classes");
    if (!parts) return std::string("{\"error\":\"worker unreachable\"}");
    std::array<std::uint64_t, core::kClassCount> counts{};
    for (const std::string& part : *parts) {
      std::istringstream in(part);
      std::string name;
      std::uint64_t value = 0;
      while (in >> name >> value) {
        const auto cls = core::class_from_string(name);
        if (cls) counts[core::index_of(*cls)] += value;
      }
    }
    std::uint64_t total = 0;
    for (const std::uint64_t c : counts) total += c;
    std::ostringstream out;
    out << "{\"total_samples\":" << total
        << ",\"workers\":" << config.workers.size() << ",\"classes\":[";
    for (std::size_t i = 0; i < core::kClassCount; ++i) {
      if (i) out << ',';
      out << "{\"class\":\"" << core::kClassNames[i]
          << "\",\"samples\":" << counts[i] << '}';
    }
    out << "]}";
    return out.str();
  });
  server.add_route("/appdb", "text/plain; version=1", [&] {
    const auto parts = fetch_all("/appdb");
    if (!parts) return std::string("merge-error: worker unreachable\n");
    std::map<std::string, std::string> rows;  // ip -> line (sorted merge)
    for (const std::string& part : *parts) {
      std::istringstream in(part);
      std::string line;
      while (std::getline(in, line)) {
        if (line.empty()) continue;
        rows.emplace(line.substr(0, line.find(' ')), line);
      }
    }
    std::string out;
    for (const auto& [ip, line] : rows) {
      out += line;
      out += '\n';
    }
    return out;
  });
  server.add_route("/workers", "application/json", [&] {
    std::ostringstream out;
    out << "[";
    for (std::size_t i = 0; i < links.size(); ++i) {
      if (i) out << ',';
      out << "{\"shard\":" << i
          << ",\"scrape_port\":" << config.workers[i].scrape_port
          << ",\"ingest_port\":" << config.workers[i].ingest_port
          << ",\"sent\":" << links[i]->sent()
          << ",\"acked\":" << links[i]->acked()
          << ",\"reconnects\":" << links[i]->reconnects() << '}';
    }
    out << "]";
    return out.str();
  });
  server.add_route("/replay", "application/json", [&] {
    // Complete = every frame sent, acked (durable in a worker WAL), and
    // drained out of every worker's backlog — after which the merged
    // composition is final and safe to byte-compare.
    bool complete = config.cycles > 0 &&
                    cycles_done.load() >= config.cycles && flushed.load();
    if (complete) {
      for (const WorkerEndpoint& worker : config.workers) {
        const auto body =
            dist::http_get(worker.host, worker.scrape_port, "/replay");
        const std::size_t at =
            body ? body->find("\"backlog\":") : std::string::npos;
        if (at == std::string::npos ||
            body->compare(at + 10, 1, "0") != 0 ||
            (body->size() > at + 11 &&
             std::isdigit(static_cast<unsigned char>((*body)[at + 11])))) {
          complete = false;
          break;
        }
      }
    }
    std::ostringstream out;
    out << "{\"mode\":\"coordinator\",\"cycles\":" << config.cycles
        << ",\"cycles_done\":" << cycles_done.load()
        << ",\"announced\":" << announced.load()
        << ",\"flushed\":" << (flushed.load() ? "true" : "false")
        << ",\"complete\":" << (complete ? "true" : "false") << "}";
    return out.str();
  });
  server.add_route("/fleet/metrics",
                   "text/plain; version=0.0.4; charset=utf-8", [&] {
                     const std::lock_guard lock(fleet_mutex);
                     return fleet_metrics_text.empty()
                                ? std::string(
                                      "# federation: no worker scraped yet\n")
                                : fleet_metrics_text;
                   });
  server.add_route("/fleet/workers", "application/json", [&] {
    std::ostringstream out;
    const std::lock_guard lock(fleet_mutex);
    out << "{\"dropped_series\":" << fleet_dropped_series
        << ",\"last_scrape_us\":" << fleet_last_scrape_us
        << ",\"workers\":[";
    for (std::size_t i = 0; i < worker_scrapes.size(); ++i) {
      const WorkerScrape& health = worker_scrapes[i];
      if (i) out << ',';
      out << "{\"shard\":" << i
          << ",\"scrape_port\":" << config.workers[i].scrape_port
          << ",\"ingest_port\":" << config.workers[i].ingest_port
          << ",\"scrapes\":" << health.scrapes
          << ",\"failures\":" << health.failures
          << ",\"consecutive_failures\":" << health.consecutive_failures
          << ",\"parse_errors\":" << health.parse_errors
          << ",\"last_error\":\"" << health.last_error << '"'
          << ",\"last_bytes\":" << health.last_bytes
          << ",\"sent\":" << links[i]->sent()
          << ",\"acked\":" << links[i]->acked()
          << ",\"in_flight\":" << links[i]->in_flight()
          << ",\"reconnects\":" << links[i]->reconnects() << '}';
    }
    out << "]}";
    return out.str();
  });
  server.add_route("/fleet/traces", "application/json", [&] {
    // Live assembly (no cache): traces are an incident tool, and the
    // stitcher tolerates any subset of workers answering.
    std::vector<obs::TraceFleetPart> parts;
    parts.push_back({"coordinator", obs::TraceRecorder::global()
                                        .to_chrome_json(4 * 1024 * 1024)});
    for (std::size_t i = 0; i < config.workers.size(); ++i) {
      dist::HttpResult res =
          dist::http_get_ex(config.workers[i].host,
                            config.workers[i].scrape_port, "/traces/recent");
      if (res.ok())
        parts.push_back(
            {"worker-" + std::to_string(i), std::move(res.body)});
    }
    return obs::stitch_chrome_traces(parts).json;
  });
  server.add_route("/slo", "application/json", [&slo] {
    return slo.to_json(obs::SloTracker::now_s());
  });
  // The coordinator's liveness probe IS the SLO verdict: burning both
  // windows on either SLI turns /healthz 503 with the JSON report body.
  server.set_health_check([&slo] {
    const std::int64_t now = obs::SloTracker::now_s();
    return obs::HealthVerdict{slo.healthy(now), slo.to_json(now)};
  });
  if (!server.start()) {
    fleet_stop.store(true, std::memory_order_release);
    fleet_thread.join();
    std::fprintf(stderr, "serve: cannot bind 127.0.0.1:%lld\n", config.port);
    return 1;
  }
  std::printf("coordinating %zu workers on 127.0.0.1:%u (/metrics /healthz"
              " /composition /classes /appdb /workers /replay"
              " /fleet/metrics /fleet/workers /fleet/traces /slo)%s\n",
              config.workers.size(), server.port(),
              config.duration_s > 0 ? "" : "; interrupt to stop");
  std::fflush(stdout);

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(config.duration_s);
  for (std::size_t cycle = 0; g_serve_stop == 0; ++cycle) {
    const bool replaying =
        config.cycles == 0 || cycles_done.load() < config.cycles;
    if (replaying) {
      for (std::size_t r = 0; r < runs.size(); ++r) {
        const auto& run = runs[r];
        if (run.announcements.empty()) continue;
        const std::string node_ip = replay_node_ip(r);
        const std::size_t shard = shard_map.shard_for(node_ip);
        for (std::size_t n = 0; n < kAnnouncesPerCycle; ++n) {
          metrics::Snapshot snapshot =
              run.announcements[(cycle * kAnnouncesPerCycle + n) %
                                run.announcements.size()];
          // The coordinator filters to the sampling grid *before*
          // numbering frames — that is what keeps frame seq == worker
          // WAL seq, the invariant exactly-once resume rests on.
          if (snapshot.time % config.online.sampling_interval_s != 0)
            continue;
          snapshot.node_ip = node_ip;
          obs::TraceSpan span("dist_announce");
          if (span.recording()) {
            span.add_attr({"node", node_ip});
            span.add_attr({"shard", shard});
          }
          if (!links[shard]->send(snapshot, span.context())) break;
          announced.fetch_add(1, std::memory_order_relaxed);
          announced_total.inc();
        }
      }
      if (g_serve_stop == 0) cycles_done.fetch_add(1);
      if (config.cycles > 0 && cycles_done.load() >= config.cycles) {
        bool all = true;
        for (const auto& link : links) all = link->flush() && all;
        if (all) flushed.store(true, std::memory_order_release);
      }
    }
    if (config.duration_s > 0 &&
        std::chrono::steady_clock::now() >= deadline)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }

  // Shutdown: push what remains to the workers (bounded by the stop
  // flag — a dead worker cannot wedge a terminating coordinator).
  fleet_stop.store(true, std::memory_order_release);
  fleet_thread.join();
  std::uint64_t acked = 0;
  for (const auto& link : links) {
    link->flush();
    acked += link->acked();
  }
  server.stop();
  if (g_serve_stop != 0) std::printf("shutdown signal: links flushed\n");
  std::printf("announced %llu frames to %zu workers (%llu acked)\n",
              static_cast<unsigned long long>(announced.load()),
              links.size(), static_cast<unsigned long long>(acked));
  return 0;
}

}  // namespace appclass::serving
