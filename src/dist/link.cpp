#include "dist/link.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <thread>

#include "dist/wire.hpp"
#include "obs/cardinality.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace appclass::dist {

namespace {

timeval to_timeval(int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  return tv;
}

std::int64_t steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Peer label guard shared by every link in the process: a coordinator
/// pointed at a churning worker set keeps bounded series cardinality.
const std::string& peer_label(const std::string& host, std::uint16_t port) {
  static obs::BoundedLabelSet peers(32);
  return peers.admit(host + ":" + std::to_string(port));
}

}  // namespace

WorkerLink::WorkerLink(std::string host, std::uint16_t port,
                       WorkerLinkOptions options)
    : host_(std::move(host)),
      port_(port),
      options_(std::move(options)),
      e2e_durable_hist_(obs::MetricsRegistry::global().histogram(
          "appclass_e2e_durable_ack_seconds")),
      ack_rtt_hist_(obs::MetricsRegistry::global().histogram(
          "appclass_dist_link_ack_rtt_seconds",
          {{"peer", peer_label(host_, port_)}})),
      horizon_lag_gauge_(obs::MetricsRegistry::global().gauge(
          "appclass_dist_link_wal_horizon_lag",
          {{"peer", peer_label(host_, port_)}})) {}

WorkerLink::~WorkerLink() { disconnect(); }

bool WorkerLink::stop_requested() const {
  return options_.should_stop && options_.should_stop();
}

void WorkerLink::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  ack_buffer_.clear();
}

bool WorkerLink::ensure_connected() {
  if (fd_ >= 0) return true;
  int backoff_ms = options_.backoff_initial_ms;
  bool first_attempt = true;
  while (!stop_requested()) {
    if (!first_attempt) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, options_.backoff_max_ms);
    }
    first_attempt = false;

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) continue;
    const timeval tv = to_timeval(options_.io_timeout_ms);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port_);
    if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      ::close(fd);
      continue;
    }

    // The hello is the worker's durable horizon; everything the resume
    // logic needs arrives in this one message.
    std::uint8_t raw[kHelloBytes];
    std::size_t got = 0;
    bool ok = true;
    while (got < kHelloBytes) {
      const ssize_t n = ::recv(fd, raw + got, kHelloBytes - got, 0);
      if (n < 0 && errno == EINTR) continue;  // signal, not failure: retry
      if (n <= 0) {
        ok = false;
        break;
      }
      got += static_cast<std::size_t>(n);
    }
    Hello hello;
    if (!ok || decode_hello({raw, kHelloBytes}, hello) != DecodeStatus::kOk) {
      ::close(fd);
      continue;
    }

    fd_ = fd;
    if (!seq_adopted_) {
      // First contact: a worker resuming from its state dir starts
      // mid-sequence; number our frames from its horizon.
      next_seq_ = hello.wal_next;
      seq_adopted_ = true;
    } else {
      reconnects_.fetch_add(1, std::memory_order_relaxed);
      obs::MetricsRegistry::global()
          .counter("appclass_dist_link_reconnects_total")
          .inc();
      // Frames below the horizon were durable before the crash: retire
      // them as acked (the ack itself died with the connection, so no
      // RTT sample, but announce->durable is real — this is exactly the
      // slow path the freshness SLO exists to catch).
      while (!unacked_.empty() && unacked_.front().seq < hello.wal_next)
        retire_front(/*acked_on_wire=*/false);
      if (hello.wal_next > next_seq_)
        APPCLASS_LOG_WARN("dist.link_horizon_ahead", {"port", port_},
                          {"hello", hello.wal_next}, {"next", next_seq_});
      bool resent_ok = true;
      for (Pending& pending : unacked_) {
        pending.sent_steady_us = steady_now_us();
        if (!write_bytes(pending.bytes)) {
          resent_ok = false;
          break;
        }
      }
      if (!resent_ok) {
        disconnect();
        continue;
      }
      APPCLASS_LOG_INFO("dist.link_resumed", {"port", port_},
                        {"horizon", hello.wal_next},
                        {"resent", unacked_.size()});
    }
    return true;
  }
  return false;
}

bool WorkerLink::write_bytes(const std::vector<std::uint8_t>& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;  // signal, not failure: retry
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void WorkerLink::retire_front(bool acked_on_wire) {
  const Pending& front = unacked_.front();
  if (acked_on_wire && front.sent_steady_us > 0) {
    const double rtt_s = static_cast<double>(std::max<std::int64_t>(
                             steady_now_us() - front.sent_steady_us, 0)) *
                         1e-6;
    ack_rtt_hist_.observe(rtt_s);
  }
  if (front.announce_us > 0) {
    const std::uint64_t now_us = wall_now_us();
    const double e2e_s =
        now_us > front.announce_us
            ? static_cast<double>(now_us - front.announce_us) * 1e-6
            : 0.0;  // clamp cross-host clock skew to zero
    e2e_durable_hist_.observe(e2e_s);
    // Slowest traced announce wins the exemplar: the trace id a human
    // follows from the latency histogram into /fleet/traces.
    if (front.trace_id != 0 && e2e_s >= e2e_durable_hist_.exemplar_value())
      e2e_durable_hist_.set_exemplar(e2e_s, front.trace_id);
    if (options_.on_durable) options_.on_durable(e2e_s);
  }
  acked_.fetch_add(1, std::memory_order_relaxed);
  unacked_.pop_front();
  horizon_lag_gauge_.set(static_cast<double>(unacked_.size()));
}

void WorkerLink::apply_ack(std::uint64_t seq) {
  // Acks are cumulative: seq and everything below is durable.
  while (!unacked_.empty() && unacked_.front().seq <= seq)
    retire_front(/*acked_on_wire=*/true);
}

bool WorkerLink::drain_acks(bool block) {
  std::uint8_t buffer[1024];
  for (;;) {
    const ssize_t n =
        ::recv(fd_, buffer, sizeof buffer, block ? 0 : MSG_DONTWAIT);
    if (n < 0 && errno == EINTR) continue;  // signal, not failure: retry
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Non-blocking pass with nothing pending is fine; a blocking wait
      // timing out means the worker stalled — reconnect and resend.
      return !block;
    }
    if (n <= 0) return false;
    ack_buffer_.insert(ack_buffer_.end(), buffer, buffer + n);
    while (ack_buffer_.size() >= kAckBytes) {
      std::uint64_t seq = 0;
      if (decode_ack({ack_buffer_.data(), kAckBytes}, seq) !=
          DecodeStatus::kOk)
        return false;
      apply_ack(seq);
      ack_buffer_.erase(ack_buffer_.begin(),
                        ack_buffer_.begin() + kAckBytes);
    }
    if (block) return true;  // got at least one read; caller re-checks
  }
}

bool WorkerLink::send(const metrics::Snapshot& snapshot,
                      const obs::TraceContext& trace) {
  for (;;) {
    if (stop_requested()) return false;
    if (!ensure_connected()) return false;
    // Window full: wait for acks before adding more in-flight data.
    if (unacked_.size() >= options_.window) {
      if (!drain_acks(/*block=*/true)) disconnect();
      continue;
    }
    break;
  }

  const std::uint64_t announce_us = wall_now_us();
  Pending pending{next_seq_,
                  encode_frame(snapshot, next_seq_, trace, announce_us),
                  announce_us, trace.trace_id, steady_now_us()};
  ++next_seq_;
  unacked_.push_back(std::move(pending));
  sent_.fetch_add(1, std::memory_order_relaxed);
  horizon_lag_gauge_.set(static_cast<double>(unacked_.size()));
  obs::MetricsRegistry::global()
      .counter("appclass_dist_link_sent_total")
      .inc();

  if (!write_bytes(unacked_.back().bytes)) disconnect();
  // Opportunistically retire acks so the window rarely fills.
  if (fd_ >= 0 && !drain_acks(/*block=*/false)) disconnect();
  // A write/read failure leaves the frame in unacked_; the reconnect on
  // the next call resends it. The frame is committed either way.
  return true;
}

bool WorkerLink::flush() {
  while (!unacked_.empty()) {
    if (stop_requested()) return false;
    if (!ensure_connected()) return false;
    if (!drain_acks(/*block=*/true)) disconnect();
  }
  return true;
}

}  // namespace appclass::dist
