#include "dist/link.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <thread>

#include "dist/wire.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace appclass::dist {

namespace {

timeval to_timeval(int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  return tv;
}

}  // namespace

WorkerLink::WorkerLink(std::string host, std::uint16_t port,
                       WorkerLinkOptions options)
    : host_(std::move(host)), port_(port), options_(std::move(options)) {}

WorkerLink::~WorkerLink() { disconnect(); }

bool WorkerLink::stop_requested() const {
  return options_.should_stop && options_.should_stop();
}

void WorkerLink::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  ack_buffer_.clear();
}

bool WorkerLink::ensure_connected() {
  if (fd_ >= 0) return true;
  int backoff_ms = options_.backoff_initial_ms;
  bool first_attempt = true;
  while (!stop_requested()) {
    if (!first_attempt) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, options_.backoff_max_ms);
    }
    first_attempt = false;

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) continue;
    const timeval tv = to_timeval(options_.io_timeout_ms);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port_);
    if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      ::close(fd);
      continue;
    }

    // The hello is the worker's durable horizon; everything the resume
    // logic needs arrives in this one message.
    std::uint8_t raw[kHelloBytes];
    std::size_t got = 0;
    bool ok = true;
    while (got < kHelloBytes) {
      const ssize_t n = ::recv(fd, raw + got, kHelloBytes - got, 0);
      if (n < 0 && errno == EINTR) continue;  // signal, not failure: retry
      if (n <= 0) {
        ok = false;
        break;
      }
      got += static_cast<std::size_t>(n);
    }
    Hello hello;
    if (!ok || decode_hello({raw, kHelloBytes}, hello) != DecodeStatus::kOk) {
      ::close(fd);
      continue;
    }

    fd_ = fd;
    if (!seq_adopted_) {
      // First contact: a worker resuming from its state dir starts
      // mid-sequence; number our frames from its horizon.
      next_seq_ = hello.wal_next;
      seq_adopted_ = true;
    } else {
      reconnects_.fetch_add(1, std::memory_order_relaxed);
      obs::MetricsRegistry::global()
          .counter("appclass_dist_link_reconnects_total")
          .inc();
      // Frames below the horizon were durable before the crash: retire
      // them as acked. Resend the rest in order on the new connection.
      while (!unacked_.empty() && unacked_.front().seq < hello.wal_next) {
        acked_.fetch_add(1, std::memory_order_relaxed);
        unacked_.pop_front();
      }
      if (hello.wal_next > next_seq_)
        APPCLASS_LOG_WARN("dist.link_horizon_ahead", {"port", port_},
                          {"hello", hello.wal_next}, {"next", next_seq_});
      bool resent_ok = true;
      for (const Pending& pending : unacked_) {
        if (!write_bytes(pending.bytes)) {
          resent_ok = false;
          break;
        }
      }
      if (!resent_ok) {
        disconnect();
        continue;
      }
      APPCLASS_LOG_INFO("dist.link_resumed", {"port", port_},
                        {"horizon", hello.wal_next},
                        {"resent", unacked_.size()});
    }
    return true;
  }
  return false;
}

bool WorkerLink::write_bytes(const std::vector<std::uint8_t>& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;  // signal, not failure: retry
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void WorkerLink::apply_ack(std::uint64_t seq) {
  // Acks are cumulative: seq and everything below is durable.
  while (!unacked_.empty() && unacked_.front().seq <= seq) {
    acked_.fetch_add(1, std::memory_order_relaxed);
    unacked_.pop_front();
  }
}

bool WorkerLink::drain_acks(bool block) {
  std::uint8_t buffer[1024];
  for (;;) {
    const ssize_t n =
        ::recv(fd_, buffer, sizeof buffer, block ? 0 : MSG_DONTWAIT);
    if (n < 0 && errno == EINTR) continue;  // signal, not failure: retry
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Non-blocking pass with nothing pending is fine; a blocking wait
      // timing out means the worker stalled — reconnect and resend.
      return !block;
    }
    if (n <= 0) return false;
    ack_buffer_.insert(ack_buffer_.end(), buffer, buffer + n);
    while (ack_buffer_.size() >= kAckBytes) {
      std::uint64_t seq = 0;
      if (decode_ack({ack_buffer_.data(), kAckBytes}, seq) !=
          DecodeStatus::kOk)
        return false;
      apply_ack(seq);
      ack_buffer_.erase(ack_buffer_.begin(),
                        ack_buffer_.begin() + kAckBytes);
    }
    if (block) return true;  // got at least one read; caller re-checks
  }
}

bool WorkerLink::send(const metrics::Snapshot& snapshot,
                      const obs::TraceContext& trace) {
  for (;;) {
    if (stop_requested()) return false;
    if (!ensure_connected()) return false;
    // Window full: wait for acks before adding more in-flight data.
    if (unacked_.size() >= options_.window) {
      if (!drain_acks(/*block=*/true)) disconnect();
      continue;
    }
    break;
  }

  Pending pending{next_seq_, encode_frame(snapshot, next_seq_, trace)};
  ++next_seq_;
  unacked_.push_back(std::move(pending));
  sent_.fetch_add(1, std::memory_order_relaxed);
  obs::MetricsRegistry::global()
      .counter("appclass_dist_link_sent_total")
      .inc();

  if (!write_bytes(unacked_.back().bytes)) disconnect();
  // Opportunistically retire acks so the window rarely fills.
  if (fd_ >= 0 && !drain_acks(/*block=*/false)) disconnect();
  // A write/read failure leaves the frame in unacked_; the reconnect on
  // the next call resends it. The frame is committed either way.
  return true;
}

bool WorkerLink::flush() {
  while (!unacked_.empty()) {
    if (stop_requested()) return false;
    if (!ensure_connected()) return false;
    if (!drain_acks(/*block=*/true)) disconnect();
  }
  return true;
}

}  // namespace appclass::dist
