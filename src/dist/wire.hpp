// Snapshot wire frames for the distributed serving path.
//
// The coordinator ships grid-aligned snapshots to its shard workers over
// TCP as length-prefixed checksummed frames. The payload reuses
// monitor::encode_packet (the gmond-equivalent packet format, itself
// checksummed), and the framing reuses the WAL's FNV-1a-64 footer idiom,
// so both layers of validation are formats the repo already proves out.
//
// Frame layout (all integers big-endian):
//
//   u32  magic 'ASNP'
//   u8   schema version (kWireVersion) — rejected *before* the checksum
//        is read, so an unknown-version peer fails loudly with
//        DecodeStatus::kBadVersion, never "checksum mismatch"
//   u64  sequence number (== the WAL sequence the worker will log it at)
//   u64  trace id   } obs::TraceContext, propagated across the process
//   u64  span id    } boundary so one snapshot yields one span tree
//   u64  announce time, wall-clock µs (v2) — stamped when the sender
//        first announces the snapshot; the receiving side derives the
//        announce→ingested latency from it (clamping negative clock
//        skew to zero), the sender derives announce→durable-ack
//   u32  payload length (1..kMaxFramePayload)
//   ...  payload = monitor::encode_packet(snapshot)
//   u64  FNV-1a-64 over version..payload
//
// Two tiny control messages share the idiom:
//
//   hello (worker -> coordinator, once per connection):
//     u32 'ASNH', u8 version, u64 wal_next, u64 FNV-1a-64 footer —
//     the worker's durable horizon, so a reconnecting coordinator knows
//     exactly which unacked frames to resend (exactly-once resume).
//   ack (worker -> coordinator, after each durable ingest):
//     u32 'ASNA', u64 seq — cumulative: seq and everything below is
//     durably logged on the worker.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "metrics/snapshot.hpp"
#include "obs/trace.hpp"

namespace appclass::dist {

/// Current frame schema version. Bump on any layout change; decoders
/// reject anything else (the pipeline-serialization v1/v2 precedent).
/// v2 added the announce-time field to the frame header.
inline constexpr std::uint8_t kWireVersion = 2;

/// Frame header bytes before the payload (magic..payload_len).
inline constexpr std::size_t kFrameHeaderBytes = 4 + 1 + 8 + 8 + 8 + 8 + 4;

/// Payload size cap: a monitor packet for the longest legal node ip is
/// well under this; anything larger is a corrupt or hostile length.
inline constexpr std::uint32_t kMaxFramePayload = 4096;

/// One decoded snapshot frame.
struct Frame {
  std::uint64_t seq = 0;
  obs::TraceContext trace;
  /// Wall-clock µs at which the sender announced the snapshot (0 from
  /// peers that never stamped one).
  std::uint64_t announce_us = 0;
  metrics::Snapshot snapshot;
};

/// Wall-clock microseconds since the Unix epoch — the announce-time
/// base. Wall clock (not steady) because the value crosses processes.
std::uint64_t wall_now_us() noexcept;

enum class DecodeStatus {
  kOk,           ///< one frame decoded and consumed
  kNeedMore,     ///< buffer holds a frame prefix; feed more bytes
  kBadMagic,     ///< not a frame boundary — connection is unusable
  kBadVersion,   ///< unknown schema version (distinct from corruption)
  kBadChecksum,  ///< framing checksum mismatch
  kBadPayload,   ///< zero/oversized length or inner packet rejected
};

const char* to_string(DecodeStatus status) noexcept;

/// Encodes one snapshot frame carrying `seq`, the trace context, and the
/// announce timestamp (wall_now_us() at first announcement).
std::vector<std::uint8_t> encode_frame(const metrics::Snapshot& snapshot,
                                       std::uint64_t seq,
                                       const obs::TraceContext& trace,
                                       std::uint64_t announce_us = 0);

/// Incremental decoder over a byte stream: append() whatever recv()
/// returned, then call next() until it stops yielding kOk. Any status
/// other than kOk/kNeedMore means the stream is corrupt and the
/// connection must be dropped (frames are not self-resynchronizing).
class FrameDecoder {
 public:
  void append(std::span<const std::uint8_t> bytes);
  DecodeStatus next(Frame& out);

  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered() const noexcept { return buffer_.size() - pos_; }

 private:
  void compact();

  std::vector<std::uint8_t> buffer_;
  std::size_t pos_ = 0;
};

/// Connection-open handshake: the worker's durable WAL horizon.
struct Hello {
  std::uint64_t wal_next = 0;
};

inline constexpr std::size_t kHelloBytes = 4 + 1 + 8 + 8;

std::vector<std::uint8_t> encode_hello(const Hello& hello);

/// Decodes a hello; kBadVersion / kBadChecksum / kBadMagic as for frames.
/// Exactly kHelloBytes must be supplied.
DecodeStatus decode_hello(std::span<const std::uint8_t> bytes, Hello& out);

inline constexpr std::size_t kAckBytes = 4 + 8;

std::vector<std::uint8_t> encode_ack(std::uint64_t seq);

/// Decodes an ack (exactly kAckBytes); kOk or kBadMagic.
DecodeStatus decode_ack(std::span<const std::uint8_t> bytes,
                        std::uint64_t& seq);

}  // namespace appclass::dist
