#include "dist/shard.hpp"

#include <algorithm>
#include <string>

#include "common/assert.hpp"

namespace appclass::dist {

namespace {

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

ShardMap::ShardMap(std::size_t shards, std::size_t virtual_nodes)
    : shards_(shards) {
  APPCLASS_EXPECTS(shards >= 1);
  APPCLASS_EXPECTS(virtual_nodes >= 1);
  ring_.reserve(shards * virtual_nodes);
  for (std::size_t s = 0; s < shards; ++s)
    for (std::size_t v = 0; v < virtual_nodes; ++v)
      ring_.emplace_back(fnv1a64("shard-" + std::to_string(s) + "-vnode-" +
                                 std::to_string(v)),
                         static_cast<std::uint32_t>(s));
  std::sort(ring_.begin(), ring_.end());
}

std::size_t ShardMap::shard_for(std::string_view node_ip) const noexcept {
  const std::uint64_t h = fnv1a64(node_ip);
  // First ring point at or after h, wrapping to the start past the end.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const auto& entry, std::uint64_t key) { return entry.first < key; });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

}  // namespace appclass::dist
