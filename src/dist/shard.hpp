// Consistent-hash sharding of monitored node IPs across workers.
//
// Classic hash ring with virtual nodes: each shard owns `virtual_nodes`
// points on a 64-bit ring (FNV-1a-64 of "shard-<i>-vnode-<v>"), and a
// node ip maps to the shard owning the first ring point at or after the
// ip's hash. Properties the serving layer relies on:
//
//   * deterministic across processes and platforms — the hash is our own
//     FNV-1a-64, never std::hash, so the coordinator and any diagnostic
//     tool agree on placement without talking to each other;
//   * stable under fleet growth — adding one shard remaps only the keys
//     whose ring successor changed (~1/(n+1) of them), unlike modular
//     hashing which reshuffles nearly everything (docs/serving.md covers
//     the rebalancing caveat: remapped nodes still carry their window
//     state on the *old* shard; plan a drain or accept a window restart).
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

namespace appclass::dist {

class ShardMap {
 public:
  /// `shards` must be >= 1. More virtual nodes = smoother balance at
  /// slightly larger construction cost; 64 keeps the spread within a few
  /// percent for small fleets.
  explicit ShardMap(std::size_t shards, std::size_t virtual_nodes = 64);

  /// The shard index in [0, shards()) owning `node_ip`.
  std::size_t shard_for(std::string_view node_ip) const noexcept;

  std::size_t shards() const noexcept { return shards_; }

 private:
  std::size_t shards_;
  /// (ring position, shard index), sorted by position.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
};

}  // namespace appclass::dist
