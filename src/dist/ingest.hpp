// Worker-side ingest listener for the distributed serving path.
//
// Accepts one coordinator connection at a time and turns the frame
// stream into sink() calls, enforcing the exactly-once contract:
//
//   * On connect the listener sends a hello advertising `expected()` —
//     the sequence number of the next frame it will durably accept,
//     which recovery/checkpointing guarantee equals the worker's WAL
//     horizon. The coordinator resumes from exactly there.
//   * A frame with seq < expected is a retransmit of something already
//     durable: acked again (the first ack was lost with the connection)
//     and dropped without re-ingesting.
//   * A frame with seq == expected is handed to the sink. The sink must
//     make it durable before returning true (the serve layer routes it
//     through FleetStream::push, whose ingest hook appends to the WAL
//     inside the push lock); only then is the ack written. A false sink
//     (backlog full) closes the connection unacked — the coordinator
//     reconnects and resends, so backpressure surfaces as retry, never
//     as silent loss.
//   * A frame with seq > expected (a gap) or an off-grid snapshot is a
//     protocol error: the coordinator filters to the sampling grid
//     before assigning sequence numbers precisely so that frame seq ==
//     WAL seq stays an invariant; a client violating that cannot be
//     acked coherently and is disconnected.
//
// The frame's trace context is adopted around the sink call, so the
// worker-side `dist_ingest` span parents to the coordinator's
// `dist_announce` span and one snapshot yields a single span tree across
// the process boundary.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "metrics/snapshot.hpp"

namespace appclass::dist {

struct IngestListenerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with port() after start().
  std::uint16_t port = 0;
  /// Grid predicate parameter: frames whose time is not a multiple of
  /// this are protocol errors (see header comment).
  int sampling_interval_s = 5;
  /// Socket receive timeout; a wedged peer cannot hold the thread
  /// forever, it just cycles back to accept().
  int read_timeout_ms = 2000;
  /// bind() retries with doubling backoff (restart-over-dying-socket).
  int bind_retries = 4;
  int bind_retry_initial_ms = 100;
};

class IngestListener {
 public:
  /// `sink` must durably accept the snapshot before returning true.
  /// `start_seq` seeds expected() — pass the recovered WAL horizon.
  using Sink = std::function<bool(const metrics::Snapshot&)>;
  IngestListener(IngestListenerOptions options, Sink sink,
                 std::uint64_t start_seq);
  ~IngestListener();

  IngestListener(const IngestListener&) = delete;
  IngestListener& operator=(const IngestListener&) = delete;

  /// Binds, listens, and launches the accept thread. False (with an
  /// ERROR log) when the socket cannot be bound.
  bool start();

  /// Stops accepting, closes sockets, joins. Idempotent.
  void stop();

  /// The bound port (resolves port 0 requests); 0 before start().
  std::uint16_t port() const noexcept { return port_; }

  /// Next sequence number the listener will accept (== frames durably
  /// ingested when started at 0).
  std::uint64_t expected() const noexcept {
    return expected_.load(std::memory_order_acquire);
  }

  std::uint64_t duplicates() const noexcept {
    return duplicates_.load(std::memory_order_relaxed);
  }
  std::uint64_t protocol_errors() const noexcept {
    return protocol_errors_.load(std::memory_order_relaxed);
  }
  std::uint64_t connections() const noexcept {
    return connections_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void handle_connection(int fd);

  IngestListenerOptions options_;
  Sink sink_;
  std::atomic<std::uint64_t> expected_;
  int listen_fd_ = -1;
  std::atomic<int> conn_fd_{-1};
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> duplicates_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> connections_{0};
  std::thread thread_;
};

}  // namespace appclass::dist
