// Stage-aware migration (paper section 1: "with process migration
// techniques it is possible to migrate an application during its execution
// ... better matching of resource availability and application resource
// requirement across different execution stages and across different
// nodes").
//
// The migrator watches the online classifier's view of the VM currently
// hosting a target application. When the VM's debounced behaviour class
// changes — the application entered a new execution stage — and a
// different VM is preferred for that class (e.g. a VM on an idle-CPU host
// for compute stages, a VM on an idle-disk host for I/O stages), it
// checkpoints and migrates the instance there.
#pragma once

#include <array>
#include <optional>

#include "core/online.hpp"
#include "sim/engine.hpp"

namespace appclass::sched {

/// Preferred VM per behaviour class; classes without a preference never
/// trigger a migration.
struct StagePreferences {
  std::array<std::optional<sim::VmId>, core::kClassCount> preferred_vm{};

  void prefer(core::ApplicationClass cls, sim::VmId vm) {
    preferred_vm[core::index_of(cls)] = vm;
  }
};

class StageAwareMigrator {
 public:
  /// Registers with `classifier`'s change callback. The classifier and
  /// engine must outlive the migrator, and the migrator must be the only
  /// consumer of the classifier's on_change hook.
  StageAwareMigrator(sim::Engine& engine, core::OnlineClassifier& classifier,
                     sim::InstanceId target, StagePreferences preferences);

  /// Number of migrations performed so far.
  int migrations() const noexcept { return migrations_; }
  /// Total checkpoint downtime incurred, seconds.
  sim::SimTime total_downtime() const noexcept { return downtime_; }

 private:
  void on_change(const core::BehaviourChange& change);

  sim::Engine& engine_;
  sim::InstanceId target_;
  StagePreferences preferences_;
  int migrations_ = 0;
  sim::SimTime downtime_ = 0;
};

}  // namespace appclass::sched
