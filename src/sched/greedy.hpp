// Greedy class-aware placement for arbitrary job mixes.
//
// The paper's experiment enumerates all schedules of a fixed 9-job mix —
// feasible only at toy scale. This module provides the production-shaped
// variant: place an arbitrary batch of class-labelled jobs onto N VMs of
// fixed slot capacity, greedily minimizing same-class overlap per VM
// (jobs of the same class queue on the same bottleneck; jobs of different
// classes overlap cleanly — the effect quantified in Figures 4/5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/class_label.hpp"
#include "linalg/random.hpp"

namespace appclass::sched {

/// One job awaiting placement.
struct PlacementJob {
  std::string app;  ///< catalog name (used by the simulation runner)
  core::ApplicationClass cls = core::ApplicationClass::kIdle;
};

/// A placement: jobs_by_vm[v] lists job indices assigned to VM v.
using Placement = std::vector<std::vector<std::size_t>>;

struct PlacementProblem {
  std::vector<PlacementJob> jobs;
  std::size_t vm_count = 0;
  std::size_t slots_per_vm = 0;  ///< max jobs per VM

  bool feasible() const {
    return vm_count * slots_per_vm >= jobs.size() && vm_count > 0;
  }
};

/// Same-class overlap penalty of a placement: for each VM and class with
/// c >= 2 jobs, adds c*(c-1)/2 (pairs sharing a bottleneck). Lower is
/// better; 0 means no two same-class jobs share a VM.
int overlap_penalty(const PlacementProblem& problem,
                    const Placement& placement);

/// Greedy class-aware placement: jobs are placed one by one (heaviest
/// classes first) on the VM with the fewest same-class jobs, breaking ties
/// toward the least-loaded, then lowest-index VM. Deterministic.
Placement greedy_place(const PlacementProblem& problem);

/// Uniform random placement honouring slot limits (the class-blind
/// baseline).
Placement random_place(const PlacementProblem& problem, linalg::Rng& rng);

/// Simulates a placement on a 2-host cluster (VMs alternate between the
/// paper's host A and host B; one extra VM on host B serves network
/// peers) and returns each job's elapsed time in seconds, in job order.
std::vector<std::int64_t> simulate_placement(const PlacementProblem& problem,
                                             const Placement& placement,
                                             std::uint64_t seed = 42);

/// Sum over jobs of 86400/elapsed.
double placement_throughput(const std::vector<std::int64_t>& elapsed);

}  // namespace appclass::sched
