#include "sched/queue.hpp"

#include <algorithm>

#include <limits>

#include "common/assert.hpp"
#include "linalg/random.hpp"
#include "monitor/harness.hpp"
#include "obs/cardinality.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/testbed.hpp"
#include "workloads/catalog.hpp"

namespace appclass::sched {
namespace {

struct QueueMetrics {
  obs::Histogram& decision_seconds =
      obs::stage_histogram("dispatch_decision");
  obs::Counter& dispatched = obs::MetricsRegistry::global().counter(
      "appclass_sched_dispatched_total");
  obs::Counter& completed = obs::MetricsRegistry::global().counter(
      "appclass_sched_completed_total");
};

QueueMetrics& queue_metrics() {
  static QueueMetrics metrics;
  return metrics;
}

obs::Counter& placement_counter(std::size_t vm_index) {
  // Bounded per-VM label: a testbed with more VMs than the budget folds
  // the tail into one "other" series instead of growing the registry
  // linearly with fleet size (same policy as the scrape-path counters).
  static obs::BoundedLabelSet vm_labels(32);
  return obs::MetricsRegistry::global().counter(
      "appclass_sched_placements_total",
      {{"vm", vm_labels.admit(std::to_string(vm_index))}});
}

}  // namespace

DispatchPolicy round_robin_policy() {
  return [](const DispatchContext& ctx) {
    return ctx.dispatch_index % ctx.vms.size();
  };
}

DispatchPolicy random_policy(std::uint64_t seed) {
  auto rng = std::make_shared<linalg::Rng>(seed);
  return [rng](const DispatchContext& ctx) {
    return static_cast<std::size_t>(rng->uniform_index(ctx.vms.size()));
  };
}

DispatchPolicy least_loaded_policy() {
  return [](const DispatchContext& ctx) {
    std::size_t best = 0;
    for (std::size_t v = 1; v < ctx.vms.size(); ++v)
      if (ctx.running_per_vm[v] < ctx.running_per_vm[best]) best = v;
    return best;
  };
}

DispatchPolicy class_aware_policy() {
  return [](const DispatchContext& ctx) {
    const PlacementAdvisor advisor(ctx.gmetad);
    const std::size_t cls = core::index_of(ctx.job.cls);
    std::size_t best = 0;
    int best_overlap = std::numeric_limits<int>::max();
    double best_headroom = -1.0;
    for (std::size_t v = 0; v < ctx.vms.size(); ++v) {
      // Same-class jobs on this VM contend hardest; same-class jobs on
      // sibling VMs of the same host still share its physical disk/NIC.
      int overlap = 2 * ctx.running_by_class[v][cls];
      for (std::size_t u = 0; u < ctx.vms.size(); ++u)
        if (u != v && ctx.host_of[u] == ctx.host_of[v])
          overlap += ctx.running_by_class[u][cls];
      double headroom = 0.5;  // neutral until the monitor has data
      if (const auto snapshot = ctx.gmetad.latest(ctx.vm_ips[v]))
        headroom = advisor.headroom(ctx.job.cls, *snapshot);
      // Least class overlap first (the dispatcher's own bookkeeping reacts
      // instantly); live headroom breaks ties.
      if (overlap < best_overlap ||
          (overlap == best_overlap && headroom > best_headroom)) {
        best = v;
        best_overlap = overlap;
        best_headroom = headroom;
      }
    }
    return best;
  };
}

double DispatchOutcome::mean_response() const {
  APPCLASS_EXPECTS(!jobs.empty());
  double sum = 0.0;
  for (const auto& j : jobs) sum += static_cast<double>(j.response_seconds);
  return sum / static_cast<double>(jobs.size());
}

double DispatchOutcome::max_response() const {
  APPCLASS_EXPECTS(!jobs.empty());
  sim::SimTime mx = 0;
  for (const auto& j : jobs) mx = std::max(mx, j.response_seconds);
  return static_cast<double>(mx);
}

double DispatchOutcome::throughput_jobs_per_day() const {
  double total = 0.0;
  for (const auto& j : jobs)
    total += 86400.0 / std::max<double>(1.0,
                                        static_cast<double>(
                                            j.response_seconds));
  return total;
}

DispatchOutcome run_arrival_experiment(std::vector<ArrivingJob> jobs,
                                       const DispatchPolicy& policy,
                                       const ArrivalExperimentOptions&
                                           options) {
  APPCLASS_EXPECTS(!jobs.empty());
  APPCLASS_EXPECTS(options.vm_count >= 1);
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const ArrivingJob& a, const ArrivingJob& b) {
                     return a.arrival < b.arrival;
                   });

  sim::Engine engine(options.seed);
  const auto host_a = engine.add_host(sim::make_host_a_spec());
  const auto host_b = engine.add_host(sim::make_host_b_spec());
  std::vector<sim::VmId> vms;
  std::vector<std::string> vm_ips;
  std::vector<std::size_t> host_of;
  for (std::size_t v = 0; v < options.vm_count; ++v) {
    const std::string ip = "10.0.3." + std::to_string(v + 1);
    vms.push_back(engine.add_vm(v % 2 == 0 ? host_a : host_b,
                                sim::make_vm_spec("w" + std::to_string(v),
                                                  ip)));
    vm_ips.push_back(ip);
    host_of.push_back(v % 2 == 0 ? host_a : host_b);
  }
  const auto peer =
      engine.add_vm(host_b, sim::make_vm_spec("peer", "10.0.3.200"));

  monitor::ClusterMonitor mon(engine);
  monitor::Gmetad gmetad(mon.bus());

  struct Pending {
    std::size_t job_index;
    sim::InstanceId instance;
    std::size_t vm_index;
  };
  std::vector<Pending> dispatched;
  std::vector<int> running_per_vm(options.vm_count, 0);
  std::vector<ClassCounts> running_by_class(options.vm_count, ClassCounts{});

  DispatchOutcome out;
  out.jobs.resize(jobs.size());
  std::size_t next_arrival = 0;
  std::size_t finished = 0;

  while (finished < jobs.size() && engine.now() < options.max_ticks) {
    // Dispatch everything that has arrived by now.
    while (next_arrival < jobs.size() &&
           jobs[next_arrival].arrival <= engine.now()) {
      const ArrivingJob& job = jobs[next_arrival];
      const DispatchContext ctx{job,
                                vms,
                                vm_ips,
                                running_per_vm,
                                running_by_class,
                                host_of,
                                gmetad,
                                next_arrival};
      QueueMetrics& qm = queue_metrics();
      obs::ScopedTimer decision_timer(qm.decision_seconds);
      const std::size_t v = policy(ctx);
      decision_timer.stop();
      APPCLASS_ENSURES(v < vms.size());
      qm.dispatched.inc();
      placement_counter(v).inc();
      APPCLASS_LOG_TRACE("sched.dispatch", {"job", job.app},
                         {"class", core::to_string(job.cls)}, {"vm", v},
                         {"time", engine.now()});
      auto model = workloads::make_by_name(job.app, static_cast<int>(peer));
      APPCLASS_EXPECTS(model != nullptr);
      const auto instance = engine.submit(vms[v], std::move(model));
      dispatched.push_back(Pending{next_arrival, instance, v});
      ++running_per_vm[v];
      ++running_by_class[v][core::index_of(job.cls)];
      out.jobs[next_arrival] =
          DispatchRecord{job.app, job.cls, job.arrival, v, 0};
      ++next_arrival;
    }

    engine.step();

    // Collect completions.
    for (auto it = dispatched.begin(); it != dispatched.end();) {
      const auto info = engine.instance(it->instance);
      if (info.state == sim::InstanceState::kFinished) {
        out.jobs[it->job_index].response_seconds =
            info.finish_time - jobs[it->job_index].arrival;
        out.makespan = std::max(out.makespan, info.finish_time);
        --running_per_vm[it->vm_index];
        --running_by_class[it->vm_index]
            [core::index_of(out.jobs[it->job_index].cls)];
        ++finished;
        queue_metrics().completed.inc();
        it = dispatched.erase(it);
      } else {
        ++it;
      }
    }
  }
  APPCLASS_ENSURES(finished == jobs.size());
  return out;
}

std::vector<ArrivingJob> make_mixed_arrivals(std::size_t count,
                                             double mean_interarrival_s,
                                             std::uint64_t seed) {
  APPCLASS_EXPECTS(mean_interarrival_s > 0.0);
  linalg::Rng rng(seed);
  std::vector<ArrivingJob> out;
  double t = 0.0;
  while (out.size() < count) {
    // Users submit in bursts of same-type jobs (a parameter sweep, a batch
    // of file conversions): 1-4 jobs of one type arrive close together.
    const std::size_t burst = 1 + rng.uniform_index(4);
    ArrivingJob job;
    switch (rng.uniform_index(3)) {
      case 0:
        job.app = "specseis_small";
        job.cls = core::ApplicationClass::kCpu;
        break;
      case 1:
        job.app = "postmark";
        job.cls = core::ApplicationClass::kIo;
        break;
      default:
        job.app = "netpipe";
        job.cls = core::ApplicationClass::kNetwork;
        break;
    }
    t += rng.exponential(1.0 / mean_interarrival_s);
    for (std::size_t b = 0; b < burst && out.size() < count; ++b) {
      job.arrival = static_cast<sim::SimTime>(t);
      out.push_back(job);
      t += rng.exponential(1.0 / 10.0);  // ~10 s within a burst
    }
  }
  return out;
}

}  // namespace appclass::sched
