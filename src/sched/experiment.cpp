#include "sched/experiment.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "sim/testbed.hpp"

namespace appclass::sched {

std::vector<JobType> paper_job_types() {
  std::vector<JobType> types(3);
  types[0] = JobType{
      'S', "specseis_small", core::ApplicationClass::kCpu,
      [](int) { return workloads::make_specseis(workloads::SeisDataSize::kSmall); }};
  types[1] = JobType{
      'P', "postmark", core::ApplicationClass::kIo,
      [](int) { return workloads::make_postmark(false); }};
  types[2] = JobType{
      'N', "netpipe", core::ApplicationClass::kNetwork,
      [](int peer) { return workloads::make_netpipe(peer); }};
  return types;
}

double ScheduleOutcome::system_throughput_jobs_per_day() const {
  double total = 0.0;
  for (const auto& j : jobs) {
    APPCLASS_EXPECTS(j.elapsed_seconds > 0);
    total += 86400.0 / static_cast<double>(j.elapsed_seconds);
  }
  return total;
}

double ScheduleOutcome::app_throughput_jobs_per_day(char code) const {
  double total = 0.0;
  for (const auto& j : jobs)
    if (j.code == code)
      total += 86400.0 / static_cast<double>(j.elapsed_seconds);
  return total;
}

ScheduleOutcome run_schedule(const Schedule& schedule,
                             const std::vector<JobType>& types,
                             std::uint64_t seed) {
  APPCLASS_EXPECTS(schedule.size() == 3);

  sim::TestbedOptions opts;
  opts.seed = seed;
  opts.four_vms = true;
  sim::Testbed tb = sim::make_testbed(opts);
  const std::array<sim::VmId, 3> vms = {tb.vm1, tb.vm2, tb.vm3};
  const int peer = static_cast<int>(tb.vm4);

  const auto type_of = [&](char code) -> const JobType& {
    for (const auto& t : types)
      if (t.code == code) return t;
    APPCLASS_EXPECTS(false && "unknown job code");
    return types.front();
  };

  struct Submitted {
    sim::InstanceId id;
    char code;
    std::size_t vm_index;
  };
  std::vector<Submitted> submitted;
  for (std::size_t g = 0; g < schedule.size(); ++g)
    for (char code : schedule[g])
      submitted.push_back(Submitted{
          tb.engine->submit(vms[g], type_of(code).factory(peer)), code, g});

  const bool done = tb.engine->run_until_done(2'000'000);
  APPCLASS_ENSURES(done);

  ScheduleOutcome out;
  out.schedule = schedule;
  for (const auto& s : submitted) {
    const sim::InstanceInfo info = tb.engine->instance(s.id);
    out.jobs.push_back(JobOutcome{s.code, s.vm_index, info.elapsed()});
    out.makespan_seconds = std::max(out.makespan_seconds, info.finish_time);
  }
  return out;
}

std::vector<ScheduleOutcome> run_all_schedules(
    const std::vector<WeightedSchedule>& schedules,
    const std::vector<JobType>& types, std::uint64_t seed) {
  std::vector<ScheduleOutcome> out;
  out.reserve(schedules.size());
  for (std::size_t i = 0; i < schedules.size(); ++i)
    out.push_back(run_schedule(schedules[i].schedule, types, seed + i));
  return out;
}

double weighted_average_throughput(
    const std::vector<WeightedSchedule>& schedules,
    const std::vector<ScheduleOutcome>& outcomes) {
  APPCLASS_EXPECTS(schedules.size() == outcomes.size());
  double weighted = 0.0;
  double total_weight = 0.0;
  for (std::size_t i = 0; i < schedules.size(); ++i) {
    const auto w = static_cast<double>(schedules[i].multiplicity);
    weighted += w * outcomes[i].system_throughput_jobs_per_day();
    total_weight += w;
  }
  APPCLASS_EXPECTS(total_weight > 0.0);
  return weighted / total_weight;
}

ConcurrencyOutcome run_concurrent_vs_sequential(std::uint64_t seed) {
  ConcurrencyOutcome out;
  {
    // Concurrent: both jobs start together on VM1.
    sim::TestbedOptions opts;
    opts.seed = seed;
    opts.four_vms = false;
    sim::Testbed tb = sim::make_testbed(opts);
    const auto ch3d = tb.engine->submit(tb.vm1, workloads::make_ch3d());
    const auto pm = tb.engine->submit(tb.vm1, workloads::make_postmark());
    APPCLASS_ENSURES(tb.engine->run_until_done(1'000'000));
    out.concurrent_ch3d_s = tb.engine->instance(ch3d).elapsed();
    out.concurrent_postmark_s = tb.engine->instance(pm).elapsed();
    out.concurrent_makespan_s = std::max(
        tb.engine->instance(ch3d).finish_time,
        tb.engine->instance(pm).finish_time);
  }
  {
    // Sequential: PostMark starts when CH3D finishes.
    sim::TestbedOptions opts;
    opts.seed = seed;
    opts.four_vms = false;
    sim::Testbed tb = sim::make_testbed(opts);
    const auto ch3d = tb.engine->submit(tb.vm1, workloads::make_ch3d());
    const auto pm =
        tb.engine->submit_after(tb.vm1, workloads::make_postmark(), ch3d);
    APPCLASS_ENSURES(tb.engine->run_until_done(1'000'000));
    out.sequential_ch3d_s = tb.engine->instance(ch3d).elapsed();
    out.sequential_postmark_s = tb.engine->instance(pm).elapsed();
    out.sequential_makespan_s = tb.engine->instance(pm).finish_time;
  }
  return out;
}

}  // namespace appclass::sched
