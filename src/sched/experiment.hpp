// Scheduling experiments (paper section 5.2).
//
// * Nine-job experiment (Figures 4 and 5): three instances each of
//   SPECseis96-small ('S'), PostMark ('P'), and NetPIPE ('N') are placed
//   onto VM1-3 (three per VM) and run to completion; VM4 hosts the NetPIPE
//   server. System throughput is the sum over jobs of 86400/elapsed
//   (jobs/day); per-application throughput restricts the sum to one code.
// * Concurrent-vs-sequential experiment (Table 4): CH3D and PostMark on
//   one VM, together versus back-to-back.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/class_label.hpp"
#include "sched/jobmix.hpp"
#include "workloads/catalog.hpp"

namespace appclass::sched {

/// A job type participating in a scheduling experiment.
struct JobType {
  char code = '?';
  std::string name;
  core::ApplicationClass expected_class = core::ApplicationClass::kIdle;
  /// Creates a fresh model instance; `peer_vm` is the engine VmId of the
  /// network-server VM (ignored by non-network jobs).
  std::function<workloads::ModelPtr(int peer_vm)> factory;
};

/// The paper's S/P/N job types.
std::vector<JobType> paper_job_types();

/// Outcome of one job instance in a schedule run.
struct JobOutcome {
  char code = '?';
  std::size_t vm_index = 0;  ///< 0..2 for VM1..VM3
  std::int64_t elapsed_seconds = 0;
};

/// Outcome of running one full schedule.
struct ScheduleOutcome {
  Schedule schedule;
  std::vector<JobOutcome> jobs;
  std::int64_t makespan_seconds = 0;

  /// Sum over all jobs of 86400 / elapsed.
  double system_throughput_jobs_per_day() const;
  /// Same, restricted to one job code.
  double app_throughput_jobs_per_day(char code) const;
};

/// Runs one schedule of the nine-job experiment on a fresh testbed.
ScheduleOutcome run_schedule(const Schedule& schedule,
                             const std::vector<JobType>& types,
                             std::uint64_t seed = 42);

/// Runs every schedule; returns outcomes in the same order as `schedules`.
std::vector<ScheduleOutcome> run_all_schedules(
    const std::vector<WeightedSchedule>& schedules,
    const std::vector<JobType>& types, std::uint64_t seed = 42);

/// Multiplicity-weighted mean system throughput — the expected throughput
/// of a scheduler that picks an assignment uniformly at random (the
/// paper's baseline for the 22.11% claim).
double weighted_average_throughput(
    const std::vector<WeightedSchedule>& schedules,
    const std::vector<ScheduleOutcome>& outcomes);

/// Table 4: concurrent vs sequential execution of CH3D + PostMark.
struct ConcurrencyOutcome {
  std::int64_t concurrent_ch3d_s = 0;
  std::int64_t concurrent_postmark_s = 0;
  std::int64_t concurrent_makespan_s = 0;
  std::int64_t sequential_ch3d_s = 0;
  std::int64_t sequential_postmark_s = 0;
  std::int64_t sequential_makespan_s = 0;
};
ConcurrencyOutcome run_concurrent_vs_sequential(std::uint64_t seed = 42);

}  // namespace appclass::sched
