#include "sched/advisor.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace appclass::sched {

PlacementAdvisor::PlacementAdvisor(const monitor::Gmetad& gmetad,
                                   HeadroomNominals nominals)
    : gmetad_(gmetad), nominals_(nominals) {
  APPCLASS_EXPECTS(nominals_.vdisk_blocks_per_s > 0.0);
  APPCLASS_EXPECTS(nominals_.vnic_bytes_per_s > 0.0);
}

double PlacementAdvisor::headroom(core::ApplicationClass cls,
                                  const metrics::Snapshot& s) const {
  using metrics::MetricId;
  const auto clamp01 = [](double x) { return std::clamp(x, 0.0, 1.0); };
  switch (cls) {
    case core::ApplicationClass::kCpu:
      return clamp01(s.get(MetricId::kCpuIdle) / 100.0);
    case core::ApplicationClass::kIo: {
      const double used =
          (s.get(MetricId::kIoBi) + s.get(MetricId::kIoBo)) /
          nominals_.vdisk_blocks_per_s;
      return clamp01(1.0 - used);
    }
    case core::ApplicationClass::kNetwork: {
      const double used =
          (s.get(MetricId::kBytesIn) + s.get(MetricId::kBytesOut)) /
          nominals_.vnic_bytes_per_s;
      return clamp01(1.0 - used);
    }
    case core::ApplicationClass::kMemory: {
      const double total = std::max(s.get(MetricId::kMemTotal), 1.0);
      // Page cache is reclaimable: it counts as available memory.
      const double available =
          s.get(MetricId::kMemFree) + s.get(MetricId::kMemCached);
      return clamp01(available / total);
    }
    case core::ApplicationClass::kIdle:
      return 1.0;  // an idle job is happy anywhere
  }
  return 0.0;
}

std::vector<std::pair<std::string, double>> PlacementAdvisor::ranking(
    core::ApplicationClass cls,
    std::span<const std::string> candidates) const {
  std::vector<std::pair<std::string, double>> out;
  for (const auto& ip : candidates) {
    const auto snapshot = gmetad_.latest(ip);
    if (!snapshot) continue;
    out.emplace_back(ip, headroom(cls, *snapshot));
  }
  std::stable_sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  return out;
}

std::optional<std::string> PlacementAdvisor::recommend(
    core::ApplicationClass cls,
    std::span<const std::string> candidates) const {
  // Each recommendation is one scheduling decision: a span (when tracing)
  // carrying the job class and the chosen placement, and a per-class
  // decision counter. The class label set is closed (the five paper
  // classes), so labeling by name cannot explode cardinality.
  obs::TraceSpan span("sched_advise");
  obs::MetricsRegistry::global()
      .counter("appclass_sched_advice_total",
               {{"class", std::string(core::to_string(cls))}})
      .inc();
  const auto ranked = ranking(cls, candidates);
  if (span.recording()) {
    span.add_attr({"class", core::to_string(cls)});
    span.add_attr({"candidates", candidates.size()});
    span.add_attr({"ranked", ranked.size()});
    if (!ranked.empty()) {
      span.add_attr({"chosen", ranked.front().first});
      span.add_attr({"headroom", ranked.front().second});
    }
  }
  if (ranked.empty()) return std::nullopt;
  return ranked.front().first;
}

}  // namespace appclass::sched
