#include "sched/jobmix.hpp"

#include <algorithm>
#include <set>

#include "common/assert.hpp"

namespace appclass::sched {

namespace {

std::uint64_t binomial(int n, int k) {
  if (k < 0 || k > n) return 0;
  std::uint64_t r = 1;
  for (int i = 0; i < k; ++i)
    r = r * static_cast<std::uint64_t>(n - i) /
        static_cast<std::uint64_t>(i + 1);
  return r;
}

/// Enumerates multisets of size `size` drawn from `remaining`, yielding
/// (group-string, number of distinguishable ways to pick it).
void enumerate_groups(
    const std::vector<std::pair<char, int>>& remaining, std::size_t idx,
    int size, std::string& prefix, std::uint64_t ways,
    std::vector<std::pair<std::string, std::uint64_t>>& out) {
  if (size == 0) {
    out.emplace_back(prefix, ways);
    return;
  }
  if (idx >= remaining.size()) return;
  const auto [code, avail] = remaining[idx];
  const int max_take = std::min(avail, size);
  for (int take = 0; take <= max_take; ++take) {
    // Jobs of the same type are interchangeable, so picking `take` of them
    // contributes C(avail, take) distinguishable selections.
    const std::uint64_t w = ways * binomial(avail, take);
    prefix.append(static_cast<std::size_t>(take), code);
    enumerate_groups(remaining, idx + 1, size - take, prefix, w, out);
    prefix.resize(prefix.size() - static_cast<std::size_t>(take));
  }
}

void recurse(std::vector<std::pair<char, int>>& remaining, int groups_left,
             int group_size, Schedule& partial, std::uint64_t ways,
             std::map<Schedule, std::uint64_t>& tally) {
  if (groups_left == 0) {
    tally[canonicalize(partial)] += ways;
    return;
  }
  std::vector<std::pair<std::string, std::uint64_t>> options;
  std::string prefix;
  enumerate_groups(remaining, 0, group_size, prefix, 1, options);
  for (const auto& [group, w] : options) {
    // Subtract the group from the remaining counts.
    for (char c : group)
      for (auto& [code, count] : remaining)
        if (code == c) --count;
    partial.push_back(group);
    recurse(remaining, groups_left - 1, group_size, partial, ways * w, tally);
    partial.pop_back();
    for (char c : group)
      for (auto& [code, count] : remaining)
        if (code == c) ++count;
  }
}

}  // namespace

Schedule canonicalize(Schedule schedule) {
  for (auto& g : schedule) std::sort(g.begin(), g.end());
  std::sort(schedule.begin(), schedule.end(), std::greater<>{});
  return schedule;
}

std::vector<WeightedSchedule> enumerate_schedules(
    const std::map<char, int>& job_counts, int groups, int group_size) {
  int total = 0;
  for (const auto& [code, count] : job_counts) {
    APPCLASS_EXPECTS(count >= 0);
    total += count;
  }
  APPCLASS_EXPECTS(total == groups * group_size);

  std::vector<std::pair<char, int>> remaining(job_counts.begin(),
                                              job_counts.end());
  std::map<Schedule, std::uint64_t> tally;
  Schedule partial;
  recurse(remaining, groups, group_size, partial, 1, tally);

  // Each unordered schedule was reached once per ordering of its distinct
  // groups across the distinguishable VMs; the raw tally therefore already
  // counts distinguishable assignments (VMs are distinguishable).
  std::vector<WeightedSchedule> out;
  out.reserve(tally.size());
  for (const auto& [schedule, ways] : tally)
    out.push_back(WeightedSchedule{schedule, ways});
  return out;
}

std::string to_string(const Schedule& schedule) {
  std::string out = "{";
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    out += "(" + schedule[i] + ")";
    if (i + 1 < schedule.size()) out += ",";
  }
  return out + "}";
}

int diversity_score(const Schedule& schedule,
                    const std::map<char, core::ApplicationClass>& classes) {
  int score = 0;
  for (const auto& group : schedule) {
    std::set<core::ApplicationClass> distinct;
    for (char c : group) {
      const auto it = classes.find(c);
      APPCLASS_EXPECTS(it != classes.end());
      distinct.insert(it->second);
    }
    score += static_cast<int>(distinct.size());
  }
  return score;
}

}  // namespace appclass::sched
