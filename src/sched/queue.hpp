// Arrival-driven job dispatch (grid front-end).
//
// The paper's experiments place a fixed batch; a real resource manager
// receives a *stream* of jobs and must place each on arrival using only
// live cluster state. This module runs that loop on the simulator: jobs
// arrive at given times, a pluggable policy picks a VM per job (optionally
// consulting the live gmetad view and the job's learned class), and the
// dispatcher records waiting/response times.
#pragma once

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "core/class_label.hpp"
#include "monitor/gmetad.hpp"
#include "sched/advisor.hpp"
#include "sim/engine.hpp"

namespace appclass::sched {

/// One job in the arrival stream.
struct ArrivingJob {
  std::string app;  ///< catalog name
  core::ApplicationClass cls = core::ApplicationClass::kIdle;
  sim::SimTime arrival = 0;
};

/// Per-VM count of running jobs of each class (the dispatcher's own
/// bookkeeping — it knows what it placed even before the monitor shows it).
using ClassCounts = std::array<int, core::kClassCount>;

/// Dispatch-time context handed to a policy.
struct DispatchContext {
  const ArrivingJob& job;
  const std::vector<sim::VmId>& vms;
  const std::vector<std::string>& vm_ips;      ///< parallel to vms
  const std::vector<int>& running_per_vm;      ///< live running-job counts
  const std::vector<ClassCounts>& running_by_class;  ///< per VM, per class
  const std::vector<std::size_t>& host_of;     ///< host index per VM
  const monitor::Gmetad& gmetad;               ///< live cluster view
  std::size_t dispatch_index = 0;              ///< 0-based job counter
};

/// A placement policy: returns the index into ctx.vms to place the job on.
using DispatchPolicy = std::function<std::size_t(const DispatchContext&)>;

/// Round robin over VMs.
DispatchPolicy round_robin_policy();

/// Seeded uniform random VM choice.
DispatchPolicy random_policy(std::uint64_t seed);

/// Least loaded by running-job count (class blind).
DispatchPolicy least_loaded_policy();

/// Class-aware: avoids VMs already running jobs of the same class (the
/// dispatcher's own bookkeeping beats the monitoring lag within a burst),
/// breaking ties by live class-specific headroom (PlacementAdvisor).
DispatchPolicy class_aware_policy();

/// Outcome of one dispatched job.
struct DispatchRecord {
  std::string app;
  core::ApplicationClass cls = core::ApplicationClass::kIdle;
  sim::SimTime arrival = 0;
  std::size_t vm_index = 0;
  sim::SimTime response_seconds = 0;  ///< finish - arrival
};

struct DispatchOutcome {
  std::vector<DispatchRecord> jobs;
  sim::SimTime makespan = 0;  ///< last finish time

  double mean_response() const;
  double max_response() const;
  /// Sum over jobs of 86400/response.
  double throughput_jobs_per_day() const;
};

struct ArrivalExperimentOptions {
  std::size_t vm_count = 4;
  std::uint64_t seed = 42;
  sim::SimTime max_ticks = 3'000'000;
};

/// Runs an arrival stream on a 2-host cluster (VMs alternate hosts; one
/// extra VM serves network peers) under the given policy.
DispatchOutcome run_arrival_experiment(std::vector<ArrivingJob> jobs,
                                       const DispatchPolicy& policy,
                                       const ArrivalExperimentOptions& options
                                       = {});

/// Generates a Poisson-ish arrival stream of `count` jobs drawn uniformly
/// from {specseis_small (cpu), postmark (io), netpipe (network)} with
/// exponential inter-arrival times of the given mean.
std::vector<ArrivingJob> make_mixed_arrivals(std::size_t count,
                                             double mean_interarrival_s,
                                             std::uint64_t seed);

}  // namespace appclass::sched
