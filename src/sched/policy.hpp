// Scheduling policies: class-aware (the paper's proposal) and random (the
// baseline it beats by 22.11%).
//
// The class-aware policy consults learned application classes — from an
// ApplicationDatabase of historical runs or an explicit map — and picks
// the schedule that maximizes class diversity within each machine, so jobs
// sharing a VM stress different resources.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/appdb.hpp"
#include "linalg/random.hpp"
#include "sched/jobmix.hpp"

namespace appclass::sched {

/// Picks the schedule with the highest class-diversity score; ties break
/// toward the lexicographically smallest rendering (deterministic).
/// `classes` maps job codes to their learned classes.
const WeightedSchedule& pick_class_aware(
    const std::vector<WeightedSchedule>& schedules,
    const std::map<char, core::ApplicationClass>& classes);

/// Builds the code -> class map by looking each job's application name up
/// in the database (the learned-over-historical-runs path). Returns
/// nullopt if any application has no recorded runs under `config`.
std::optional<std::map<char, core::ApplicationClass>> classes_from_database(
    const core::ApplicationDatabase& db,
    const std::map<char, std::string>& code_to_app, const std::string& config);

/// Picks a schedule at random, weighted by assignment multiplicity —
/// exactly what a class-blind scheduler assigning jobs uniformly does.
const WeightedSchedule& pick_random(
    const std::vector<WeightedSchedule>& schedules, linalg::Rng& rng);

}  // namespace appclass::sched
