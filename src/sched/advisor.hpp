// Live placement advice from the cluster view.
//
// Combines the two halves of the paper's pitch: the application's learned
// behaviour class (from the classifier / application database) and the
// cluster's live resource state (from gmetad). For an incoming job of a
// known class, the advisor ranks candidate VMs by class-specific headroom
// — idle CPU for CPU jobs, spare disk bandwidth for I/O jobs, spare NIC
// bandwidth for network jobs, free memory for paging-prone jobs.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/class_label.hpp"
#include "monitor/gmetad.hpp"

namespace appclass::sched {

/// Nominal per-VM capacities used to normalize observed rates into [0, 1]
/// headroom (match the simulated GSX guests' virtual devices).
struct HeadroomNominals {
  double vdisk_blocks_per_s = 11000.0;
  double vnic_bytes_per_s = 72.0e6;
};

class PlacementAdvisor {
 public:
  explicit PlacementAdvisor(const monitor::Gmetad& gmetad,
                            HeadroomNominals nominals = {});

  /// Headroom of one node for a class, in [0, 1] (1 = fully idle for that
  /// resource dimension).
  double headroom(core::ApplicationClass cls,
                  const metrics::Snapshot& snapshot) const;

  /// The candidate VM (by IP) with the most class-specific headroom;
  /// nullopt when no candidate has a live snapshot. Ties break toward the
  /// earlier candidate (deterministic).
  std::optional<std::string> recommend(
      core::ApplicationClass cls,
      std::span<const std::string> candidates) const;

  /// All candidates with their headroom, best first.
  std::vector<std::pair<std::string, double>> ranking(
      core::ApplicationClass cls,
      std::span<const std::string> candidates) const;

 private:
  const monitor::Gmetad& gmetad_;
  HeadroomNominals nominals_;
};

}  // namespace appclass::sched
