#include "sched/migration.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace appclass::sched {

StageAwareMigrator::StageAwareMigrator(sim::Engine& engine,
                                       core::OnlineClassifier& classifier,
                                       sim::InstanceId target,
                                       StagePreferences preferences)
    : engine_(engine), target_(target), preferences_(preferences) {
  classifier.on_change(
      [this](const core::BehaviourChange& change) { on_change(change); });
}

void StageAwareMigrator::on_change(const core::BehaviourChange& change) {
  const sim::InstanceInfo info = engine_.instance(target_);
  if (info.state != sim::InstanceState::kRunning) return;
  // Only changes observed on the VM currently hosting the target matter.
  if (engine_.vm(info.vm).spec().ip != change.node_ip) return;

  const auto preferred =
      preferences_.preferred_vm[core::index_of(change.to)];
  if (!preferred || *preferred == info.vm) return;

  // One migration decision = one span: the behaviour change that
  // triggered it, the chosen destination, and the downtime it cost.
  obs::TraceSpan span("sched_migrate");
  if (span.recording()) {
    span.add_attr({"node", change.node_ip});
    span.add_attr({"to_class", core::to_string(change.to)});
    span.add_attr({"dest_vm", static_cast<std::uint64_t>(*preferred)});
  }
  const sim::SimTime downtime = engine_.migrate(target_, *preferred);
  if (span.recording()) span.add_attr({"downtime", downtime});
  if (downtime > 0) {
    obs::MetricsRegistry::global()
        .counter("appclass_sched_migrations_total",
                 {{"class", std::string(core::to_string(change.to))}})
        .inc();
    ++migrations_;
    downtime_ += downtime;
  }
}

}  // namespace appclass::sched
