#include "sched/migration.hpp"

namespace appclass::sched {

StageAwareMigrator::StageAwareMigrator(sim::Engine& engine,
                                       core::OnlineClassifier& classifier,
                                       sim::InstanceId target,
                                       StagePreferences preferences)
    : engine_(engine), target_(target), preferences_(preferences) {
  classifier.on_change(
      [this](const core::BehaviourChange& change) { on_change(change); });
}

void StageAwareMigrator::on_change(const core::BehaviourChange& change) {
  const sim::InstanceInfo info = engine_.instance(target_);
  if (info.state != sim::InstanceState::kRunning) return;
  // Only changes observed on the VM currently hosting the target matter.
  if (engine_.vm(info.vm).spec().ip != change.node_ip) return;

  const auto preferred =
      preferences_.preferred_vm[core::index_of(change.to)];
  if (!preferred || *preferred == info.vm) return;

  const sim::SimTime downtime = engine_.migrate(target_, *preferred);
  if (downtime > 0) {
    ++migrations_;
    downtime_ += downtime;
  }
}

}  // namespace appclass::sched
